// §5.3 microbenchmarks (google-benchmark): the claims behind GNN-DSE's
// speed — model inference in milliseconds ("22 inferences per second" on
// the paper's machine) versus minutes-to-hours per HLS evaluation, plus the
// cost of graph featurization and batching.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dse/dse.hpp"

using namespace gnndse;

namespace {

struct Fixture {
  // Deliberately a bare SimEvaluator: BM_HlsEvaluation times the substrate
  // itself, not the caching layer the end-to-end benches stack on top.
  oracle::SimEvaluator hls;
  std::vector<kir::Kernel> kernels = kernels::make_training_kernels();
  db::Database database;
  model::SampleFactory factory;
  std::unique_ptr<dse::TrainedModels> models;
  kir::Kernel mvt = kernels::make_kernel("mvt");
  hlssim::DesignConfig cfg = hlssim::DesignConfig::neutral(mvt);

  Fixture() {
    database = bench::make_initial_database(hls);
    dse::PipelineOptions po = bench::scaled_pipeline_options();
    models = std::make_unique<dse::TrainedModels>(
        database, kernels, factory, po, bench::bundle_cache_prefix());
  }

  static Fixture& get() {
    static Fixture f;
    return f;
  }
};

void BM_HlsEvaluation(benchmark::State& state) {
  Fixture& f = Fixture::get();
  double sim_seconds = 0.0;
  for (auto _ : state) {
    auto r = f.hls.evaluate(f.mvt, f.cfg);
    benchmark::DoNotOptimize(r.cycles);
    sim_seconds += r.synth_seconds;
  }
  state.counters["simulated_synthesis_s_per_eval"] =
      benchmark::Counter(sim_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_HlsEvaluation);

void BM_GraphFeaturization(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto g = f.factory.featurize(f.mvt, f.cfg);
    benchmark::DoNotOptimize(g.x.data());
  }
}
BENCHMARK(BM_GraphFeaturization);

void BM_ModelInferenceSingle(benchmark::State& state) {
  Fixture& f = Fixture::get();
  auto g = f.factory.featurize(f.mvt, f.cfg);
  auto trainer = f.models->bundle().regression_main;
  for (auto _ : state) {
    auto pred = trainer->predict_graphs({&g});
    benchmark::DoNotOptimize(pred.data());
  }
  state.counters["inferences_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelInferenceSingle);

void BM_ModelInferenceBatched(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const int batch = static_cast<int>(state.range(0));
  std::vector<gnn::GraphData> graphs;
  dspace::DesignSpace space(f.mvt);
  util::Rng rng(3);
  for (int i = 0; i < batch; ++i)
    graphs.push_back(f.factory.featurize(f.mvt, space.sample(rng)));
  std::vector<const gnn::GraphData*> ptrs;
  for (auto& g : graphs) ptrs.push_back(&g);
  auto trainer = f.models->bundle().regression_main;
  for (auto _ : state) {
    auto pred = trainer->predict_graphs(ptrs);
    benchmark::DoNotOptimize(pred.data());
  }
  state.counters["inferences_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelInferenceBatched)->Arg(16)->Arg(64)->Arg(256);

void BM_FullPrediction(benchmark::State& state) {
  // The DSE inner loop: featurize + all three models on one design.
  Fixture& f = Fixture::get();
  auto bundle = f.models->bundle();
  for (auto _ : state) {
    auto g = f.factory.featurize(f.mvt, f.cfg);
    auto m = bundle.regression_main->predict_graphs({&g});
    auto b = bundle.regression_bram->predict_graphs({&g});
    auto c = bundle.classifier->predict_graphs({&g});
    benchmark::DoNotOptimize(m.data());
    benchmark::DoNotOptimize(b.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_FullPrediction);

}  // namespace

// Expanded BENCHMARK_MAIN() so the run is wrapped in the shared telemetry
// session: GNNDSE_REPORT=<path> emits a JSON run report like every other
// bench binary (bench_common.hpp).
int main(int argc, char** argv) {
  auto session = bench::make_report_session("bench_inference");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
