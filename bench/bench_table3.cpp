// Table 3: GNN-DSE performance on unseen kernels (bicg, doitgen, gesummv,
// 2mm) — kernels absent from the training database.
//
// For each kernel: #pragmas, #design configs, the DSE + HLS runtime of
// GNN-DSE (model-driven search wall-clock plus the simulated synthesis time
// of evaluating the top-10 designs in parallel), #explored configurations,
// and the runtime speedup over the AutoDSE baseline (bottleneck explorer
// against the HLS substrate, capped at a simulated 21 h as in §5.4).
// The quality check of §5.4 — GNN-DSE reaching AutoDSE's design quality —
// is reported as the cycle ratio of the two best designs.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "dse/dse.hpp"
#include "util/table.hpp"

using namespace gnndse;

int main() {
  auto session = bench::make_report_session("bench_table3");
  oracle::OracleStack oracle;
  auto train_kernels = kernels::make_training_kernels();
  auto unseen = kernels::make_unseen_kernels();

  db::Database database = bench::make_initial_database(oracle);
  model::SampleFactory factory;
  dse::PipelineOptions po = bench::scaled_pipeline_options();
  dse::TrainedModels models(database, train_kernels, factory, po,
                            bench::bundle_cache_prefix());
  dse::ModelDse model_dse(models.bundle(), models.normalizer(), factory);

  dse::DseOptions dopts;
  // §5.4: exhaustive for the small spaces (< 2 minutes), one hour cap for
  // 2mm; scaled down for this machine.
  dopts.time_limit_seconds = util::by_scale(5.0, 60.0, 600.0);
  dopts.max_exhaustive = util::by_scale<std::uint64_t>(6'000, 8'000, 200'000);
  util::Rng rng(13);

  const double autodse_budget = 21.0 * 3600.0;  // simulated seconds

  util::Table t{"Table 3: GNN-DSE on unseen kernels vs the AutoDSE baseline"};
  t.header({"Kernel", "#pragma", "#configs", "DSE+HLS runtime (m)",
            "#Explored", "Runtime speedup", "AutoDSE (m, sim)",
            "cycles ratio (ours/AutoDSE)"});
  double speedup_sum = 0.0;
  for (const auto& k : unseen) {
    dspace::DesignSpace space(k);
    dse::DseResult r = model_dse.run(k, dopts, rng);
    auto ev = model_dse.evaluate_top(k, r, oracle, dopts.util_threshold);
    const double gnn_dse_seconds = r.search_seconds + ev.hls_seconds;

    dse::AutoDseOutcome base =
        dse::run_autodse_baseline(k, oracle, autodse_budget);
    const double speedup = base.simulated_seconds / gnn_dse_seconds;
    speedup_sum += speedup;
    const double ours =
        ev.best ? ev.best->result.cycles
                : std::numeric_limits<double>::infinity();
    const double ratio = ours / base.best_cycles;

    t.row({k.name, util::Table::fmt_int(k.num_pragma_sites()),
           util::Table::fmt_commas(static_cast<long long>(space.pruned_size())),
           util::Table::fmt(gnn_dse_seconds / 60.0, 1),
           util::Table::fmt_commas(static_cast<long long>(r.num_explored)),
           util::Table::fmt(speedup, 0) + "x",
           util::Table::fmt(base.simulated_seconds / 60.0, 0),
           util::Table::fmt(ratio, 3)});
    std::fflush(stdout);
  }
  t.print(std::cout);
  t.write_csv("table3.csv");
  std::printf("\naverage runtime speedup: %.0fx (paper: avg 48x, max 79x)\n",
              speedup_sum / static_cast<double>(unseen.size()));
  std::printf("[bench_table3] completed in %.1fs (scale: %s)\n",
              session.seconds(), bench::scale_tag());
  return 0;
}
