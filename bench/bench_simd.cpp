// SIMD dispatch layer microbenchmark: per-kernel scalar-vs-vector timings
// via util::set_simd_level on DSE-shaped inputs, plus an end-to-end
// fast-path inference sweep per dispatch level. Writes BENCH_simd.json.
// The PR gate expects >= 1.3x over scalar on at least three fused
// elementwise kernels on AVX2-capable hardware.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gnn/infer.hpp"
#include "model/dataset.hpp"
#include "model/predictive_model.hpp"
#include "model/trainer.hpp"
#include "util/cpu.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gnndse;

namespace {

template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

tensor::Tensor random_tensor(std::vector<std::int64_t> shape, util::Rng& rng) {
  tensor::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-2.0, 2.0));
  return t;
}

struct KernelResult {
  std::string name;
  // Seconds per level; 0 when the host lacks the level.
  double seconds[3] = {0.0, 0.0, 0.0};

  double speedup(util::SimdLevel lvl) const {
    const double s = seconds[static_cast<int>(lvl)];
    return s > 0.0 ? seconds[0] / s : 0.0;
  }
  double best_speedup() const {
    return std::max(speedup(util::SimdLevel::kAvx2),
                    speedup(util::SimdLevel::kAvx512));
  }
};

std::vector<util::SimdLevel> available_levels() {
  std::vector<util::SimdLevel> out{util::SimdLevel::kScalar};
  const util::SimdLevel cap = util::detect_simd_level();
  if (cap >= util::SimdLevel::kAvx2) out.push_back(util::SimdLevel::kAvx2);
  if (cap >= util::SimdLevel::kAvx512) out.push_back(util::SimdLevel::kAvx512);
  return out;
}

}  // namespace

int main() {
  auto session = bench::make_report_session("bench_simd");
  const auto levels = available_levels();
  util::log_info("detected simd level: ",
                 util::simd_level_name(util::detect_simd_level()));

  // ---------------------------------------------------------------------
  // Per-kernel timings on DSE-chunk-shaped inputs (mid-size batched graph:
  // ~2k nodes, ~6k edges, hidden width 64). Single-threaded so the ratio
  // isolates the kernel, not the pool.
  // ---------------------------------------------------------------------
  util::set_parallel_threads(1);
  const std::int64_t n = 2048, e = 6144, c = 64;
  const int iters = util::by_scale(20, 60, 200);
  const int reps = util::by_scale(3, 5, 7);
  util::Rng rng(41);
  const tensor::Tensor x = random_tensor({n, c}, rng);
  const tensor::Tensor y = random_tensor({n, c}, rng);
  const tensor::Tensor beta = random_tensor({n, 1}, rng);
  const tensor::Tensor cat = random_tensor({n, 3 * c}, rng);
  const tensor::Tensor ek = random_tensor({e, c}, rng);
  const tensor::Tensor s1 = random_tensor({n, 1}, rng);
  const tensor::Tensor s2 = random_tensor({n, 1}, rng);
  const tensor::Tensor escores = random_tensor({e, 1}, rng);
  const tensor::Tensor alpha = random_tensor({e, 1}, rng);
  const tensor::Tensor w = random_tensor({c, c}, rng);
  std::vector<std::int32_t> src(static_cast<std::size_t>(e)),
      dst(static_cast<std::size_t>(e)), seg(static_cast<std::size_t>(e));
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(n)));
    dst[i] = static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(n)));
    seg[i] = dst[i];
  }

  gnn::InferenceSession s;
  struct Op {
    const char* name;
    std::function<void()> run;
  };
  const std::vector<Op> ops = {
      {"row_sum", [&] { s.row_sum(x); }},
      {"residual_concat", [&] { s.residual_concat(x, y); }},
      {"gated_mix", [&] { s.gated_mix(x, beta, cat); }},
      {"edge_attention_scores",
       [&] { s.edge_attention_scores(x, y, ek, src, dst, 0.125f); }},
      {"edge_pair_scores",
       [&] { s.edge_pair_scores(s1, s2, src, dst, 0.2f); }},
      {"weighted_scatter_add",
       [&] { s.weighted_scatter_add(alpha.data(), x, &ek, src, dst, n); }},
      {"segment_softmax", [&] { s.segment_softmax(escores, seg, n); }},
      {"matmul", [&] { s.matmul(x, w); }},
  };

  std::vector<KernelResult> results;
  for (const Op& op : ops) {
    KernelResult kr;
    kr.name = op.name;
    for (util::SimdLevel lvl : levels) {
      util::set_simd_level(lvl);
      s.begin();
      op.run();  // warm-up: workspace slot + code paths
      kr.seconds[static_cast<int>(lvl)] = median_seconds(reps, [&] {
                                            for (int i = 0; i < iters; ++i) {
                                              s.begin();
                                              op.run();
                                            }
                                          }) /
                                          iters;
    }
    util::log_info(kr.name, ": scalar=", kr.seconds[0] * 1e6,
                   "us best_speedup=", kr.best_speedup());
    results.push_back(std::move(kr));
  }

  // ---------------------------------------------------------------------
  // End-to-end: the fast-path inference sweep (featurize once, predict a
  // DSE-chunk-sized batch) per dispatch level, default thread pool.
  // ---------------------------------------------------------------------
  util::set_parallel_threads(0);
  const kir::Kernel mvt = kernels::make_kernel("mvt");
  const int batch = util::by_scale(128, 512, 2048);
  model::SampleFactory factory;
  util::Rng grng(17);
  const auto& space = factory.space(mvt);
  std::vector<gnn::GraphData> graphs;
  graphs.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i)
    graphs.push_back(factory.featurize(mvt, space.sample(grng)));
  std::vector<const gnn::GraphData*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  model::ModelOptions mo;
  mo.kind = model::ModelKind::kM7Full;
  mo.hidden = 64;
  mo.out_dim = 4;
  util::Rng mrng(11);
  model::PredictiveModel model(mo, mrng);
  model::Trainer trainer(model, model::TrainOptions{});

  double e2e[3] = {0.0, 0.0, 0.0};
  for (util::SimdLevel lvl : levels) {
    util::set_simd_level(lvl);
    trainer.predict_graphs(ptrs);  // warm-up
    e2e[static_cast<int>(lvl)] =
        median_seconds(reps, [&] { trainer.predict_graphs(ptrs); });
    util::log_info("predict_batch ", util::simd_level_name(lvl), ": ",
                   e2e[static_cast<int>(lvl)], "s for ", batch, " configs");
  }
  util::set_simd_level(util::detect_simd_level());

  // ---------------------------------------------------------------------
  // Emit BENCH_simd.json + console table.
  // ---------------------------------------------------------------------
  std::ofstream out("BENCH_simd.json");
  out << "{\n  \"detected_level\": \""
      << util::simd_level_name(util::detect_simd_level()) << "\",\n";
  out << "  \"kernels\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& kr = results[i];
    out << "    \"" << kr.name << "\": {\n"
        << "      \"scalar_us\": " << kr.seconds[0] * 1e6 << ",\n"
        << "      \"avx2_us\": " << kr.seconds[1] * 1e6 << ",\n"
        << "      \"avx512_us\": " << kr.seconds[2] * 1e6 << ",\n"
        << "      \"speedup_avx2\": " << kr.speedup(util::SimdLevel::kAvx2)
        << ",\n"
        << "      \"speedup_best\": " << kr.best_speedup() << "\n"
        << "    }" << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  },\n";
  out << "  \"predict_batch\": {\n"
      << "    \"configs\": " << batch << ",\n"
      << "    \"scalar_seconds\": " << e2e[0] << ",\n"
      << "    \"avx2_seconds\": " << e2e[1] << ",\n"
      << "    \"avx512_seconds\": " << e2e[2] << ",\n"
      << "    \"speedup_best\": "
      << (std::min(e2e[1] > 0 ? e2e[1] : 1e300, e2e[2] > 0 ? e2e[2] : 1e300) >
                  0 &&
              e2e[0] > 0
              ? e2e[0] / std::min(e2e[1] > 0 ? e2e[1] : 1e300,
                                  e2e[2] > 0 ? e2e[2] : 1e300)
              : 0.0)
      << "\n  }\n}\n";

  util::Table table("SIMD kernel dispatch (scalar vs vector)");
  table.header({"kernel", "scalar us", "avx2 us", "avx512 us", "best x"});
  for (const KernelResult& kr : results)
    table.row({kr.name, util::Table::fmt(kr.seconds[0] * 1e6, 2),
               util::Table::fmt(kr.seconds[1] * 1e6, 2),
               util::Table::fmt(kr.seconds[2] * 1e6, 2),
               util::Table::fmt(kr.best_speedup(), 2)});
  table.print(std::cout);
  std::cout << "wrote BENCH_simd.json\n";
  return 0;
}
