// Fig 5: node-attention scores for a design of the stencil kernel.
//
// The paper's qualitative claim: pragma nodes are among the most important
// nodes for the graph-level embedding, modulated by loop context (the icmp
// trip-count comparison and the i32 bound feeding it). We print the
// top-attention nodes and the attention mass captured by pragma nodes
// (pragma nodes are ~7 of ~45 nodes; uniform attention would give them
// ~15% of the mass).
#include <cstdio>
#include <iostream>

#include "analysis/attention.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace gnndse;

int main() {
  auto session = bench::make_report_session("bench_fig5_attention");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  db::Database database = bench::make_initial_database(oracle);
  model::SampleFactory factory;
  dse::PipelineOptions po = bench::scaled_pipeline_options();
  dse::TrainedModels models(database, kernels, factory, po,
                            bench::bundle_cache_prefix());

  const kir::Kernel stencil = kernels::make_kernel("stencil");
  // A mid-quality design: pipeline + moderate parallelization.
  auto best = database.best_valid("stencil");
  hlssim::DesignConfig cfg =
      best ? best->config : hlssim::DesignConfig::neutral(stencil);

  auto scores = analysis::attention_scores(models.main_model(), factory,
                                           stencil, cfg);
  util::Table t{"Fig 5: node attention scores, stencil design " + cfg.key()};
  t.header({"Rank", "Node", "Type", "Attention"});
  const char* type_names[] = {"instruction", "variable", "constant", "pragma"};
  for (std::size_t i = 0; i < scores.size() && i < 15; ++i) {
    t.row({util::Table::fmt_int(static_cast<long long>(i + 1)),
           scores[i].description,
           type_names[static_cast<int>(scores[i].type)],
           util::Table::fmt(scores[i].score, 4)});
  }
  t.print(std::cout);

  const double share = analysis::pragma_attention_share(scores);
  std::size_t pragma_nodes = 0;
  for (const auto& s : scores)
    if (s.type == graphgen::NodeType::kPragma) ++pragma_nodes;
  const double uniform_share =
      static_cast<double>(pragma_nodes) / static_cast<double>(scores.size());
  std::printf(
      "\npragma nodes hold %.1f%% of attention mass (%zu of %zu nodes; "
      "uniform would be %.1f%%) -> %s\n",
      100.0 * share, pragma_nodes, scores.size(), 100.0 * uniform_share,
      share > uniform_share ? "pragma nodes are over-attended, as in Fig 5"
                            : "no pragma over-attention at this scale");
  std::printf("[bench_fig5_attention] completed in %.1fs (scale: %s)\n",
              session.seconds(), bench::scale_tag());
  return 0;
}
