// Shared setup for the experiment benches: deterministic initial database,
// scale-dependent pipeline options, and the weight cache location.
//
// Scales (see util/env.hpp): GNNDSE_FAST=1 for smoke runs, default for a
// laptop-friendly reproduction, GNNDSE_FULL=1 for the configuration closest
// to the paper.
#pragma once

#include <string>

#include "db/explorer.hpp"
#include "dse/pipeline.hpp"
#include "oracle/stack.hpp"
#include "kernels/kernels.hpp"
#include "obs/report.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace gnndse::bench {

/// Telemetry session shared by every bench binary: when GNNDSE_REPORT names
/// a path, metrics/span recording is enabled, the root `pipeline` span is
/// opened, and a JSON run report is written there on exit. The session also
/// serves as the binary's run stopwatch (session.seconds()), replacing the
/// bare util::Timer the benches used to carry.
inline obs::ReportSession make_report_session(const std::string& tool) {
  return obs::ReportSession(tool, util::env_str(obs::kReportEnvVar));
}

inline constexpr std::uint64_t kDbSeed = 42;

/// Deterministic initial database over the nine training kernels (§4.1,
/// Table 1 budgets). DSE rounds and fallback batches re-evaluate repeated
/// configs; the oracle's cache turns those into oracle.hits.
/// Microbenchmarks that time the evaluator itself should construct their
/// own raw hlssim::MerlinHls instead.
inline db::Database make_initial_database(oracle::Evaluator& oracle) {
  util::Rng rng(kDbSeed);
  return db::generate_initial_database(kernels::make_training_kernels(),
                                       oracle, rng);
}

/// Training scale for the shared (cached) model bundle.
inline dse::PipelineOptions scaled_pipeline_options() {
  dse::PipelineOptions po;
  po.main_epochs = util::by_scale(6, 30, 60);
  po.bram_epochs = util::by_scale(3, 12, 25);
  po.classifier_epochs = util::by_scale(3, 12, 25);
  po.hidden = util::by_scale<std::int64_t>(32, 64, 64);
  po.batch_size = 32;
  return po;
}

inline const char* scale_tag() {
  switch (util::run_scale()) {
    case util::RunScale::kFast:
      return "fast";
    case util::RunScale::kFull:
      return "full";
    case util::RunScale::kDefault:
      break;
  }
  return "default";
}

/// Weight-cache prefix shared by the benches that use the standard bundle.
inline std::string bundle_cache_prefix() {
  return std::string("gnndse_bundle_") + scale_tag();
}

}  // namespace gnndse::bench
