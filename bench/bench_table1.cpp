// Table 1: design space and database of the kernels used for training.
//
// Columns mirror the paper: #pragmas, #design configs (our pruned space,
// with the raw product alongside), initial database (#total/#valid), final
// database (#total/#valid) after the DSE augmentation round of §4.4.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "dse/dse.hpp"
#include "util/table.hpp"

using namespace gnndse;

int main() {
  auto session = bench::make_report_session("bench_table1");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();

  db::Database initial = bench::make_initial_database(oracle);

  // One round of model-driven DSE augments the database (top designs plus
  // their true objectives are committed back, §4.4).
  model::SampleFactory factory;
  dse::PipelineOptions po = bench::scaled_pipeline_options();
  dse::TrainedModels models(initial, kernels, factory, po,
                            bench::bundle_cache_prefix());
  dse::ModelDse dse(models.bundle(), models.normalizer(), factory);
  dse::DseOptions dopts;
  dopts.time_limit_seconds = util::by_scale(5.0, 20.0, 120.0);
  dopts.top_m = util::by_scale(5, 10, 10);
  util::Rng rng(7);

  db::Database final_db = initial;
  for (const auto& k : kernels) {
    dse::DseResult r = dse.run(k, dopts, rng);
    dse.evaluate_top(k, r, oracle, dopts.util_threshold, &final_db);
  }

  util::Table t{"Table 1: Design space and the database of the kernels used "
                "for training (ours vs. paper layout)"};
  t.header({"Kernel", "#pragmas", "#configs (pruned)", "#configs (raw)",
            "Initial DB (tot/valid)", "Final DB (tot/valid)"});
  std::uint64_t total_space = 0;
  std::size_t init_tot = 0, init_val = 0, fin_tot = 0, fin_val = 0;
  for (const auto& k : kernels) {
    dspace::DesignSpace space(k);
    const auto ic = initial.counts(k.name);
    const auto fc = final_db.counts(k.name);
    total_space += space.pruned_size();
    init_tot += ic.total;
    init_val += ic.valid;
    fin_tot += fc.total;
    fin_val += fc.valid;
    t.row({k.name, util::Table::fmt_int(k.num_pragma_sites()),
           util::Table::fmt_commas(static_cast<long long>(space.pruned_size())),
           util::Table::fmt_commas(static_cast<long long>(space.raw_size())),
           util::Table::fmt_int(static_cast<long long>(ic.total)) + " / " +
               util::Table::fmt_int(static_cast<long long>(ic.valid)),
           util::Table::fmt_int(static_cast<long long>(fc.total)) + " / " +
               util::Table::fmt_int(static_cast<long long>(fc.valid))});
  }
  t.row({"Total", "-",
         util::Table::fmt_commas(static_cast<long long>(total_space)), "-",
         util::Table::fmt_int(static_cast<long long>(init_tot)) + " / " +
             util::Table::fmt_int(static_cast<long long>(init_val)),
         util::Table::fmt_int(static_cast<long long>(fin_tot)) + " / " +
             util::Table::fmt_int(static_cast<long long>(fin_val))});
  t.print(std::cout);
  std::printf("\n[bench_table1] completed in %.1fs (scale: %s)\n",
              session.seconds(), bench::scale_tag());
  return 0;
}
