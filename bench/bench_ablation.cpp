// Ablations of the design decisions DESIGN.md §5 calls out (beyond the
// M1-M7 ladder of Table 2, which bench_table2 reproduces):
//
//   A1  separate BRAM regression model (§5.2.1) vs one joint 5-objective
//       model — the paper splits because BRAM correlates weakly with the
//       other objectives;
//   A2  TransformerConv's gated residual vs a plain skip connection
//       (§4.3.1 credits the gate with preventing over-smoothing);
//   A3  the §4.4 innermost-first pragma ordering vs naive declaration
//       order in the large-space heuristic DSE (equal time budget on mvt).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "dse/dse.hpp"
#include "model/trainer.hpp"
#include "util/table.hpp"

using namespace gnndse;

namespace {

model::RegressionMetrics train_and_eval(
    const model::ModelOptions& mo, const std::vector<int>& objectives,
    int epochs, const model::Dataset& ds,
    const std::vector<std::size_t>& train_idx,
    const std::vector<std::size_t>& test_idx) {
  util::Rng rng(19);
  model::ModelOptions opts = mo;
  opts.out_dim = static_cast<std::int64_t>(objectives.size());
  model::PredictiveModel m(opts, rng);
  model::TrainOptions to;
  to.objectives = objectives;
  to.epochs = epochs;
  model::Trainer tr(m, to);
  tr.fit(ds, train_idx);
  return model::eval_regression(tr, ds, test_idx);
}

}  // namespace

int main() {
  auto session = bench::make_report_session("bench_ablation");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  db::Database database = bench::make_initial_database(oracle);
  model::Normalizer norm = model::Normalizer::fit(database.points());
  model::SampleFactory factory;
  model::Dataset ds = model::build_dataset(database, kernels, norm, factory);
  util::Rng split_rng(7);
  auto [train_idx, test_idx] =
      model::Dataset::split(ds.valid_indices(), 0.8, split_rng);

  const int epochs = util::by_scale(5, 8, 40);
  model::ModelOptions mo;
  mo.hidden = util::by_scale<std::int64_t>(32, 64, 64);

  // ---- A1: joint 5-objective vs split 4+1 ---------------------------------
  auto joint = train_and_eval(
      mo, {model::kLatency, model::kDsp, model::kLut, model::kFf, model::kBram},
      epochs, ds, train_idx, test_idx);
  auto main4 = train_and_eval(
      mo, {model::kLatency, model::kDsp, model::kLut, model::kFf}, epochs, ds,
      train_idx, test_idx);
  auto bram1 = train_and_eval(mo, {model::kBram}, std::max(2, epochs / 2), ds,
                              train_idx, test_idx);
  auto split = model::combine(main4, bram1);

  util::Table a1{"A1: separate BRAM model (paper, §5.2.1) vs joint "
                 "5-objective regression (test RMSE)"};
  a1.header({"Variant", "Latency", "DSP", "LUT", "FF", "BRAM", "All"});
  auto row = [&](const char* name, const model::RegressionMetrics& m) {
    a1.row({name, util::Table::fmt(m.rmse[model::kLatency]),
            util::Table::fmt(m.rmse[model::kDsp]),
            util::Table::fmt(m.rmse[model::kLut]),
            util::Table::fmt(m.rmse[model::kFf]),
            util::Table::fmt(m.rmse[model::kBram]),
            util::Table::fmt(m.rmse_sum)});
  };
  row("joint 5-objective", joint);
  row("split 4 + BRAM (paper)", split);
  a1.print(std::cout);
  std::fflush(stdout);

  // ---- A2: gated residual vs plain skip -----------------------------------
  model::ModelOptions plain = mo;
  plain.tconv_gated_residual = false;
  auto gated = train_and_eval(
      mo, {model::kLatency, model::kDsp, model::kLut, model::kFf}, epochs, ds,
      train_idx, test_idx);
  auto ungated = train_and_eval(
      plain, {model::kLatency, model::kDsp, model::kLut, model::kFf}, epochs,
      ds, train_idx, test_idx);
  util::Table a2{"A2: TransformerConv gated residual (paper, §4.3.1) vs "
                 "plain skip (test RMSE)"};
  a2.header({"Variant", "Latency", "All"});
  a2.row({"gated residual (paper)",
          util::Table::fmt(gated.rmse[model::kLatency]),
          util::Table::fmt(gated.rmse_sum)});
  a2.row({"plain skip", util::Table::fmt(ungated.rmse[model::kLatency]),
          util::Table::fmt(ungated.rmse_sum)});
  a2.print(std::cout);
  std::fflush(stdout);

  // ---- A3: §4.4 pragma ordering vs naive order on mvt ----------------------
  dse::PipelineOptions po = bench::scaled_pipeline_options();
  dse::TrainedModels models(database, kernels, factory, po,
                            bench::bundle_cache_prefix());
  dse::ModelDse model_dse(models.bundle(), models.normalizer(), factory);
  kir::Kernel mvt = kernels::make_kernel("mvt");
  dse::DseOptions dopts;
  dopts.max_exhaustive = 1000;  // force the heuristic path
  dopts.time_limit_seconds = util::by_scale(3.0, 15.0, 60.0);

  util::Table a3{"A3: heuristic DSE site ordering on mvt (equal time "
                 "budget; best design after HLS verification)"};
  a3.header({"Ordering", "#Explored", "Best cycles", "vs neutral"});
  const double neutral =
      oracle.evaluate(mvt, hlssim::DesignConfig::neutral(mvt)).cycles;
  for (bool priority : {true, false}) {
    dopts.use_priority_order = priority;
    util::Rng rng(23);
    dse::DseResult r = model_dse.run(mvt, dopts, rng);
    auto ev = model_dse.evaluate_top(mvt, r, oracle);
    const double best =
        ev.best ? ev.best->result.cycles
                : std::numeric_limits<double>::infinity();
    a3.row({priority ? "innermost-first (paper §4.4)" : "declaration order",
            util::Table::fmt_commas(static_cast<long long>(r.num_explored)),
            util::Table::fmt(best, 0),
            util::Table::fmt(neutral / best, 1) + "x"});
  }
  a3.print(std::cout);

  std::printf("\n[bench_ablation] completed in %.1fs (scale: %s)\n",
              session.seconds(), bench::scale_tag());
  return 0;
}
