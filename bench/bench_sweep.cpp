// Serial vs pipelined sweep engine on the DSE workload: the same atax
// exhaustive sweep bench_fastpath times, run once with the stages
// back-to-back (DseOptions::pipeline = false) and once with the
// producer/consumer engine overlapping featurize, multi-head predict, and
// frontier rank. Writes BENCH_sweep.json with the throughput comparison
// and the pipelined run's per-stage breakdown + overlap ratio.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dse/dse.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gnndse;

namespace {

/// Medians a few repetitions to keep the JSON stable on noisy machines.
template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  auto session = bench::make_report_session("bench_sweep");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  db::Database database = bench::make_initial_database(oracle);
  model::SampleFactory factory;
  dse::PipelineOptions po = bench::scaled_pipeline_options();
  dse::TrainedModels models(database, kernels, factory, po,
                            bench::bundle_cache_prefix());
  dse::ModelDse dse(models.bundle(), models.normalizer(), factory);

  dse::DseOptions dopts;
  dopts.max_exhaustive = 8'000;
  dopts.time_limit_seconds = 1e9;  // sweep-bound, not time-bound
  const kir::Kernel sweep_kernel = kernels::make_kernel("atax");
  const int reps = util::by_scale(3, 5, 7);
  std::uint64_t configs = 0;
  double serial_seconds = 0.0, pipelined_seconds = 0.0;
  dse::SweepStageStats stages;  // from the last pipelined run

  for (bool pipelined : {false, true}) {
    dopts.pipeline = pipelined;
    {  // warm-up (templates, batch slots, workspaces, engine thread)
      util::Rng wrng(23);
      dse.run(sweep_kernel, dopts, wrng);
    }
    const double secs = median_seconds(reps, [&] {
      util::Rng drng(23);
      dse::DseResult r = dse.run(sweep_kernel, dopts, drng);
      configs = r.num_explored;
      if (pipelined) stages = r.stages;
    });
    (pipelined ? pipelined_seconds : serial_seconds) = secs;
    util::log_info("dse_sweep pipelined=", pipelined, " sec=", secs,
                   " configs=", configs);
  }

  const double units = static_cast<double>(configs);
  const double serial_per_sec =
      serial_seconds > 0.0 ? units / serial_seconds : 0.0;
  const double pipelined_per_sec =
      pipelined_seconds > 0.0 ? units / pipelined_seconds : 0.0;
  const double speedup =
      pipelined_seconds > 0.0 ? serial_seconds / pipelined_seconds : 0.0;

  std::ofstream out("BENCH_sweep.json");
  out << "{\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"dse_sweep\": {\n"
      << "    \"configs_per_sweep\": " << configs << ",\n"
      << "    \"serial_seconds\": " << serial_seconds << ",\n"
      << "    \"pipelined_seconds\": " << pipelined_seconds << ",\n"
      << "    \"serial_configs_per_sec\": " << serial_per_sec << ",\n"
      << "    \"pipelined_configs_per_sec\": " << pipelined_per_sec << ",\n"
      << "    \"speedup\": " << speedup << "\n"
      << "  },\n"
      << "  \"pipelined_stages\": {\n"
      << "    \"featurize_ms\": " << stages.featurize_ms << ",\n"
      << "    \"predict_ms\": " << stages.predict_ms << ",\n"
      << "    \"rank_ms\": " << stages.rank_ms << ",\n"
      << "    \"wall_ms\": " << stages.wall_ms << ",\n"
      << "    \"overlap_ratio\": " << stages.overlap_ratio << ",\n"
      << "    \"chunks\": " << stages.chunks << "\n"
      << "  }\n"
      << "}\n";

  util::Table table("Serial vs pipelined sweep");
  table.header({"engine", "seconds", "cfg/s", "speedup"});
  table.row({"serial", util::Table::fmt(serial_seconds, 4),
             util::Table::fmt(serial_per_sec, 1), "1.00"});
  table.row({"pipelined", util::Table::fmt(pipelined_seconds, 4),
             util::Table::fmt(pipelined_per_sec, 1),
             util::Table::fmt(speedup, 2)});
  table.print(std::cout);
  std::cout << "stage breakdown (pipelined): featurize "
            << util::Table::fmt(stages.featurize_ms, 1) << " ms, predict "
            << util::Table::fmt(stages.predict_ms, 1) << " ms, rank "
            << util::Table::fmt(stages.rank_ms, 1) << " ms, wall "
            << util::Table::fmt(stages.wall_ms, 1) << " ms, overlap "
            << util::Table::fmt(stages.overlap_ratio, 2) << "\n";
  std::cout << "wrote BENCH_sweep.json\n";
  return 0;
}
