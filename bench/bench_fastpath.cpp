// Tape vs tape-free inference: the fast path's configs/sec on the DSE
// workload against the legacy per-head tape path (DseOptions::use_fast_path
// = false), plus the raw batched-inference comparison. Writes
// BENCH_fastpath.json; the PR gate expects >= 2x on the DSE sweep.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "dse/dse.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gnndse;

namespace {

/// Medians a few repetitions to keep the JSON stable on noisy machines.
template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct Comparison {
  double tape_seconds = 0.0;
  double fast_seconds = 0.0;
  double tape_per_sec = 0.0;
  double fast_per_sec = 0.0;
  double speedup = 0.0;

  void finish(double units) {
    tape_per_sec = tape_seconds > 0.0 ? units / tape_seconds : 0.0;
    fast_per_sec = fast_seconds > 0.0 ? units / fast_seconds : 0.0;
    speedup = fast_seconds > 0.0 ? tape_seconds / fast_seconds : 0.0;
  }
};

void emit(std::ofstream& out, const char* name, const Comparison& c,
          double units, const char* unit_name, bool last) {
  out << "  \"" << name << "\": {\n"
      << "    \"" << unit_name << "\": " << units << ",\n"
      << "    \"tape_seconds\": " << c.tape_seconds << ",\n"
      << "    \"fast_seconds\": " << c.fast_seconds << ",\n"
      << "    \"tape_configs_per_sec\": " << c.tape_per_sec << ",\n"
      << "    \"fast_configs_per_sec\": " << c.fast_per_sec << ",\n"
      << "    \"speedup\": " << c.speedup << "\n"
      << "  }" << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  auto session = bench::make_report_session("bench_fastpath");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  db::Database database = bench::make_initial_database(oracle);
  model::SampleFactory factory;
  dse::PipelineOptions po = bench::scaled_pipeline_options();
  dse::TrainedModels models(database, kernels, factory, po,
                            bench::bundle_cache_prefix());
  model::Trainer* trainer = models.bundle().regression_main;

  // Raw batched inference: one chunk-shaped predict over featurized graphs,
  // tape vs tape-free, same inputs.
  const kir::Kernel mvt = kernels::make_kernel("mvt");
  const int batch = util::by_scale(256, 1024, 4096);
  const int reps = util::by_scale(3, 5, 7);
  util::Rng rng(17);
  const auto& space = factory.space(mvt);
  std::vector<gnn::GraphData> graphs;
  graphs.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i)
    graphs.push_back(factory.featurize(mvt, space.sample(rng)));
  std::vector<const gnn::GraphData*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  Comparison inference;
  trainer->predict_graphs(ptrs);  // warm-up (pool, template, workspace)
  inference.fast_seconds =
      median_seconds(reps, [&] { trainer->predict_graphs(ptrs); });
  trainer->predict_graphs_tape(ptrs);
  inference.tape_seconds =
      median_seconds(reps, [&] { trainer->predict_graphs_tape(ptrs); });
  inference.finish(batch);
  util::log_info("inference tape=", inference.tape_seconds,
                 "s fast=", inference.fast_seconds, "s");

  // Full DSE sweep (featurize + 3-head predict + rank) over atax's pruned
  // space — the use_fast_path toggle flips only the scoring path, so the
  // two runs do identical search work.
  dse::ModelDse dse(models.bundle(), models.normalizer(), factory);
  dse::DseOptions dopts;
  dopts.max_exhaustive = 8'000;
  dopts.time_limit_seconds = 1e9;  // sweep-bound, not time-bound
  const kir::Kernel sweep_kernel = kernels::make_kernel("atax");
  const int dse_reps = reps;  // medians need >1 rep even in FAST mode
  std::uint64_t dse_configs = 0;

  Comparison sweep;
  for (bool fast : {true, false}) {
    dopts.use_fast_path = fast;
    {  // warm-up (templates, skeletons, workspaces)
      util::Rng wrng(23);
      dse.run(sweep_kernel, dopts, wrng);
    }
    const double secs = median_seconds(dse_reps, [&] {
      util::Rng drng(23);
      dse_configs = dse.run(sweep_kernel, dopts, drng).num_explored;
    });
    (fast ? sweep.fast_seconds : sweep.tape_seconds) = secs;
    util::log_info("dse_sweep fast_path=", fast, " sec=", secs,
                   " configs=", dse_configs);
  }
  sweep.finish(static_cast<double>(dse_configs));

  std::ofstream out("BENCH_fastpath.json");
  out << "{\n";
  emit(out, "inference", inference, batch, "batch", false);
  emit(out, "dse_sweep", sweep, static_cast<double>(dse_configs),
       "configs_per_sweep", true);
  out << "}\n";

  util::Table table("Tape vs fast-path inference");
  table.header({"stage", "tape s", "fast s", "tape cfg/s", "fast cfg/s",
                "speedup"});
  table.row({"inference", util::Table::fmt(inference.tape_seconds, 4),
             util::Table::fmt(inference.fast_seconds, 4),
             util::Table::fmt(inference.tape_per_sec, 1),
             util::Table::fmt(inference.fast_per_sec, 1),
             util::Table::fmt(inference.speedup, 2)});
  table.row({"dse_sweep", util::Table::fmt(sweep.tape_seconds, 4),
             util::Table::fmt(sweep.fast_seconds, 4),
             util::Table::fmt(sweep.tape_per_sec, 1),
             util::Table::fmt(sweep.fast_per_sec, 1),
             util::Table::fmt(sweep.speedup, 2)});
  table.print(std::cout);
  std::cout << "wrote BENCH_fastpath.json\n";
  return 0;
}
