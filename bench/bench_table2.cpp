// Table 2: model ablation on the test set of the database.
//
// For each variant M1..M7: RMSE per regression objective (latency / DSP /
// LUT / FF from the main model, BRAM from the separate model, "All" = sum)
// plus accuracy and F1 of the validity classifier. 80/20 train/test split,
// Adam at lr 1e-3, as in §5.1. GNNDSE_FULL additionally reports 3-fold
// cross-validated training metrics.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "model/trainer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gnndse;
using model::ModelKind;

namespace {

struct Row {
  model::RegressionMetrics reg;
  model::ClassificationMetrics cls;
};

Row run_variant(ModelKind kind, const model::Dataset& ds,
                const std::vector<std::size_t>& reg_train,
                const std::vector<std::size_t>& reg_test,
                const std::vector<std::size_t>& cls_train,
                const std::vector<std::size_t>& cls_test) {
  const int main_epochs = util::env_int(
      "GNNDSE_TABLE2_EPOCHS", util::by_scale(4, 6, 50));
  const int aux_epochs = std::max(2, main_epochs / 2);
  const std::int64_t hidden = util::by_scale<std::int64_t>(32, 64, 64);

  Row row;
  util::Rng rng(11);

  model::ModelOptions mo;
  mo.kind = kind;
  mo.hidden = hidden;

  {  // main regression: latency/DSP/LUT/FF
    mo.out_dim = 4;
    model::PredictiveModel m(mo, rng);
    model::TrainOptions to;
    to.objectives = {model::kLatency, model::kDsp, model::kLut, model::kFf};
    to.epochs = main_epochs;
    model::Trainer tr(m, to);
    tr.fit(ds, reg_train);
    row.reg = model::eval_regression(tr, ds, reg_test);
  }
  {  // BRAM regression (separate model, §5.2.1)
    mo.out_dim = 1;
    model::PredictiveModel m(mo, rng);
    model::TrainOptions to;
    to.objectives = {model::kBram};
    to.epochs = aux_epochs;
    model::Trainer tr(m, to);
    tr.fit(ds, reg_train);
    row.reg = model::combine(row.reg, model::eval_regression(tr, ds, reg_test));
  }
  {  // validity classifier
    mo.out_dim = 1;
    model::PredictiveModel m(mo, rng);
    model::TrainOptions to;
    to.task = model::Task::kClassification;
    to.epochs = aux_epochs;
    to.lr = 3e-3f;  // imbalanced classes: see PipelineOptions::cls_lr
    model::Trainer tr(m, to);
    tr.fit(ds, cls_train);
    row.cls = model::eval_classification(tr, ds, cls_test);
  }
  return row;
}

}  // namespace

int main() {
  auto session = bench::make_report_session("bench_table2");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  db::Database database = bench::make_initial_database(oracle);
  model::Normalizer norm = model::Normalizer::fit(database.points());
  model::SampleFactory factory;
  model::Dataset ds = model::build_dataset(database, kernels, norm, factory);

  util::Rng split_rng(7);
  auto [reg_train, reg_test] =
      model::Dataset::split(ds.valid_indices(), 0.8, split_rng);
  auto [cls_train, cls_test] =
      model::Dataset::split(ds.all_indices(), 0.8, split_rng);
  std::printf(
      "dataset: %zu samples; regression %zu/%zu, classification %zu/%zu\n",
      ds.samples.size(), reg_train.size(), reg_test.size(), cls_train.size(),
      cls_test.size());

  const std::vector<std::pair<std::string, ModelKind>> variants = {
      {"M1", ModelKind::kM1MlpPragma},  {"M2", ModelKind::kM2MlpContext},
      {"M3", ModelKind::kM3Gcn},        {"M4", ModelKind::kM4Gat},
      {"M5", ModelKind::kM5Tconv},      {"M6", ModelKind::kM6TconvJkn},
      {"M7", ModelKind::kM7Full}};

  util::Table t{
      "Table 2: Model evaluation on the test set (RMSE for regression; "
      "accuracy/F1 for classification)"};
  t.header({"Model", "Method", "Latency", "DSP", "LUT", "FF", "BRAM", "All",
            "Accuracy", "F1-score"});
  for (const auto& [tag, kind] : variants) {
    util::Timer vt;
    Row row = run_variant(kind, ds, reg_train, reg_test, cls_train, cls_test);
    t.row({tag, model::to_string(kind),
           util::Table::fmt(row.reg.rmse[model::kLatency]),
           util::Table::fmt(row.reg.rmse[model::kDsp]),
           util::Table::fmt(row.reg.rmse[model::kLut]),
           util::Table::fmt(row.reg.rmse[model::kFf]),
           util::Table::fmt(row.reg.rmse[model::kBram]),
           util::Table::fmt(row.reg.rmse_sum),
           util::Table::fmt(row.cls.accuracy, 2),
           util::Table::fmt(row.cls.f1, 2)});
    std::printf("[%s done in %.0fs]\n", tag.c_str(), vt.seconds());
    std::fflush(stdout);
  }
  t.print(std::cout);
  t.write_csv("table2.csv");
  std::printf("\n[bench_table2] completed in %.1fs (scale: %s)\n",
              session.seconds(), bench::scale_tag());
  return 0;
}
