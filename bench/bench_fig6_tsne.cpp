// Fig 6: t-SNE visualization of stencil design configurations — initial
// embeddings (sum of initial node features) vs the embeddings learned by
// the GNN-DSE encoder, colored by latency.
//
// A 2-D scatter cannot be printed meaningfully, so this bench (a) writes
// both embeddings with latency labels to CSV for plotting, and (b) reports
// a quantitative proxy of the figure's message: the mean latency spread
// among each point's nearest 2-D neighbors, normalized by the global
// spread. The paper's claim — "only designs with similar latency cluster
// together" after the encoder — shows up as a much smaller spread for the
// learned embeddings.
#include <cstdio>
#include <iostream>

#include "analysis/tsne.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace gnndse;

int main() {
  auto session = bench::make_report_session("bench_fig6_tsne");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  db::Database database = bench::make_initial_database(oracle);
  model::SampleFactory factory;
  dse::PipelineOptions po = bench::scaled_pipeline_options();
  dse::TrainedModels models(database, kernels, factory, po,
                            bench::bundle_cache_prefix());

  // All valid stencil designs in the database, as in the figure.
  model::Normalizer norm = models.normalizer();
  const kir::Kernel stencil = kernels::make_kernel("stencil");
  std::vector<gnn::GraphData> graphs;
  std::vector<float> latency_label;
  for (const auto& p : database.points()) {
    if (p.kernel != "stencil" || !p.result.valid) continue;
    graphs.push_back(factory.featurize(stencil, p.config));
    latency_label.push_back(norm.latency_target(p.result.cycles));
  }
  const std::size_t cap = util::by_scale<std::size_t>(120, 400, 1200);
  if (graphs.size() > cap) {
    graphs.resize(cap);
    latency_label.resize(cap);
  }
  std::printf("stencil designs: %zu\n", graphs.size());

  std::vector<const gnn::GraphData*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  // (a) initial embeddings: sum of the 124-d initial node features.
  tensor::Tensor initial_emb(
      {static_cast<std::int64_t>(graphs.size()), graphs[0].x.cols()});
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto& x = graphs[i].x;
    for (std::int64_t r = 0; r < x.rows(); ++r)
      for (std::int64_t c = 0; c < x.cols(); ++c)
        initial_emb.at(static_cast<std::int64_t>(i), c) += x.at(r, c);
  }
  // (b) embeddings learned by the GNN-DSE encoder.
  tensor::Tensor learned_emb = models.main_trainer().embed_graphs(ptrs);

  analysis::TsneOptions topts;
  topts.iterations = util::by_scale(150, 400, 800);
  tensor::Tensor y_initial = analysis::tsne(initial_emb, topts);
  tensor::Tensor y_learned = analysis::tsne(learned_emb, topts);

  const double spread_initial =
      analysis::neighborhood_label_spread(y_initial, latency_label);
  const double spread_learned =
      analysis::neighborhood_label_spread(y_learned, latency_label);

  util::Table t{"Fig 6: t-SNE of stencil design embeddings, colored by "
                "latency (neighborhood latency spread, lower = tighter "
                "clustering by latency)"};
  t.header({"Embedding", "Neighborhood latency spread"});
  t.row({"(a) initial (sum of node features)",
         util::Table::fmt(spread_initial, 4)});
  t.row({"(b) learned by GNN-DSE encoder",
         util::Table::fmt(spread_learned, 4)});
  t.print(std::cout);

  // CSV for external plotting: x, y, latency label, which embedding.
  util::Table csv;
  csv.header({"embedding", "x", "y", "latency_target"});
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto r = static_cast<std::int64_t>(i);
    csv.row({"initial", util::Table::fmt(y_initial.at(r, 0), 4),
             util::Table::fmt(y_initial.at(r, 1), 4),
             util::Table::fmt(latency_label[i], 4)});
    csv.row({"learned", util::Table::fmt(y_learned.at(r, 0), 4),
             util::Table::fmt(y_learned.at(r, 1), 4),
             util::Table::fmt(latency_label[i], 4)});
  }
  csv.write_csv("fig6_tsne.csv");

  std::printf(
      "\nlearned/initial spread ratio: %.2f (<1 reproduces Fig 6's "
      "clustering-by-latency)\nscatter data written to fig6_tsne.csv\n",
      spread_learned / std::max(1e-9, spread_initial));
  std::printf("[bench_fig6_tsne] completed in %.1fs (scale: %s)\n",
              session.seconds(), bench::scale_tag());
  return 0;
}
