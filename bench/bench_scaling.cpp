// Thread-scaling sweep of the parallel execution layer: batched model
// inference (predict_graphs over a DSE-sized batch) and a full model-driven
// DSE sweep, each at GNNDSE_THREADS in {1, 2, 4, 8}. Writes
// BENCH_parallel.json (per-point throughput + speedup vs 1 thread) to seed
// the perf trajectory; run on a multi-core machine for meaningful speedups.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dse/dse.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gnndse;

namespace {

constexpr int kThreadPoints[] = {1, 2, 4, 8};

struct ScalePoint {
  int threads = 0;
  double seconds = 0.0;
  double throughput = 0.0;  // units per second (configs or sweeps)
  double speedup = 1.0;     // vs the 1-thread point
};

/// Medians a few repetitions to keep the JSON stable on noisy machines.
template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void finish(std::vector<ScalePoint>& points) {
  for (auto& p : points)
    if (points.front().seconds > 0.0 && p.seconds > 0.0)
      p.speedup = points.front().seconds / p.seconds;
}

void write_json(const std::string& path, const std::vector<ScalePoint>& inf,
                double batch, const std::vector<ScalePoint>& dse,
                std::uint64_t dse_configs) {
  std::ofstream out(path);
  out << "{\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  auto emit = [&out](const char* name, const std::vector<ScalePoint>& pts,
                     const char* unit) {
    out << "  \"" << name << "\": [\n";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const ScalePoint& p = pts[i];
      out << "    {\"threads\": " << p.threads << ", \"seconds\": " << p.seconds
          << ", \"" << unit << "\": " << p.throughput
          << ", \"speedup_vs_1t\": " << p.speedup << "}"
          << (i + 1 < pts.size() ? "," : "") << "\n";
    }
    out << "  ]";
  };
  out << "  \"inference_batch\": " << batch << ",\n";
  out << "  \"dse_configs_per_sweep\": " << dse_configs << ",\n";
  emit("inference", inf, "configs_per_sec");
  out << ",\n";
  emit("dse_sweep", dse, "configs_per_sec");
  out << "\n}\n";
}

}  // namespace

int main() {
  auto session = bench::make_report_session("bench_scaling");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  db::Database database = bench::make_initial_database(oracle);
  model::SampleFactory factory;
  dse::PipelineOptions po = bench::scaled_pipeline_options();
  dse::TrainedModels models(database, kernels, factory, po,
                            bench::bundle_cache_prefix());
  model::Trainer* trainer = models.bundle().regression_main;

  // Batched inference: one predict_graphs call over a DSE-chunk-sized
  // multiple (the dse.cpp inner loop drives exactly this shape).
  const kir::Kernel mvt = kernels::make_kernel("mvt");
  const int batch = util::by_scale(256, 1024, 4096);
  const int reps = util::by_scale(3, 5, 7);
  util::Rng rng(17);
  const auto& space = factory.space(mvt);
  std::vector<gnn::GraphData> graphs;
  graphs.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i)
    graphs.push_back(factory.featurize(mvt, space.sample(rng)));
  std::vector<const gnn::GraphData*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  std::vector<ScalePoint> inference;
  for (int threads : kThreadPoints) {
    util::set_parallel_threads(threads);
    trainer->predict_graphs(ptrs);  // warm-up (pool spin-up, caches)
    ScalePoint p;
    p.threads = threads;
    p.seconds = median_seconds(reps, [&] { trainer->predict_graphs(ptrs); });
    p.throughput = p.seconds > 0.0 ? batch / p.seconds : 0.0;
    inference.push_back(p);
    util::log_info("inference threads=", threads, " sec=", p.seconds);
  }
  finish(inference);

  // DSE sweep: featurize + predict + rank, exhaustively over atax's
  // 2,100-config pruned space so every thread count does identical,
  // bounded work.
  dse::ModelDse dse(models.bundle(), models.normalizer(), factory);
  dse::DseOptions dopts;
  dopts.max_exhaustive = 8'000;
  dopts.time_limit_seconds = 1e9;  // sweep-bound, not time-bound
  const kir::Kernel sweep_kernel = kernels::make_kernel("atax");
  std::vector<ScalePoint> dse_points;
  std::uint64_t dse_configs = 0;
  for (int threads : kThreadPoints) {
    util::set_parallel_threads(threads);
    ScalePoint p;
    p.threads = threads;
    p.seconds = median_seconds(std::max(1, reps / 2), [&] {
      util::Rng drng(23);
      dse_configs = dse.run(sweep_kernel, dopts, drng).num_explored;
    });
    p.throughput =
        p.seconds > 0.0 ? static_cast<double>(dse_configs) / p.seconds : 0.0;
    dse_points.push_back(p);
    util::log_info("dse threads=", threads, " sec=", p.seconds,
                   " configs=", dse_configs);
  }
  finish(dse_points);
  util::set_parallel_threads(0);  // back to the GNNDSE_THREADS default

  write_json("BENCH_parallel.json", inference, batch, dse_points, dse_configs);

  util::Table table("Thread scaling (GNNDSE_THREADS sweep)");
  table.header({"stage", "threads", "seconds", "units/sec", "speedup"});
  for (const auto& p : inference)
    table.row({"inference", std::to_string(p.threads),
               util::Table::fmt(p.seconds, 4), util::Table::fmt(p.throughput, 1),
               util::Table::fmt(p.speedup, 2)});
  for (const auto& p : dse_points)
    table.row({"dse_sweep", std::to_string(p.threads),
               util::Table::fmt(p.seconds, 4), util::Table::fmt(p.throughput, 1),
               util::Table::fmt(p.speedup, 2)});
  table.print(std::cout);
  std::cout << "wrote BENCH_parallel.json\n";
  return 0;
}
