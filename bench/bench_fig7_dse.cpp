// Fig 7: GNN-DSE speedup over the best design in the initial database,
// across database-augmentation rounds (DSE1..DSE4).
//
// After each round the top designs (with their true HLS objectives) are
// added to the database and the models retrain (§4.4). The paper's series:
// DSE1 0.71x, DSE2 0.82x, DSE3 1.02x, DSE4 1.23x — early rounds can trail
// the database's best because the model mispredicts unexplored regions;
// round-over-round the averages improve past 1x.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace gnndse;

int main() {
  auto session = bench::make_report_session("bench_fig7_dse");
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  db::Database initial = bench::make_initial_database(oracle);

  dse::PipelineOptions po = bench::scaled_pipeline_options();
  // Round retraining is the dominant cost; trim it below the shared-bundle
  // scale but keep the same architecture.
  po.main_epochs = util::by_scale(4, 5, 40);
  po.bram_epochs = util::by_scale(2, 2, 15);
  po.classifier_epochs = util::by_scale(2, 2, 15);

  dse::DseOptions dopts;
  dopts.time_limit_seconds = util::by_scale(5.0, 8.0, 300.0);
  dopts.max_exhaustive = util::by_scale<std::uint64_t>(500, 1'000, 50'000);
  dopts.top_m = 10;

  const int rounds = util::by_scale(2, 4, 4);
  util::Rng rng(17);
  dse::RoundsOutcome outcome =
      dse::run_dse_rounds(initial, kernels, oracle, rounds, po, dopts, rng);

  util::Table t{"Fig 7: speedup vs best design in the initial database, per "
                "DSE round"};
  std::vector<std::string> header{"Kernel"};
  for (int r = 0; r < rounds; ++r) header.push_back("DSE" + std::to_string(r + 1));
  t.header(header);
  for (const auto& k : kernels) {
    std::vector<std::string> row{k.name};
    for (int r = 0; r < rounds; ++r)
      row.push_back(util::Table::fmt(outcome.speedups[static_cast<std::size_t>(r)].at(k.name), 2) + "x");
    t.row(row);
  }
  std::vector<std::string> avg{"Average"};
  for (int r = 0; r < rounds; ++r)
    avg.push_back(util::Table::fmt(outcome.average[static_cast<std::size_t>(r)], 2) + "x");
  t.row(avg);
  t.print(std::cout);
  t.write_csv("fig7_dse.csv");

  std::printf("\npaper averages: DSE1 0.71x, DSE2 0.82x, DSE3 1.02x, DSE4 "
              "1.23x (>=1x after 3 rounds)\n");
  std::printf("[bench_fig7_dse] completed in %.1fs (scale: %s)\n",
              session.seconds(), bench::scale_tag());
  return 0;
}
