// Quickstart: the GNN-DSE public API in one file.
//
//  1. Build a kernel (here: loaded from the benchmark suite).
//  2. Enumerate its pragma design space.
//  3. Evaluate design points with the HLS substrate.
//  4. Lower a design to the pragma-annotated program graph.
//  5. Train a small surrogate and predict a design's quality in
//     milliseconds instead of (simulated) minutes of synthesis.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "db/explorer.hpp"
#include "dse/pipeline.hpp"
#include "kernels/registry.hpp"
#include "oracle/stack.hpp"
#include "util/timer.hpp"

using namespace gnndse;

int main() {
  // -- 1. a kernel ----------------------------------------------------------
  // The registry resolves names and .json paths alike; every compiled
  // benchmark is pre-registered.
  kir::Kernel gemm = kernels::Registry::global().get("gemm-ncubed");
  std::printf("kernel %s: %zu loops, %d pragma sites\n", gemm.name.c_str(),
              gemm.loops.size(), gemm.num_pragma_sites());

  // -- 2. its design space --------------------------------------------------
  dspace::DesignSpace space(gemm);
  std::printf("design space: %llu configurations (%llu before pruning)\n",
              static_cast<unsigned long long>(space.pruned_size()),
              static_cast<unsigned long long>(space.raw_size()));

  // -- 3. evaluate two designs with the HLS substrate ------------------------
  oracle::OracleStack oracle;
  hlssim::DesignConfig neutral = hlssim::DesignConfig::neutral(gemm);
  hlssim::HlsResult base = oracle.evaluate(gemm, neutral);
  std::printf("no pragmas:    %.0f cycles (synthesis would take %.0fs)\n",
              base.cycles, base.synth_seconds);

  hlssim::DesignConfig tuned = neutral;
  tuned.loops[2].pipeline = hlssim::PipeMode::kFine;  // pipeline loop k
  tuned.loops[1].parallel = 4;                        // unroll loop j by 4
  hlssim::HlsResult opt = oracle.evaluate(gemm, tuned);
  std::printf("tuned pragmas: %.0f cycles, %.1fx faster, DSP util %.2f\n",
              opt.cycles, base.cycles / opt.cycles, opt.util_dsp);

  // -- 4. the graph representation -------------------------------------------
  graphgen::ProgramGraph graph = graphgen::build_graph(gemm, space);
  std::printf("program graph: %lld nodes, %lld edges, %zu pragma nodes\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()),
              graph.pragma_nodes.size());

  // -- 5. a small surrogate --------------------------------------------------
  util::Rng rng(1);
  db::Database database = db::generate_initial_database(
      {gemm}, oracle, rng, [](const std::string&) { return 250; });
  std::printf("training database: %zu points (%zu valid)\n",
              database.counts_total().total, database.counts_total().valid);

  model::SampleFactory factory;
  dse::PipelineOptions popts;
  popts.main_epochs = 8;
  popts.bram_epochs = 3;
  popts.classifier_epochs = 3;
  popts.hidden = 32;
  dse::TrainedModels models(database, {gemm}, factory, popts);

  util::Timer t;
  gnn::GraphData g = factory.featurize(gemm, tuned);
  tensor::Tensor pred = models.main_trainer().predict_graphs({&g});
  const double pred_cycles =
      models.normalizer().latency_from_target(pred.at(0, 0));
  std::printf(
      "surrogate: predicted %.0f cycles (true %.0f) in %.2f ms — vs %.0f s "
      "of synthesis\n",
      pred_cycles, opt.cycles, t.millis(), opt.synth_seconds);
  return 0;
}
