// Training the full GNN-DSE surrogate (Fig 4 architecture) and saving the
// weights for reuse — the "Trainer" mode of Fig 1(a).
//
// Reports the paper's §5.2 metrics on a held-out test set: RMSE per
// objective for the regression models and accuracy/F1 for the validity
// classifier; optionally runs 3-fold cross-validation (pass any argument).
//
// Build & run:  ./build/examples/train_surrogate [cv]
#include <cstdio>

#include "db/explorer.hpp"
#include "kernels/kernels.hpp"
#include "model/trainer.hpp"
#include "model/weights.hpp"
#include "oracle/stack.hpp"
#include "util/env.hpp"

using namespace gnndse;

int main(int argc, char**) {
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  util::Rng rng(42);
  db::Database database = db::generate_initial_database(kernels, oracle, rng);
  model::Normalizer norm = model::Normalizer::fit(database.points());
  model::SampleFactory factory;
  model::Dataset ds = model::build_dataset(database, kernels, norm, factory);
  std::printf("dataset: %zu samples (%zu valid)\n", ds.samples.size(),
              ds.valid_indices().size());

  const int epochs = util::by_scale(6, 20, 50);
  util::Rng split_rng(7);
  util::Rng model_rng(1);

  model::ModelOptions mo;  // M7: TransformerConv + JKN + node attention
  mo.out_dim = 4;
  model::PredictiveModel m7(mo, model_rng);
  std::printf("M7 model: %lld weights\n",
              static_cast<long long>(m7.num_weights()));

  model::TrainOptions to;
  to.epochs = epochs;
  to.verbose = true;

  if (argc > 1) {
    // 3-fold cross-validation (§5.1).
    auto folds = model::Dataset::folds(ds.valid_indices(), 3, split_rng);
    float sum_rmse = 0.0f;
    for (std::size_t f = 0; f < folds.size(); ++f) {
      std::vector<std::size_t> train;
      for (std::size_t g = 0; g < folds.size(); ++g)
        if (g != f) train.insert(train.end(), folds[g].begin(), folds[g].end());
      model::PredictiveModel m(mo, model_rng);
      model::Trainer tr(m, to);
      tr.fit(ds, train);
      auto metrics = model::eval_regression(tr, ds, folds[f]);
      std::printf("fold %zu: latency RMSE %.4f, All %.4f\n", f + 1,
                  metrics.rmse[model::kLatency], metrics.rmse_sum);
      sum_rmse += metrics.rmse_sum;
    }
    std::printf("3-fold mean All-RMSE: %.4f\n",
                sum_rmse / static_cast<float>(folds.size()));
    return 0;
  }

  auto [train_idx, test_idx] =
      model::Dataset::split(ds.valid_indices(), 0.8, split_rng);
  model::Trainer trainer(m7, to);
  trainer.fit(ds, train_idx);
  auto metrics = model::eval_regression(trainer, ds, test_idx);
  std::printf(
      "test RMSE: latency %.4f, DSP %.4f, LUT %.4f, FF %.4f (sum %.4f)\n",
      metrics.rmse[model::kLatency], metrics.rmse[model::kDsp],
      metrics.rmse[model::kLut], metrics.rmse[model::kFf], metrics.rmse_sum);

  model::save_params(m7.params(), "m7_regression.bin");
  std::printf("weights saved to m7_regression.bin\n");

  // Round-trip check.
  model::PredictiveModel reloaded(mo, model_rng);
  model::load_params(reloaded.params(), "m7_regression.bin");
  std::printf("weights reloaded OK\n");
  return 0;
}
