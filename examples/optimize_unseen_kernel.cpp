// Optimizing a kernel the model has never seen (the §5.4 scenario), with a
// *user-defined* kernel to show the API end to end: define your own loop
// nest with KernelBuilder, train GNN-DSE on the benchmark database, and let
// the model-driven DSE find a high-performance pragma configuration —
// then cross-check against the AutoDSE baseline that calls the (simulated)
// HLS tool for every candidate.
//
// Build & run:  ./build/examples/optimize_unseen_kernel
#include <cstdio>

#include "db/explorer.hpp"
#include "dse/dse.hpp"
#include "dse/pipeline.hpp"
#include "kernels/kernels.hpp"
#include "oracle/stack.hpp"
#include "util/env.hpp"

using namespace gnndse;

namespace {

// A Jacobi-style 1-D stencil the training database has never seen.
kir::Kernel make_jacobi1d() {
  kir::KernelBuilder b("jacobi-1d");
  const int a = b.add_array("A", 4000);
  const int out = b.add_array("B", 4000);

  const int t = b.begin_loop("t", 20);
  const int i = b.begin_loop("i", 3998, t);
  const int st = b.add_stmt(
      i, "stencil",
      kir::OpMix{.adds = 2, .muls = 1},
      {kir::ArrayAccess{a, false, kir::AccessKind::kSequential, i},
       kir::ArrayAccess{out, true, kir::AccessKind::kSequential, i}});
  // Each timestep consumes the previous one: the t loop is sequential.
  b.set_recurrence(st, t, 1, 6, /*associative=*/false);

  auto& lt = b.loop(t);
  lt.can_pipeline = true;
  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = kir::candidate_factors(3998);
  li.can_tile = true;
  li.tile_options = kir::candidate_factors(3998, 8, true);
  return b.build();
}

}  // namespace

int main() {
  oracle::OracleStack oracle;
  auto train_kernels = kernels::make_training_kernels();

  std::printf("== training GNN-DSE on the 9-kernel benchmark database ==\n");
  util::Rng db_rng(42);
  db::Database database =
      db::generate_initial_database(train_kernels, oracle, db_rng);
  model::SampleFactory factory;
  dse::PipelineOptions po;
  po.main_epochs = util::by_scale(5, 12, 30);
  po.bram_epochs = 4;
  po.classifier_epochs = 4;
  dse::TrainedModels models(database, train_kernels, factory, po);
  dse::ModelDse model_dse(models.bundle(), models.normalizer(), factory);

  kir::Kernel jacobi = make_jacobi1d();
  dspace::DesignSpace space(jacobi);
  std::printf("\n== unseen kernel '%s': %d pragma sites, %llu configs ==\n",
              jacobi.name.c_str(), jacobi.num_pragma_sites(),
              static_cast<unsigned long long>(space.pruned_size()));

  dse::DseOptions dopts;
  dopts.time_limit_seconds = 20.0;
  util::Rng rng(5);
  dse::DseResult r = model_dse.run(jacobi, dopts, rng);
  auto ev = model_dse.evaluate_top(jacobi, r, oracle);
  const double baseline =
      oracle.evaluate(jacobi, hlssim::DesignConfig::neutral(jacobi)).cycles;

  std::printf("GNN-DSE explored %llu configs in %.1fs\n",
              static_cast<unsigned long long>(r.num_explored),
              r.search_seconds);
  if (ev.best) {
    std::printf("best design: %s\n  %.0f cycles (%.1fx over no-pragma), "
                "util dsp/bram/lut/ff = %.2f/%.2f/%.2f/%.2f\n",
                ev.best->config.key().c_str(), ev.best->result.cycles,
                baseline / ev.best->result.cycles, ev.best->result.util_dsp,
                ev.best->result.util_bram, ev.best->result.util_lut,
                ev.best->result.util_ff);
  }

  std::printf("\n== AutoDSE baseline (calls the HLS tool per candidate) ==\n");
  dse::AutoDseOutcome base =
      dse::run_autodse_baseline(jacobi, oracle, 21.0 * 3600.0);
  std::printf("AutoDSE: %d evals, %.0f simulated seconds (%.1f h), best %.0f "
              "cycles\n",
              base.evals, base.simulated_seconds,
              base.simulated_seconds / 3600.0, base.best_cycles);
  const double gnn_seconds = r.search_seconds + ev.hls_seconds;
  std::printf("runtime speedup of GNN-DSE over AutoDSE: %.0fx "
              "(quality ratio %.3f)\n",
              base.simulated_seconds / gnn_seconds,
              ev.best ? ev.best->result.cycles / base.best_cycles : 0.0);
  return 0;
}
