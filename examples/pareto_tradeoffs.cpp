// Pareto trade-offs (Problem 2, §3): GNN-DSE's objective is not a single
// fastest design but the latency/resource frontier. This example sweeps a
// small kernel exhaustively with the HLS substrate to get the *true*
// Pareto front, then checks how much of that front a surrogate trained
// only on other kernels recovers from its predictions.
//
// Build & run:  ./build/examples/pareto_tradeoffs
#include <cstdio>
#include <iostream>

#include "analysis/pareto.hpp"
#include "db/explorer.hpp"
#include "dse/dse.hpp"
#include "dse/pipeline.hpp"
#include "kernels/registry.hpp"
#include "oracle/stack.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

using namespace gnndse;

int main() {
  oracle::OracleStack oracle;

  // Train on matrix/stencil kernels; hold out spmv-ellpack entirely.
  auto& reg = kernels::Registry::global();
  std::vector<kir::Kernel> train = {reg.get("atax"), reg.get("gemm-ncubed"),
                                    reg.get("stencil"), reg.get("spmv-crs")};
  util::Rng rng(42);
  db::Database database = db::generate_initial_database(
      train, oracle, rng, [](const std::string&) { return 250; });
  model::SampleFactory factory;
  dse::PipelineOptions po;
  po.main_epochs = util::by_scale(5, 12, 30);
  po.bram_epochs = 4;
  po.classifier_epochs = 4;
  dse::TrainedModels models(database, train, factory, po);

  // True frontier: exhaustive HLS sweep of the held-out kernel.
  kir::Kernel target = reg.get("spmv-ellpack");
  dspace::DesignSpace space(target);
  std::vector<db::DataPoint> all;
  space.for_each([&](hlssim::DesignConfig&& cfg) {
    hlssim::HlsResult res = oracle.evaluate(target, cfg);
    all.push_back({target.name, std::move(cfg), std::move(res)});
    return true;
  });
  auto true_front = analysis::pareto_front(all);

  util::Table t{"True Pareto front of spmv-ellpack (" +
                std::to_string(all.size()) + " designs swept)"};
  t.header({"Config", "Cycles", "LUT util", "BRAM util"});
  for (auto i : true_front)
    t.row({all[i].config.key(), util::Table::fmt(all[i].result.cycles, 0),
           util::Table::fmt(all[i].result.util_lut, 3),
           util::Table::fmt(all[i].result.util_bram, 3)});
  t.print(std::cout);

  // Surrogate-predicted top designs: how many land on the true front?
  dse::ModelDse model_dse(models.bundle(), models.normalizer(), factory);
  dse::DseOptions opts;
  opts.top_m = static_cast<int>(true_front.size());
  util::Rng rng2(3);
  dse::DseResult r = model_dse.run(target, opts, rng2);

  std::size_t hits = 0;
  for (const auto& d : r.top)
    for (auto i : true_front)
      if (all[i].config == d.config) {
        ++hits;
        break;
      }
  std::printf(
      "\nsurrogate (never trained on spmv-ellpack) placed %zu of its top "
      "%zu picks on the %zu-design true Pareto front\n",
      hits, r.top.size(), true_front.size());

  // And the single best pick after HLS verification:
  auto ev = model_dse.evaluate_top(target, r, oracle);
  if (ev.best) {
    double best_true = 1e30;
    for (auto i : true_front)
      best_true = std::min(best_true, all[i].result.cycles);
    std::printf("best verified design: %.0f cycles (true optimum %.0f, "
                "ratio %.2f)\n",
                ev.best->result.cycles, best_true,
                ev.best->result.cycles / best_true);
  }
  return 0;
}
