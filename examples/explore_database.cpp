// Database exploration: generate the shared training database with the
// three explorers of §4.1, inspect per-kernel statistics and the
// Pareto-optimal designs (Problem 2 asks for Pareto-optimal points), and
// save everything to CSV for external analysis.
//
// Build & run:  ./build/examples/explore_database
#include <cstdio>
#include <iostream>

#include "analysis/pareto.hpp"
#include "db/explorer.hpp"
#include "kernels/kernels.hpp"
#include "oracle/stack.hpp"
#include "util/table.hpp"

using namespace gnndse;

int main() {
  oracle::OracleStack oracle;
  auto kernels = kernels::make_training_kernels();
  util::Rng rng(42);
  db::Database database = db::generate_initial_database(kernels, oracle, rng);

  util::Table t{"Initial training database (explorers of section 4.1)"};
  t.header({"Kernel", "Points", "Valid", "Best cycles", "Worst cycles",
            "Pareto-optimal"});
  for (const auto& k : kernels) {
    auto idx = database.kernel_points(k.name);
    std::vector<db::DataPoint> pts;
    double best = 1e30, worst = 0;
    std::size_t valid = 0;
    for (auto i : idx) {
      const auto& p = database.points()[i];
      pts.push_back(p);
      if (!p.result.valid) continue;
      ++valid;
      best = std::min(best, p.result.cycles);
      worst = std::max(worst, p.result.cycles);
    }
    const auto front = analysis::pareto_front(pts);
    t.row({k.name, util::Table::fmt_int(static_cast<long long>(idx.size())),
           util::Table::fmt_int(static_cast<long long>(valid)),
           valid ? util::Table::fmt(best, 0) : "-",
           valid ? util::Table::fmt(worst, 0) : "-",
           util::Table::fmt_int(static_cast<long long>(front.size()))});
  }
  t.print(std::cout);

  database.save_csv("gnndse_database.csv");
  std::printf("\nfull database written to gnndse_database.csv (%zu rows)\n",
              database.size());

  // Show the Pareto front of one kernel in detail.
  const std::string focus = "gemm-ncubed";
  std::vector<db::DataPoint> pts;
  for (auto i : database.kernel_points(focus))
    pts.push_back(database.points()[i]);
  util::Table pf{"Pareto-optimal designs of " + focus +
                 " (cycles vs utilization trade-off)"};
  pf.header({"Config", "Cycles", "DSP", "BRAM", "LUT", "FF"});
  for (auto i : analysis::pareto_front(pts)) {
    const auto& p = pts[i];
    pf.row({p.config.key(), util::Table::fmt(p.result.cycles, 0),
            util::Table::fmt(p.result.util_dsp, 2),
            util::Table::fmt(p.result.util_bram, 2),
            util::Table::fmt(p.result.util_lut, 2),
            util::Table::fmt(p.result.util_ff, 2)});
    if (pf.num_rows() >= 12) break;
  }
  pf.print(std::cout);
  return 0;
}
