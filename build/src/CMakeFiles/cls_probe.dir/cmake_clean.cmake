file(REMOVE_RECURSE
  "CMakeFiles/cls_probe.dir/__/tools/cls_probe.cpp.o"
  "CMakeFiles/cls_probe.dir/__/tools/cls_probe.cpp.o.d"
  "cls_probe"
  "cls_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cls_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
