# Empty dependencies file for cls_probe.
# This may be replaced when dependencies are built.
