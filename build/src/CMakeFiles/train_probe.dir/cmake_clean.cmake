file(REMOVE_RECURSE
  "CMakeFiles/train_probe.dir/__/tools/train_probe.cpp.o"
  "CMakeFiles/train_probe.dir/__/tools/train_probe.cpp.o.d"
  "train_probe"
  "train_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
