# Empty dependencies file for train_probe.
# This may be replaced when dependencies are built.
