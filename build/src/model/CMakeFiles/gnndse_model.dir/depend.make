# Empty dependencies file for gnndse_model.
# This may be replaced when dependencies are built.
