file(REMOVE_RECURSE
  "CMakeFiles/gnndse_model.dir/dataset.cpp.o"
  "CMakeFiles/gnndse_model.dir/dataset.cpp.o.d"
  "CMakeFiles/gnndse_model.dir/normalizer.cpp.o"
  "CMakeFiles/gnndse_model.dir/normalizer.cpp.o.d"
  "CMakeFiles/gnndse_model.dir/predictive_model.cpp.o"
  "CMakeFiles/gnndse_model.dir/predictive_model.cpp.o.d"
  "CMakeFiles/gnndse_model.dir/trainer.cpp.o"
  "CMakeFiles/gnndse_model.dir/trainer.cpp.o.d"
  "CMakeFiles/gnndse_model.dir/weights.cpp.o"
  "CMakeFiles/gnndse_model.dir/weights.cpp.o.d"
  "libgnndse_model.a"
  "libgnndse_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
