file(REMOVE_RECURSE
  "libgnndse_model.a"
)
