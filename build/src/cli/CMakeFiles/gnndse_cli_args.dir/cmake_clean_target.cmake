file(REMOVE_RECURSE
  "libgnndse_cli_args.a"
)
