file(REMOVE_RECURSE
  "CMakeFiles/gnndse_cli_args.dir/args.cpp.o"
  "CMakeFiles/gnndse_cli_args.dir/args.cpp.o.d"
  "libgnndse_cli_args.a"
  "libgnndse_cli_args.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_cli_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
