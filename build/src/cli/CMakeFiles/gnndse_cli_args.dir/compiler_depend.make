# Empty compiler generated dependencies file for gnndse_cli_args.
# This may be replaced when dependencies are built.
