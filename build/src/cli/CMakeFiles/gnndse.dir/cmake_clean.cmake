file(REMOVE_RECURSE
  "CMakeFiles/gnndse.dir/main.cpp.o"
  "CMakeFiles/gnndse.dir/main.cpp.o.d"
  "gnndse"
  "gnndse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
