# Empty compiler generated dependencies file for gnndse.
# This may be replaced when dependencies are built.
