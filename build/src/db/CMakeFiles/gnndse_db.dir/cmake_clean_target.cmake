file(REMOVE_RECURSE
  "libgnndse_db.a"
)
