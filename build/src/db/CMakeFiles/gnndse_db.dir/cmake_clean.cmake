file(REMOVE_RECURSE
  "CMakeFiles/gnndse_db.dir/database.cpp.o"
  "CMakeFiles/gnndse_db.dir/database.cpp.o.d"
  "CMakeFiles/gnndse_db.dir/explorer.cpp.o"
  "CMakeFiles/gnndse_db.dir/explorer.cpp.o.d"
  "libgnndse_db.a"
  "libgnndse_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
