# Empty compiler generated dependencies file for gnndse_db.
# This may be replaced when dependencies are built.
