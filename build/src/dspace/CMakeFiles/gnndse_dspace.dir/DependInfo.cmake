
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dspace/design_space.cpp" "src/dspace/CMakeFiles/gnndse_dspace.dir/design_space.cpp.o" "gcc" "src/dspace/CMakeFiles/gnndse_dspace.dir/design_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hlssim/CMakeFiles/gnndse_hlssim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gnndse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/gnndse_kir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
