file(REMOVE_RECURSE
  "CMakeFiles/gnndse_dspace.dir/design_space.cpp.o"
  "CMakeFiles/gnndse_dspace.dir/design_space.cpp.o.d"
  "libgnndse_dspace.a"
  "libgnndse_dspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_dspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
