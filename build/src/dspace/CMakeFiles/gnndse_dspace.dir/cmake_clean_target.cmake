file(REMOVE_RECURSE
  "libgnndse_dspace.a"
)
