# Empty compiler generated dependencies file for gnndse_dspace.
# This may be replaced when dependencies are built.
