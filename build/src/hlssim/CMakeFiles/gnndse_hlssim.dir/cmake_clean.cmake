file(REMOVE_RECURSE
  "CMakeFiles/gnndse_hlssim.dir/config.cpp.o"
  "CMakeFiles/gnndse_hlssim.dir/config.cpp.o.d"
  "CMakeFiles/gnndse_hlssim.dir/hls_sim.cpp.o"
  "CMakeFiles/gnndse_hlssim.dir/hls_sim.cpp.o.d"
  "libgnndse_hlssim.a"
  "libgnndse_hlssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_hlssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
