file(REMOVE_RECURSE
  "libgnndse_hlssim.a"
)
