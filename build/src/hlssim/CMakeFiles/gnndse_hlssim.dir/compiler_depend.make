# Empty compiler generated dependencies file for gnndse_hlssim.
# This may be replaced when dependencies are built.
