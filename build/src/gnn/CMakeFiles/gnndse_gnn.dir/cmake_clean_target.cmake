file(REMOVE_RECURSE
  "libgnndse_gnn.a"
)
