# Empty dependencies file for gnndse_gnn.
# This may be replaced when dependencies are built.
