file(REMOVE_RECURSE
  "CMakeFiles/gnndse_gnn.dir/batch.cpp.o"
  "CMakeFiles/gnndse_gnn.dir/batch.cpp.o.d"
  "CMakeFiles/gnndse_gnn.dir/conv.cpp.o"
  "CMakeFiles/gnndse_gnn.dir/conv.cpp.o.d"
  "CMakeFiles/gnndse_gnn.dir/layers.cpp.o"
  "CMakeFiles/gnndse_gnn.dir/layers.cpp.o.d"
  "CMakeFiles/gnndse_gnn.dir/pool.cpp.o"
  "CMakeFiles/gnndse_gnn.dir/pool.cpp.o.d"
  "libgnndse_gnn.a"
  "libgnndse_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
