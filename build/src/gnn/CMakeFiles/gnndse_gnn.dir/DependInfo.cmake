
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/batch.cpp" "src/gnn/CMakeFiles/gnndse_gnn.dir/batch.cpp.o" "gcc" "src/gnn/CMakeFiles/gnndse_gnn.dir/batch.cpp.o.d"
  "/root/repo/src/gnn/conv.cpp" "src/gnn/CMakeFiles/gnndse_gnn.dir/conv.cpp.o" "gcc" "src/gnn/CMakeFiles/gnndse_gnn.dir/conv.cpp.o.d"
  "/root/repo/src/gnn/layers.cpp" "src/gnn/CMakeFiles/gnndse_gnn.dir/layers.cpp.o" "gcc" "src/gnn/CMakeFiles/gnndse_gnn.dir/layers.cpp.o.d"
  "/root/repo/src/gnn/pool.cpp" "src/gnn/CMakeFiles/gnndse_gnn.dir/pool.cpp.o" "gcc" "src/gnn/CMakeFiles/gnndse_gnn.dir/pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/gnndse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gnndse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
