# Empty compiler generated dependencies file for gnndse_kernels.
# This may be replaced when dependencies are built.
