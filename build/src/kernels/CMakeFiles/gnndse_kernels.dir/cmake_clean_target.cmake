file(REMOVE_RECURSE
  "libgnndse_kernels.a"
)
