file(REMOVE_RECURSE
  "CMakeFiles/gnndse_kernels.dir/kernels.cpp.o"
  "CMakeFiles/gnndse_kernels.dir/kernels.cpp.o.d"
  "CMakeFiles/gnndse_kernels.dir/kernels_extension.cpp.o"
  "CMakeFiles/gnndse_kernels.dir/kernels_extension.cpp.o.d"
  "libgnndse_kernels.a"
  "libgnndse_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
