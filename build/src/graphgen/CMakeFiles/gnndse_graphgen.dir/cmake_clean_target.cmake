file(REMOVE_RECURSE
  "libgnndse_graphgen.a"
)
