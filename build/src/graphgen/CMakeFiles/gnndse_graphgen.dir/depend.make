# Empty dependencies file for gnndse_graphgen.
# This may be replaced when dependencies are built.
