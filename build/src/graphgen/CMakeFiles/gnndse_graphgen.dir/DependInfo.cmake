
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphgen/dot_export.cpp" "src/graphgen/CMakeFiles/gnndse_graphgen.dir/dot_export.cpp.o" "gcc" "src/graphgen/CMakeFiles/gnndse_graphgen.dir/dot_export.cpp.o.d"
  "/root/repo/src/graphgen/featurize.cpp" "src/graphgen/CMakeFiles/gnndse_graphgen.dir/featurize.cpp.o" "gcc" "src/graphgen/CMakeFiles/gnndse_graphgen.dir/featurize.cpp.o.d"
  "/root/repo/src/graphgen/json_export.cpp" "src/graphgen/CMakeFiles/gnndse_graphgen.dir/json_export.cpp.o" "gcc" "src/graphgen/CMakeFiles/gnndse_graphgen.dir/json_export.cpp.o.d"
  "/root/repo/src/graphgen/program_graph.cpp" "src/graphgen/CMakeFiles/gnndse_graphgen.dir/program_graph.cpp.o" "gcc" "src/graphgen/CMakeFiles/gnndse_graphgen.dir/program_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dspace/CMakeFiles/gnndse_dspace.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gnndse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hlssim/CMakeFiles/gnndse_hlssim.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/gnndse_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gnndse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
