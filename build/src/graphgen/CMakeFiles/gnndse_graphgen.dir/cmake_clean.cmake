file(REMOVE_RECURSE
  "CMakeFiles/gnndse_graphgen.dir/dot_export.cpp.o"
  "CMakeFiles/gnndse_graphgen.dir/dot_export.cpp.o.d"
  "CMakeFiles/gnndse_graphgen.dir/featurize.cpp.o"
  "CMakeFiles/gnndse_graphgen.dir/featurize.cpp.o.d"
  "CMakeFiles/gnndse_graphgen.dir/json_export.cpp.o"
  "CMakeFiles/gnndse_graphgen.dir/json_export.cpp.o.d"
  "CMakeFiles/gnndse_graphgen.dir/program_graph.cpp.o"
  "CMakeFiles/gnndse_graphgen.dir/program_graph.cpp.o.d"
  "libgnndse_graphgen.a"
  "libgnndse_graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
