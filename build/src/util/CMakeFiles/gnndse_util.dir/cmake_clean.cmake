file(REMOVE_RECURSE
  "CMakeFiles/gnndse_util.dir/env.cpp.o"
  "CMakeFiles/gnndse_util.dir/env.cpp.o.d"
  "CMakeFiles/gnndse_util.dir/logging.cpp.o"
  "CMakeFiles/gnndse_util.dir/logging.cpp.o.d"
  "CMakeFiles/gnndse_util.dir/rng.cpp.o"
  "CMakeFiles/gnndse_util.dir/rng.cpp.o.d"
  "CMakeFiles/gnndse_util.dir/table.cpp.o"
  "CMakeFiles/gnndse_util.dir/table.cpp.o.d"
  "libgnndse_util.a"
  "libgnndse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
