# Empty dependencies file for gnndse_util.
# This may be replaced when dependencies are built.
