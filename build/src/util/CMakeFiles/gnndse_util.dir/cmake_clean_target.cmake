file(REMOVE_RECURSE
  "libgnndse_util.a"
)
