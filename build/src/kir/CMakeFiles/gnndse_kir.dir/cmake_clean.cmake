file(REMOVE_RECURSE
  "CMakeFiles/gnndse_kir.dir/kernel.cpp.o"
  "CMakeFiles/gnndse_kir.dir/kernel.cpp.o.d"
  "libgnndse_kir.a"
  "libgnndse_kir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_kir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
