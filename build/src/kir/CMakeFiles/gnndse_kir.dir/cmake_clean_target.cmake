file(REMOVE_RECURSE
  "libgnndse_kir.a"
)
