# Empty dependencies file for gnndse_kir.
# This may be replaced when dependencies are built.
