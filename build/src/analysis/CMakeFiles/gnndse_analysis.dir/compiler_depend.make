# Empty compiler generated dependencies file for gnndse_analysis.
# This may be replaced when dependencies are built.
