file(REMOVE_RECURSE
  "CMakeFiles/gnndse_analysis.dir/attention.cpp.o"
  "CMakeFiles/gnndse_analysis.dir/attention.cpp.o.d"
  "CMakeFiles/gnndse_analysis.dir/pareto.cpp.o"
  "CMakeFiles/gnndse_analysis.dir/pareto.cpp.o.d"
  "CMakeFiles/gnndse_analysis.dir/tsne.cpp.o"
  "CMakeFiles/gnndse_analysis.dir/tsne.cpp.o.d"
  "libgnndse_analysis.a"
  "libgnndse_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
