file(REMOVE_RECURSE
  "libgnndse_analysis.a"
)
