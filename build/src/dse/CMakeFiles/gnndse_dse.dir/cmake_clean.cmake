file(REMOVE_RECURSE
  "CMakeFiles/gnndse_dse.dir/dse.cpp.o"
  "CMakeFiles/gnndse_dse.dir/dse.cpp.o.d"
  "CMakeFiles/gnndse_dse.dir/pipeline.cpp.o"
  "CMakeFiles/gnndse_dse.dir/pipeline.cpp.o.d"
  "libgnndse_dse.a"
  "libgnndse_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
