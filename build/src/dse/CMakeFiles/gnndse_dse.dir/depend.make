# Empty dependencies file for gnndse_dse.
# This may be replaced when dependencies are built.
