file(REMOVE_RECURSE
  "libgnndse_dse.a"
)
