file(REMOVE_RECURSE
  "CMakeFiles/gnndse_tensor.dir/adam.cpp.o"
  "CMakeFiles/gnndse_tensor.dir/adam.cpp.o.d"
  "CMakeFiles/gnndse_tensor.dir/init.cpp.o"
  "CMakeFiles/gnndse_tensor.dir/init.cpp.o.d"
  "CMakeFiles/gnndse_tensor.dir/tape.cpp.o"
  "CMakeFiles/gnndse_tensor.dir/tape.cpp.o.d"
  "CMakeFiles/gnndse_tensor.dir/tensor.cpp.o"
  "CMakeFiles/gnndse_tensor.dir/tensor.cpp.o.d"
  "libgnndse_tensor.a"
  "libgnndse_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnndse_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
