file(REMOVE_RECURSE
  "libgnndse_tensor.a"
)
