# Empty dependencies file for gnndse_tensor.
# This may be replaced when dependencies are built.
