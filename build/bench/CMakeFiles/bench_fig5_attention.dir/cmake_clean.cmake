file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_attention.dir/bench_fig5_attention.cpp.o"
  "CMakeFiles/bench_fig5_attention.dir/bench_fig5_attention.cpp.o.d"
  "bench_fig5_attention"
  "bench_fig5_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
