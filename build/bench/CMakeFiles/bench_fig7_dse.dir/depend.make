# Empty dependencies file for bench_fig7_dse.
# This may be replaced when dependencies are built.
