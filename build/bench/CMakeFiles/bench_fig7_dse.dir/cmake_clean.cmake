file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dse.dir/bench_fig7_dse.cpp.o"
  "CMakeFiles/bench_fig7_dse.dir/bench_fig7_dse.cpp.o.d"
  "bench_fig7_dse"
  "bench_fig7_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
