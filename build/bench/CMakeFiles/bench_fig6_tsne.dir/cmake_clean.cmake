file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_tsne.dir/bench_fig6_tsne.cpp.o"
  "CMakeFiles/bench_fig6_tsne.dir/bench_fig6_tsne.cpp.o.d"
  "bench_fig6_tsne"
  "bench_fig6_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
