# Empty dependencies file for bench_fig6_tsne.
# This may be replaced when dependencies are built.
