# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_kir[1]_include.cmake")
include("/root/repo/build/tests/test_hlssim[1]_include.cmake")
include("/root/repo/build/tests/test_dspace[1]_include.cmake")
include("/root/repo/build/tests/test_graphgen[1]_include.cmake")
include("/root/repo/build/tests/test_gnn[1]_include.cmake")
include("/root/repo/build/tests/test_db[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_dot_cli[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_tape_sweeps[1]_include.cmake")
