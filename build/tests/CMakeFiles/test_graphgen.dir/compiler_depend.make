# Empty compiler generated dependencies file for test_graphgen.
# This may be replaced when dependencies are built.
