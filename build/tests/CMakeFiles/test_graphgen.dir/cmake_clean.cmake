file(REMOVE_RECURSE
  "CMakeFiles/test_graphgen.dir/test_graphgen.cpp.o"
  "CMakeFiles/test_graphgen.dir/test_graphgen.cpp.o.d"
  "test_graphgen"
  "test_graphgen.pdb"
  "test_graphgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
