
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dot_cli.cpp" "tests/CMakeFiles/test_dot_cli.dir/test_dot_cli.cpp.o" "gcc" "tests/CMakeFiles/test_dot_cli.dir/test_dot_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dse/CMakeFiles/gnndse_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gnndse_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/gnndse_model.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/gnndse_db.dir/DependInfo.cmake"
  "/root/repo/build/src/graphgen/CMakeFiles/gnndse_graphgen.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/gnndse_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/dspace/CMakeFiles/gnndse_dspace.dir/DependInfo.cmake"
  "/root/repo/build/src/hlssim/CMakeFiles/gnndse_hlssim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/gnndse_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/gnndse_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gnndse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gnndse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/gnndse_cli_args.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
