file(REMOVE_RECURSE
  "CMakeFiles/test_dot_cli.dir/test_dot_cli.cpp.o"
  "CMakeFiles/test_dot_cli.dir/test_dot_cli.cpp.o.d"
  "test_dot_cli"
  "test_dot_cli.pdb"
  "test_dot_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
