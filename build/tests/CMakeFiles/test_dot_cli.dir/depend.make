# Empty dependencies file for test_dot_cli.
# This may be replaced when dependencies are built.
