file(REMOVE_RECURSE
  "CMakeFiles/test_gnn.dir/test_gnn.cpp.o"
  "CMakeFiles/test_gnn.dir/test_gnn.cpp.o.d"
  "test_gnn"
  "test_gnn.pdb"
  "test_gnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
