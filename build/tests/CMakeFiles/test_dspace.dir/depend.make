# Empty dependencies file for test_dspace.
# This may be replaced when dependencies are built.
