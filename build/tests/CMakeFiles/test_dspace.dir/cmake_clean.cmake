file(REMOVE_RECURSE
  "CMakeFiles/test_dspace.dir/test_dspace.cpp.o"
  "CMakeFiles/test_dspace.dir/test_dspace.cpp.o.d"
  "test_dspace"
  "test_dspace.pdb"
  "test_dspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
