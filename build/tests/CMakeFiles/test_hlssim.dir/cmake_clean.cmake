file(REMOVE_RECURSE
  "CMakeFiles/test_hlssim.dir/test_hlssim.cpp.o"
  "CMakeFiles/test_hlssim.dir/test_hlssim.cpp.o.d"
  "test_hlssim"
  "test_hlssim.pdb"
  "test_hlssim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hlssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
