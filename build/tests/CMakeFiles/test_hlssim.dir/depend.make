# Empty dependencies file for test_hlssim.
# This may be replaced when dependencies are built.
