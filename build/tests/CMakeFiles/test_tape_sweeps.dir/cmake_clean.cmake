file(REMOVE_RECURSE
  "CMakeFiles/test_tape_sweeps.dir/test_tape_sweeps.cpp.o"
  "CMakeFiles/test_tape_sweeps.dir/test_tape_sweeps.cpp.o.d"
  "test_tape_sweeps"
  "test_tape_sweeps.pdb"
  "test_tape_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tape_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
