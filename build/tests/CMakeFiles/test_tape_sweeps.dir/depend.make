# Empty dependencies file for test_tape_sweeps.
# This may be replaced when dependencies are built.
