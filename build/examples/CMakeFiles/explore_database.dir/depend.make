# Empty dependencies file for explore_database.
# This may be replaced when dependencies are built.
