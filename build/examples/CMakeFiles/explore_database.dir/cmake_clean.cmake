file(REMOVE_RECURSE
  "CMakeFiles/explore_database.dir/explore_database.cpp.o"
  "CMakeFiles/explore_database.dir/explore_database.cpp.o.d"
  "explore_database"
  "explore_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
