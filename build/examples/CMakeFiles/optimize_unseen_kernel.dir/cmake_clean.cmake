file(REMOVE_RECURSE
  "CMakeFiles/optimize_unseen_kernel.dir/optimize_unseen_kernel.cpp.o"
  "CMakeFiles/optimize_unseen_kernel.dir/optimize_unseen_kernel.cpp.o.d"
  "optimize_unseen_kernel"
  "optimize_unseen_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_unseen_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
