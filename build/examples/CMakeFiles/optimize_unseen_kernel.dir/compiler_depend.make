# Empty compiler generated dependencies file for optimize_unseen_kernel.
# This may be replaced when dependencies are built.
