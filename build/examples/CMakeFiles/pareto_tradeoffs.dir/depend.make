# Empty dependencies file for pareto_tradeoffs.
# This may be replaced when dependencies are built.
