file(REMOVE_RECURSE
  "CMakeFiles/pareto_tradeoffs.dir/pareto_tradeoffs.cpp.o"
  "CMakeFiles/pareto_tradeoffs.dir/pareto_tradeoffs.cpp.o.d"
  "pareto_tradeoffs"
  "pareto_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
