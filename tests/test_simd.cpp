// Runtime SIMD dispatch layer: bit-identity of every vectorized kernel
// against the scalar reference across dispatch levels, shapes with
// remainders, unaligned row views, and thread counts; env parsing;
// dispatch telemetry; and end-to-end fast-path identity per level.
#include "tensor/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "gnn/infer.hpp"
#include "gnn/infer_simd.hpp"
#include "kernels/kernels.hpp"
#include "model/dataset.hpp"
#include "model/predictive_model.hpp"
#include "model/trainer.hpp"
#include "obs/metrics.hpp"
#include "util/cpu.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gnndse {
namespace {

using tensor::Tensor;
using util::SimdLevel;

/// Restores hardware-detected dispatch and the default pool on exit, even
/// when an assertion fails mid-test.
struct DispatchGuard {
  ~DispatchGuard() {
    util::set_simd_level(util::detect_simd_level());
    util::set_parallel_threads(0);
  }
};

/// Levels this host can actually run (always includes kScalar).
std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> out{SimdLevel::kScalar};
  const SimdLevel cap = util::detect_simd_level();
  if (cap >= SimdLevel::kAvx2) out.push_back(SimdLevel::kAvx2);
  if (cap >= SimdLevel::kAvx512) out.push_back(SimdLevel::kAvx512);
  return out;
}

Tensor random_tensor(std::vector<std::int64_t> shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-2.0, 2.0));
  return t;
}

std::vector<std::int32_t> random_indices(std::size_t n, std::int64_t hi,
                                         util::Rng& rng) {
  std::vector<std::int32_t> idx(n);
  for (auto& v : idx)
    v = static_cast<std::int32_t>(rng.uniform_int(static_cast<std::uint64_t>(hi)));
  return idx;
}

void expect_bitwise(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " element " << i;
}

TEST(SimdKernels, TensorStorageIsCacheLineAligned) {
  util::Rng rng(3);
  for (std::int64_t n : {1, 7, 64, 1000}) {
    Tensor t = random_tensor({n}, rng);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % 64, 0u)
        << "numel " << n;
  }
}

TEST(SimdKernels, MatmulBitIdenticalAcrossLevelsShapesAndTranspose) {
  DispatchGuard guard;
  util::Rng rng(11);
  // Shapes straddle the k-panel (256) and column-tile (32) boundaries and
  // include 1-wide and odd remainders.
  const std::int64_t shapes[][3] = {{1, 1, 1},   {3, 7, 31},  {5, 64, 32},
                                    {4, 65, 33}, {2, 33, 64}, {7, 96, 40},
                                    {9, 257, 65}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], k = s[1], n = s[2];
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        const Tensor a = random_tensor(ta ? std::vector<std::int64_t>{k, m}
                                          : std::vector<std::int64_t>{m, k},
                                       rng);
        const Tensor b = random_tensor(tb ? std::vector<std::int64_t>{n, k}
                                          : std::vector<std::int64_t>{k, n},
                                       rng);
        util::set_simd_level(SimdLevel::kScalar);
        const Tensor ref = tensor::matmul(a, b, ta, tb);
        for (SimdLevel lvl : available_levels()) {
          ASSERT_EQ(util::set_simd_level(lvl), lvl);
          expect_bitwise(ref, tensor::matmul(a, b, ta, tb),
                         std::string("matmul ") + util::simd_level_name(lvl));
        }
      }
    }
    // Fused bias epilogue (matmul_bias with and without bias).
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({k, n}, rng);
    const Tensor bias = random_tensor({n}, rng);
    util::set_simd_level(SimdLevel::kScalar);
    Tensor ref({m, n}), ref_nb({m, n});
    tensor::matmul_bias(a, b, &bias, ref);
    tensor::matmul_bias(a, b, nullptr, ref_nb);
    for (SimdLevel lvl : available_levels()) {
      ASSERT_EQ(util::set_simd_level(lvl), lvl);
      Tensor out({m, n}), out_nb({m, n});
      tensor::matmul_bias(a, b, &bias, out);
      tensor::matmul_bias(a, b, nullptr, out_nb);
      expect_bitwise(ref, out, "matmul_bias");
      expect_bitwise(ref_nb, out_nb, "matmul_bias nullptr");
    }
  }
}

TEST(SimdKernels, FusedKernelsBitIdenticalAcrossLevelsAndThreads) {
  DispatchGuard guard;
  util::Rng rng(17);
  const std::int64_t kN = 37;  // nodes
  const std::int64_t kE = 101;  // edges
  const std::int64_t kSegs = 9;
  // Column widths with full vectors, remainders, and sub-vector rows.
  for (std::int64_t c : {std::int64_t{1}, std::int64_t{7}, std::int64_t{9},
                         std::int64_t{16}, std::int64_t{33}}) {
    const Tensor x = random_tensor({kN, c}, rng);
    const Tensor y = random_tensor({kN, c}, rng);
    const Tensor beta = random_tensor({kN, 1}, rng);
    const Tensor cat = random_tensor({kN, 3 * c}, rng);
    const Tensor q = random_tensor({kN, c}, rng);
    const Tensor k = random_tensor({kN, c}, rng);
    const Tensor ek = random_tensor({kE, c}, rng);
    const Tensor scores1 = random_tensor({kN, 1}, rng);
    const Tensor scores2 = random_tensor({kN, 1}, rng);
    const Tensor escores = random_tensor({kE, 1}, rng);
    const Tensor alpha = random_tensor({kE, 1}, rng);
    const auto src = random_indices(static_cast<std::size_t>(kE), kN, rng);
    const auto dst = random_indices(static_cast<std::size_t>(kE), kN, rng);
    std::vector<std::int32_t> seg(static_cast<std::size_t>(kE));
    for (std::size_t i = 0; i < seg.size(); ++i)
      seg[i] = static_cast<std::int32_t>(
          rng.uniform_int(static_cast<std::uint64_t>(kSegs - 1)));  // seg 8 empty

    // Scalar single-thread reference for every kernel.
    struct Results {
      Tensor row_sum, residual, gated, eattn, epair, wscatter, ssmax;
    };
    auto run = [&](SimdLevel lvl, int threads) {
      util::set_parallel_threads(threads);
      EXPECT_EQ(util::set_simd_level(lvl), lvl);
      gnn::InferenceSession s;
      s.begin();
      Results r;
      r.row_sum = s.row_sum(x);
      r.residual = s.residual_concat(x, y);
      r.gated = s.gated_mix(x, beta, cat);
      r.eattn = s.edge_attention_scores(q, k, ek, src, dst, 0.25f);
      r.epair = s.edge_pair_scores(scores1, scores2, src, dst, 0.2f);
      r.wscatter = s.weighted_scatter_add(alpha.data(), x, &ek, src, dst, kN);
      r.ssmax = s.segment_softmax(escores, seg, kSegs);
      return r;
    };
    const Results ref = run(SimdLevel::kScalar, 1);
    for (SimdLevel lvl : available_levels()) {
      for (int threads : {1, 2, 4}) {
        const Results got = run(lvl, threads);
        const std::string tag = std::string(util::simd_level_name(lvl)) +
                                " threads=" + std::to_string(threads) +
                                " c=" + std::to_string(c);
        expect_bitwise(ref.row_sum, got.row_sum, "row_sum " + tag);
        expect_bitwise(ref.residual, got.residual, "residual_concat " + tag);
        expect_bitwise(ref.gated, got.gated, "gated_mix " + tag);
        expect_bitwise(ref.eattn, got.eattn, "edge_attention_scores " + tag);
        expect_bitwise(ref.epair, got.epair, "edge_pair_scores " + tag);
        expect_bitwise(ref.wscatter, got.wscatter,
                       "weighted_scatter_add " + tag);
        expect_bitwise(ref.ssmax, got.ssmax, "segment_softmax " + tag);
      }
    }
  }
}

/// Restores the gather default on exit (tests mutate the process-wide
/// variant knob).
struct EdgeAttnGuard {
  ~EdgeAttnGuard() {
    gnn::simd::set_edge_attn_variant(gnn::simd::EdgeAttnVariant::kGather);
  }
};

TEST(SimdKernels, EdgeAttentionVariantsBitIdenticalToScalar) {
  DispatchGuard guard;
  EdgeAttnGuard vguard;
  using gnn::simd::EdgeAttnVariant;
  util::Rng rng(29);
  const std::int64_t kN = 41;
  // Edge counts and widths with full 8x8 blocks and remainders on both
  // axes: e % 8 != 0 exercises the scalar edge tail, d < 8 means the
  // transpose body never runs a vector block, d % 8 != 0 exercises the
  // per-lane j-tail that resumes from the spilled accumulator.
  for (std::int64_t e : {std::int64_t{5}, std::int64_t{8}, std::int64_t{64},
                         std::int64_t{103}}) {
    for (std::int64_t d : {std::int64_t{1}, std::int64_t{7}, std::int64_t{8},
                           std::int64_t{19}, std::int64_t{32}}) {
      const Tensor q = random_tensor({kN, d}, rng);
      const Tensor k = random_tensor({kN, d}, rng);
      const Tensor ek = random_tensor({e, d}, rng);
      const auto src = random_indices(static_cast<std::size_t>(e), kN, rng);
      const auto dst = random_indices(static_cast<std::size_t>(e), kN, rng);
      std::vector<float> ref(static_cast<std::size_t>(e), 0.0f);
      gnn::simd::edge_attention_scores_range(
          SimdLevel::kScalar, q.data(), k.data(), ek.data(), src.data(),
          dst.data(), d, 0.125f, ref.data(), 0, e);
      for (SimdLevel lvl : available_levels()) {
        for (EdgeAttnVariant var :
             {EdgeAttnVariant::kGather, EdgeAttnVariant::kTranspose}) {
          ASSERT_EQ(gnn::simd::set_edge_attn_variant(var), var);
          const std::string tag =
              std::string("edge_attention ") + util::simd_level_name(lvl) +
              "/" + gnn::simd::edge_attn_variant_name(var) +
              " e=" + std::to_string(e) + " d=" + std::to_string(d);
          std::vector<float> got(static_cast<std::size_t>(e), 0.0f);
          gnn::simd::edge_attention_scores_range(
              lvl, q.data(), k.data(), ek.data(), src.data(), dst.data(), d,
              0.125f, got.data(), 0, e);
          EXPECT_EQ(ref, got) << tag;
          // Partial edge range (threaded chunks start mid-array): the
          // untouched prefix/suffix must stay zero.
          if (e > 4) {
            std::vector<float> part(static_cast<std::size_t>(e), 0.0f);
            gnn::simd::edge_attention_scores_range(
                lvl, q.data(), k.data(), ek.data(), src.data(), dst.data(),
                d, 0.125f, part.data(), 3, e - 1);
            for (std::int64_t i = 0; i < e; ++i) {
              const float want =
                  (i >= 3 && i < e - 1) ? ref[static_cast<std::size_t>(i)]
                                        : 0.0f;
              ASSERT_EQ(part[static_cast<std::size_t>(i)], want)
                  << tag << " partial edge " << i;
            }
          }
        }
      }
    }
  }
}

TEST(SimdKernels, EdgeAttentionVariantKnob) {
  EdgeAttnGuard vguard;
  using gnn::simd::EdgeAttnVariant;
  // The override wins over whatever the env resolved to and reports back
  // the applied variant; names round-trip for diagnostics.
  EXPECT_EQ(gnn::simd::set_edge_attn_variant(EdgeAttnVariant::kTranspose),
            EdgeAttnVariant::kTranspose);
  EXPECT_EQ(gnn::simd::edge_attn_variant(), EdgeAttnVariant::kTranspose);
  EXPECT_STREQ(gnn::simd::edge_attn_variant_name(EdgeAttnVariant::kTranspose),
               "transpose");
  EXPECT_EQ(gnn::simd::set_edge_attn_variant(EdgeAttnVariant::kGather),
            EdgeAttnVariant::kGather);
  EXPECT_STREQ(gnn::simd::edge_attn_variant_name(EdgeAttnVariant::kGather),
               "gather");
}

TEST(SimdKernels, RangeHelpersBitIdenticalOnUnalignedViews) {
  DispatchGuard guard;
  util::Rng rng(23);
  const std::int64_t r = 19, c = 21;
  // Deliberately misaligned bases: every pointer is one float past a
  // (64-byte-aligned) tensor start, and the row range starts mid-tensor.
  Tensor abuf = random_tensor({r * c + 1}, rng);
  Tensor obuf({r + 1});
  const float* ap = abuf.data() + 1;
  float* op = obuf.data() + 1;
  util::set_simd_level(SimdLevel::kScalar);
  std::vector<float> ref(static_cast<std::size_t>(r));
  gnn::simd::row_sum_range(SimdLevel::kScalar, ap, c, ref.data(), 0, r);
  for (SimdLevel lvl : available_levels()) {
    std::memset(op, 0, static_cast<std::size_t>(r) * sizeof(float));
    gnn::simd::row_sum_range(lvl, ap, c, op, 0, r);
    for (std::int64_t i = 0; i < r; ++i)
      ASSERT_EQ(ref[static_cast<std::size_t>(i)], op[i])
          << "row_sum unaligned " << util::simd_level_name(lvl) << " row " << i;
  }

  // Partial edge range [3, E-2) with unaligned score columns.
  const std::int64_t e = 43;
  Tensor sa = random_tensor({r + 1}, rng);
  Tensor sb = random_tensor({r + 1}, rng);
  const auto src = random_indices(static_cast<std::size_t>(e), r, rng);
  const auto dst = random_indices(static_cast<std::size_t>(e), r, rng);
  std::vector<float> eref(static_cast<std::size_t>(e), 0.0f);
  std::vector<float> egot(static_cast<std::size_t>(e), 0.0f);
  gnn::simd::edge_pair_scores_range(SimdLevel::kScalar, sa.data() + 1,
                                    sb.data() + 1, src.data(), dst.data(),
                                    0.2f, eref.data(), 3, e - 2);
  for (SimdLevel lvl : available_levels()) {
    std::fill(egot.begin(), egot.end(), 0.0f);
    gnn::simd::edge_pair_scores_range(lvl, sa.data() + 1, sb.data() + 1,
                                      src.data(), dst.data(), 0.2f,
                                      egot.data(), 3, e - 2);
    EXPECT_EQ(eref, egot) << "edge_pair partial range "
                          << util::simd_level_name(lvl);
  }
}

TEST(SimdKernels, EnvParseAndClamp) {
  using util::parse_simd_level;
  EXPECT_EQ(parse_simd_level("scalar", SimdLevel::kAvx512), SimdLevel::kScalar);
  EXPECT_EQ(parse_simd_level("avx2", SimdLevel::kScalar), SimdLevel::kAvx2);
  EXPECT_EQ(parse_simd_level("avx512", SimdLevel::kScalar),
            SimdLevel::kAvx512);
  EXPECT_EQ(parse_simd_level("auto", SimdLevel::kAvx2), SimdLevel::kAvx2);
  EXPECT_EQ(parse_simd_level("", SimdLevel::kAvx2), SimdLevel::kAvx2);
  EXPECT_EQ(parse_simd_level("turbo9000", SimdLevel::kAvx2), SimdLevel::kAvx2);

  DispatchGuard guard;
  // set_simd_level clamps to hardware capability and reports what it
  // applied; requesting scalar always succeeds.
  EXPECT_EQ(util::set_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
  const SimdLevel cap = util::detect_simd_level();
  EXPECT_LE(util::set_simd_level(SimdLevel::kAvx512), cap);

  EXPECT_EQ(util::simd_level_width(SimdLevel::kScalar), 0);
  EXPECT_EQ(util::simd_level_width(SimdLevel::kAvx2), 256);
  EXPECT_EQ(util::simd_level_width(SimdLevel::kAvx512), 512);
}

TEST(SimdKernels, DispatchCountersAndGaugeTrackActiveLevel) {
  DispatchGuard guard;
  obs::set_enabled(true);
  util::Rng rng(29);
  const Tensor x = random_tensor({5, 8}, rng);
  for (SimdLevel lvl : available_levels()) {
    util::set_simd_level(lvl);
    obs::Counter& c = obs::counter(std::string("simd.row_sum.") +
                                   util::simd_level_name(lvl));
    const std::int64_t before = c.value();
    gnn::InferenceSession s;
    s.begin();
    s.row_sum(x);
    EXPECT_EQ(c.value(), before + 1) << util::simd_level_name(lvl);
    EXPECT_EQ(obs::gauge("tensor.simd_level").value(),
              static_cast<double>(util::simd_level_width(lvl)));
  }
  obs::set_enabled(false);
}

// The `simd_dispatch_check` ctest runs exactly this suite: predictions of
// the full fast path (and the tape) must be bit-identical at every
// dispatch level and thread count.
TEST(SimdDispatchCheck, FastPathPredictionsBitIdenticalAcrossLevels) {
  DispatchGuard guard;
  kir::Kernel kernel = kernels::make_kernel("spmv-crs");
  model::SampleFactory factory;
  dspace::DesignSpace space(kernel);
  util::Rng crng(7);
  std::vector<hlssim::DesignConfig> configs;
  for (int i = 0; i < 10; ++i) configs.push_back(space.sample(crng));
  std::vector<gnn::GraphData> graphs;
  for (const auto& cf : configs) graphs.push_back(factory.featurize(kernel, cf));
  std::vector<const gnn::GraphData*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  util::Rng rng(11);
  model::PredictiveModel model(
      [] {
        model::ModelOptions mo;
        mo.kind = model::ModelKind::kM7Full;
        mo.gnn_layers = 3;
        mo.hidden = 16;
        mo.out_dim = 4;
        return mo;
      }(),
      rng);
  model::Trainer trainer(model, model::TrainOptions{});

  util::set_simd_level(SimdLevel::kScalar);
  util::set_parallel_threads(1);
  const Tensor ref = trainer.predict_graphs(ptrs);
  expect_bitwise(ref, trainer.predict_graphs_tape(ptrs), "scalar tape");

  for (SimdLevel lvl : available_levels()) {
    for (int threads : {1, 2, 4}) {
      util::set_parallel_threads(threads);
      ASSERT_EQ(util::set_simd_level(lvl), lvl);
      const std::string tag = std::string(util::simd_level_name(lvl)) +
                              " threads=" + std::to_string(threads);
      expect_bitwise(ref, trainer.predict_graphs(ptrs), "fast path " + tag);
      expect_bitwise(ref, trainer.predict_graphs_tape(ptrs), "tape " + tag);
    }
  }
}

}  // namespace
}  // namespace gnndse
