// The 13 benchmark kernels: structural invariants and the paper's
// pragma-site counts (Tables 1 and 3), parameterized across the suite.
#include "kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dspace/design_space.hpp"
#include "kernels/kernels_extension.hpp"

namespace gnndse::kernels {
namespace {

class AllKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(AllKernels, ValidatesStructurally) {
  kir::Kernel k = make_kernel(GetParam());
  EXPECT_NO_THROW(kir::validate(k));
  EXPECT_FALSE(k.loops.empty());
  EXPECT_FALSE(k.stmts.empty());
  EXPECT_FALSE(k.arrays.empty());
}

TEST_P(AllKernels, PragmaCountMatchesPaper) {
  // Core suite: Table 1/3 counts. Extension kernels (future-work set):
  // our own documented counts.
  static const std::map<std::string, int> expected{
      {"aes", 3},      {"atax", 5},         {"gemm-blocked", 9},
      {"gemm-ncubed", 7}, {"mvt", 8},       {"spmv-crs", 3},
      {"spmv-ellpack", 3}, {"stencil", 7},  {"nw", 6},
      {"bicg", 5},     {"doitgen", 6},      {"gesummv", 4},
      {"2mm", 14},
      {"gemver", 9},   {"jacobi-2d", 6},    {"fdtd-2d", 9},
      {"trmm", 5},     {"syrk", 6},         {"md-knn", 3}};
  kir::Kernel k = make_kernel(GetParam());
  EXPECT_EQ(k.num_pragma_sites(), expected.at(GetParam()));
}

TEST_P(AllKernels, HasNonTrivialDesignSpace) {
  kir::Kernel k = make_kernel(GetParam());
  dspace::DesignSpace space(k);
  EXPECT_GT(space.pruned_size(), 1u);
  EXPECT_GE(space.raw_size(), space.pruned_size());
}

TEST_P(AllKernels, EveryLoopReachableFromTop) {
  kir::Kernel k = make_kernel(GetParam());
  std::size_t reached = 0;
  for (int top : k.top_loops) reached += k.subtree(top).size();
  EXPECT_EQ(reached, k.loops.size());
}

TEST_P(AllKernels, AccessesReferenceExistingArrays) {
  kir::Kernel k = make_kernel(GetParam());
  for (const auto& s : k.stmts)
    for (const auto& a : s.accesses) {
      ASSERT_GE(a.array, 0);
      ASSERT_LT(static_cast<std::size_t>(a.array), k.arrays.size());
    }
}

std::vector<std::string> all_names() {
  std::vector<std::string> names = training_kernel_names();
  for (const auto& n : unseen_kernel_names()) names.push_back(n);
  for (const auto& n : extension_kernel_names()) names.push_back(n);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, AllKernels, ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(KernelRegistry, UnknownNameThrows) {
  EXPECT_THROW(make_kernel("definitely-not-a-kernel"), std::invalid_argument);
}

TEST(KernelRegistry, TrainingAndUnseenDisjoint) {
  for (const auto& t : training_kernel_names())
    for (const auto& u : unseen_kernel_names()) EXPECT_NE(t, u);
  EXPECT_EQ(training_kernel_names().size(), 9u);
  EXPECT_EQ(unseen_kernel_names().size(), 4u);
}

TEST(KernelRegistry, MakersProduceAll) {
  EXPECT_EQ(make_training_kernels().size(), 9u);
  EXPECT_EQ(make_unseen_kernels().size(), 4u);
}

TEST(KernelStructure, NwCarriesNonAssociativeDeps) {
  kir::Kernel k = make_kernel("nw");
  bool found = false;
  for (const auto& s : k.stmts)
    if (s.dep_loop != -1 && !s.dep_associative) found = true;
  EXPECT_TRUE(found);
}

TEST(KernelStructure, GemmCarriesAssociativeReduction) {
  kir::Kernel k = make_kernel("gemm-ncubed");
  bool found = false;
  for (const auto& s : k.stmts)
    if (s.dep_loop != -1 && s.dep_associative) found = true;
  EXPECT_TRUE(found);
}

TEST(KernelStructure, SpmvUsesIndirectAccess) {
  for (const char* name : {"spmv-crs", "spmv-ellpack"}) {
    kir::Kernel k = make_kernel(name);
    bool found = false;
    for (const auto& s : k.stmts)
      for (const auto& a : s.accesses)
        if (a.kind == kir::AccessKind::kIndirect) found = true;
    EXPECT_TRUE(found) << name;
  }
}

TEST(KernelStructure, MvtHasLargestTrainingSpace) {
  std::uint64_t mvt_size = 0, max_other = 0;
  for (const auto& name : training_kernel_names()) {
    dspace::DesignSpace space{make_kernel(name)};
    if (name == "mvt")
      mvt_size = space.pruned_size();
    else
      max_other = std::max(max_other, space.pruned_size());
  }
  EXPECT_GT(mvt_size, max_other);  // Table 1: mvt dominates the suite
}

}  // namespace
}  // namespace gnndse::kernels
