// kernels::Registry: provenance bookkeeping, the unified lookup that
// make_kernel/make_extension_kernel now delegate to, near-miss suggestions
// in miss errors, and file/generated registration.
#include "kernels/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "frontend/kernel_json.hpp"
#include "kernels/generator.hpp"
#include "kernels/kernels.hpp"
#include "kernels/kernels_extension.hpp"
#include "oracle/evaluator.hpp"

namespace gnndse {
namespace {

using kernels::Provenance;
using kernels::Registry;

TEST(Registry, GlobalHoldsAllCompiledKernels) {
  auto& reg = Registry::global();
  EXPECT_GE(reg.size(), 19u);
  EXPECT_EQ(reg.names(Provenance::kBuiltin).size(), 13u);
  EXPECT_EQ(reg.names(Provenance::kExtension).size(), 6u);
  for (const auto& n : kernels::training_kernel_names()) {
    EXPECT_TRUE(reg.contains(n)) << n;
    EXPECT_EQ(reg.entry(n).provenance, Provenance::kBuiltin) << n;
  }
  for (const auto& n : kernels::extension_kernel_names())
    EXPECT_EQ(reg.entry(n).provenance, Provenance::kExtension) << n;
}

TEST(Registry, MakeKernelDelegatesToGlobal) {
  kir::Kernel a = kernels::make_kernel("gemm-ncubed");
  kir::Kernel b = Registry::global().get("gemm-ncubed");
  EXPECT_EQ(oracle::kernel_digest(a), oracle::kernel_digest(b));
}

TEST(Registry, MissSuggestsNearNames) {
  try {
    kernels::make_kernel("gemm-ncube");  // one deletion away
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("gemm-ncubed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("builtin"), std::string::npos) << msg;
  }
}

TEST(Registry, MissStillThrowsInvalidArgument) {
  EXPECT_THROW(kernels::make_kernel("definitely-not-a-kernel"),
               std::invalid_argument);
  EXPECT_THROW(kernels::make_extension_kernel("aes"), std::invalid_argument);
}

TEST(Registry, FileKernelsCarryTheirPath) {
  Registry reg;
  reg.add(kernels::make_kernel("atax"), Provenance::kBuiltin);
  const std::string path = ::testing::TempDir() + "reg_file_kernel.json";
  kir::Kernel k = kernels::make_kernel("bicg");
  k.name = "bicg-from-file";
  frontend::save_kernel_file(k, path);
  EXPECT_EQ(reg.add_file(path), "bicg-from-file");
  const auto entry = reg.entry("bicg-from-file");
  EXPECT_EQ(entry.provenance, Provenance::kFile);
  EXPECT_EQ(entry.origin, path);
  EXPECT_EQ(oracle::kernel_digest(entry.kernel), oracle::kernel_digest(k));
  std::remove(path.c_str());
}

TEST(Registry, ResolveLoadsPathsOnDemand) {
  Registry reg;
  const std::string path = ::testing::TempDir() + "reg_resolve_kernel.json";
  kir::Kernel k = kernels::generate(kernels::GeneratorConfig{}, 3);
  frontend::save_kernel_file(k, path);
  kir::Kernel loaded = reg.resolve(path);
  EXPECT_EQ(oracle::kernel_digest(loaded), oracle::kernel_digest(k));
  // Registered under its kernel name afterwards.
  EXPECT_TRUE(reg.contains(k.name));
  std::remove(path.c_str());
}

TEST(Registry, AddDirectoryRegistersSortedJsonFiles) {
  Registry reg;
  const std::string dir = ::testing::TempDir() + "reg_dir_kernels";
  std::filesystem::create_directories(dir);
  kernels::GeneratorConfig cfg;
  for (std::uint64_t seed = 10; seed < 13; ++seed)
    frontend::save_kernel_file(kernels::generate(cfg, seed),
                               dir + "/k" + std::to_string(seed) + ".json");
  std::ofstream(dir + "/notes.txt") << "ignored";
  auto names = reg.add_directory(dir);
  EXPECT_EQ(names.size(), 3u);
  EXPECT_EQ(reg.names(Provenance::kFile).size(), 3u);
  std::filesystem::remove_all(dir);
}

TEST(Registry, AddRejectsInvalidKernels) {
  Registry reg;
  kir::Kernel k = kernels::make_kernel("aes");
  k.loops[0].trip_count = -1;
  EXPECT_THROW(reg.add(std::move(k), Provenance::kGenerated),
               std::invalid_argument);
}

TEST(Registry, EmptyRegistryMissMentionsFileHint) {
  Registry reg;
  try {
    reg.get("anything");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(".json"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace gnndse
