// Model-driven DSE and the AutoDSE baseline: exhaustive vs heuristic paths,
// top-M evaluation, the full pipeline and DB-augmentation rounds.
// Kept cheap: tiny models, small budgets.
#include "dse/dse.hpp"
#include "dse/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "db/explorer.hpp"
#include "kernels/kernels.hpp"
#include "oracle/evaluator.hpp"

namespace gnndse::dse {
namespace {

PipelineOptions tiny_pipeline() {
  PipelineOptions po;
  po.main_epochs = 4;
  po.bram_epochs = 2;
  po.classifier_epochs = 2;
  po.hidden = 16;
  po.gnn_layers = 3;
  return po;
}

db::Database tiny_db(const std::vector<kir::Kernel>& kernels, int budget) {
  oracle::SimEvaluator hls;
  util::Rng rng(33);
  return db::generate_initial_database(
      kernels, hls, rng, [budget](const std::string&) { return budget; });
}

class DseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    kernels_ = {kernels::make_kernel("gemm-ncubed"),
                kernels::make_kernel("spmv-crs")};
    database_ = tiny_db(kernels_, 150);
    models_ = std::make_unique<TrainedModels>(database_, kernels_, factory_,
                                              tiny_pipeline());
    dse_ = std::make_unique<ModelDse>(models_->bundle(),
                                      models_->normalizer(), factory_);
  }

  oracle::SimEvaluator hls_;
  std::vector<kir::Kernel> kernels_;
  db::Database database_;
  model::SampleFactory factory_;
  std::unique_ptr<TrainedModels> models_;
  std::unique_ptr<ModelDse> dse_;
};

TEST_F(DseFixture, ExhaustiveSweepCoversSmallSpace) {
  const kir::Kernel& spmv = kernels_[1];
  dspace::DesignSpace space(spmv);
  DseOptions opts;
  opts.top_m = 5;
  util::Rng rng(3);
  DseResult r = dse_->run(spmv, opts, rng);
  EXPECT_EQ(r.num_explored, space.pruned_size());
  ASSERT_EQ(r.top.size(), 5u);
  EXPECT_GT(r.search_seconds, 0.0);
}

TEST_F(DseFixture, HeuristicPathRespectsTimeLimit) {
  const kir::Kernel& gemm = kernels_[0];
  DseOptions opts;
  opts.max_exhaustive = 100;  // force the heuristic path
  opts.time_limit_seconds = 2.0;
  util::Rng rng(3);
  DseResult r = dse_->run(gemm, opts, rng);
  EXPECT_GT(r.num_explored, 50u);
  EXPECT_LT(r.search_seconds, 10.0);
  EXPECT_FALSE(r.top.empty());
}

TEST_F(DseFixture, TopDesignsBeatNeutralAfterHlsCheck) {
  const kir::Kernel& gemm = kernels_[0];
  DseOptions opts;
  opts.top_m = 10;
  opts.max_exhaustive = 50'000;
  util::Rng rng(3);
  DseResult r = dse_->run(gemm, opts, rng);
  auto ev = dse_->evaluate_top(gemm, r, hls_);
  ASSERT_TRUE(ev.best.has_value());
  const double neutral =
      hls_.evaluate(gemm, hlssim::DesignConfig::neutral(gemm)).cycles;
  EXPECT_LT(ev.best->result.cycles, neutral);
  EXPECT_GT(ev.hls_seconds, 0.0);
  EXPECT_EQ(ev.evaluated.size(), r.top.size());
}

TEST_F(DseFixture, EvaluateTopAppendsToDatabase) {
  const kir::Kernel& spmv = kernels_[1];
  DseOptions opts;
  opts.top_m = 5;
  util::Rng rng(3);
  DseResult r = dse_->run(spmv, opts, rng);
  db::Database out;
  dse_->evaluate_top(spmv, r, hls_, 0.8, &out);
  EXPECT_EQ(out.size(), r.top.size());
}

TEST(AutoDseBaseline, ImprovesAndAccountsTime) {
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  oracle::SimEvaluator hls;
  AutoDseOutcome out = run_autodse_baseline(k, hls, 6.0 * 3600.0);
  EXPECT_GT(out.evals, 20);
  EXPECT_GT(out.simulated_seconds, 0.0);
  EXPECT_LE(out.simulated_seconds, 6.0 * 3600.0 + 1.0);
  const double neutral =
      hls.evaluate(k, hlssim::DesignConfig::neutral(k)).cycles;
  EXPECT_LT(out.best_cycles, neutral);
}

TEST(Rounds, ReportsPerRoundDseQuality) {
  // Fig 7 semantics: each round's speedup is the design found by *that*
  // round's DSE vs the initial database best (can dip below 1x early).
  auto kernels = std::vector<kir::Kernel>{kernels::make_kernel("spmv-crs"),
                                          kernels::make_kernel("spmv-ellpack")};
  db::Database initial = tiny_db(kernels, 60);
  oracle::SimEvaluator hls;
  DseOptions dopts;
  dopts.top_m = 5;
  util::Rng rng(5);
  RoundsOutcome out =
      run_dse_rounds(initial, kernels, hls, 2, tiny_pipeline(), dopts, rng);
  ASSERT_EQ(out.speedups.size(), 2u);
  ASSERT_EQ(out.average.size(), 2u);
  for (const auto& k : kernels) {
    EXPECT_GT(out.speedups[0].at(k.name), 0.0);
    EXPECT_GT(out.speedups[1].at(k.name), 0.0);
    EXPECT_TRUE(std::isfinite(out.speedups[1].at(k.name)));
  }
  // The augmented designs (top-M per kernel per round) joined the DB.
  EXPECT_GE(out.final_db.size(), initial.size());
  EXPECT_GT(out.average[1], 0.0);
}

TEST(TrainedModelsCache, RoundTripsThroughDisk) {
  auto kernels = std::vector<kir::Kernel>{kernels::make_kernel("aes")};
  db::Database database = tiny_db(kernels, 20);
  const std::string prefix = ::testing::TempDir() + "bundle_test";
  model::SampleFactory f1;
  TrainedModels first(database, kernels, f1, tiny_pipeline(), prefix);
  model::SampleFactory f2;
  TrainedModels second(database, kernels, f2, tiny_pipeline(), prefix);

  // Both bundles must produce identical predictions.
  kir::Kernel k = kernels[0];
  gnn::GraphData g = f1.featurize(k, hlssim::DesignConfig::neutral(k));
  auto p1 = first.bundle().regression_main->predict_graphs({&g});
  auto p2 = second.bundle().regression_main->predict_graphs({&g});
  for (std::int64_t i = 0; i < p1.numel(); ++i)
    EXPECT_FLOAT_EQ(p1.at(i), p2.at(i));
  for (const char* suffix : {".main.bin", ".bram.bin", ".cls.bin"})
    std::remove((prefix + suffix).c_str());
}

}  // namespace
}  // namespace gnndse::dse
