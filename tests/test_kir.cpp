#include "kir/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace gnndse::kir {
namespace {

Kernel two_loop_kernel() {
  KernelBuilder b("toy");
  const int arr = b.add_array("a", 64);
  const int outer = b.begin_loop("i", 16);
  const int inner = b.begin_loop("j", 8, outer);
  b.add_stmt(inner, "body", OpMix{.adds = 1},
             {ArrayAccess{arr, false, AccessKind::kSequential, inner}});
  auto& li = b.loop(outer);
  li.can_pipeline = true;
  auto& lj = b.loop(inner);
  lj.can_parallel = true;
  lj.parallel_options = {1, 2, 4, 8};
  return b.build();
}

TEST(KernelBuilder, BuildsValidKernel) {
  Kernel k = two_loop_kernel();
  EXPECT_EQ(k.name, "toy");
  ASSERT_EQ(k.loops.size(), 2u);
  EXPECT_EQ(k.loops[0].children, std::vector<int>{1});
  EXPECT_EQ(k.loops[1].parent, 0);
  EXPECT_EQ(k.top_loops, std::vector<int>{0});
  ASSERT_EQ(k.stmts.size(), 1u);
  EXPECT_EQ(k.stmts[0].parent_loop, 1);
}

TEST(Kernel, PragmaSiteCount) {
  Kernel k = two_loop_kernel();
  EXPECT_EQ(k.num_pragma_sites(), 2);
  EXPECT_EQ(k.loops[0].num_pragma_sites(), 1);
  EXPECT_EQ(k.loops[1].num_pragma_sites(), 1);
}

TEST(Kernel, DepthAndAncestry) {
  Kernel k = two_loop_kernel();
  EXPECT_EQ(k.loop_depth(0), 0);
  EXPECT_EQ(k.loop_depth(1), 1);
  EXPECT_TRUE(k.is_ancestor(0, 1));
  EXPECT_FALSE(k.is_ancestor(1, 0));
  EXPECT_FALSE(k.is_ancestor(0, 0));
}

TEST(Kernel, SubtreeAndInnermost) {
  Kernel k = two_loop_kernel();
  EXPECT_EQ(k.subtree(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(k.subtree(1), std::vector<int>{1});
  EXPECT_EQ(k.innermost_loops(), std::vector<int>{1});
}

TEST(KernelValidate, RejectsZeroTripCount) {
  KernelBuilder b("bad");
  b.begin_loop("i", 0);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(KernelValidate, RejectsFactorOverTrip) {
  KernelBuilder b("bad");
  const int l = b.begin_loop("i", 4);
  b.add_stmt(l, "s", OpMix{.adds = 1});
  auto& loop = b.loop(l);
  loop.can_parallel = true;
  loop.parallel_options = {1, 8};  // 8 > trip count 4
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(KernelValidate, RequiresOptionOne) {
  KernelBuilder b("bad");
  const int l = b.begin_loop("i", 4);
  b.add_stmt(l, "s", OpMix{.adds = 1});
  auto& loop = b.loop(l);
  loop.can_parallel = true;
  loop.parallel_options = {2, 4};  // missing the "absent" option 1
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(KernelValidate, RejectsOptionsWithoutSite) {
  KernelBuilder b("bad");
  const int l = b.begin_loop("i", 4);
  b.add_stmt(l, "s", OpMix{.adds = 1});
  b.loop(l).tile_options = {1, 2};  // can_tile stays false
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(KernelValidate, RejectsBadRecurrence) {
  KernelBuilder b("bad");
  const int l = b.begin_loop("i", 4);
  const int s = b.add_stmt(l, "s", OpMix{.adds = 1});
  b.set_recurrence(s, l, /*distance=*/0, /*latency=*/3);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(CandidateFactors, DivisorsAndPowersOfTwo) {
  // 12: divisors <= 8 are 1,2,3,4,6; non-divisor powers of two: 8;
  // plus the full trip count (12 <= 4*8).
  auto f = candidate_factors(12, 8);
  EXPECT_EQ(f, (std::vector<std::int64_t>{1, 2, 3, 4, 6, 8, 12}));
}

TEST(CandidateFactors, PowersOfTwoOnly) {
  auto f = candidate_factors(16, 8, /*powers_of_two_only=*/true);
  EXPECT_EQ(f, (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
}

TEST(CandidateFactors, LargeTripOmitsFullUnroll) {
  auto f = candidate_factors(400, 64);
  EXPECT_EQ(std::count(f.begin(), f.end(), 400), 0);
  EXPECT_TRUE(std::is_sorted(f.begin(), f.end()));
  for (auto v : f) EXPECT_LE(v, 64);
}

TEST(CandidateFactors, AlwaysIncludesOne) {
  for (std::int64_t trip : {2, 3, 7, 10, 100, 499}) {
    auto f = candidate_factors(trip);
    ASSERT_FALSE(f.empty());
    EXPECT_EQ(f.front(), 1);
  }
}

TEST(KernelBuilder, MultiFunctionBookkeeping) {
  KernelBuilder b("multi");
  const int l0 = b.begin_loop("i", 4);
  b.add_stmt(l0, "s", OpMix{.adds = 1});
  b.set_num_functions(2);
  b.set_loop_function(l0, 1);
  Kernel k = b.build();
  EXPECT_EQ(k.function_of_loop(l0), 1);
}

}  // namespace
}  // namespace gnndse::kir
