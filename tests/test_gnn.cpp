// GNN library: batching invariants, layer shapes and gradient flow, and a
// learnability check — each conv kind must be able to separate two graph
// classes that differ only structurally.
#include "gnn/batch.hpp"
#include "gnn/conv.hpp"
#include "gnn/layers.hpp"
#include "gnn/pool.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/adam.hpp"

namespace gnndse::gnn {
namespace {

using tensor::Tape;
using tensor::Tensor;
using tensor::VarId;

GraphData triangle(float scale) {
  GraphData g;
  // Distinct per-node features (identity-like): attention-normalized
  // layers like GAT are degree-invariant on identical features, so graph
  // structure is only observable when node features differ.
  g.x = Tensor({3, 4});
  for (std::int64_t i = 0; i < 3; ++i) {
    g.x.at(i, i) = scale;
    g.x.at(i, 3) = 0.5f * scale;
  }
  g.src = {0, 1, 2};
  g.dst = {1, 2, 0};
  g.e = Tensor({3, 2}, {1, 0, 1, 0, 0, 1});
  return g;
}

// A path graph 0->1->2 (no cycle) with the same features as triangle.
GraphData path(float scale) {
  GraphData g = triangle(scale);
  g.src = {0, 1};
  g.dst = {1, 2};
  g.e = Tensor({2, 2}, {1, 0, 0, 1});
  return g;
}

TEST(Batch, DisjointUnionOffsets) {
  GraphData a = triangle(1.0f);
  GraphData b = path(2.0f);
  GraphBatch batch = make_batch({&a, &b});
  EXPECT_EQ(batch.num_nodes, 6);
  EXPECT_EQ(batch.num_graphs, 2);
  ASSERT_EQ(batch.src.size(), 5u);
  EXPECT_EQ(batch.src[3], 3);  // b's first edge shifted by 3
  EXPECT_EQ(batch.dst[4], 5);
  EXPECT_EQ(batch.node_graph[2], 0);
  EXPECT_EQ(batch.node_graph[3], 1);
  EXPECT_EQ(batch.node_offset, (std::vector<std::int64_t>{0, 3, 6}));
}

TEST(Batch, SelfLoopsAppended) {
  GraphData a = triangle(1.0f);
  GraphBatch batch = make_batch({&a});
  EXPECT_EQ(batch.src_sl.size(), a.src.size() + 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(batch.src_sl[a.src.size() + static_cast<std::size_t>(i)], i);
    EXPECT_EQ(batch.dst_sl[a.src.size() + static_cast<std::size_t>(i)], i);
  }
}

TEST(Batch, GcnCoefficientsSymmetricNormalized) {
  GraphData a = triangle(1.0f);
  GraphBatch batch = make_batch({&a});
  // Triangle + self loops: every node has in-degree 2.
  for (float c : batch.gcn_coeff) EXPECT_NEAR(c, 0.5f, 1e-6f);
}

TEST(Batch, MismatchedFeaturesThrow) {
  GraphData a = triangle(1.0f);
  GraphData b = triangle(1.0f);
  b.x = Tensor({3, 5});
  EXPECT_THROW(make_batch({&a, &b}), std::invalid_argument);
  EXPECT_THROW(make_batch({}), std::invalid_argument);
}

TEST(Linear, ShapeAndBias) {
  util::Rng rng(1);
  Linear lin(4, 3, rng);
  Tape t;
  VarId x = t.constant(Tensor({2, 4}, {1, 0, 0, 0, 0, 1, 0, 0}));
  VarId y = lin.forward(t, x);
  EXPECT_EQ(t.value(y).rows(), 2);
  EXPECT_EQ(t.value(y).cols(), 3);
  EXPECT_EQ(lin.params().size(), 2u);
}

TEST(Mlp, BuildsRequestedDepth) {
  util::Rng rng(1);
  Mlp mlp({8, 16, 8, 1}, rng);
  EXPECT_EQ(mlp.params().size(), 6u);  // 3 layers x (W, b)
  Tape t;
  VarId y = mlp.forward(t, t.constant(Tensor({5, 8})));
  EXPECT_EQ(t.value(y).rows(), 5);
  EXPECT_EQ(t.value(y).cols(), 1);
}

template <typename ConvT, typename... Args>
void check_conv_shapes(Args&&... args) {
  util::Rng rng(7);
  ConvT conv(4, 6, std::forward<Args>(args)..., rng);
  GraphData a = triangle(1.0f);
  GraphData b = path(1.5f);
  GraphBatch batch = make_batch({&a, &b});
  Tape t;
  VarId h = conv.forward(t, t.constant(batch.x), batch);
  EXPECT_EQ(t.value(h).rows(), 6);
  EXPECT_EQ(t.value(h).cols(), 6);
  EXPECT_FALSE(conv.params().empty());
}

TEST(Conv, GcnShapes) { check_conv_shapes<GCNConv>(); }
TEST(Conv, GatShapes) { check_conv_shapes<GATConv>(); }
TEST(Conv, TransformerShapes) { check_conv_shapes<TransformerConv>(2); }

TEST(AttentionPool, ScoresSumToOnePerGraph) {
  util::Rng rng(3);
  AttentionPool pool(4, rng);
  GraphData a = triangle(1.0f);
  GraphData b = path(0.5f);
  GraphBatch batch = make_batch({&a, &b});
  Tape t;
  VarId g = pool.forward(t, t.constant(batch.x), batch);
  EXPECT_EQ(t.value(g).rows(), 2);
  EXPECT_EQ(t.value(g).cols(), 4);
  const Tensor& alpha = t.value(pool.last_scores());
  float sum_a = 0, sum_b = 0;
  for (std::int64_t i = 0; i < 3; ++i) sum_a += alpha.at(i, 0);
  for (std::int64_t i = 3; i < 6; ++i) sum_b += alpha.at(i, 0);
  EXPECT_NEAR(sum_a, 1.0f, 1e-5f);
  EXPECT_NEAR(sum_b, 1.0f, 1e-5f);
}

TEST(SumPool, AddsNodeRows) {
  GraphData a = triangle(1.0f);
  GraphBatch batch = make_batch({&a});
  Tape t;
  VarId g = sum_pool(t, t.constant(batch.x), batch);
  for (std::int64_t c = 0; c < batch.x.cols(); ++c) {
    float expect = 0;
    for (std::int64_t i = 0; i < 3; ++i) expect += batch.x.at(i, c);
    EXPECT_NEAR(t.value(g).at(0, c), expect, 1e-5f);
  }
}

TEST(JumpingKnowledge, TakesElementwiseMax) {
  Tape t;
  VarId a = t.constant(Tensor({2, 2}, {1, 5, 3, 0}));
  VarId b = t.constant(Tensor({2, 2}, {2, 4, 1, 7}));
  VarId m = jumping_knowledge_max(t, {a, b});
  EXPECT_FLOAT_EQ(t.value(m).at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(t.value(m).at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(t.value(m).at(1, 1), 7.0f);
}

// Learnability: a single conv layer + pooling + linear head must separate
// a cyclic graph from an acyclic one with identical node features (pure
// structure signal). Parameterized over the three conv kinds.
enum class ConvKind { kGcn, kGat, kTransformer };

class ConvLearnability : public ::testing::TestWithParam<ConvKind> {};

TEST_P(ConvLearnability, SeparatesCycleFromPath) {
  util::Rng rng(11);
  std::unique_ptr<ConvLayer> conv;
  switch (GetParam()) {
    case ConvKind::kGcn:
      conv = std::make_unique<GCNConv>(4, 8, rng);
      break;
    case ConvKind::kGat:
      conv = std::make_unique<GATConv>(4, 8, rng);
      break;
    case ConvKind::kTransformer:
      conv = std::make_unique<TransformerConv>(4, 8, 2, rng);
      break;
  }
  Linear head(8, 1, rng);
  tensor::Adam opt(tensor::AdamConfig{.lr = 0.01f});
  opt.register_params(conv->params());
  opt.register_params(head.params());

  GraphData cyc = triangle(1.0f);
  GraphData lin = path(1.0f);
  GraphBatch batch = make_batch({&cyc, &lin});
  Tensor labels({2, 1}, {1.0f, 0.0f});

  float loss = 1e9f;
  for (int step = 0; step < 600; ++step) {
    opt.zero_grad();
    Tape t;
    VarId h = t.elu(conv->forward(t, t.constant(batch.x), batch));
    VarId pooled = sum_pool(t, h, batch);
    VarId logit = head.forward(t, pooled);
    VarId l = t.bce_with_logits(logit, labels);
    loss = t.value(l).at(0);
    t.backward(l);
    opt.step();
  }
  EXPECT_LT(loss, 0.1f);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ConvLearnability,
                         ::testing::Values(ConvKind::kGcn, ConvKind::kGat,
                                           ConvKind::kTransformer),
                         [](const auto& info) {
                           switch (info.param) {
                             case ConvKind::kGcn: return "GCN";
                             case ConvKind::kGat: return "GAT";
                             default: return "TransformerConv";
                           }
                         });

TEST(TransformerConv, EdgeFeaturesInfluenceOutput) {
  util::Rng rng(5);
  TransformerConv conv(4, 8, 2, rng);
  GraphData a = triangle(1.0f);
  GraphBatch b1 = make_batch({&a});
  GraphData a2 = a;
  a2.e = Tensor({3, 2}, {0, 1, 0, 1, 1, 0});  // flip edge features
  GraphBatch b2 = make_batch({&a2});
  Tape t1, t2;
  const Tensor& o1 = t1.value(conv.forward(t1, t1.constant(b1.x), b1));
  const Tensor& o2 = t2.value(conv.forward(t2, t2.constant(b2.x), b2));
  float diff = 0;
  for (std::int64_t i = 0; i < o1.numel(); ++i)
    diff += std::abs(o1.at(i) - o2.at(i));
  EXPECT_GT(diff, 1e-4f);
}

TEST(GatConv, AttentionIgnoresEdgeFeatures) {
  // Documented contrast with TransformerConv (the paper's motivation for
  // switching): GAT's aggregation does not read edge embeddings.
  util::Rng rng(5);
  GATConv conv(4, 8, rng);
  GraphData a = triangle(1.0f);
  GraphBatch b1 = make_batch({&a});
  GraphData a2 = a;
  a2.e = Tensor({3, 2}, {0, 1, 0, 1, 1, 0});
  GraphBatch b2 = make_batch({&a2});
  Tape t1, t2;
  const Tensor& o1 = t1.value(conv.forward(t1, t1.constant(b1.x), b1));
  const Tensor& o2 = t2.value(conv.forward(t2, t2.constant(b2.x), b2));
  for (std::int64_t i = 0; i < o1.numel(); ++i)
    EXPECT_FLOAT_EQ(o1.at(i), o2.at(i));
}

}  // namespace
}  // namespace gnndse::gnn
