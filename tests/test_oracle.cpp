// The oracle layer (src/oracle/): kernel digests, the caching decorator's
// persistence and bit-identical replay, deterministic fault injection,
// bounded retry, and batch-vs-serial equivalence at every thread count.
// Labeled `tsan` — CachingEvaluator and FaultInjectingEvaluator are the
// shared mutable state every parallel batch hammers.
#include "oracle/caching.hpp"
#include "oracle/evaluator.hpp"
#include "oracle/fault.hpp"
#include "oracle/stack.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <vector>

#include "db/explorer.hpp"
#include "dspace/design_space.hpp"
#include "kernels/kernels.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gnndse::oracle {
namespace {

using hlssim::DesignConfig;
using hlssim::HlsResult;

void expect_identical(const HlsResult& a, const HlsResult& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.invalid_reason, b.invalid_reason);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dsp, b.dsp);
  EXPECT_EQ(a.bram, b.bram);
  EXPECT_EQ(a.lut, b.lut);
  EXPECT_EQ(a.ff, b.ff);
  EXPECT_DOUBLE_EQ(a.synth_seconds, b.synth_seconds);
  EXPECT_DOUBLE_EQ(a.util_dsp, b.util_dsp);
  EXPECT_DOUBLE_EQ(a.util_bram, b.util_bram);
  EXPECT_DOUBLE_EQ(a.util_lut, b.util_lut);
  EXPECT_DOUBLE_EQ(a.util_ff, b.util_ff);
}

std::vector<DesignConfig> sample_configs(const kir::Kernel& k, int n,
                                         std::uint64_t seed = 11) {
  dspace::DesignSpace space(k);
  util::Rng rng(seed);
  std::vector<DesignConfig> cfgs;
  cfgs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) cfgs.push_back(space.sample(rng));
  return cfgs;
}

/// Counts the evaluations that actually reach the substrate — what the
/// warm-start acceptance criterion calls "fresh hlssim evaluations".
class CountingEvaluator final : public Evaluator {
 public:
  HlsResult evaluate(const kir::Kernel& k, const DesignConfig& cfg) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return sim_.evaluate(k, cfg);
  }
  std::atomic<int> calls{0};

 private:
  SimEvaluator sim_;
};

/// Faults unconditionally — exercises retry exhaustion without relying on
/// a fault rate.
class AlwaysFaulting final : public Evaluator {
 public:
  HlsResult evaluate(const kir::Kernel&, const DesignConfig&) override {
    HlsResult r;
    r.valid = false;
    r.invalid_reason = "fault: HLS tool crashed (test double)";
    r.synth_seconds = 60.0;
    return r;
  }
};

/// Faults the first `failures` attempts per config key, then defers to the
/// substrate — the transient-crash shape retry is meant to absorb.
class FlakyEvaluator final : public Evaluator {
 public:
  explicit FlakyEvaluator(int failures) : failures_(failures) {}
  HlsResult evaluate(const kir::Kernel& k, const DesignConfig& cfg) override {
    int seen;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seen = attempts_[cfg.key()]++;
    }
    if (seen < failures_) {
      HlsResult r;
      r.valid = false;
      r.invalid_reason = "fault: HLS tool crashed (flaky test double)";
      r.synth_seconds = 60.0;
      return r;
    }
    return sim_.evaluate(k, cfg);
  }

 private:
  int failures_;
  SimEvaluator sim_;
  std::mutex mu_;
  std::unordered_map<std::string, int> attempts_;
};

TEST(KernelDigest, StableAndSensitiveToStructure) {
  kir::Kernel a = kernels::make_kernel("gemm-ncubed");
  kir::Kernel b = kernels::make_kernel("gemm-ncubed");
  EXPECT_EQ(kernel_digest(a), kernel_digest(b));
  EXPECT_EQ(digest_key(a), digest_key(b));
  // The key leads with the kernel name (it rides in the CSV kernel column).
  EXPECT_EQ(digest_key(a).rfind("gemm-ncubed@", 0), 0u);

  // A structural edit — not just a rename — must change the digest.
  b.loops[0].trip_count += 1;
  EXPECT_NE(kernel_digest(a), kernel_digest(b));
  kir::Kernel c = kernels::make_kernel("gemm-ncubed");
  c.name = "gemm-renamed";
  EXPECT_NE(digest_key(a), digest_key(c));

  EXPECT_NE(kernel_digest(a), kernel_digest(kernels::make_kernel("aes")));
}

TEST(Caching, CachedResultIsBitIdenticalToFresh) {
  kir::Kernel k = kernels::make_kernel("spmv-crs");
  SimEvaluator fresh;
  CountingEvaluator counted;
  CachingEvaluator cache(counted);
  for (const auto& cfg : sample_configs(k, 40)) {
    HlsResult first = cache.evaluate(k, cfg);
    HlsResult second = cache.evaluate(k, cfg);  // served from memory
    expect_identical(first, fresh.evaluate(k, cfg));
    expect_identical(first, second);
  }
  EXPECT_GT(cache.size(), 0u);
}

TEST(Caching, PersistRoundTripServesWithoutFreshEvaluations) {
  kir::Kernel k = kernels::make_kernel("atax");
  const std::string path = ::testing::TempDir() + "oracle_cache_rt.csv";
  std::remove(path.c_str());
  auto cfgs = sample_configs(k, 30);

  std::vector<HlsResult> first;
  {
    SimEvaluator sim;
    CachingEvaluator cache(sim, path);
    for (const auto& cfg : cfgs) first.push_back(cache.evaluate(k, cfg));
  }  // destructor flushes to disk

  CountingEvaluator counted;
  CachingEvaluator warm(counted, path);
  EXPECT_GT(warm.size(), 0u);  // unique sampled keys, loaded from disk
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    ASSERT_TRUE(warm.contains(k, cfgs[i]));
    expect_identical(warm.evaluate(k, cfgs[i]), first[i]);
  }
  EXPECT_EQ(counted.calls.load(), 0);  // zero fresh substrate evaluations
  std::remove(path.c_str());
}

TEST(Caching, KernelEditInvalidatesOnlyThatKernel) {
  kir::Kernel k = kernels::make_kernel("bicg");
  kir::Kernel other = kernels::make_kernel("aes");
  const std::string path = ::testing::TempDir() + "oracle_cache_inval.csv";
  std::remove(path.c_str());
  auto cfgs = sample_configs(k, 10);
  {
    SimEvaluator sim;
    CachingEvaluator cache(sim, path);
    for (const auto& cfg : cfgs) cache.evaluate(k, cfg);
    cache.evaluate(other, DesignConfig::neutral(other));
  }

  // Same structure -> warm. Edited structure -> every entry is a miss,
  // while the untouched kernel's entries survive.
  kir::Kernel edited = kernels::make_kernel("bicg");
  edited.loops[0].trip_count *= 2;
  CountingEvaluator counted;
  CachingEvaluator warm(counted, path);
  EXPECT_TRUE(warm.contains(k, cfgs[0]));
  EXPECT_TRUE(warm.contains(other, DesignConfig::neutral(other)));
  EXPECT_FALSE(warm.contains(edited, cfgs[0]));
  warm.evaluate(edited, cfgs[0]);
  EXPECT_EQ(counted.calls.load(), 1);
  std::remove(path.c_str());
}

TEST(Caching, FaultsAreNeverCached) {
  kir::Kernel k = kernels::make_kernel("aes");
  AlwaysFaulting faulty;
  CachingEvaluator cache(faulty);
  DesignConfig cfg = DesignConfig::neutral(k);
  HlsResult r = cache.evaluate(k, cfg);
  EXPECT_TRUE(is_fault(r));
  EXPECT_EQ(cache.size(), 0u);  // transient: property of the invocation
  EXPECT_FALSE(cache.contains(k, cfg));
}

TEST(Fault, DeterministicAtFixedSeed) {
  kir::Kernel k = kernels::make_kernel("mvt");
  auto cfgs = sample_configs(k, 200);

  auto pattern = [&](std::uint64_t seed) {
    SimEvaluator sim;
    FaultInjectingEvaluator inject(sim, 0.3, seed);
    std::vector<bool> faults;
    for (const auto& cfg : cfgs) faults.push_back(is_fault(inject.evaluate(k, cfg)));
    return faults;
  };

  auto a = pattern(0x5eed);
  auto b = pattern(0x5eed);
  EXPECT_EQ(a, b);  // same seed -> identical fault pattern
  auto c = pattern(0xc0ffee);
  EXPECT_NE(a, c);  // different seed -> different pattern
  int faulted = 0;
  for (bool f : a) faulted += f ? 1 : 0;
  // ~30% of 200 draws; wide bounds keep this deterministic-hash test tight
  // against regressions without assuming the exact hash.
  EXPECT_GT(faulted, 20);
  EXPECT_LT(faulted, 120);
}

TEST(Fault, RateEndpointsAndRetryReroll) {
  kir::Kernel k = kernels::make_kernel("aes");
  DesignConfig cfg = DesignConfig::neutral(k);
  SimEvaluator sim;

  FaultInjectingEvaluator off(sim, 0.0);
  EXPECT_FALSE(is_fault(off.evaluate(k, cfg)));

  FaultInjectingEvaluator always(sim, 1.0);
  HlsResult r = always.evaluate(k, cfg);
  EXPECT_TRUE(is_fault(r));
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.invalid_reason.rfind("fault:", 0), 0u);
  EXPECT_DOUBLE_EQ(r.synth_seconds,
                   FaultInjectingEvaluator::kFaultSynthSeconds);

  // Each attempt on the same key gets an independent draw: at rate 0.5 a
  // run of repeated calls cannot be all-fault or all-pass.
  FaultInjectingEvaluator half(sim, 0.5, 7);
  int faults = 0;
  for (int i = 0; i < 64; ++i) faults += is_fault(half.evaluate(k, cfg));
  EXPECT_GT(faults, 0);
  EXPECT_LT(faults, 64);
}

TEST(Retry, AbsorbsTransientFaultsAndBillsBackoff) {
  kir::Kernel k = kernels::make_kernel("gemm-blocked");
  DesignConfig cfg = DesignConfig::neutral(k);
  SimEvaluator sim;
  HlsResult bare = sim.evaluate(k, cfg);

  FlakyEvaluator flaky(2);  // crashes twice, then succeeds
  RetryingEvaluator retry(flaky, 3);
  HlsResult r = retry.evaluate(k, cfg);
  EXPECT_EQ(r.valid, bare.valid);
  EXPECT_DOUBLE_EQ(r.cycles, bare.cycles);
  // Two crashed attempts (60s each) plus backoff 30s*2^0 + 30s*2^1 ride on
  // top of the successful attempt's synthesis time.
  EXPECT_DOUBLE_EQ(r.synth_seconds, bare.synth_seconds + 2 * 60.0 + 30.0 + 60.0);
}

TEST(Retry, ExhaustionSurfacesFaultNotException) {
  kir::Kernel k = kernels::make_kernel("aes");
  AlwaysFaulting faulty;
  RetryingEvaluator retry(faulty, 2);
  HlsResult r;
  ASSERT_NO_THROW(r = retry.evaluate(k, DesignConfig::neutral(k)));
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.invalid_reason.rfind("fault:", 0), 0u);
  EXPECT_NE(r.invalid_reason.find("retries exhausted"), std::string::npos);
  EXPECT_TRUE(is_fault(r));  // exhaustion stays in the fault class
}

TEST(Retry, PassesThroughNonFaultFailures) {
  // Refusals and timeouts carry information about the design point; the
  // retry layer must not spend budget on them.
  class Refusing final : public Evaluator {
   public:
    HlsResult evaluate(const kir::Kernel&, const DesignConfig&) override {
      ++calls;
      HlsResult r;
      r.valid = false;
      r.invalid_reason = "refused: unroll product over limit";
      r.synth_seconds = 5.0;
      return r;
    }
    int calls = 0;
  };
  Refusing inner;
  RetryingEvaluator retry(inner, 3);
  kir::Kernel k = kernels::make_kernel("aes");
  HlsResult r = retry.evaluate(k, DesignConfig::neutral(k));
  EXPECT_EQ(inner.calls, 1);
  EXPECT_EQ(r.invalid_reason.rfind("refused:", 0), 0u);
  EXPECT_DOUBLE_EQ(r.synth_seconds, 5.0);
}

TEST(Batch, MatchesSerialAtEveryThreadCount) {
  kir::Kernel k = kernels::make_kernel("stencil");
  auto cfgs = sample_configs(k, 64);
  SimEvaluator serial_sim;
  std::vector<HlsResult> serial;
  for (const auto& cfg : cfgs) serial.push_back(serial_sim.evaluate(k, cfg));

  for (int threads : {1, 2, 4, 8}) {
    util::set_parallel_threads(threads);
    SimEvaluator sim;
    CachingEvaluator cache(sim);
    auto batch = cache.evaluate_batch(k, cfgs);
    ASSERT_EQ(batch.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i)
      expect_identical(batch[i], serial[i]);
  }
  util::set_parallel_threads(0);  // back to the GNNDSE_THREADS default
}

TEST(Stack, FaultFreeStackIsBitIdenticalToBareSubstrate) {
  kir::Kernel k = kernels::make_kernel("spmv-ellpack");
  OracleOptions opts;  // defaults: no cache file, fault rate 0
  OracleStack stack(opts);
  SimEvaluator bare;
  for (const auto& cfg : sample_configs(k, 40))
    expect_identical(stack.evaluate(k, cfg), bare.evaluate(k, cfg));
}

TEST(Stack, RecoversFromInjectedFaultsAtModerateRate) {
  // With bounded retries, a 20% per-attempt fault rate still resolves the
  // overwhelming majority of points to their fault-free results.
  kir::Kernel k = kernels::make_kernel("gemver");
  OracleOptions opts;
  opts.fault_rate = 0.2;
  opts.retries = 6;
  OracleStack stack(opts);
  SimEvaluator bare;
  auto cfgs = sample_configs(k, 50);
  int recovered = 0;
  for (const auto& cfg : cfgs) {
    HlsResult r = stack.evaluate(k, cfg);
    if (is_fault(r)) continue;
    HlsResult b = bare.evaluate(k, cfg);
    EXPECT_EQ(r.valid, b.valid);
    EXPECT_DOUBLE_EQ(r.cycles, b.cycles);
    EXPECT_GE(r.synth_seconds, b.synth_seconds);  // backoff only adds time
    ++recovered;
  }
  EXPECT_GE(recovered, 45);  // p(exhaust 7 attempts at 0.2) = 0.2^7
}

TEST(WarmStart, SecondDatabaseRunPerformsZeroFreshEvaluations) {
  // The acceptance criterion behind GNNDSE_ORACLE_CACHE: rerunning
  // generate_initial_database against a warm persistent cache touches the
  // substrate zero times and reproduces the database exactly.
  const std::string path = ::testing::TempDir() + "oracle_warmstart.csv";
  std::remove(path.c_str());
  std::vector<kir::Kernel> kernels{kernels::make_kernel("atax"),
                                   kernels::make_kernel("spmv-crs")};
  auto budget = [](const std::string&) { return 50; };

  db::Database cold;
  {
    CountingEvaluator counted;
    CachingEvaluator cache(counted, path);
    util::Rng rng(13);
    cold = db::generate_initial_database(kernels, cache, rng, budget);
    EXPECT_GT(counted.calls.load(), 0);
  }

  CountingEvaluator counted;
  CachingEvaluator warm(counted, path);
  util::Rng rng(13);
  db::Database rerun = db::generate_initial_database(kernels, warm, rng, budget);
  EXPECT_EQ(counted.calls.load(), 0) << "warm cache must serve every point";
  ASSERT_EQ(rerun.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(rerun.points()[i].kernel, cold.points()[i].kernel);
    EXPECT_EQ(rerun.points()[i].config, cold.points()[i].config);
    expect_identical(rerun.points()[i].result, cold.points()[i].result);
  }
  std::remove(path.c_str());
}

TEST(WarmStart, StackWiresCachePathFromOptions) {
  const std::string path = ::testing::TempDir() + "oracle_stack_cache.csv";
  std::remove(path.c_str());
  kir::Kernel k = kernels::make_kernel("aes");
  DesignConfig cfg = DesignConfig::neutral(k);
  HlsResult first;
  {
    OracleOptions opts;
    opts.cache_path = path;
    OracleStack stack(opts);
    first = stack.evaluate(k, cfg);
    EXPECT_EQ(stack.cache().persist_path(), path);
  }
  OracleOptions opts;
  opts.cache_path = path;
  OracleStack warm(opts);
  EXPECT_TRUE(warm.cache().contains(k, cfg));
  expect_identical(warm.evaluate(k, cfg), first);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gnndse::oracle
