// HLS-substrate semantics: Merlin pragma behavior, II limits, resource
// scaling, validity rules and the synthetic synthesis clock. Properties are
// checked across the whole kernel suite with parameterized tests.
#include "hlssim/hls_sim.hpp"

#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "kernels/kernels_extension.hpp"

namespace gnndse::hlssim {
namespace {

const MerlinHls& hls() {
  static MerlinHls h;
  return h;
}

// --- config plumbing --------------------------------------------------------

TEST(DesignConfig, KeyRoundTrip) {
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[0].pipeline = PipeMode::kCoarse;
  cfg.loops[1].parallel = 8;
  cfg.loops[2].tile = 4;
  DesignConfig parsed = parse_config_key(cfg.key());
  EXPECT_EQ(parsed, cfg);
}

TEST(DesignConfig, ParseRejectsGarbage) {
  EXPECT_THROW(parse_config_key("L0:frobnicate/1/1"), std::invalid_argument);
  EXPECT_THROW(parse_config_key("nonsense"), std::invalid_argument);
}

TEST(PipeModeNames, Stable) {
  EXPECT_STREQ(to_string(PipeMode::kOff), "off");
  EXPECT_STREQ(to_string(PipeMode::kCoarse), "cg");
  EXPECT_STREQ(to_string(PipeMode::kFine), "fg");
}

// --- per-kernel invariants ---------------------------------------------------

class AllKernelsSim : public ::testing::TestWithParam<std::string> {};

TEST_P(AllKernelsSim, NeutralDesignIsValid) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  HlsResult r = hls().evaluate(k, DesignConfig::neutral(k));
  EXPECT_TRUE(r.valid) << r.invalid_reason;
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.lut, 0);
  EXPECT_GT(r.synth_seconds, 0.0);
}

TEST_P(AllKernelsSim, Deterministic) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops.back().pipeline = PipeMode::kFine;
  HlsResult a = hls().evaluate(k, cfg);
  HlsResult b = hls().evaluate(k, cfg);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.lut, b.lut);
  EXPECT_DOUBLE_EQ(a.synth_seconds, b.synth_seconds);
}

TEST_P(AllKernelsSim, UtilizationsConsistentWithCounts) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  HlsResult r = hls().evaluate(k, DesignConfig::neutral(k));
  FpgaResources dev;
  EXPECT_NEAR(r.util_dsp, static_cast<double>(r.dsp) / dev.dsp, 1e-9);
  EXPECT_NEAR(r.util_lut, static_cast<double>(r.lut) / dev.lut, 1e-9);
  EXPECT_NEAR(r.util_bram, static_cast<double>(r.bram) / dev.bram18, 1e-9);
  EXPECT_NEAR(r.util_ff, static_cast<double>(r.ff) / dev.ff, 1e-9);
}

TEST_P(AllKernelsSim, InnermostFinePipeliningHelps) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  const HlsResult base = hls().evaluate(k, DesignConfig::neutral(k));
  // fg-pipeline every innermost loop: never worse than fully sequential.
  DesignConfig cfg = DesignConfig::neutral(k);
  for (int l : k.innermost_loops())
    if (k.loops[static_cast<std::size_t>(l)].can_pipeline)
      cfg.loops[static_cast<std::size_t>(l)].pipeline = PipeMode::kFine;
  HlsResult piped = hls().evaluate(k, cfg);
  if (piped.valid) EXPECT_LE(piped.cycles, base.cycles * 1.01);
}

std::vector<std::string> all_names() {
  auto names = kernels::training_kernel_names();
  for (const auto& n : kernels::unseen_kernel_names()) names.push_back(n);
  for (const auto& n : kernels::extension_kernel_names()) names.push_back(n);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, AllKernelsSim,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// --- pragma semantics ---------------------------------------------------------

TEST(MerlinSemantics, ParallelReducesLatencyOnParallelLoop) {
  kir::Kernel k = kernels::make_kernel("stencil");
  DesignConfig base = DesignConfig::neutral(k);
  HlsResult r1 = hls().evaluate(k, base);
  DesignConfig par = base;
  par.loops[0].parallel = 2;  // loop r: no carried dependence
  HlsResult r2 = hls().evaluate(k, par);
  ASSERT_TRUE(r1.valid && r2.valid);
  EXPECT_LT(r2.cycles, r1.cycles);
}

TEST(MerlinSemantics, ParallelScalesResources) {
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignConfig a = DesignConfig::neutral(k);
  DesignConfig b = a;
  b.loops[2].parallel = 8;  // unroll the k loop
  HlsResult ra = hls().evaluate(k, a);
  HlsResult rb = hls().evaluate(k, b);
  ASSERT_TRUE(ra.valid && rb.valid);
  EXPECT_GT(rb.dsp, ra.dsp);
  EXPECT_GT(rb.lut, ra.lut);
}

TEST(MerlinSemantics, FgPipelineSubsumesInnerPragmas) {
  // With fg pipelining on j, inner-loop pragmas are discarded: the two
  // configurations must evaluate identically (Merlin's rule in §2.3).
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignConfig a = DesignConfig::neutral(k);
  a.loops[1].pipeline = PipeMode::kFine;
  DesignConfig b = a;
  b.loops[2].parallel = 4;
  b.loops[2].pipeline = PipeMode::kCoarse;
  HlsResult ra = hls().evaluate(k, a);
  HlsResult rb = hls().evaluate(k, b);
  EXPECT_DOUBLE_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.lut, rb.lut);
}

TEST(MerlinSemantics, RecurrenceLimitsPipelineII) {
  // atax j1 carries a floating-point accumulation (latency 4): pipelining
  // cannot reach II=1, so latency stays above trip_count * 4.
  kir::Kernel k = kernels::make_kernel("atax");
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[1].pipeline = PipeMode::kFine;  // j1
  HlsResult r = hls().evaluate(k, cfg);
  ASSERT_TRUE(r.valid);
  // 410 iterations of i1, each pipelining 390 iterations at II >= 4.
  EXPECT_GE(r.cycles, 410.0 * 390.0 * 4.0 * 0.9);
}

TEST(MerlinSemantics, TileImprovesStridedOffChipAccess) {
  kir::Kernel k = kernels::make_kernel("stencil");
  DesignConfig a = DesignConfig::neutral(k);
  DesignConfig b = a;
  b.loops[0].tile = 8;  // tile site on loop r
  HlsResult ra = hls().evaluate(k, a);
  HlsResult rb = hls().evaluate(k, b);
  ASSERT_TRUE(ra.valid && rb.valid);
  EXPECT_LT(rb.cycles, ra.cycles);
  EXPECT_GE(rb.bram, ra.bram);  // tile buffers cost BRAM
}

TEST(MerlinSemantics, CoarseGrainPipelineOverlapsStages) {
  // atax i1 has child loop j1 -> cg creates a dataflow pipeline; since i1
  // itself carries no dependence the stages overlap. One stage dominates
  // here, so the win is bounded — but cg must never cost more than the
  // stage overhead over sequential execution.
  kir::Kernel k = kernels::make_kernel("atax");
  DesignConfig a = DesignConfig::neutral(k);
  DesignConfig b = a;
  b.loops[0].pipeline = PipeMode::kCoarse;
  HlsResult ra = hls().evaluate(k, a);
  HlsResult rb = hls().evaluate(k, b);
  ASSERT_TRUE(ra.valid && rb.valid);
  EXPECT_LE(rb.cycles, ra.cycles * 1.01);
}

TEST(MerlinSemantics, CoarseGrainPipelineWinsWithBalancedStages) {
  // mvt's two top-level nests are balanced; wrapping them in a synthetic
  // outer cg region is not expressible here, but gemm-blocked's kk loop
  // has a dominant child too — instead check cg on stencil's r loop whose
  // body (c/k1/k2 nest) plus store statement form two stages: overlap must
  // not lose more than the fixed stage overhead.
  kir::Kernel k = kernels::make_kernel("stencil");
  DesignConfig a = DesignConfig::neutral(k);
  DesignConfig b = a;
  b.loops[0].pipeline = PipeMode::kCoarse;
  HlsResult ra = hls().evaluate(k, a);
  HlsResult rb = hls().evaluate(k, b);
  ASSERT_TRUE(ra.valid && rb.valid);
  EXPECT_LE(rb.cycles, ra.cycles * 1.01);
}

TEST(MerlinSemantics, PaddedParallelFactorCostsExtraChunk) {
  // Non-divisor factor: 126 % 4 != 0 -> ceil(126/4) = 32 chunks vs 63 for
  // factor 2; latency should not scale better than the divisor case.
  kir::Kernel k = kernels::make_kernel("stencil");
  DesignConfig d2 = DesignConfig::neutral(k);
  d2.loops[0].parallel = 2;  // divides 126
  DesignConfig d4 = DesignConfig::neutral(k);
  d4.loops[0].parallel = 4;  // pads
  HlsResult r2 = hls().evaluate(k, d2);
  HlsResult r4 = hls().evaluate(k, d4);
  ASSERT_TRUE(r2.valid && r4.valid);
  // Factor 4 still helps, but less than the ideal 2x over factor 2.
  EXPECT_LT(r4.cycles, r2.cycles);
  EXPECT_GT(r4.cycles, r2.cycles / 2.0 * 0.95);
}

// --- validity rules -------------------------------------------------------------

TEST(ValidityRules, ExcessiveUnrollRefused) {
  // fg pipelining gemm's outer loop fully unrolls j*k = 4096 and the
  // parallel factor pushes past the tool limit.
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[0].pipeline = PipeMode::kFine;
  cfg.loops[0].parallel = 8;
  HlsResult r = hls().evaluate(k, cfg);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.invalid_reason.find("refused"), std::string::npos);
}

TEST(ValidityRules, WideOffChipParallelRefused) {
  kir::Kernel k = kernels::make_kernel("mvt");
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[0].parallel = 400;  // wider than the off-chip interface limit
  HlsResult r = hls().evaluate(k, cfg);
  EXPECT_FALSE(r.valid);
}

TEST(ValidityRules, NonAssociativeParallelTimesOut) {
  // nw's DP recurrence: parallelizing the j loop by 8 forces wavefront
  // rewrites whose synthesis effort explodes past the 4h budget.
  kir::Kernel k = kernels::make_kernel("nw");
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[1].parallel = 8;
  HlsResult r = hls().evaluate(k, cfg);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.invalid_reason.find("timeout"), std::string::npos);
  EXPECT_DOUBLE_EQ(r.synth_seconds, MerlinHls::kTimeoutSeconds);
}

TEST(ValidityRules, MildNonAssociativeParallelSurvives) {
  kir::Kernel k = kernels::make_kernel("nw");
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[1].parallel = 2;
  HlsResult r = hls().evaluate(k, cfg);
  EXPECT_TRUE(r.valid) << r.invalid_reason;
}

TEST(ValidityRules, SynthesisTimeGrowsWithUnroll) {
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignConfig small = DesignConfig::neutral(k);
  DesignConfig big = small;
  big.loops[1].parallel = 16;
  big.loops[2].parallel = 16;
  HlsResult rs = hls().evaluate(k, small);
  HlsResult rb = hls().evaluate(k, big);
  EXPECT_GT(rb.synth_seconds, rs.synth_seconds);
}

// --- global behavior ---------------------------------------------------------

TEST(BandwidthFloor, LatencyNeverBeatsOffChipBytes) {
  kir::Kernel k = kernels::make_kernel("mvt");
  // Even an absurdly parallel valid design cannot beat bytes/bus_width:
  // mvt touches 2 * 400*400 * 4B of matrix data.
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[1].pipeline = PipeMode::kFine;
  cfg.loops[1].parallel = 64;
  cfg.loops[3].pipeline = PipeMode::kFine;
  cfg.loops[3].parallel = 64;
  HlsResult r = hls().evaluate(k, cfg);
  ASSERT_TRUE(r.valid) << r.invalid_reason;
  const double floor = 2.0 * 400.0 * 400.0 * 4.0 / 64.0;
  EXPECT_GE(r.cycles, floor * 0.99);
}

TEST(DesignConfigErrors, WrongSizeRejected) {
  kir::Kernel k = kernels::make_kernel("aes");
  DesignConfig cfg;  // empty
  EXPECT_THROW(hls().evaluate(k, cfg), std::invalid_argument);
}

TEST(LatencyRange, SuiteSpansPaperMagnitudes) {
  // The paper's database spans 660 .. 12.5M cycles; our substrate should
  // cover a comparable dynamic range across kernels and configs.
  double min_lat = 1e30, max_lat = 0.0;
  for (const auto& name : kernels::training_kernel_names()) {
    kir::Kernel k = kernels::make_kernel(name);
    HlsResult neutral = hls().evaluate(k, DesignConfig::neutral(k));
    max_lat = std::max(max_lat, neutral.cycles);
    DesignConfig tuned = DesignConfig::neutral(k);
    for (int l : k.innermost_loops())
      if (k.loops[static_cast<std::size_t>(l)].can_pipeline)
        tuned.loops[static_cast<std::size_t>(l)].pipeline = PipeMode::kFine;
    HlsResult opt = hls().evaluate(k, tuned);
    if (opt.valid) min_lat = std::min(min_lat, opt.cycles);
  }
  EXPECT_LT(min_lat, 10000.0);
  EXPECT_GT(max_lat, 1e6);
}

}  // namespace
}  // namespace gnndse::hlssim
