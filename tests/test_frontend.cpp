// Text frontend and seeded generator: round-trip digest identity for every
// compiled-in kernel, strict kir::validate() rejection cases, parser error
// reporting, generator determinism, and the generator smoke gate
// (validate + featurize + simulate) that tests/CMakeLists.txt exposes as
// the `gen_kernels_smoke` ctest.
#include "frontend/kernel_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>

#include "dspace/design_space.hpp"
#include "graphgen/featurize.hpp"
#include "graphgen/program_graph.hpp"
#include "hlssim/hls_sim.hpp"
#include "kernels/generator.hpp"
#include "kernels/kernels.hpp"
#include "kernels/registry.hpp"
#include "oracle/evaluator.hpp"

namespace gnndse {
namespace {

std::vector<std::string> all_compiled_names() {
  auto& reg = kernels::Registry::global();
  auto names = reg.names(kernels::Provenance::kBuiltin);
  for (const auto& n : reg.names(kernels::Provenance::kExtension))
    names.push_back(n);
  return names;
}

// --- round-trip identity ----------------------------------------------------

class RoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTrip, SerializeParsePreservesDigest) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  const std::string text = frontend::serialize_kernel(k);
  kir::Kernel back = frontend::parse_kernel(text);
  EXPECT_EQ(oracle::kernel_digest(k), oracle::kernel_digest(back))
      << "kernel " << GetParam() << " changed digest across the text format";
  // And the text itself is a fixed point: serializing the parsed kernel
  // reproduces the same bytes.
  EXPECT_EQ(text, frontend::serialize_kernel(back));
}

TEST_P(RoundTrip, FileSaveLoadPreservesDigest) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  const std::string path =
      ::testing::TempDir() + "rt_" + GetParam() + ".json";
  frontend::save_kernel_file(k, path);
  kir::Kernel back = frontend::load_kernel_file(path);
  EXPECT_EQ(oracle::kernel_digest(k), oracle::kernel_digest(back));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllCompiledKernels, RoundTrip,
                         ::testing::ValuesIn(all_compiled_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(RoundTripSuite, CoversAllNineteenKernels) {
  EXPECT_EQ(all_compiled_names().size(), 19u);
}

// --- strict validation ------------------------------------------------------

kir::Kernel tiny_valid_kernel() {
  kir::KernelBuilder b("tiny");
  const int a = b.add_array("a", 64);
  const int i = b.begin_loop("i", 16);
  b.add_stmt(i, "s", kir::OpMix{.adds = 1},
             {kir::ArrayAccess{a, false, kir::AccessKind::kSequential, i}});
  b.loop(i).can_pipeline = true;
  return b.build();
}

TEST(ValidateRejects, ChildBeforeParent) {
  kir::Kernel k = tiny_valid_kernel();
  k.loops.push_back(k.loops[0]);
  k.loops[0].parent = 1;  // loop 0 claims the later loop as parent
  k.loops[1].children = {0};
  k.loops[1].stmts.clear();
  k.top_loops = {1};
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, ChildListedUnderWrongParent) {
  kir::Kernel k = tiny_valid_kernel();
  kir::Loop extra;
  extra.name = "j";
  extra.trip_count = 8;
  extra.parent = -1;
  k.loops.push_back(extra);
  k.top_loops.push_back(1);
  k.loops[0].children.push_back(1);  // claims a top-level loop as child
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, ParallelOptionsWithoutOne) {
  kir::Kernel k = tiny_valid_kernel();
  k.loops[0].can_parallel = true;
  k.loops[0].parallel_options = {2, 4};
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, FactorAboveTripCount) {
  kir::Kernel k = tiny_valid_kernel();
  k.loops[0].can_parallel = true;
  k.loops[0].parallel_options = {1, 32};
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, OutOfRangeArrayAccess) {
  kir::Kernel k = tiny_valid_kernel();
  k.stmts[0].accesses[0].array = 7;
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, DrivingLoopNotEnclosing) {
  kir::Kernel k = tiny_valid_kernel();
  kir::Loop extra;
  extra.name = "j";
  extra.trip_count = 8;
  extra.parent = -1;
  k.loops.push_back(extra);
  k.top_loops.push_back(1);
  k.stmts[0].accesses[0].driving_loop = 1;  // sibling loop, not an ancestor
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, DepFieldsWithoutDepLoop) {
  kir::Kernel k = tiny_valid_kernel();
  k.stmts[0].dep_loop = -1;
  k.stmts[0].dep_distance = 1;
  k.stmts[0].dep_latency = 4;
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, DepLoopNotEnclosing) {
  kir::Kernel k = tiny_valid_kernel();
  kir::Loop extra;
  extra.name = "j";
  extra.trip_count = 8;
  extra.parent = -1;
  k.loops.push_back(extra);
  k.top_loops.push_back(1);
  k.stmts[0].dep_loop = 1;
  k.stmts[0].dep_distance = 1;
  k.stmts[0].dep_latency = 4;
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, NonPositiveArrayExtent) {
  kir::Kernel k = tiny_valid_kernel();
  k.arrays[0].num_elems = 0;
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

TEST(ValidateRejects, DuplicateTopLoop) {
  kir::Kernel k = tiny_valid_kernel();
  k.top_loops.push_back(0);
  EXPECT_THROW(kir::validate(k), std::invalid_argument);
}

// --- parser errors ----------------------------------------------------------

TEST(ParserRejects, MalformedSyntax) {
  EXPECT_THROW(frontend::parse_kernel("{\"name\": "), std::invalid_argument);
  EXPECT_THROW(frontend::parse_kernel("[1,2"), std::invalid_argument);
  EXPECT_THROW(frontend::parse_kernel("{} trailing"), std::invalid_argument);
}

TEST(ParserRejects, UnknownKeysAndKinds) {
  const std::string base =
      "{\"name\":\"k\",\"arrays\":[],"
      "\"loops\":[{\"name\":\"i\",\"trip_count\":4,\"parent\":-1,"
      "\"parallel\":[1,2]}],\"stmts\":[]}";
  EXPECT_NO_THROW(frontend::parse_kernel(base));
  EXPECT_THROW(
      frontend::parse_kernel(
          "{\"name\":\"k\",\"bogus\":1,\"arrays\":[],\"loops\":[],"
          "\"stmts\":[]}"),
      std::invalid_argument);
  EXPECT_THROW(
      frontend::parse_kernel(
          "{\"name\":\"k\",\"arrays\":[{\"name\":\"a\",\"num_elems\":4}],"
          "\"loops\":[{\"name\":\"i\",\"trip_count\":4,\"parent\":-1}],"
          "\"stmts\":[{\"name\":\"s\",\"loop\":0,\"ops\":{\"adds\":1},"
          "\"accesses\":[{\"array\":0,\"kind\":\"zigzag\","
          "\"driving_loop\":0}]}]}"),
      std::invalid_argument);
}

TEST(ParserRejects, FloatsAndDuplicateKeys) {
  EXPECT_THROW(
      frontend::parse_kernel("{\"name\":\"k\",\"num_functions\":1.5,"
                             "\"arrays\":[],\"loops\":[],\"stmts\":[]}"),
      std::invalid_argument);
  EXPECT_THROW(
      frontend::parse_kernel("{\"name\":\"k\",\"name\":\"k2\","
                             "\"arrays\":[],\"loops\":[],\"stmts\":[]}"),
      std::invalid_argument);
}

TEST(ParserRejects, ValidJsonInvalidKernel) {
  // Parses fine, but the parallel list is missing factor 1 — the strict
  // validate() pass must catch it.
  EXPECT_THROW(
      frontend::parse_kernel(
          "{\"name\":\"k\",\"arrays\":[],"
          "\"loops\":[{\"name\":\"i\",\"trip_count\":4,\"parent\":-1,"
          "\"parallel\":[2,4]}],\"stmts\":[]}"),
      std::invalid_argument);
}

TEST(ParserErrors, CarryLineNumbers) {
  try {
    frontend::parse_kernel("{\n  \"name\": \"k\",\n  \"bogus\": 1\n}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// --- generator --------------------------------------------------------------

TEST(Generator, SameSeedSameBytes) {
  kernels::GeneratorConfig cfg;
  kir::Kernel a = kernels::generate(cfg, 7);
  kir::Kernel b = kernels::generate(cfg, 7);
  EXPECT_EQ(oracle::kernel_digest(a), oracle::kernel_digest(b));
  EXPECT_EQ(frontend::serialize_kernel(a), frontend::serialize_kernel(b));
}

TEST(Generator, DistinctSeedsDistinctDigests) {
  kernels::GeneratorConfig cfg;
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 0; seed < 50; ++seed)
    digests.insert(oracle::kernel_digest(kernels::generate(cfg, seed)));
  EXPECT_EQ(digests.size(), 50u);
}

TEST(Generator, BatchMatchesSingleCalls) {
  kernels::GeneratorConfig cfg;
  auto batch = kernels::generate_batch(cfg, 100, 5);
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(oracle::kernel_digest(batch[static_cast<std::size_t>(i)]),
              oracle::kernel_digest(
                  kernels::generate(cfg, 100 + static_cast<std::uint64_t>(i))));
}

TEST(Generator, RespectsStructureKnobs) {
  kernels::GeneratorConfig cfg;
  cfg.min_loops = 4;
  cfg.max_loops = 4;
  cfg.max_depth = 2;
  cfg.max_trip = 64;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    kir::Kernel k = kernels::generate(cfg, seed);
    EXPECT_EQ(k.loops.size(), 4u);
    for (std::size_t l = 0; l < k.loops.size(); ++l) {
      EXPECT_LT(k.loop_depth(static_cast<int>(l)), 2);
      EXPECT_LE(k.loops[l].trip_count, 64);
    }
    EXPECT_GE(k.num_pragma_sites(), 1);
  }
}

TEST(Generator, RoundTripsThroughTextFormat) {
  kernels::GeneratorConfig cfg;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    kir::Kernel k = kernels::generate(cfg, seed);
    kir::Kernel back = frontend::parse_kernel(frontend::serialize_kernel(k));
    EXPECT_EQ(oracle::kernel_digest(k), oracle::kernel_digest(back));
  }
}

// --- smoke gate: generated kernels work end to end --------------------------

TEST(GeneratorSmoke, TwentyFiveKernelsValidateFeaturizeSimulate) {
  kernels::GeneratorConfig cfg;
  hlssim::MerlinHls hls;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    kir::Kernel k = kernels::generate(cfg, seed);
    ASSERT_NO_THROW(kir::validate(k));

    dspace::DesignSpace space(k);
    EXPECT_GE(space.pruned_size(), 2u);

    graphgen::ProgramGraph g = graphgen::build_graph(k, space);
    ASSERT_NO_THROW(graphgen::validate(g));
    hlssim::DesignConfig cfg0 = hlssim::DesignConfig::neutral(k);
    tensor::Tensor x = graphgen::node_features(g, space, cfg0);
    EXPECT_EQ(x.shape()[0], g.num_nodes());
    EXPECT_EQ(x.shape()[1], graphgen::kNodeFeatureDim);

    hlssim::HlsResult r = hls.evaluate(k, cfg0);
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.cycles, 0.0);
  }
}

}  // namespace
}  // namespace gnndse
