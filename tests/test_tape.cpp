// Autodiff correctness: every op's analytic gradient is checked against a
// central finite difference on a scalar loss.
#include "tensor/tape.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/init.hpp"
#include "util/rng.hpp"

namespace gnndse::tensor {
namespace {

// Builds the scalar loss from a parameter via `fwd`, then checks d(loss)/dp
// element by element against central differences.
void check_gradient(Parameter& p,
                    const std::function<VarId(Tape&, VarId)>& fwd,
                    float eps = 1e-2f, float tol = 2e-2f) {
  p.zero_grad();
  {
    Tape tape;
    VarId x = tape.param(p);
    VarId loss = fwd(tape, x);
    ASSERT_EQ(tape.value(loss).numel(), 1);
    tape.backward(loss);
  }
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    const float orig = p.value.at(i);
    p.value.at(i) = orig + eps;
    float up;
    {
      Tape tape;
      up = tape.value(fwd(tape, tape.param(p))).at(0);
    }
    p.value.at(i) = orig - eps;
    float down;
    {
      Tape tape;
      down = tape.value(fwd(tape, tape.param(p))).at(0);
    }
    p.value.at(i) = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(p.grad.at(i), numeric, tol)
        << "gradient mismatch at flat index " << i;
  }
}

Parameter make_param(std::vector<std::int64_t> shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Parameter(uniform_init(std::move(shape), 1.0f, rng));
}

TEST(Tape, MatmulGradient) {
  Parameter p = make_param({3, 2}, 1);
  Tensor other({2, 4}, {0.5f, -1, 2, 0.1f, 1, 0.3f, -0.7f, 2});
  check_gradient(p, [&other](Tape& t, VarId x) {
    VarId b = t.constant(other);
    return t.sum_all(t.matmul(x, b));
  });
}

TEST(Tape, MatmulGradientRightOperand) {
  Parameter p = make_param({2, 3}, 2);
  Tensor other({4, 2}, {0.5f, -1, 2, 0.1f, 1, 0.3f, -0.7f, 2});
  check_gradient(p, [&other](Tape& t, VarId x) {
    VarId a = t.constant(other);
    return t.sum_all(t.matmul(a, x));
  });
}

TEST(Tape, AddSubMulGradient) {
  Parameter p = make_param({2, 3}, 3);
  Tensor other({2, 3}, {1, -2, 0.5f, 3, 0.25f, -1});
  check_gradient(p, [&other](Tape& t, VarId x) {
    VarId c = t.constant(other);
    VarId y = t.mul(t.add(x, c), t.sub(x, c));  // (x+c)*(x-c) = x^2-c^2
    return t.sum_all(y);
  });
}

TEST(Tape, ScaleGradient) {
  Parameter p = make_param({4}, 4);
  check_gradient(
      p, [](Tape& t, VarId x) { return t.sum_all(t.scale(x, -2.5f)); });
}

TEST(Tape, AddRowvecBiasGradient) {
  Parameter bias = make_param({3}, 5);
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  check_gradient(bias, [&a](Tape& t, VarId b) {
    VarId av = t.constant(a);
    VarId y = t.add_rowvec(av, b);
    return t.mse_loss(y, Tensor({2, 3}, {0, 0, 0, 1, 1, 1}));
  });
}

TEST(Tape, ConcatColsGradient) {
  Parameter p = make_param({2, 2}, 6);
  Tensor other({2, 3}, {1, 2, 3, 4, 5, 6});
  check_gradient(p, [&other](Tape& t, VarId x) {
    VarId o = t.constant(other);
    VarId c = t.concat_cols({x, o, x});
    return t.mse_loss(c, Tensor({2, 7}));
  });
}

TEST(Tape, RowSumGradient) {
  Parameter p = make_param({3, 4}, 7);
  check_gradient(p, [](Tape& t, VarId x) {
    return t.mse_loss(t.row_sum(x), Tensor({3, 1}, {1, 2, 3}));
  });
}

TEST(Tape, MulColbcastGradientBoth) {
  Parameter col = make_param({3, 1}, 8);
  Parameter x = make_param({3, 2}, 9);
  check_gradient(col, [&x](Tape& t, VarId c) {
    VarId xv = t.param(x);
    return t.sum_all(t.mul_colbcast(c, xv));
  });
  check_gradient(x, [&col](Tape& t, VarId xv) {
    VarId c = t.param(col);
    return t.sum_all(t.mul_colbcast(c, xv));
  });
}

TEST(Tape, SelectColGradient) {
  Parameter p = make_param({3, 3}, 10);
  check_gradient(p, [](Tape& t, VarId x) {
    return t.mse_loss(t.select_col(x, 1), Tensor({3, 1}, {0.5f, 0.5f, 0.5f}));
  });
}

TEST(Tape, NonlinearityGradients) {
  for (int which = 0; which < 5; ++which) {
    Parameter p = make_param({2, 3}, 20 + which);
    // Nudge away from kink points for relu-family finite differences.
    for (std::int64_t i = 0; i < p.numel(); ++i)
      if (std::abs(p.value.at(i)) < 0.1f) p.value.at(i) = 0.3f;
    check_gradient(p, [which](Tape& t, VarId x) {
      VarId y;
      switch (which) {
        case 0: y = t.relu(x); break;
        case 1: y = t.leaky_relu(x); break;
        case 2: y = t.elu(x); break;
        case 3: y = t.sigmoid(x); break;
        default: y = t.tanh(x); break;
      }
      return t.mse_loss(y, Tensor({2, 3}, {1, 0, 1, 0, 1, 0}));
    });
  }
}

TEST(Tape, GatherRowsGradient) {
  Parameter p = make_param({4, 2}, 30);
  check_gradient(p, [](Tape& t, VarId x) {
    VarId g = t.gather_rows(x, {0, 2, 2, 3});
    return t.mse_loss(g, Tensor({4, 2}));
  });
}

TEST(Tape, ScatterAddRowsGradient) {
  Parameter p = make_param({4, 2}, 31);
  check_gradient(p, [](Tape& t, VarId x) {
    VarId s = t.scatter_add_rows(x, {1, 1, 0, 2}, 3);
    return t.mse_loss(s, Tensor({3, 2}));
  });
}

TEST(Tape, SegmentSoftmaxForward) {
  Tape t;
  VarId s = t.constant(Tensor({4, 1}, {1.0f, 1.0f, 2.0f, 0.0f}));
  VarId y = t.segment_softmax(s, {0, 0, 1, 1}, 2);
  const Tensor& out = t.value(y);
  EXPECT_NEAR(out.at(0, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(out.at(1, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(out.at(2, 0) + out.at(3, 0), 1.0f, 1e-5f);
  EXPECT_GT(out.at(2, 0), out.at(3, 0));
}

TEST(Tape, SegmentSoftmaxGradient) {
  Parameter p = make_param({5, 1}, 32);
  check_gradient(p, [](Tape& t, VarId x) {
    VarId y = t.segment_softmax(x, {0, 0, 1, 1, 1}, 2);
    // Weighted sum so gradient is not identically zero (softmax sums to 1).
    return t.mse_loss(y, Tensor({5, 1}, {1, 0, 0.2f, 0.3f, 0.5f}));
  });
}

TEST(Tape, MaxListGradient) {
  Parameter a = make_param({2, 3}, 33);
  Parameter b = make_param({2, 3}, 34);
  // Separate the values so finite differences do not flip the argmax.
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.value.at(i) = (i % 2 == 0) ? 1.0f + 0.1f * i : -1.0f;
    b.value.at(i) = (i % 2 == 0) ? -1.0f : 1.0f + 0.05f * i;
  }
  check_gradient(a, [&b](Tape& t, VarId x) {
    VarId y = t.max_list({x, t.param(b)});
    return t.sum_all(y);
  });
  check_gradient(b, [&a](Tape& t, VarId x) {
    VarId y = t.max_list({t.param(a), x});
    return t.sum_all(y);
  });
}

TEST(Tape, MseLossValueAndGradient) {
  Parameter p(Tensor({2}, {1.0f, 3.0f}));
  Tensor target({2}, {0.0f, 1.0f});
  Tape t;
  VarId loss = t.mse_loss(t.param(p), target);
  EXPECT_NEAR(t.value(loss).at(0), (1.0f + 4.0f) / 2.0f, 1e-6f);
  t.backward(loss);
  EXPECT_NEAR(p.grad.at(0), 2.0f * 1.0f / 2.0f, 1e-5f);
  EXPECT_NEAR(p.grad.at(1), 2.0f * 2.0f / 2.0f, 1e-5f);
}

TEST(Tape, WeightedMseGradient) {
  Parameter p = make_param({3}, 35);
  Tensor target({3}, {0.1f, 0.2f, 0.3f});
  Tensor w({3}, {1.0f, 2.0f, 0.5f});
  check_gradient(p, [&](Tape& t, VarId x) {
    return t.mse_loss_weighted(x, target, w);
  });
}

TEST(Tape, BceWithLogitsGradient) {
  Parameter p = make_param({4}, 36);
  Tensor target({4}, {1, 0, 1, 0});
  check_gradient(
      p, [&target](Tape& t, VarId x) { return t.bce_with_logits(x, target); });
}

TEST(Tape, BceWithLogitsStableAtExtremes) {
  Tape t;
  VarId z = t.constant(Tensor({2}, {100.0f, -100.0f}));
  VarId loss = t.bce_with_logits(z, Tensor({2}, {1, 0}));
  EXPECT_NEAR(t.value(loss).at(0), 0.0f, 1e-5f);
  Tape t2;
  VarId z2 = t2.constant(Tensor({2}, {-100.0f, 100.0f}));
  VarId loss2 = t2.bce_with_logits(z2, Tensor({2}, {1, 0}));
  EXPECT_NEAR(t2.value(loss2).at(0), 100.0f, 1e-3f);
}

TEST(Tape, BackwardTwiceThrows) {
  Parameter p(Tensor({1}, {2.0f}));
  Tape t;
  VarId loss = t.sum_all(t.param(p));
  t.backward(loss);
  EXPECT_THROW(t.backward(loss), std::logic_error);
}

TEST(Tape, BackwardRequiresScalar) {
  Parameter p(Tensor({2}, {1.0f, 2.0f}));
  Tape t;
  VarId x = t.param(p);
  EXPECT_THROW(t.backward(x), std::invalid_argument);
}

TEST(Tape, ChainedGraphComputation) {
  // A miniature message-passing round: gather, transform, scatter, pool.
  Parameter w = make_param({2, 2}, 40);
  Tensor x({3, 2}, {1, 0, 0, 1, 1, 1});
  std::vector<std::int32_t> src{0, 1, 2, 2};
  std::vector<std::int32_t> dst{1, 2, 0, 1};
  check_gradient(w, [&](Tape& t, VarId wv) {
    VarId h = t.matmul(t.constant(x), wv);
    VarId msg = t.gather_rows(h, src);
    VarId agg = t.scatter_add_rows(msg, dst, 3);
    VarId act = t.elu(agg);
    return t.mse_loss(t.row_sum(act), Tensor({3, 1}, {1, 1, 1}));
  });
}

}  // namespace
}  // namespace gnndse::tensor
