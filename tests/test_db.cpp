// Database and explorers (§4.1): dedup, counts, CSV round trip, fitness,
// and explorer behavior against the HLS substrate.
#include "db/database.hpp"
#include "db/explorer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "kernels/kernels.hpp"
#include "oracle/evaluator.hpp"

namespace gnndse::db {
namespace {

using hlssim::DesignConfig;
using hlssim::HlsResult;

HlsResult fake_result(bool valid, double cycles, double util = 0.1) {
  HlsResult r;
  r.valid = valid;
  r.cycles = cycles;
  r.util_dsp = r.util_bram = r.util_lut = r.util_ff = util;
  r.synth_seconds = 100.0;
  return r;
}

DataPoint point(const std::string& kernel, int parallel, bool valid,
                double cycles, double util = 0.1) {
  kir::Kernel k = kernels::make_kernel(kernel);
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[0].parallel = parallel;
  return DataPoint{kernel, cfg, fake_result(valid, cycles, util)};
}

TEST(Database, AddDeduplicates) {
  Database db;
  EXPECT_TRUE(db.add(point("aes", 1, true, 1000)));
  EXPECT_FALSE(db.add(point("aes", 1, true, 2000)));  // same config
  EXPECT_TRUE(db.add(point("aes", 2, true, 900)));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.contains("aes", point("aes", 1, true, 0).config));
  EXPECT_FALSE(db.contains("nw", point("nw", 1, true, 0).config));
}

TEST(Database, CountsPerKernel) {
  Database db;
  db.add(point("aes", 1, true, 1000));
  db.add(point("aes", 2, false, 0));
  db.add(point("nw", 1, true, 5000));
  auto c = db.counts("aes");
  EXPECT_EQ(c.total, 2u);
  EXPECT_EQ(c.valid, 1u);
  auto t = db.counts_total();
  EXPECT_EQ(t.total, 3u);
  EXPECT_EQ(t.valid, 2u);
}

TEST(Database, BestValidRespectsUtilThreshold) {
  Database db;
  db.add(point("aes", 1, true, 1000, 0.3));
  db.add(point("aes", 2, true, 500, 0.95));  // faster but over budget
  db.add(point("aes", 4, false, 100));       // invalid
  auto best = db.best_valid("aes", 0.8);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->result.cycles, 1000.0);
  EXPECT_FALSE(db.best_valid("mvt").has_value());
}

TEST(Database, CsvRoundTrip) {
  Database db;
  db.add(point("aes", 1, true, 1234.0));
  auto bad = point("aes", 2, false, 0);
  bad.result.invalid_reason = "timeout: synthesis exceeded 4h budget";
  db.add(bad);
  const std::string path = ::testing::TempDir() + "db_roundtrip.csv";
  db.save_csv(path);
  Database loaded = Database::load_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.points()[0].kernel, "aes");
  EXPECT_DOUBLE_EQ(loaded.points()[0].result.cycles, 1234.0);
  EXPECT_EQ(loaded.points()[0].config, db.points()[0].config);
  EXPECT_FALSE(loaded.points()[1].result.valid);
  EXPECT_EQ(loaded.points()[1].result.invalid_reason,
            "timeout: synthesis exceeded 4h budget");
  std::remove(path.c_str());
}

TEST(Fitness, OrdersDesignsCorrectly) {
  EXPECT_TRUE(std::isinf(fitness(fake_result(false, 100))));
  EXPECT_DOUBLE_EQ(fitness(fake_result(true, 100, 0.5)), 100.0);
  // Over-utilized: penalized but finite.
  const double f = fitness(fake_result(true, 100, 1.2));
  EXPECT_GT(f, 100.0);
  EXPECT_TRUE(std::isfinite(f));
}

TEST(Fits, ChecksEveryResource) {
  auto r = fake_result(true, 100, 0.5);
  EXPECT_TRUE(fits(r));
  r.util_bram = 0.9;
  EXPECT_FALSE(fits(r));
  r.util_bram = 0.5;
  r.valid = false;
  EXPECT_FALSE(fits(r));
}

// --- explorers -----------------------------------------------------------------

class ExplorerTest : public ::testing::Test {
 protected:
  oracle::SimEvaluator hls_;
  kir::Kernel kernel_ = kernels::make_kernel("gemm-ncubed");
  dspace::DesignSpace space_{kernel_};
};

TEST_F(ExplorerTest, BottleneckImprovesOverNeutral) {
  Explorer ex(kernel_, space_, hls_);
  Database db;
  ExplorerOptions opts;
  opts.max_evals = 120;
  DesignConfig best =
      ex.run_bottleneck(opts, [&db](const DataPoint& p) { db.add(p); });
  const double neutral =
      hls_.evaluate(kernel_, DesignConfig::neutral(kernel_)).cycles;
  const auto r = hls_.evaluate(kernel_, best);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(r.cycles, neutral / 2.0);  // greedy must find real speedups
  EXPECT_GT(db.size(), 20u);
  EXPECT_LE(static_cast<int>(db.size()), opts.max_evals);
}

TEST_F(ExplorerTest, BottleneckAccountsSimulatedTime) {
  Explorer ex(kernel_, space_, hls_);
  ExplorerOptions opts;
  opts.max_evals = 40;
  double seconds = 0.0;
  ex.run_bottleneck(opts, nullptr, &seconds);
  EXPECT_GT(seconds, 0.0);
  // Batch accounting: simulated time must be far below the serial sum but
  // at least one synthesis long.
  EXPECT_GE(seconds, 60.0);
}

TEST_F(ExplorerTest, HybridExploresNeighborsOfImprovements) {
  Explorer ex(kernel_, space_, hls_);
  Database db;
  ExplorerOptions opts;
  opts.max_evals = 100;
  util::Rng rng(3);
  ex.run_hybrid(opts, [&db](const DataPoint& p) { db.add(p); }, rng);
  EXPECT_GT(db.size(), 20u);
}

TEST_F(ExplorerTest, RandomRespectsBudgetAndDedup) {
  Explorer ex(kernel_, space_, hls_);
  Database db;
  util::Rng rng(5);
  ex.run_random(50, [&db](const DataPoint& p) { db.add(p); }, rng);
  EXPECT_LE(db.size(), 50u);
  EXPECT_GT(db.size(), 30u);  // hardly any collisions in a 14k space
  EXPECT_EQ(db.size(), static_cast<std::size_t>(ex.evals_used()));
}

TEST(InitialDatabase, RespectsBudgetsAndCoversKernels) {
  oracle::SimEvaluator hls;
  util::Rng rng(7);
  auto kernels = kernels::make_training_kernels();
  Database db = generate_initial_database(
      kernels, hls, rng, [](const std::string&) { return 60; });
  for (const auto& k : kernels) {
    auto c = db.counts(k.name);
    EXPECT_GT(c.total, 0u) << k.name;
    EXPECT_LE(c.total, 60u) << k.name;
  }
}

TEST(InitialDatabase, DefaultBudgetsMatchTable1) {
  EXPECT_EQ(default_budget("aes"), 15);
  EXPECT_EQ(default_budget("stencil"), 1066);
  EXPECT_EQ(default_budget("nw"), 911);
  EXPECT_EQ(default_budget("unknown-kernel"), 400);
}

TEST(InitialDatabase, ContainsInvalidDesignsForClassifier) {
  // The model needs to see "bad" designs (§4.1); nw especially produces
  // many invalid points.
  oracle::SimEvaluator hls;
  util::Rng rng(7);
  Database db = generate_initial_database(
      {kernels::make_kernel("nw")}, hls, rng,
      [](const std::string&) { return 120; });
  auto c = db.counts("nw");
  EXPECT_GT(c.total, c.valid);  // some invalid designs present
}

}  // namespace
}  // namespace gnndse::db
