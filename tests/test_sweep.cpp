// Pipelined sweep engine: bit-identity against the serial engine across
// thread counts and featurization paths, deterministic budgets, prompt
// cancellation, and a shared-factory stress case (tsan-labeled).
// Kept cheap: tiny models, small budgets.
#include "dse/dse.hpp"
#include "dse/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "dspace/design_space.hpp"
#include "kernels/kernels.hpp"
#include "oracle/evaluator.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace gnndse::dse {
namespace {

PipelineOptions tiny_pipeline() {
  PipelineOptions po;
  po.main_epochs = 4;
  po.bram_epochs = 2;
  po.classifier_epochs = 2;
  po.hidden = 16;
  po.gnn_layers = 3;
  return po;
}

db::Database tiny_db(const std::vector<kir::Kernel>& kernels, int budget) {
  oracle::SimEvaluator hls;
  util::Rng rng(33);
  return db::generate_initial_database(
      kernels, hls, rng, [budget](const std::string&) { return budget; });
}

/// Restores the env-default pool even when an assertion bails out early.
struct ThreadGuard {
  ~ThreadGuard() { util::set_parallel_threads(0); }
};

std::uint32_t float_bits(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void expect_same_ranked(const std::vector<RankedDesign>& a,
                        const std::vector<RankedDesign>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("rank " + std::to_string(i));
    EXPECT_EQ(a[i].config.key(), b[i].config.key());
    for (std::size_t j = 0; j < model::kNumObjectives; ++j)
      EXPECT_EQ(float_bits(a[i].predicted[j]), float_bits(b[i].predicted[j]));
    EXPECT_EQ(float_bits(a[i].p_valid), float_bits(b[i].p_valid));
  }
}

void expect_same_result(const DseResult& a, const DseResult& b) {
  EXPECT_EQ(a.num_explored, b.num_explored);
  {
    SCOPED_TRACE("top");
    expect_same_ranked(a.top, b.top);
  }
  {
    SCOPED_TRACE("reserve");
    expect_same_ranked(a.reserve, b.reserve);
  }
}

class SweepFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    kernels_ = {kernels::make_kernel("gemm-ncubed"),
                kernels::make_kernel("spmv-crs")};
    database_ = tiny_db(kernels_, 150);
    models_ = std::make_unique<TrainedModels>(database_, kernels_, factory_,
                                              tiny_pipeline());
    dse_ = std::make_unique<ModelDse>(models_->bundle(),
                                      models_->normalizer(), factory_);
  }

  std::vector<kir::Kernel> kernels_;
  db::Database database_;
  model::SampleFactory factory_;
  std::unique_ptr<TrainedModels> models_;
  std::unique_ptr<ModelDse> dse_;
};

TEST_F(SweepFixture, ExhaustiveIdenticalAcrossEnginesThreadsAndPaths) {
  // The tentpole contract: the pipelined engine returns the same ranked
  // designs with the same predicted bits as the serial engine, at every
  // thread count, on both the fast path and the legacy tape path.
  const kir::Kernel& spmv = kernels_[1];
  ThreadGuard guard;
  for (bool fast : {true, false}) {
    SCOPED_TRACE(fast ? "fast path" : "tape path");
    DseOptions opts;
    opts.top_m = 5;
    opts.use_fast_path = fast;
    opts.pipeline = false;
    util::Rng rng_ref(3);
    const DseResult ref = dse_->run(spmv, opts, rng_ref);
    EXPECT_GT(ref.num_explored, 0u);
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      util::set_parallel_threads(threads);
      DseOptions popts = opts;
      popts.pipeline = true;
      util::Rng rng(3);
      const DseResult r = dse_->run(spmv, popts, rng);
      expect_same_result(ref, r);
    }
    util::set_parallel_threads(0);
  }
}

TEST_F(SweepFixture, HeuristicIdenticalUnderDeterministicBudget) {
  // max_configs pins the heuristic path (beam + random phases) to an exact
  // candidate stream, so serial and pipelined engines must agree there too.
  const kir::Kernel& gemm = kernels_[0];
  ThreadGuard guard;
  DseOptions opts;
  opts.top_m = 5;
  opts.max_exhaustive = 100;  // force the heuristic path
  opts.time_limit_seconds = 1e9;
  opts.max_configs = 600;
  opts.pipeline = false;
  util::Rng rng_ref(3);
  const DseResult ref = dse_->run(gemm, opts, rng_ref);
  EXPECT_EQ(ref.num_explored, 600u);
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    util::set_parallel_threads(threads);
    DseOptions popts = opts;
    popts.pipeline = true;
    util::Rng rng(3);
    const DseResult r = dse_->run(gemm, popts, rng);
    expect_same_result(ref, r);
  }
}

TEST_F(SweepFixture, MaxConfigsBudgetIsExact) {
  const kir::Kernel& spmv = kernels_[1];
  dspace::DesignSpace space(spmv);
  ASSERT_GT(space.pruned_size(), 50u);  // the cap must actually bind
  DseOptions opts;
  opts.top_m = 5;
  opts.max_configs = 50;
  util::Rng rng(3);
  const DseResult r = dse_->run(spmv, opts, rng);
  EXPECT_EQ(r.num_explored, 50u);
  EXPECT_FALSE(r.cancelled);
}

TEST_F(SweepFixture, PreCancelledRunReturnsImmediately) {
  // The for_each early-exit satellite: with the flag already set, the run
  // must return without decoding the space (the old enumeration kept
  // walking every raw index after cancel).
  kir::Kernel big = kernels::make_kernel("gemm-blocked");
  DseOptions opts;
  opts.max_exhaustive = std::numeric_limits<std::uint64_t>::max();
  opts.time_limit_seconds = 1e9;
  std::atomic<bool> cancel{true};
  opts.cancel = &cancel;
  util::Rng rng(3);
  util::Timer t;
  const DseResult r = dse_->run(big, opts, rng);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.num_explored, 0u);
  EXPECT_TRUE(r.top.empty());
  EXPECT_LT(t.seconds(), 5.0);
}

TEST_F(SweepFixture, CancelMidPipelineDrainsCleanly) {
  // Cancel raised while chunks are in flight: the engine drops pending
  // work, finishes what was dispatched, and returns a consistent ranking.
  kir::Kernel big = kernels::make_kernel("gemm-blocked");
  dspace::DesignSpace space(big);
  DseOptions opts;
  opts.top_m = 5;
  opts.max_exhaustive = std::numeric_limits<std::uint64_t>::max();
  opts.time_limit_seconds = 1e9;
  std::atomic<bool> cancel{false};
  opts.cancel = &cancel;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    cancel.store(true);
  });
  util::Rng rng(3);
  util::Timer t;
  const DseResult r = dse_->run(big, opts, rng);
  killer.join();
  EXPECT_TRUE(r.cancelled);
  EXPECT_LT(r.num_explored, space.pruned_size());
  EXPECT_LT(t.seconds(), 30.0);
  // Whatever was scored before the cancel is still ranked best-first.
  for (std::size_t i = 1; i < r.top.size(); ++i)
    EXPECT_GE(ranking_score(r.top[i - 1], opts.util_threshold),
              ranking_score(r.top[i], opts.util_threshold));
}

TEST_F(SweepFixture, StageStatsAreReported) {
  const kir::Kernel& spmv = kernels_[1];
  DseOptions opts;
  opts.top_m = 5;
  util::Rng rng(3);
  const DseResult r = dse_->run(spmv, opts, rng);
  EXPECT_GT(r.stages.chunks, 0u);
  EXPECT_GT(r.stages.wall_ms, 0.0);
  EXPECT_GT(r.stages.predict_ms, 0.0);
  EXPECT_GE(r.stages.featurize_ms, 0.0);
  EXPECT_GT(r.stages.overlap_ratio, 0.0);
}

TEST_F(SweepFixture, SweepIdenticalUnderConcurrentFactoryTraffic) {
  // The serve daemon runs sweeps while predict traffic featurizes through
  // factories concurrently. Hammer this factory's template cache and batch
  // slot pool from two threads during a pipelined sweep: the sweep result
  // must still match the quiet serial reference (and TSan must stay quiet —
  // this binary is in the tsan label).
  const kir::Kernel& spmv = kernels_[1];
  const kir::Kernel& gemm = kernels_[0];
  ThreadGuard guard;
  DseOptions opts;
  opts.top_m = 5;
  opts.pipeline = false;
  util::Rng rng_ref(3);
  const DseResult ref = dse_->run(spmv, opts, rng_ref);

  util::set_parallel_threads(2);
  std::atomic<bool> stop{false};
  auto fire = [&](const kir::Kernel& k) {
    const auto neutral = hlssim::DesignConfig::neutral(k);
    while (!stop.load(std::memory_order_relaxed)) {
      (void)factory_.featurize(k, neutral);
      auto slot = factory_.acquire_slot(k, 3);
      const std::vector<hlssim::DesignConfig> cfgs(3, neutral);
      factory_.write_slot(k, cfgs, *slot);
      factory_.release_slot(std::move(slot));
    }
  };
  std::thread t1(fire, std::cref(spmv));
  std::thread t2(fire, std::cref(gemm));
  DseOptions popts = opts;
  popts.pipeline = true;
  util::Rng rng(3);
  const DseResult r = dse_->run(spmv, popts, rng);
  stop.store(true);
  t1.join();
  t2.join();
  expect_same_result(ref, r);
}

}  // namespace
}  // namespace gnndse::dse
