#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/env.hpp"

namespace gnndse::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t{"Demo"};
  t.header({"Kernel", "N"});
  t.row({"aes", "45"});
  t.row({"gemm-ncubed", "7792"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("| aes         |"), std::string::npos);
  EXPECT_NE(s.find("| gemm-ncubed |"), std::string::npos);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_int(-12), "-12");
  EXPECT_EQ(Table::fmt_commas(3059001), "3,059,001");
  EXPECT_EQ(Table::fmt_commas(45), "45");
  EXPECT_EQ(Table::fmt_commas(-1234), "-1,234");
  EXPECT_EQ(Table::fmt_commas(0), "0");
}

TEST(Table, CsvEscapesSpecials) {
  Table t;
  t.header({"a", "b"});
  t.row({"x,y", "he said \"hi\""});
  const std::string path = ::testing::TempDir() + "table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  std::remove(path.c_str());
}

TEST(Table, RowCount) {
  Table t;
  EXPECT_EQ(t.num_rows(), 0u);
  t.row({"1"});
  t.row({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Env, EnvIntFallback) {
  EXPECT_EQ(env_int("GNNDSE_SURELY_UNSET_VAR_XYZ", 17), 17);
}

TEST(Env, EnvIntParses) {
  setenv("GNNDSE_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("GNNDSE_TEST_INT", 0), 42);
  setenv("GNNDSE_TEST_INT", "not_a_number", 1);
  EXPECT_EQ(env_int("GNNDSE_TEST_INT", 5), 5);
  unsetenv("GNNDSE_TEST_INT");
}

}  // namespace
}  // namespace gnndse::util
