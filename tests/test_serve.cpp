// Serve subsystem tests: protocol parsing, the batching coalescer's
// triggers and failure isolation, atomic model hot-swap under concurrent
// predict traffic (run under TSan via scripts/check_tsan.sh), a loopback
// end-to-end pass through the Server, and the template-eviction scale test
// (a daemon's working set is many client kernels under one byte budget).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "frontend/kernel_json.hpp"
#include "kernels/generator.hpp"
#include "model/weights.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace gnndse {
namespace {

using serve::BatcherOptions;
using serve::ModelInstance;
using serve::ModelSlot;
using serve::PredictResult;
using serve::Request;

kernels::GeneratorConfig small_cfg() {
  kernels::GeneratorConfig cfg;
  cfg.min_loops = 2;
  cfg.max_loops = 3;
  cfg.max_depth = 2;
  cfg.max_trip = 16;
  return cfg;
}

kir::Kernel test_kernel(std::uint64_t seed = 3) {
  return kernels::generate(small_cfg(), seed);
}

/// Builds an untrained snapshot (random weights from `seed`) the same way
/// the daemon snapshots a trained bundle — three heads sharing one base
/// architecture. Training is irrelevant to the serving-layer contracts
/// under test.
std::shared_ptr<serve::ModelSnapshot> make_snapshot(std::uint64_t seed) {
  auto snap = std::make_shared<serve::ModelSnapshot>();
  snap->norm_factor = 1000.0;
  snap->base.hidden = 8;
  snap->base.gnn_layers = 2;
  util::Rng rng(seed);
  model::ModelOptions mo = snap->base;
  mo.out_dim = 4;
  model::PredictiveModel main_m(mo, rng);
  mo.out_dim = 1;
  model::PredictiveModel bram_m(mo, rng);
  model::PredictiveModel cls_m(mo, rng);
  snap->main_params = model::copy_params(main_m.params());
  snap->bram_params = model::copy_params(bram_m.params());
  snap->cls_params = model::copy_params(cls_m.params());
  return snap;
}

std::string kernel_json_line(const kir::Kernel& k) {
  std::string s = frontend::serialize_kernel(k);
  std::replace(s.begin(), s.end(), '\n', ' ');
  return s;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesPredictWithConfigAndClient) {
  kir::Kernel k = test_kernel();
  hlssim::DesignConfig cfg = hlssim::DesignConfig::neutral(k);
  cfg.loops[0].parallel = 2;
  const std::string line = "{\"kind\":\"predict\",\"id\":7,\"client\":\"t1\","
                           "\"config\":" + serve::json_quote(cfg.key()) +
                           ",\"kernel\":" + kernel_json_line(k) + "}";
  Request r = serve::parse_request(line);
  EXPECT_EQ(r.kind, Request::Kind::kPredict);
  EXPECT_EQ(r.id, 7);
  EXPECT_EQ(r.client, "t1");
  EXPECT_EQ(r.kernel.name, k.name);
  EXPECT_EQ(r.config.key(), cfg.key());
}

TEST(ServeProtocol, PredictWithoutConfigIsNeutral) {
  kir::Kernel k = test_kernel();
  Request r = serve::parse_request(
      "{\"kind\":\"predict\",\"kernel\":" + kernel_json_line(k) + "}");
  EXPECT_EQ(r.id, -1);
  EXPECT_EQ(r.config.key(), hlssim::DesignConfig::neutral(k).key());
}

TEST(ServeProtocol, SweepDefaultsAndOverrides) {
  kir::Kernel k = test_kernel();
  Request r = serve::parse_request(
      "{\"kind\":\"sweep\",\"kernel\":" + kernel_json_line(k) +
      ",\"time_limit\":2.5,\"top_m\":3,\"evaluate\":true}");
  EXPECT_EQ(r.kind, Request::Kind::kSweep);
  EXPECT_DOUBLE_EQ(r.time_limit, 2.5);
  EXPECT_EQ(r.top_m, 3);
  EXPECT_TRUE(r.evaluate);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  kir::Kernel k = test_kernel();
  const std::string kj = kernel_json_line(k);
  // Unknown kind, unknown key, config/kernel loop mismatch, unsafe client
  // namespace, missing job, non-object — each with an actionable message.
  EXPECT_THROW(serve::parse_request("{\"kind\":\"frobnicate\"}"),
               std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"kind\":\"predict\",\"kernel\":" + kj +
                                    ",\"time_limi\":2}"),
               std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"kind\":\"predict\",\"kernel\":" + kj +
                                    ",\"config\":\"L0:off/1/1\"}"),
               std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"kind\":\"predict\",\"kernel\":" + kj +
                                    ",\"client\":\"../escape\"}"),
               std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"kind\":\"poll\"}"), std::runtime_error);
  EXPECT_THROW(serve::parse_request("[1,2]"), std::runtime_error);
  EXPECT_THROW(serve::parse_request("{\"kind\":\"admin\",\"op\":\"rm-rf\"}"),
               std::runtime_error);
}

TEST(ServeProtocol, ResponseHelpers) {
  EXPECT_EQ(serve::error_line(-1, "boom"), "{\"ok\":false,\"error\":\"boom\"}");
  EXPECT_EQ(serve::error_line(4, "x\"y"),
            "{\"id\":4,\"ok\":false,\"error\":\"x\\\"y\"}");
  EXPECT_EQ(serve::ok_head(-1), "{\"ok\":true");
  EXPECT_EQ(serve::ok_head(9), "{\"id\":9,\"ok\":true");
  // %.9g round-trips float32 exactly.
  const float v = 0.123456789f;
  EXPECT_EQ(std::stof(serve::float_str(v)), v);
}

// ---------------------------------------------------------------- batcher

TEST(ServeBatcher, SizeTriggerCoalesces) {
  ModelSlot slot;
  slot.install(make_snapshot(1));
  model::SampleFactory factory;
  BatcherOptions opts;
  opts.max_batch = 4;
  opts.max_wait_us = 5'000'000;  // deadline far away: size must trigger
  serve::Batcher batcher(slot, factory, opts);
  kir::Kernel k = test_kernel();
  std::vector<std::future<PredictResult>> futs;
  for (int i = 0; i < 4; ++i)
    futs.push_back(batcher.submit(k, hlssim::DesignConfig::neutral(k)));
  for (auto& f : futs) {
    PredictResult r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.batch_size, 4);
    EXPECT_EQ(r.model_version, 1u);
  }
}

TEST(ServeBatcher, DeadlineTriggerFlushesPartialBatch) {
  ModelSlot slot;
  slot.install(make_snapshot(1));
  model::SampleFactory factory;
  BatcherOptions opts;
  opts.max_batch = 64;
  opts.max_wait_us = 1000;
  serve::Batcher batcher(slot, factory, opts);
  kir::Kernel k = test_kernel();
  auto f1 = batcher.submit(k, hlssim::DesignConfig::neutral(k));
  auto f2 = batcher.submit(k, hlssim::DesignConfig::neutral(k));
  PredictResult r1 = f1.get(), r2 = f2.get();
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_LT(r1.batch_size, 64);
  EXPECT_EQ(r1.batch_size, r2.batch_size);
}

TEST(ServeBatcher, StopFlushesPendingAndFailsLateSubmits) {
  ModelSlot slot;
  slot.install(make_snapshot(1));
  model::SampleFactory factory;
  BatcherOptions opts;
  opts.max_batch = 64;
  opts.max_wait_us = 60'000'000;  // only the shutdown drain can flush
  serve::Batcher batcher(slot, factory, opts);
  kir::Kernel k = test_kernel();
  std::vector<std::future<PredictResult>> futs;
  for (int i = 0; i < 3; ++i)
    futs.push_back(batcher.submit(k, hlssim::DesignConfig::neutral(k)));
  batcher.stop();
  for (auto& f : futs) {
    PredictResult r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.batch_size, 3);
  }
  PredictResult late =
      batcher.submit(k, hlssim::DesignConfig::neutral(k)).get();
  EXPECT_FALSE(late.ok);
  EXPECT_NE(late.error.find("stopped"), std::string::npos);
}

TEST(ServeBatcher, BadRequestFailsAloneGoodNeighborsSurvive) {
  ModelSlot slot;
  slot.install(make_snapshot(1));
  model::SampleFactory factory;
  BatcherOptions opts;
  opts.max_batch = 3;
  opts.max_wait_us = 5'000'000;
  serve::Batcher batcher(slot, factory, opts);
  kir::Kernel k = test_kernel();
  auto good1 = batcher.submit(k, hlssim::DesignConfig::neutral(k));
  auto bad = batcher.submit(k, hlssim::DesignConfig{});  // loop mismatch
  auto good2 = batcher.submit(k, hlssim::DesignConfig::neutral(k));
  PredictResult rb = bad.get();
  EXPECT_FALSE(rb.ok);
  EXPECT_NE(rb.error.find("loops"), std::string::npos);
  PredictResult r1 = good1.get(), r2 = good2.get();
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  // The failed request dropped out before inference: two rows in the batch.
  EXPECT_EQ(r1.batch_size, 2);
  EXPECT_EQ(r2.batch_size, 2);
  for (int i = 0; i < model::kNumObjectives; ++i)
    EXPECT_EQ(r1.predicted[i], r2.predicted[i]);
}

TEST(ServeBatcher, EmptySlotFailsWholeBatch) {
  ModelSlot slot;  // no snapshot installed
  model::SampleFactory factory;
  BatcherOptions opts;
  opts.max_batch = 2;
  opts.max_wait_us = 1000;
  serve::Batcher batcher(slot, factory, opts);
  kir::Kernel k = test_kernel();
  PredictResult r = batcher.submit(k, hlssim::DesignConfig::neutral(k)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no model"), std::string::npos);
}

// ---------------------------------------------------------------- hot swap

TEST(ServeModelSlot, InstallStampsMonotonicVersions) {
  ModelSlot slot;
  EXPECT_EQ(slot.current(), nullptr);
  EXPECT_EQ(slot.install(make_snapshot(1)), 1u);
  EXPECT_EQ(slot.install(make_snapshot(2)), 2u);
  EXPECT_EQ(slot.current()->version, 2u);
}

TEST(ServeModelInstance, RebuildsOnlyOnVersionChange) {
  ModelSlot slot;
  slot.install(make_snapshot(1));
  ModelInstance instance;
  instance.ensure(slot.current());
  EXPECT_EQ(instance.version(), 1u);
  dse::ModelBundle b1 = instance.bundle();
  instance.ensure(slot.current());  // same version: no rebuild
  EXPECT_EQ(instance.bundle().regression_main, b1.regression_main);
  slot.install(make_snapshot(2));
  instance.ensure(slot.current());
  EXPECT_EQ(instance.version(), 2u);
  EXPECT_NE(instance.bundle().regression_main, b1.regression_main);
}

/// Hot swap under fire: submitter threads pound the batcher while the main
/// thread installs a new snapshot. Every response must be ok, carry one of
/// the two versions, and be bit-identical to the single-sample reference
/// prediction for the version it reports — no torn half-swapped weights.
TEST(ServeHotSwap, ConcurrentPredictsAreVersionConsistent) {
  auto snap1 = make_snapshot(11);
  auto snap2 = make_snapshot(22);
  kir::Kernel k = test_kernel();
  const hlssim::DesignConfig cfg = hlssim::DesignConfig::neutral(k);

  ModelSlot slot;
  slot.install(snap1);

  // Per-version references through private instances.
  PredictResult ref1, ref2;
  {
    ModelSlot ref_slot;
    ref_slot.install(make_snapshot(11));
    ModelInstance instance;
    instance.ensure(ref_slot.current());
    model::SampleFactory f;
    ref1 = serve::predict_single(instance, f, k, cfg);
    ref_slot.install(make_snapshot(22));
    instance.ensure(ref_slot.current());
    ref2 = serve::predict_single(instance, f, k, cfg);
  }
  ASSERT_TRUE(ref1.ok) << ref1.error;
  ASSERT_TRUE(ref2.ok) << ref2.error;

  model::SampleFactory factory;
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.max_wait_us = 500;
  serve::Batcher batcher(slot, factory, opts);

  constexpr int kThreads = 4, kPerThread = 32;
  std::atomic<int> swapped_at{-1};
  std::vector<PredictResult> results(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[t * kPerThread + i] = batcher.submit(k, cfg).get();
        if (t == 0 && i == kPerThread / 2) {
          slot.install(make_snapshot(22));
          swapped_at.store(i);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  batcher.stop();

  int v1 = 0, v2 = 0;
  for (const PredictResult& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.model_version == 1 || r.model_version == 2);
    const PredictResult& ref = r.model_version == 1 ? ref1 : ref2;
    (r.model_version == 1 ? v1 : v2)++;
    for (int i = 0; i < model::kNumObjectives; ++i)
      EXPECT_EQ(r.predicted[i], ref.predicted[i]);
    EXPECT_EQ(r.p_valid, ref.p_valid);
  }
  EXPECT_GT(v1, 0);  // traffic before the swap...
  EXPECT_GT(v2, 0);  // ...and after it
}

// ------------------------------------------------------------- end-to-end

TEST(ServeServer, LoopbackPredictStatsDrain) {
  ModelSlot slot;
  slot.install(make_snapshot(5));
  model::SampleFactory factory;
  serve::ServerOptions so;
  so.port = 0;  // ephemeral
  so.batcher.max_batch = 8;
  so.batcher.max_wait_us = 500;
  serve::Server server(slot, factory, so);
  std::thread runner([&] { server.run(); });

  kir::Kernel k = test_kernel();
  serve::Socket sock = serve::connect_to("127.0.0.1", server.port());
  serve::LineReader lines(sock);
  // Pipeline two predicts and a stats call; responses arrive in order.
  ASSERT_TRUE(sock.send_line("{\"kind\":\"predict\",\"id\":1,\"kernel\":" +
                             kernel_json_line(k) + "}"));
  ASSERT_TRUE(sock.send_line("{\"kind\":\"predict\",\"id\":2,\"kernel\":" +
                             kernel_json_line(k) + "}"));
  ASSERT_TRUE(sock.send_line("{\"kind\":\"admin\",\"op\":\"stats\",\"id\":3}"));
  std::string l1, l2, l3;
  ASSERT_TRUE(lines.read_line(&l1));
  ASSERT_TRUE(lines.read_line(&l2));
  ASSERT_TRUE(lines.read_line(&l3));
  EXPECT_NE(l1.find("\"id\":1,\"ok\":true"), std::string::npos) << l1;
  EXPECT_NE(l2.find("\"id\":2,\"ok\":true"), std::string::npos) << l2;
  // Identical kernel+config: identical predictions regardless of batching.
  const auto pred_of = [](const std::string& s) {
    return s.substr(s.find("\"predicted\""));
  };
  EXPECT_EQ(pred_of(l1).substr(0, pred_of(l1).find(",\"model_version\"")),
            pred_of(l2).substr(0, pred_of(l2).find(",\"model_version\"")));
  EXPECT_NE(l3.find("\"op\":\"stats\""), std::string::npos) << l3;

  // Malformed request: error response, connection stays usable.
  ASSERT_TRUE(sock.send_line("{\"kind\":\"nope\"}"));
  std::string err;
  ASSERT_TRUE(lines.read_line(&err));
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos) << err;

  ASSERT_TRUE(sock.send_line("{\"kind\":\"admin\",\"op\":\"drain\",\"id\":9}"));
  std::string drained;
  ASSERT_TRUE(lines.read_line(&drained));
  EXPECT_NE(drained.find("\"op\":\"drain\""), std::string::npos) << drained;
  runner.join();
}

// The pipelined sweep engine runs inside the daemon's sweep jobs while the
// batcher keeps serving predict traffic. Fire predicts from two
// connections for the whole life of a sweep job (this binary runs under
// TSan via scripts/check_tsan.sh — the point is the concurrency, not the
// sweep's outcome) and require every predict to succeed and the terminal
// poll to carry the per-stage breakdown.
TEST(ServeStress, SweepUnderConcurrentPredictFire) {
  ModelSlot slot;
  slot.install(make_snapshot(7));
  model::SampleFactory factory;
  serve::ServerOptions so;
  so.port = 0;
  so.batcher.max_batch = 4;
  so.batcher.max_wait_us = 200;
  serve::Server server(slot, factory, so);
  std::thread runner([&] { server.run(); });

  kir::Kernel k = test_kernel();
  const std::string kj = kernel_json_line(k);

  serve::Socket sock = serve::connect_to("127.0.0.1", server.port());
  serve::LineReader lines(sock);
  ASSERT_TRUE(sock.send_line("{\"kind\":\"sweep\",\"id\":1,\"kernel\":" + kj +
                             ",\"time_limit\":30}"));
  std::string resp;
  ASSERT_TRUE(lines.read_line(&resp));
  const auto jstart = resp.find("\"job\":\"");
  ASSERT_NE(jstart, std::string::npos) << resp;
  const auto jpos = jstart + std::strlen("\"job\":\"");
  const std::string job = resp.substr(jpos, resp.find('"', jpos) - jpos);

  std::atomic<bool> stop{false};
  std::atomic<int> fired{0};
  auto fire = [&] {
    serve::Socket s = serve::connect_to("127.0.0.1", server.port());
    serve::LineReader lr(s);
    while (!stop.load(std::memory_order_relaxed)) {
      if (!s.send_line("{\"kind\":\"predict\",\"kernel\":" + kj + "}")) break;
      std::string l;
      if (!lr.read_line(&l)) break;
      EXPECT_NE(l.find("\"ok\":true"), std::string::npos) << l;
      ++fired;
    }
  };
  std::thread f1(fire), f2(fire);

  // Poll while traffic flows; after a grace period cancel the job so the
  // test's duration doesn't depend on the generated kernel's space size.
  std::string terminal;
  bool cancel_sent = false;
  for (int polls = 0; terminal.empty(); ++polls) {
    ASSERT_TRUE(sock.send_line("{\"kind\":\"poll\",\"job\":\"" + job + "\"}"));
    ASSERT_TRUE(lines.read_line(&resp));
    ASSERT_EQ(resp.find("\"ok\":false"), std::string::npos) << resp;
    if (resp.find("\"state\":\"running\"") == std::string::npos) {
      terminal = resp;
      break;
    }
    if (polls >= 20 && !cancel_sent) {
      ASSERT_TRUE(
          sock.send_line("{\"kind\":\"cancel\",\"job\":\"" + job + "\"}"));
      ASSERT_TRUE(lines.read_line(&resp));
      cancel_sent = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  f1.join();
  f2.join();

  EXPECT_GT(fired.load(), 0);
  EXPECT_NE(terminal.find("\"stages\":{\"featurize_ms\":"), std::string::npos)
      << terminal;
  EXPECT_NE(terminal.find("\"overlap_ratio\":"), std::string::npos);

  ASSERT_TRUE(sock.send_line("{\"kind\":\"admin\",\"op\":\"drain\",\"id\":9}"));
  std::string drained;
  ASSERT_TRUE(lines.read_line(&drained));
  runner.join();
}

// ------------------------------------------------------- eviction at scale

/// A serving daemon's working set is unbounded: many clients, many
/// kernels, one byte budget. Stream ~1000 generated kernels through one
/// SampleFactory under a tight template budget and require (a) eviction
/// telemetry fires, (b) the resident estimate respects the budget, and
/// (c) re-faulting an evicted template reproduces its features
/// bit-for-bit.
TEST(ServeScale, TemplateEvictionRefaultsBitIdentically) {
  obs::set_enabled(true);
  obs::Counter& evictions = obs::counter("gnn.template_evictions");
  const std::int64_t before = evictions.value();

  kernels::GeneratorConfig cfg = small_cfg();
  cfg.max_loops = 2;
  cfg.max_depth = 1;
  constexpr int kKernels = 1000;
  const std::vector<kir::Kernel> ks =
      kernels::generate_batch(cfg, /*base_seed=*/100, kKernels);

  constexpr std::int64_t kBudget = 1 << 20;  // 1 MiB: constant pressure
  model::SampleFactory factory(kBudget);

  const gnn::GraphData first =
      factory.featurize(ks[0], hlssim::DesignConfig::neutral(ks[0]));
  for (int i = 1; i < kKernels; ++i)
    factory.featurize(ks[static_cast<std::size_t>(i)],
                      hlssim::DesignConfig::neutral(
                          ks[static_cast<std::size_t>(i)]));

  EXPECT_GT(evictions.value(), before);
  EXPECT_LE(obs::gauge("gnn.template_bytes").value(),
            static_cast<double>(kBudget));

  // ks[0]'s template is long evicted; re-faulting must rebuild the exact
  // same features.
  const gnn::GraphData again =
      factory.featurize(ks[0], hlssim::DesignConfig::neutral(ks[0]));
  ASSERT_EQ(again.x.shape(), first.x.shape());
  ASSERT_EQ(again.e.shape(), first.e.shape());
  EXPECT_TRUE(std::equal(first.x.data(), first.x.data() + first.x.numel(),
                         again.x.data()));
  EXPECT_TRUE(std::equal(first.e.data(), first.e.data() + first.e.numel(),
                         again.e.data()));
  EXPECT_EQ(first.src, again.src);
  EXPECT_EQ(first.dst, again.dst);
  ASSERT_EQ(again.aux.shape(), first.aux.shape());
  EXPECT_TRUE(std::equal(first.aux.data(), first.aux.data() + first.aux.numel(),
                         again.aux.data()));
}

}  // namespace
}  // namespace gnndse
