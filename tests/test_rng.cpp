#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace gnndse::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(std::uint64_t{10});
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(std::int64_t{-5}, std::int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitDecorrelates) {
  Rng a(99);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace gnndse::util
