// End-to-end integration: the full GNN-DSE loop on a reduced scale —
// database generation, training, surrogate fidelity, model-driven DSE, and
// transfer to an unseen kernel (the §5.4 property at miniature scale).
#include <gtest/gtest.h>

#include <cmath>

#include "db/explorer.hpp"
#include "dse/dse.hpp"
#include "dse/pipeline.hpp"
#include "kernels/kernels.hpp"
#include "model/trainer.hpp"
#include "obs/report.hpp"
#include "oracle/stack.hpp"
#include "util/timer.hpp"

namespace gnndse {
namespace {

// When GNNDSE_REPORT is set (the obs_report CTest fixture), telemetry is
// recorded across the whole binary and a JSON run report is written at
// exit; scripts/check_report.py then validates it. Unset -> inert.
obs::ReportSession g_report_session("test_integration");

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Env-driven stack: the dse_fault_degradation ctest reruns this
    // binary with GNNDSE_FAULT_RATE set to exercise fault injection
    // and retry through the whole pipeline.
    hls_ = new oracle::OracleStack();
    // Matrix-kernels domain: train on atax/gemm/gesummv-like structure,
    // keep bicg unseen.
    kernels_ = new std::vector<kir::Kernel>{
        kernels::make_kernel("atax"), kernels::make_kernel("gemm-ncubed"),
        kernels::make_kernel("mvt")};
    util::Rng rng(77);
    db_ = new db::Database(db::generate_initial_database(
        *kernels_, *hls_, rng, [](const std::string&) { return 220; }));
    factory_ = new model::SampleFactory();
    dse::PipelineOptions po;
    po.main_epochs = 30;
    po.bram_epochs = 6;
    po.classifier_epochs = 10;
    po.hidden = 32;
    models_ = new dse::TrainedModels(*db_, *kernels_, *factory_, po);
  }

  static void TearDownTestSuite() {
    delete models_;
    delete factory_;
    delete db_;
    delete kernels_;
    delete hls_;
  }

  static oracle::OracleStack* hls_;
  static std::vector<kir::Kernel>* kernels_;
  static db::Database* db_;
  static model::SampleFactory* factory_;
  static dse::TrainedModels* models_;
};

oracle::OracleStack* EndToEnd::hls_ = nullptr;
std::vector<kir::Kernel>* EndToEnd::kernels_ = nullptr;
db::Database* EndToEnd::db_ = nullptr;
model::SampleFactory* EndToEnd::factory_ = nullptr;
dse::TrainedModels* EndToEnd::models_ = nullptr;

TEST_F(EndToEnd, SurrogateRanksDesignsLikeTheHlsTool) {
  // Rank correlation on a sample of valid designs of a training kernel:
  // the surrogate's predicted latency target must order designs mostly
  // like the true cycle counts (Spearman > 0.6).
  const kir::Kernel& k = (*kernels_)[1];  // gemm-ncubed
  dspace::DesignSpace space(k);
  util::Rng rng(9);
  std::vector<double> truth;
  std::vector<gnn::GraphData> graphs;
  while (truth.size() < 40) {
    auto cfg = space.sample(rng);
    auto r = hls_->evaluate(k, cfg);
    if (!r.valid) continue;
    truth.push_back(models_->normalizer().latency_target(r.cycles));
    graphs.push_back(factory_->featurize(k, cfg));
  }
  std::vector<const gnn::GraphData*> ptrs;
  for (auto& g : graphs) ptrs.push_back(&g);
  tensor::Tensor pred =
      models_->bundle().regression_main->predict_graphs(ptrs);

  // Spearman rank correlation.
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
      r[idx[i]] = static_cast<double>(i);
    return r;
  };
  std::vector<double> predicted;
  for (std::size_t i = 0; i < truth.size(); ++i)
    predicted.push_back(pred.at(static_cast<std::int64_t>(i), 0));
  auto rt = ranks(truth);
  auto rp = ranks(predicted);
  double d2 = 0;
  for (std::size_t i = 0; i < rt.size(); ++i)
    d2 += (rt[i] - rp[i]) * (rt[i] - rp[i]);
  const double n = static_cast<double>(rt.size());
  const double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  EXPECT_GT(spearman, 0.5);
}

TEST_F(EndToEnd, DseFindsDesignNearDatabaseBest) {
  const kir::Kernel& k = (*kernels_)[0];  // atax
  dse::ModelDse md(models_->bundle(), models_->normalizer(), *factory_);
  dse::DseOptions opts;
  opts.top_m = 10;
  opts.max_exhaustive = 10'000;
  opts.time_limit_seconds = 5.0;
  util::Rng rng(3);
  auto r = md.run(k, opts, rng);
  auto ev = md.evaluate_top(k, r, *hls_);
  ASSERT_TRUE(ev.best.has_value());
  auto db_best = db_->best_valid(k.name);
  ASSERT_TRUE(db_best.has_value());
  // The model-driven DSE must land within 2x of the explorer-found best
  // (usually it beats it).
  EXPECT_LT(ev.best->result.cycles, db_best->result.cycles * 2.0);
}

TEST_F(EndToEnd, TransfersToUnseenKernel) {
  // bicg never appeared in the database; the model-driven DSE must still
  // find a configuration far better than no pragmas at all.
  kir::Kernel bicg = kernels::make_kernel("bicg");
  dse::ModelDse md(models_->bundle(), models_->normalizer(), *factory_);
  dse::DseOptions opts;
  opts.top_m = 10;
  opts.time_limit_seconds = 10.0;
  opts.max_exhaustive = 10'000;
  util::Rng rng(3);
  auto r = md.run(bicg, opts, rng);
  auto ev = md.evaluate_top(bicg, r, *hls_);
  ASSERT_TRUE(ev.best.has_value());
  const double neutral =
      hls_->evaluate(bicg, hlssim::DesignConfig::neutral(bicg)).cycles;
  EXPECT_LT(ev.best->result.cycles, neutral / 3.0);
}

TEST_F(EndToEnd, InferenceBeatsSimulatedSynthesisByOrders) {
  const kir::Kernel& k = (*kernels_)[2];  // mvt
  gnn::GraphData g =
      factory_->featurize(k, hlssim::DesignConfig::neutral(k));
  util::Timer t;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    auto pred = models_->bundle().regression_main->predict_graphs({&g});
    ASSERT_TRUE(std::isfinite(pred.at(0, 0)));
  }
  const double per_inference = t.seconds() / reps;
  const double synth =
      hls_->evaluate(k, hlssim::DesignConfig::neutral(k)).synth_seconds;
  // Paper: milliseconds vs minutes-to-hours. Require >= 1000x here.
  EXPECT_LT(per_inference * 1000.0, synth);
}

}  // namespace
}  // namespace gnndse
