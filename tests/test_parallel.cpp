// Parallel-execution layer: pool reuse, exception propagation, nesting,
// grain edge cases, and the determinism guarantee — multi-threaded matmul
// and predict_graphs are bit-identical to GNNDSE_THREADS=1 and to the
// pre-pool serial kernel.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dspace/design_space.hpp"
#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "model/dataset.hpp"
#include "model/predictive_model.hpp"
#include "model/trainer.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace gnndse {
namespace {

using util::parallel_for;
using util::set_parallel_threads;

/// Restores the default pool after each test so thread-count overrides
/// never leak into other suites.
class ParallelFor : public ::testing::Test {
 protected:
  ~ParallelFor() override { set_parallel_threads(0); }
};
using ParallelMatmul = ParallelFor;
using ParallelDeterminism = ParallelFor;

TEST_F(ParallelFor, CoversEveryIndexOnceAndReusesPool) {
  set_parallel_threads(4);
  EXPECT_EQ(util::parallel_threads(), 4);
  constexpr std::int64_t kN = 1000;
  // Two rounds over the same pool: the workers must survive the first
  // fan-out and pick up the second.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(kN, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (std::int64_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelFor, EmptyRangeNeverInvokesBody) {
  set_parallel_threads(4);
  bool called = false;
  parallel_for(0, 1, [&](std::int64_t, std::int64_t) { called = true; });
  parallel_for(-5, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ParallelFor, SmallRangeRunsAsOneInlineChunk) {
  set_parallel_threads(8);
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  std::mutex mu;
  auto record = [&](std::int64_t b, std::int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  };
  parallel_for(5, 100, record);  // n < grain -> single [0, 5) chunk
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::int64_t, std::int64_t>{0, 5}));

  chunks.clear();
  parallel_for(7, 0, record);  // grain < 1 behaves as 1
  std::int64_t covered = 0;
  for (auto [b, e] : chunks) covered += e - b;
  EXPECT_EQ(covered, 7);
}

TEST_F(ParallelFor, ChunksAreAtLeastGrainSized) {
  set_parallel_threads(8);
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  std::mutex mu;
  parallel_for(10, 3, [&](std::int64_t b, std::int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  // floor(10/3) = 3 chunks; every chunk >= 3 iterations, total 10.
  ASSERT_EQ(chunks.size(), 3u);
  std::int64_t covered = 0;
  for (auto [b, e] : chunks) {
    EXPECT_GE(e - b, 3);
    covered += e - b;
  }
  EXPECT_EQ(covered, 10);
}

TEST_F(ParallelFor, NestedCallRunsInline) {
  set_parallel_threads(4);
  EXPECT_FALSE(util::in_parallel_region());
  std::atomic<std::int64_t> total{0};
  parallel_for(8, 1, [&](std::int64_t b, std::int64_t e) {
    EXPECT_TRUE(util::in_parallel_region());
    for (std::int64_t i = b; i < e; ++i) {
      // The nested loop must execute inline on this thread: a single
      // chunk spanning the whole range.
      std::vector<std::pair<std::int64_t, std::int64_t>> inner;
      parallel_for(16, 1, [&](std::int64_t ib, std::int64_t ie) {
        inner.emplace_back(ib, ie);
      });
      ASSERT_EQ(inner.size(), 1u);
      EXPECT_EQ(inner[0].first, 0);
      EXPECT_EQ(inner[0].second, 16);
      total += inner[0].second;
    }
  });
  EXPECT_FALSE(util::in_parallel_region());
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST_F(ParallelFor, PropagatesFirstExceptionAndPoolSurvives) {
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(100, 1,
                   [&](std::int64_t b, std::int64_t) {
                     if (b >= 0) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
  // All chunks completed (or failed) before the rethrow; the pool must
  // still accept work.
  std::atomic<std::int64_t> sum{0};
  parallel_for(100, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST_F(ParallelFor, ChunkSpansNestUnderSubmittersOpenSpan) {
  set_parallel_threads(4);
  obs::reset_all();
  obs::set_enabled(true);
  std::int64_t outer_id = -1;
  {
    obs::ScopedSpan outer("outer");
    outer_id = obs::current_span_id();
    parallel_for(64, 1, [](std::int64_t, std::int64_t) {
      obs::ScopedSpan chunk("chunk");
    });
  }
  int chunk_spans = 0;
  for (const auto& s : obs::trace_snapshot()) {
    if (s.name != "chunk") continue;
    ++chunk_spans;
    // Pool-side chunks adopt the submitting thread's span instead of
    // becoming root-level orphans on the worker rows.
    EXPECT_EQ(s.parent, outer_id);
  }
  EXPECT_EQ(chunk_spans, 4);  // 4 lanes over 64 unit-grain items
  obs::set_enabled(false);
  obs::reset_all();
}

TEST_F(ParallelFor, PoolRegistersQueueTelemetryAtConstruction) {
  // Even a single-lane pool (which never reaches submit()) must register
  // its gauges so report validation holds on one-core machines.
  set_parallel_threads(1);
  bool has_depth = false, has_util = false;
  for (const auto& g : obs::gauges_snapshot()) {
    if (g.name == "parallel.queue_depth") has_depth = true;
    if (g.name == "parallel.worker_utilization") has_util = true;
  }
  EXPECT_TRUE(has_depth);
  EXPECT_TRUE(has_util);
}

// ---------------------------------------------------------------------------
// Determinism: the acceptance bar is bit-identical output at every thread
// count, including against the pre-pool serial kernel.
// ---------------------------------------------------------------------------

/// The seed repo's serial matmul_acc (plain i-k-j with transpose copies),
/// kept verbatim as the bit-exactness reference.
tensor::Tensor reference_matmul(const tensor::Tensor& a,
                                const tensor::Tensor& b, bool trans_a,
                                bool trans_b) {
  const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
  std::vector<float> ap(static_cast<std::size_t>(m * k));
  std::vector<float> bp(static_cast<std::size_t>(k * n));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t x = 0; x < k; ++x)
      ap[static_cast<std::size_t>(i * k + x)] =
          trans_a ? a.at(x, i) : a.at(i, x);
  for (std::int64_t x = 0; x < k; ++x)
    for (std::int64_t j = 0; j < n; ++j)
      bp[static_cast<std::size_t>(x * n + j)] =
          trans_b ? b.at(j, x) : b.at(x, j);
  tensor::Tensor out({m, n});
  float* o = out.data();
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t x = 0; x < k; ++x) {
      const float av_ix = ap[static_cast<std::size_t>(i * k + x)];
      if (av_ix == 0.0f) continue;
      for (std::int64_t j = 0; j < n; ++j)
        o[i * n + j] += av_ix * bp[static_cast<std::size_t>(x * n + j)];
    }
  return out;
}

tensor::Tensor random_tensor(std::int64_t r, std::int64_t c, util::Rng& rng) {
  tensor::Tensor t({r, c});
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

bool bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST_F(ParallelMatmul, BitIdenticalToSerialReferenceAtEveryThreadCount) {
  util::Rng rng(7);
  // Sizes chosen to cross the FLOP threshold (so the pool actually engages
  // at >1 threads) and to exercise ragged row splits and k > one L2 panel.
  const struct {
    std::int64_t m, k, n;
  } shapes[] = {{67, 33, 29}, {129, 300, 64}, {256, 64, 64}};
  for (const auto& s : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        tensor::Tensor a = ta ? random_tensor(s.k, s.m, rng)
                              : random_tensor(s.m, s.k, rng);
        tensor::Tensor b = tb ? random_tensor(s.n, s.k, rng)
                              : random_tensor(s.k, s.n, rng);
        tensor::Tensor want = reference_matmul(a, b, ta, tb);
        for (int threads : {1, 2, 4, 8}) {
          set_parallel_threads(threads);
          tensor::Tensor got = tensor::matmul(a, b, ta, tb);
          EXPECT_TRUE(bit_identical(want, got))
              << s.m << "x" << s.k << "x" << s.n << " ta=" << ta
              << " tb=" << tb << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(ParallelFor, EnvThreadRequestClampsToHardwareConcurrency) {
  // GNNDSE_THREADS above the hardware thread count clamps to it (an
  // oversubscribed static-chunk pool is pure scheduler churn) unless the
  // OVERSUBSCRIBE escape hatch keeps the literal request. Explicit
  // set_parallel_threads() calls stay exempt — the other tests in this
  // suite pin 4- and 8-lane pools on any machine.
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  const std::string request = std::to_string(hw + 6);
  ::setenv("GNNDSE_THREADS", request.c_str(), 1);
  ::unsetenv("GNNDSE_THREADS_OVERSUBSCRIBE");
  set_parallel_threads(0);  // drop the pool; next use resolves env defaults
  EXPECT_EQ(util::parallel_threads(), hw);

  ::setenv("GNNDSE_THREADS_OVERSUBSCRIBE", "1", 1);
  set_parallel_threads(0);
  EXPECT_EQ(util::parallel_threads(), hw + 6);

  ::unsetenv("GNNDSE_THREADS");
  ::unsetenv("GNNDSE_THREADS_OVERSUBSCRIBE");
}

TEST_F(ParallelDeterminism, PredictGraphsBitIdenticalAcrossThreadCounts) {
  const kir::Kernel kernel = kernels::make_kernel("mvt");
  model::SampleFactory factory;
  util::Rng rng(11);
  const auto& space = factory.space(kernel);
  std::vector<gnn::GraphData> graphs;
  for (int i = 0; i < 48; ++i)
    graphs.push_back(factory.featurize(kernel, space.sample(rng)));
  std::vector<const gnn::GraphData*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  // Randomly initialized model: predict_graphs only needs weights, and
  // the forward pass is where every parallel layer (batching + matmul)
  // meets.
  model::ModelOptions mo;
  mo.hidden = 32;
  mo.gnn_layers = 3;
  util::Rng wrng(5);
  model::PredictiveModel m(mo, wrng);
  model::Trainer trainer(m, model::TrainOptions{});

  set_parallel_threads(1);
  tensor::Tensor serial = trainer.predict_graphs(ptrs);
  ASSERT_EQ(serial.rows(), static_cast<std::int64_t>(ptrs.size()));
  for (int threads : {2, 4, 8}) {
    set_parallel_threads(threads);
    tensor::Tensor parallel = trainer.predict_graphs(ptrs);
    EXPECT_TRUE(bit_identical(serial, parallel)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace gnndse
