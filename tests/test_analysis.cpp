// Analysis utilities: exact t-SNE, Pareto filtering, attention extraction.
#include "analysis/attention.hpp"
#include "analysis/pareto.hpp"
#include "analysis/tsne.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/kernels.hpp"

namespace gnndse::analysis {
namespace {

TEST(Tsne, OutputShape) {
  util::Rng rng(1);
  tensor::Tensor x({20, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x.at(i) = static_cast<float>(rng.normal());
  TsneOptions opts;
  opts.iterations = 50;
  tensor::Tensor y = tsne(x, opts);
  EXPECT_EQ(y.rows(), 20);
  EXPECT_EQ(y.cols(), 2);
  for (std::int64_t i = 0; i < y.numel(); ++i)
    EXPECT_TRUE(std::isfinite(y.at(i)));
}

TEST(Tsne, SeparatesTwoBlobs) {
  // Two well-separated 10-D gaussian blobs must stay separated in 2-D:
  // the neighborhood label spread must be far below the random-layout
  // expectation (~0.5 for a 50/50 binary label).
  util::Rng rng(7);
  const int per_blob = 30;
  tensor::Tensor x({2 * per_blob, 10});
  std::vector<float> labels;
  for (int i = 0; i < 2 * per_blob; ++i) {
    const float center = i < per_blob ? 0.0f : 25.0f;
    labels.push_back(i < per_blob ? 0.0f : 1.0f);
    for (int c = 0; c < 10; ++c)
      x.at(i, c) = center + static_cast<float>(rng.normal());
  }
  TsneOptions opts;
  opts.iterations = 250;
  tensor::Tensor y = tsne(x, opts);
  const double spread = neighborhood_label_spread(y, labels, 5);
  EXPECT_LT(spread, 0.1);
}

TEST(Tsne, DegenerateInputsHandled) {
  tensor::Tensor tiny({2, 3});
  tensor::Tensor y = tsne(tiny);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 2);
}

TEST(NeighborhoodSpread, PerfectVsShuffledLayout) {
  // Points on a line with labels equal to position: tight neighborhoods.
  const int n = 40;
  tensor::Tensor y({n, 2});
  std::vector<float> labels(n);
  for (int i = 0; i < n; ++i) {
    y.at(i, 0) = static_cast<float>(i);
    labels[static_cast<std::size_t>(i)] = static_cast<float>(i);
  }
  const double ordered = neighborhood_label_spread(y, labels, 4);
  // Shuffle labels: same layout, random labels -> much larger spread.
  util::Rng rng(3);
  std::vector<float> shuffled = labels;
  rng.shuffle(shuffled);
  const double random = neighborhood_label_spread(y, shuffled, 4);
  EXPECT_LT(ordered, random * 0.3);
}

TEST(Pareto, DominationLogic) {
  EXPECT_TRUE(dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(dominates({2, 2}, {2, 2}));  // equal: no strict improvement
  EXPECT_FALSE(dominates({1, 3}, {2, 2}));  // trade-off
}

TEST(Pareto, FrontFiltersDominatedAndInvalid) {
  auto mk = [](bool valid, double cycles, double util) {
    db::DataPoint p;
    p.kernel = "k";
    p.result.valid = valid;
    p.result.cycles = cycles;
    p.result.util_dsp = p.result.util_bram = p.result.util_lut =
        p.result.util_ff = util;
    return p;
  };
  std::vector<db::DataPoint> pts{
      mk(true, 100, 0.9),   // fast, expensive -> front
      mk(true, 1000, 0.1),  // slow, cheap -> front
      mk(true, 1000, 0.9),  // dominated by both
      mk(false, 1, 0.01),   // invalid
  };
  auto front = pareto_front(pts);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(Attention, ScoresSortedAndNormalized) {
  kir::Kernel k = kernels::make_kernel("aes");
  model::SampleFactory factory;
  model::ModelOptions mo;
  mo.kind = model::ModelKind::kM7Full;
  mo.hidden = 16;
  mo.gnn_layers = 2;
  mo.out_dim = 4;
  util::Rng rng(1);
  model::PredictiveModel m(mo, rng);
  auto scores = attention_scores(m, factory, k,
                                 hlssim::DesignConfig::neutral(k));
  ASSERT_FALSE(scores.empty());
  double total = 0.0;
  for (std::size_t i = 1; i < scores.size(); ++i)
    EXPECT_GE(scores[i - 1].score, scores[i].score);
  for (const auto& s : scores) total += s.score;
  EXPECT_NEAR(total, 1.0, 1e-4);
  const double share = pragma_attention_share(scores);
  EXPECT_GE(share, 0.0);
  EXPECT_LE(share, 1.0);
}

TEST(Attention, NonM7ModelThrows) {
  model::ModelOptions mo;
  mo.kind = model::ModelKind::kM5Tconv;
  mo.hidden = 16;
  mo.gnn_layers = 2;
  mo.out_dim = 4;
  util::Rng rng(1);
  model::PredictiveModel m(mo, rng);
  EXPECT_THROW(m.last_attention(), std::logic_error);
}

}  // namespace
}  // namespace gnndse::analysis
