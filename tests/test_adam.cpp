#include "tensor/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.hpp"
#include "util/rng.hpp"

namespace gnndse::tensor {
namespace {

TEST(Adam, MinimizesQuadratic) {
  Parameter p(Tensor({2}, {5.0f, -3.0f}));
  Adam opt(AdamConfig{.lr = 0.1f});
  opt.register_param(p);
  Tensor target({2}, {1.0f, 2.0f});
  for (int step = 0; step < 500; ++step) {
    opt.zero_grad();
    Tape t;
    VarId loss = t.mse_loss(t.param(p), target);
    t.backward(loss);
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0), 1.0f, 1e-2f);
  EXPECT_NEAR(p.value.at(1), 2.0f, 1e-2f);
}

TEST(Adam, FitsLinearRegression) {
  // y = X w* + b*, recover w*, b* from 64 samples.
  util::Rng rng(123);
  const std::int64_t n = 64, d = 3;
  Tensor x({n, d});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  Tensor w_true({d, 1}, {2.0f, -1.0f, 0.5f});
  Tensor y = matmul(x, w_true);
  for (std::int64_t i = 0; i < n; ++i) y.at(i) += 0.7f;  // bias

  Parameter w(Tensor({d, 1}));
  Parameter b(Tensor({1}));
  Adam opt(AdamConfig{.lr = 0.05f});
  opt.register_params({&w, &b});
  float final_loss = 1e9f;
  for (int step = 0; step < 800; ++step) {
    opt.zero_grad();
    Tape t;
    VarId pred = t.add_rowvec(t.matmul(t.constant(x), t.param(w)), t.param(b));
    VarId loss = t.mse_loss(pred, y);
    final_loss = t.value(loss).at(0);
    t.backward(loss);
    opt.step();
  }
  EXPECT_LT(final_loss, 1e-4f);
  EXPECT_NEAR(w.value.at(0), 2.0f, 0.05f);
  EXPECT_NEAR(w.value.at(1), -1.0f, 0.05f);
  EXPECT_NEAR(w.value.at(2), 0.5f, 0.05f);
  EXPECT_NEAR(b.value.at(0), 0.7f, 0.05f);
}

TEST(Adam, WeightDecayShrinksUnusedWeights) {
  Parameter p(Tensor({1}, {1.0f}));
  Adam opt(AdamConfig{.lr = 0.05f, .weight_decay = 0.1f});
  opt.register_param(p);
  for (int step = 0; step < 200; ++step) {
    opt.zero_grad();  // gradient stays zero; only decay acts
    opt.step();
  }
  EXPECT_LT(std::abs(p.value.at(0)), 0.2f);
}

TEST(Adam, RegisterCount) {
  Parameter a(Tensor({1})), b(Tensor({2}));
  Adam opt;
  opt.register_params({&a, &b});
  EXPECT_EQ(opt.num_params(), 2u);
}

TEST(Init, XavierBoundsRespected) {
  util::Rng rng(5);
  Tensor w = xavier_uniform(100, 50, rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(w.max(), bound);
  EXPECT_GE(w.min(), -bound);
  EXPECT_NEAR(w.mean(), 0.0f, 0.01f);
}

TEST(Init, KaimingVariance) {
  util::Rng rng(6);
  Tensor w = kaiming_normal(200, 100, rng);
  double var = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i)
    var += static_cast<double>(w.at(i)) * w.at(i);
  var /= w.numel();
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

}  // namespace
}  // namespace gnndse::tensor
