#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace gnndse::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 5});
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 5);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.shape_str(), "[4, 5]");
  Tensor v({7});
  EXPECT_EQ(v.rows(), 7);
  EXPECT_EQ(v.cols(), 1);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, ReshapeKeepsData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, InPlaceOps) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  a.add_(b);
  EXPECT_EQ(a.at(0), 4.0f);
  EXPECT_EQ(a.at(1), 6.0f);
  a.scale_(0.5f);
  EXPECT_EQ(a.at(0), 2.0f);
  a.fill_(9.0f);
  EXPECT_EQ(a.at(1), 9.0f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1, -2, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_FLOAT_EQ(t.norm(), std::sqrt(1.0f + 4 + 9 + 4));
}

TEST(TensorOps, MatmulBasic) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  ASSERT_EQ(c.rows(), 2);
  ASSERT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorOps, MatmulTransposeVariants) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  // (A x B)^T == B^T x A^T; check At and Bt paths give consistent results.
  Tensor at = Tensor({3, 2}, {1, 4, 2, 5, 3, 6});  // A^T stored explicitly
  Tensor c1 = matmul(a, b);
  Tensor c2 = matmul(at, b, /*trans_a=*/true);
  for (std::int64_t i = 0; i < c1.numel(); ++i)
    EXPECT_FLOAT_EQ(c1.at(i), c2.at(i));
  Tensor bt = Tensor({2, 3}, {7, 9, 11, 8, 10, 12});  // B^T
  Tensor c3 = matmul(a, bt, false, /*trans_b=*/true);
  for (std::int64_t i = 0; i < c1.numel(); ++i)
    EXPECT_FLOAT_EQ(c1.at(i), c3.at(i));
}

TEST(TensorOps, MatmulShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(TensorOps, ElementwiseOps) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 5});
  EXPECT_FLOAT_EQ(add(a, b).at(1), 7.0f);
  EXPECT_FLOAT_EQ(sub(a, b).at(0), -2.0f);
  EXPECT_FLOAT_EQ(mul(a, b).at(1), 10.0f);
  Tensor c({3});
  EXPECT_THROW(add(a, c), std::invalid_argument);
}

TEST(TensorOps, AddRowvec) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor bias({2}, {10, 20});
  Tensor out = add_rowvec(a, bias);
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 24.0f);
}

TEST(TensorOps, GatherScatterRoundTrip) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = gather_rows(a, {2, 0, 2});
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  Tensor s = scatter_add_rows(g, {2, 0, 2}, 3);
  // Row 2 was gathered twice so it doubles; row 1 untouched.
  EXPECT_FLOAT_EQ(s.at(2, 0), 10.0f);
  EXPECT_FLOAT_EQ(s.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(s.at(1, 0), 0.0f);
}

TEST(TensorOps, ConcatCols) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = concat_cols({&a, &b});
  ASSERT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 5.0f);
}

TEST(TensorOps, MatmulAccAccumulates) {
  Tensor a({1, 2}, {1, 2});
  Tensor b({2, 1}, {3, 4});
  Tensor out({1, 1}, {100});
  matmul_acc(a, b, false, false, out);
  EXPECT_FLOAT_EQ(out.at(0), 111.0f);
}

}  // namespace
}  // namespace gnndse::tensor
