// Design-space generator: encode/decode, pruning rules, exact counting and
// the §4.4 priority ordering.
#include "dspace/design_space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "kernels/kernels.hpp"

namespace gnndse::dspace {
namespace {

using hlssim::DesignConfig;
using hlssim::PipeMode;

TEST(DesignSpace, SiteOrderFollowsPositionIds) {
  // Sites of a loop appear as tile(0), pipeline(1), parallel(2).
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignSpace space(k);
  int last_loop = -1;
  int last_kind = -1;
  for (const auto& s : space.sites()) {
    if (s.loop != last_loop) {
      last_loop = s.loop;
      last_kind = -1;
    }
    EXPECT_GT(static_cast<int>(s.kind), last_kind);
    last_kind = static_cast<int>(s.kind);
  }
}

TEST(DesignSpace, DecodeEncodeRoundTrip) {
  kir::Kernel k = kernels::make_kernel("stencil");
  DesignSpace space(k);
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t idx = rng.uniform_int(space.raw_size());
    DesignConfig cfg = space.decode(idx);
    EXPECT_EQ(space.encode(cfg), idx);
  }
}

TEST(DesignSpace, DecodeOutOfRangeThrows) {
  kir::Kernel k = kernels::make_kernel("aes");
  DesignSpace space(k);
  EXPECT_THROW(space.decode(space.raw_size()), std::out_of_range);
}

TEST(DesignSpace, PrunedCountMatchesEnumeration) {
  // The closed-form DP count must equal brute-force enumeration.
  for (const char* name : {"aes", "spmv-crs", "gesummv", "doitgen"}) {
    kir::Kernel k = kernels::make_kernel(name);
    DesignSpace space(k);
    std::uint64_t counted = 0;
    space.for_each([&](DesignConfig&&) {
      ++counted;
      return true;
    });
    EXPECT_EQ(counted, space.pruned_size()) << name;
  }
}

TEST(DesignSpace, PrunedConfigsAreDuplicatesUnderFg) {
  // A pruned config differs from its canonical form only under an
  // fg-pipelined ancestor, so the space never loses distinct designs.
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignSpace space(k);
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[0].pipeline = PipeMode::kFine;
  EXPECT_FALSE(space.is_pruned(cfg));
  cfg.loops[1].parallel = 4;  // non-neutral under an fg ancestor
  EXPECT_TRUE(space.is_pruned(cfg));
  cfg.loops[1].parallel = 1;
  cfg.loops[2].pipeline = PipeMode::kCoarse;
  EXPECT_TRUE(space.is_pruned(cfg));
}

TEST(DesignSpace, ForEachRespectsLimit) {
  kir::Kernel k = kernels::make_kernel("stencil");
  DesignSpace space(k);
  std::uint64_t n = 0;
  space.for_each(
      [&](DesignConfig&&) {
        ++n;
        return true;
      },
      50);
  EXPECT_EQ(n, 50u);
}

TEST(DesignSpace, ForEachVisitorCanStopEnumeration) {
  // Returning false must stop the sweep immediately — cancelled DSE runs
  // rely on this to avoid decoding the rest of a large space.
  kir::Kernel k = kernels::make_kernel("stencil");
  DesignSpace space(k);
  std::uint64_t n = 0;
  space.for_each([&](DesignConfig&&) { return ++n < 7; });
  EXPECT_EQ(n, 7u);
}

TEST(DesignSpace, SampleNeverPruned) {
  kir::Kernel k = kernels::make_kernel("nw");
  DesignSpace space(k);
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i)
    EXPECT_FALSE(space.is_pruned(space.sample(rng)));
}

TEST(DesignSpace, SampleCoversSpace) {
  kir::Kernel k = kernels::make_kernel("aes");
  DesignSpace space(k);
  util::Rng rng(5);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) seen.insert(space.sample(rng).key());
  // aes has 31 pruned configs; random sampling should find most of them.
  EXPECT_GE(seen.size(), 25u);
}

TEST(DesignSpace, NeighborsDifferInExactlyOneSite) {
  kir::Kernel k = kernels::make_kernel("gemm-blocked");
  DesignSpace space(k);
  util::Rng rng(9);
  DesignConfig base = space.sample(rng);
  for (const auto& n : space.neighbors(base)) {
    int diffs = 0;
    for (std::size_t l = 0; l < base.loops.size(); ++l) {
      if (n.loops[l].pipeline != base.loops[l].pipeline) ++diffs;
      if (n.loops[l].parallel != base.loops[l].parallel) ++diffs;
      if (n.loops[l].tile != base.loops[l].tile) ++diffs;
    }
    EXPECT_EQ(diffs, 1);
  }
}

TEST(DesignSpace, RawSizeIsProductOfOptions) {
  kir::Kernel k = kernels::make_kernel("aes");
  DesignSpace space(k);
  std::uint64_t prod = 1;
  for (const auto& s : space.sites()) prod *= s.options.size();
  EXPECT_EQ(space.raw_size(), prod);
  EXPECT_EQ(space.raw_size(), 45u);  // matches the paper's aes count
}

// --- priority ordering (§4.4) -------------------------------------------------

TEST(PriorityOrder, InnermostLoopsComeFirst) {
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignSpace space(k);
  auto order = priority_ordered_sites(space);
  ASSERT_EQ(order.size(), space.sites().size());
  // The first site must belong to the deepest loop (k, depth 2) — unless
  // the dependence rule pulled its parent's pipeline up, which can only
  // put a *pipeline* site of the one-shallower loop in front.
  const auto& first = space.sites()[static_cast<std::size_t>(order[0])];
  const int depth = k.loop_depth(first.loop);
  EXPECT_TRUE(depth == 2 ||
              (depth == 1 && first.kind == SiteKind::kPipeline));
}

TEST(PriorityOrder, IsAPermutation) {
  for (const char* name : {"2mm", "stencil", "nw"}) {
    kir::Kernel k = kernels::make_kernel(name);
    DesignSpace space(k);
    auto order = priority_ordered_sites(space);
    std::set<int> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), space.sites().size()) << name;
  }
}

TEST(PriorityOrder, ParentPipelinePrecedesChildParallel) {
  // Dependence rule: the pipeline pragma of a loop must be evaluated
  // before (or adjacent to) the parallel pragma of its child.
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  DesignSpace space(k);
  auto order = priority_ordered_sites(space);
  auto pos_of = [&](int loop, SiteKind kind) {
    for (std::size_t p = 0; p < order.size(); ++p) {
      const auto& s = space.sites()[static_cast<std::size_t>(order[p])];
      if (s.loop == loop && s.kind == kind) return static_cast<int>(p);
    }
    return -1;
  };
  // k (loop 2) parallel depends on j (loop 1) pipeline.
  const int j_pipe = pos_of(1, SiteKind::kPipeline);
  const int k_par = pos_of(2, SiteKind::kParallel);
  ASSERT_NE(j_pipe, -1);
  ASSERT_NE(k_par, -1);
  EXPECT_LT(j_pipe, k_par);
}

}  // namespace
}  // namespace gnndse::dspace
