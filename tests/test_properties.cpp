// Cross-module property tests: randomized sweeps over design spaces
// checking simulator invariants, and batching invariance of the GNN
// forward pass (batch prediction == per-graph prediction).
#include <gtest/gtest.h>

#include <cmath>

#include "db/explorer.hpp"
#include "hlssim/cost_model.hpp"
#include "kernels/kernels.hpp"
#include "kernels/kernels_extension.hpp"
#include "model/trainer.hpp"
#include "oracle/evaluator.hpp"

namespace gnndse {
namespace {

class RandomConfigProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(RandomConfigProperties, SimulatorInvariantsHold) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  dspace::DesignSpace space(k);
  hlssim::MerlinHls hls;
  util::Rng rng(101);
  for (int i = 0; i < 60; ++i) {
    auto cfg = space.sample(rng);
    auto r = hls.evaluate(k, cfg);
    // Determinism.
    auto r2 = hls.evaluate(k, cfg);
    EXPECT_DOUBLE_EQ(r.cycles, r2.cycles);
    EXPECT_EQ(r.valid, r2.valid);
    EXPECT_GT(r.synth_seconds, 0.0);
    if (!r.valid) {
      EXPECT_FALSE(r.invalid_reason.empty());
      continue;
    }
    // Valid results carry sane magnitudes and the platform baseline.
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GE(r.lut, hlssim::cost::kBaseLut);
    EXPECT_GE(r.ff, hlssim::cost::kBaseFf);
    EXPECT_GE(r.bram, hlssim::cost::kBaseBram);
    EXPECT_GE(r.dsp, hlssim::cost::kBaseDsp);
    EXPECT_LE(r.synth_seconds, hlssim::MerlinHls::kTimeoutSeconds);
  }
}

TEST_P(RandomConfigProperties, MoreParallelNeverReducesResources) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  dspace::DesignSpace space(k);
  hlssim::MerlinHls hls;
  util::Rng rng(202);
  for (int trial = 0; trial < 25; ++trial) {
    auto cfg = space.sample(rng);
    // Find a parallel site and bump it one option up.
    for (const auto& site : space.sites()) {
      if (site.kind != dspace::SiteKind::kParallel) continue;
      auto& lc = cfg.loops[static_cast<std::size_t>(site.loop)];
      auto it = std::find(site.options.begin(), site.options.end(),
                          lc.parallel);
      if (it == site.options.end() || it + 1 == site.options.end()) continue;
      hlssim::DesignConfig bigger = cfg;
      bigger.loops[static_cast<std::size_t>(site.loop)].parallel = *(it + 1);
      if (space.is_pruned(bigger)) continue;
      auto ra = hls.evaluate(k, cfg);
      auto rb = hls.evaluate(k, bigger);
      if (!ra.valid || !rb.valid) continue;
      EXPECT_GE(rb.dsp, ra.dsp) << "site on loop " << site.loop;
      EXPECT_GE(rb.lut, ra.lut) << "site on loop " << site.loop;
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, RandomConfigProperties,
    ::testing::Values("atax", "gemm-blocked", "stencil", "nw", "2mm",
                      "gemver", "fdtd-2d", "md-knn"),
    [](const auto& info) {
      std::string n = info.param;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(BatchingInvariance, BatchedEqualsPerGraphPrediction) {
  // The disjoint-union batch must predict exactly what per-graph forward
  // passes predict (attention softmax and pooling are per-graph).
  oracle::SimEvaluator hls;
  auto kernels = std::vector<kir::Kernel>{kernels::make_kernel("spmv-crs"),
                                          kernels::make_kernel("aes")};
  util::Rng rng(55);
  db::Database db = db::generate_initial_database(
      kernels, hls, rng, [](const std::string&) { return 30; });
  model::Normalizer norm = model::Normalizer::fit(db.points());
  model::SampleFactory factory;
  model::Dataset ds = model::build_dataset(db, kernels, norm, factory);

  model::ModelOptions mo;
  mo.hidden = 24;
  mo.gnn_layers = 3;
  mo.out_dim = 4;
  util::Rng mrng(1);
  model::PredictiveModel m(mo, mrng);
  model::TrainOptions to;
  to.epochs = 2;
  model::Trainer tr(m, to);
  tr.fit(ds, ds.valid_indices());

  auto idx = ds.all_indices();
  idx.resize(std::min<std::size_t>(idx.size(), 24));
  tensor::Tensor batched = tr.predict(ds, idx);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    tensor::Tensor single = tr.predict(ds, {idx[i]});
    for (std::int64_t c = 0; c < 4; ++c)
      EXPECT_NEAR(single.at(0, c),
                  batched.at(static_cast<std::int64_t>(i), c), 1e-3f)
          << "sample " << i << " col " << c;
  }
}

TEST(BatchingInvariance, EmbeddingsMatchAcrossChunkBoundaries) {
  // embed_graphs chunks at 256; mixing kernels across a chunk must not
  // leak state. Use 2 kernels alternating.
  hlssim::MerlinHls hls;
  auto k1 = kernels::make_kernel("aes");
  auto k2 = kernels::make_kernel("spmv-ellpack");
  model::SampleFactory factory;
  model::ModelOptions mo;
  mo.hidden = 16;
  mo.gnn_layers = 2;
  mo.out_dim = 4;
  util::Rng mrng(2);
  model::PredictiveModel m(mo, mrng);
  model::TrainOptions to;
  model::Trainer tr(m, to);

  gnn::GraphData a = factory.featurize(k1, hlssim::DesignConfig::neutral(k1));
  gnn::GraphData b = factory.featurize(k2, hlssim::DesignConfig::neutral(k2));
  tensor::Tensor together = tr.embed_graphs({&a, &b, &a});
  tensor::Tensor alone_a = tr.embed_graphs({&a});
  tensor::Tensor alone_b = tr.embed_graphs({&b});
  for (std::int64_t c = 0; c < together.cols(); ++c) {
    EXPECT_NEAR(together.at(0, c), alone_a.at(0, c), 1e-4f);
    EXPECT_NEAR(together.at(1, c), alone_b.at(0, c), 1e-4f);
    EXPECT_NEAR(together.at(2, c), alone_a.at(0, c), 1e-4f);
  }
}

TEST(ExplorerProperty, SinkSeesEveryUniqueEvaluation) {
  kir::Kernel k = kernels::make_kernel("doitgen");
  dspace::DesignSpace space(k);
  oracle::SimEvaluator hls;
  db::Explorer ex(k, space, hls);
  int sink_calls = 0;
  db::ExplorerOptions opts;
  opts.max_evals = 50;
  ex.run_bottleneck(opts, [&sink_calls](const db::DataPoint&) {
    ++sink_calls;
  });
  EXPECT_EQ(sink_calls, ex.evals_used());
}

TEST(NormalizerProperty, TargetsMonotoneInSpeed) {
  model::Normalizer n(1e7);
  double prev = -1.0;
  for (double cycles : {9e6, 1e6, 1e5, 1e4, 1e3}) {
    const double t = n.latency_target(cycles);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace gnndse
