// Program-graph lowering and featurization (§4.2): node/edge taxonomy,
// pragma attachment, and the pragma-fill property that only pragma-node
// features differ between configurations of the same kernel.
#include "graphgen/featurize.hpp"
#include "graphgen/program_graph.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "kernels/kernels.hpp"
#include "kernels/kernels_extension.hpp"

namespace gnndse::graphgen {
namespace {

using hlssim::DesignConfig;
using hlssim::PipeMode;

class AllKernelsGraph : public ::testing::TestWithParam<std::string> {};

TEST_P(AllKernelsGraph, BuildsValidGraph) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  EXPECT_NO_THROW(validate(g));
  EXPECT_EQ(g.kernel_name, k.name);
  EXPECT_GT(g.num_nodes(), 10);
  EXPECT_GT(g.num_edges(), g.num_nodes() / 2);
}

TEST_P(AllKernelsGraph, OnePragmaNodePerSite) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  EXPECT_EQ(g.pragma_nodes.size(), space.sites().size());
  std::size_t pragma_nodes = 0;
  for (const auto& n : g.nodes)
    if (n.type == NodeType::kPragma) ++pragma_nodes;
  EXPECT_EQ(pragma_nodes, space.sites().size());
}

TEST_P(AllKernelsGraph, PragmaEdgesTargetLoopIcmp) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  std::size_t pragma_edges = 0;
  for (const auto& e : g.edges) {
    if (e.flow != FlowType::kPragma) continue;
    ++pragma_edges;
    EXPECT_EQ(g.nodes[static_cast<std::size_t>(e.dst)].key, KeyText::kIcmp);
    // Position encodes the pragma kind: 0 tile, 1 pipeline, 2 parallel.
    EXPECT_GE(e.position, 0);
    EXPECT_LE(e.position, 2);
  }
  EXPECT_EQ(pragma_edges, space.sites().size());
}

TEST_P(AllKernelsGraph, HasAllFourFlows) {
  kir::Kernel k = kernels::make_kernel(GetParam());
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  bool flows[4] = {false, false, false, false};
  for (const auto& e : g.edges) flows[static_cast<int>(e.flow)] = true;
  EXPECT_TRUE(flows[0]);  // control
  EXPECT_TRUE(flows[1]);  // data
  EXPECT_TRUE(flows[2]);  // call
  EXPECT_TRUE(flows[3]);  // pragma
}

std::vector<std::string> all_names() {
  auto names = kernels::training_kernel_names();
  for (const auto& n : kernels::unseen_kernel_names()) names.push_back(n);
  for (const auto& n : kernels::extension_kernel_names()) names.push_back(n);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, AllKernelsGraph,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(GraphStructure, LoopSkeletonHasBackEdge) {
  kir::Kernel k = kernels::make_kernel("aes");
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  // Every loop's br must have a control edge back to its icmp.
  for (std::int32_t icmp : g.loop_icmp_nodes) {
    bool has_back_edge = false;
    for (const auto& e : g.edges)
      if (e.dst == icmp && e.flow == FlowType::kControl &&
          g.nodes[static_cast<std::size_t>(e.src)].key == KeyText::kBr)
        has_back_edge = true;
    EXPECT_TRUE(has_back_edge);
  }
}

TEST(GraphStructure, RecurrenceFormsDataCycle) {
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  bool found = false;
  for (const auto& e : g.edges) {
    if (e.flow != FlowType::kData) continue;
    if (g.nodes[static_cast<std::size_t>(e.src)].key == KeyText::kAccum) {
      // acc -> op edge must pair with an op -> acc edge.
      for (const auto& e2 : g.edges)
        if (e2.src == e.dst && e2.dst == e.src &&
            e2.flow == FlowType::kData)
          found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Featurize, ShapesMatchContract) {
  kir::Kernel k = kernels::make_kernel("stencil");
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  tensor::Tensor x = node_features(g, space, DesignConfig::neutral(k));
  EXPECT_EQ(x.rows(), g.num_nodes());
  EXPECT_EQ(x.cols(), kNodeFeatureDim);
  tensor::Tensor e = edge_features(g);
  EXPECT_EQ(e.rows(), g.num_edges());
  EXPECT_EQ(e.cols(), kEdgeFeatureDim);
}

TEST(Featurize, OneHotBlocksSumCorrectly) {
  kir::Kernel k = kernels::make_kernel("mvt");
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  tensor::Tensor x = node_features(g, space, DesignConfig::neutral(k));
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    float type_sum = 0, key_sum = 0, block_sum = 0;
    for (int c = 0; c < 4; ++c) type_sum += x.at(i, c);
    for (int c = 4; c < 29; ++c) key_sum += x.at(i, c);
    for (int c = 29; c < 45; ++c) block_sum += x.at(i, c);
    EXPECT_FLOAT_EQ(type_sum, 1.0f);
    EXPECT_FLOAT_EQ(key_sum, 1.0f);
    EXPECT_FLOAT_EQ(block_sum, 1.0f);
  }
}

TEST(Featurize, OnlyPragmaRowsChangeAcrossConfigs) {
  // The paper's key property (§4.2): among graphs for different design
  // configurations, only the pragma-node attributes differ.
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  DesignConfig a = DesignConfig::neutral(k);
  DesignConfig b = a;
  b.loops[0].pipeline = PipeMode::kCoarse;
  b.loops[1].parallel = 8;
  b.loops[0].tile = 4;
  tensor::Tensor xa = node_features(g, space, a);
  tensor::Tensor xb = node_features(g, space, b);
  std::set<std::int64_t> pragma_rows(g.pragma_nodes.begin(),
                                     g.pragma_nodes.end());
  int changed_pragma_rows = 0;
  for (std::int64_t i = 0; i < xa.rows(); ++i) {
    bool row_differs = false;
    for (std::int64_t c = 0; c < xa.cols(); ++c)
      if (xa.at(i, c) != xb.at(i, c)) row_differs = true;
    if (pragma_rows.count(i)) {
      changed_pragma_rows += row_differs;
    } else {
      EXPECT_FALSE(row_differs) << "non-pragma row " << i << " changed";
    }
  }
  EXPECT_EQ(changed_pragma_rows, 3);  // the three sites we touched
}

TEST(Featurize, PipelineOptionsAreOneHot) {
  kir::Kernel k = kernels::make_kernel("aes");
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[0].pipeline = PipeMode::kFine;
  tensor::Tensor x = node_features(g, space, cfg);
  // Find the pipeline pragma node of loop 0 and check columns 58..60.
  for (std::size_t s = 0; s < space.sites().size(); ++s) {
    if (space.sites()[s].loop != 0 ||
        space.sites()[s].kind != dspace::SiteKind::kPipeline)
      continue;
    const std::int64_t row = g.pragma_nodes[s];
    EXPECT_FLOAT_EQ(x.at(row, 58), 0.0f);  // off
    EXPECT_FLOAT_EQ(x.at(row, 59), 0.0f);  // cg
    EXPECT_FLOAT_EQ(x.at(row, 60), 1.0f);  // fg
  }
}

TEST(Featurize, PragmaVectorLayout) {
  kir::Kernel k = kernels::make_kernel("gesummv");
  dspace::DesignSpace space(k);
  DesignConfig cfg = DesignConfig::neutral(k);
  cfg.loops[0].parallel = 4;
  tensor::Tensor v = pragma_vector(space, cfg, 16);
  EXPECT_EQ(v.numel(), 16 * kPragmaVectorPerSite);
  // Site 1 is loop 0's parallel (after its pipeline): log2(4)/8 = 0.25.
  bool found = false;
  for (std::size_t s = 0; s < space.sites().size(); ++s) {
    if (space.sites()[s].loop == 0 &&
        space.sites()[s].kind == dspace::SiteKind::kParallel) {
      EXPECT_FLOAT_EQ(
          v.at(static_cast<std::int64_t>(s) * kPragmaVectorPerSite + 3),
          0.25f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Featurize, MultipleEdgesSameTypeAreNumbered) {
  // Paper: "when there are two or more edges of the same type connected to
  // a node, they are numbered to further distinguish them". Pragma edges
  // to the same icmp carry distinct positions.
  kir::Kernel k = kernels::make_kernel("stencil");
  dspace::DesignSpace space(k);
  ProgramGraph g = build_graph(k, space);
  std::map<std::int32_t, std::set<int>> positions;  // icmp -> positions
  for (const auto& e : g.edges)
    if (e.flow == FlowType::kPragma)
      EXPECT_TRUE(positions[e.dst].insert(e.position).second)
          << "duplicate pragma position on node " << e.dst;
}

}  // namespace
}  // namespace gnndse::graphgen
