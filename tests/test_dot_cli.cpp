// DOT/JSON export, Merlin config normalization, and CLI argument parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cli/args.hpp"
#include "graphgen/dot_export.hpp"
#include "graphgen/json_export.hpp"
#include "hlssim/hls_sim.hpp"
#include "kernels/kernels.hpp"

namespace gnndse {
namespace {

TEST(DotExport, ContainsAllNodesAndColors) {
  kir::Kernel k = kernels::make_kernel("aes");
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  const std::string dot = graphgen::to_dot(g);
  EXPECT_NE(dot.find("digraph \"aes\""), std::string::npos);
  for (std::int64_t i = 0; i < g.num_nodes(); ++i)
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  // Paper color scheme present: pragma purple, control blue, data red,
  // call green.
  EXPECT_NE(dot.find("#9b59b6"), std::string::npos);
  EXPECT_NE(dot.find("#4a90d9"), std::string::npos);
  EXPECT_NE(dot.find("#d9534f"), std::string::npos);
  EXPECT_NE(dot.find("#5cb85c"), std::string::npos);
}

TEST(DotExport, AnnotatesPragmaValues) {
  kir::Kernel k = kernels::make_kernel("aes");
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  hlssim::DesignConfig cfg = hlssim::DesignConfig::neutral(k);
  cfg.loops[1].parallel = 16;
  cfg.loops[0].pipeline = hlssim::PipeMode::kCoarse;
  graphgen::DotOptions opts;
  opts.space = &space;
  opts.config = &cfg;
  const std::string dot = graphgen::to_dot(g, opts);
  EXPECT_NE(dot.find("PARALLEL=16"), std::string::npos);
  EXPECT_NE(dot.find("PIPELINE=cg"), std::string::npos);
  // Without a config, placeholders show instead.
  EXPECT_NE(graphgen::to_dot(g).find("auto{...}"), std::string::npos);
}

TEST(DotExport, AttentionScalesNodeSize) {
  kir::Kernel k = kernels::make_kernel("spmv-crs");
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  graphgen::DotOptions opts;
  opts.attention.assign(static_cast<std::size_t>(g.num_nodes()), 0.01f);
  opts.attention[0] = 1.0f;
  const std::string dot = graphgen::to_dot(g, opts);
  EXPECT_NE(dot.find("fixedsize=true"), std::string::npos);
}

TEST(DotExport, WritesFile) {
  kir::Kernel k = kernels::make_kernel("md-knn");
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  const std::string path = ::testing::TempDir() + "md_knn.dot";
  graphgen::write_dot(g, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(JsonExport, StructureAndCounts) {
  kir::Kernel k = kernels::make_kernel("spmv-crs");
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  const std::string json = graphgen::to_json(g);
  EXPECT_NE(json.find("\"kernel\":\"spmv-crs\""), std::string::npos);
  EXPECT_NE(json.find("\"num_nodes\":" + std::to_string(g.num_nodes())),
            std::string::npos);
  // One "src": entry per edge.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"src\":", pos)) != std::string::npos) {
    ++count;
    pos += 6;
  }
  EXPECT_EQ(count, g.edges.size());
  // Balanced braces/brackets (cheap well-formedness check).
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(JsonExport, FeaturesRequireSpaceAndConfig) {
  kir::Kernel k = kernels::make_kernel("aes");
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  graphgen::JsonOptions opts;
  opts.include_features = true;
  EXPECT_THROW(graphgen::to_json(g, opts), std::invalid_argument);
  hlssim::DesignConfig cfg = hlssim::DesignConfig::neutral(k);
  opts.space = &space;
  opts.config = &cfg;
  const std::string json = graphgen::to_json(g, opts);
  EXPECT_NE(json.find("\"node_features\":"), std::string::npos);
  EXPECT_NE(json.find("\"edge_features\":"), std::string::npos);
}

TEST(JsonExport, WritesFile) {
  kir::Kernel k = kernels::make_kernel("doitgen");
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  const std::string path = ::testing::TempDir() + "doitgen.json";
  graphgen::write_json(g, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(NormalizeConfig, FgUnrollsDescendantsAndDiscardsTheirPragmas) {
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  hlssim::DesignConfig cfg = hlssim::DesignConfig::neutral(k);
  cfg.loops[0].pipeline = hlssim::PipeMode::kFine;  // i
  cfg.loops[1].parallel = 8;                        // j: discarded
  cfg.loops[2].tile = 4;                            // k: discarded
  auto eff = hlssim::normalize_config(k, cfg);
  EXPECT_EQ(eff[1].pipeline, hlssim::PipeMode::kOff);
  EXPECT_EQ(eff[1].parallel, k.loops[1].trip_count);  // fully unrolled
  EXPECT_EQ(eff[2].parallel, k.loops[2].trip_count);
  EXPECT_EQ(eff[2].tile, 1);
}

TEST(NormalizeConfig, ClampsAndCoercesCg) {
  kir::Kernel k = kernels::make_kernel("gemm-ncubed");
  hlssim::DesignConfig cfg = hlssim::DesignConfig::neutral(k);
  cfg.loops[2].pipeline = hlssim::PipeMode::kCoarse;  // childless k loop
  cfg.loops[2].parallel = 100000;                     // above trip count
  auto eff = hlssim::normalize_config(k, cfg);
  EXPECT_EQ(eff[2].pipeline, hlssim::PipeMode::kFine);
  EXPECT_EQ(eff[2].parallel, k.loops[2].trip_count);
  EXPECT_THROW(hlssim::normalize_config(k, hlssim::DesignConfig{}),
               std::invalid_argument);
}

TEST(CliArgs, ParsesPositionalAndOptions) {
  const char* argv[] = {"gnndse", "dse",        "mvt",  "--time",
                        "30",     "--verbose",  "--top", "5"};
  cli::Args args(8, const_cast<char**>(argv));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "dse");
  EXPECT_EQ(args.positional()[1], "mvt");
  EXPECT_EQ(args.get_double("time", 0), 30.0);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_int("top", 0), 5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get("missing", "x"), "x");
}

TEST(CliArgs, FlagFollowedByFlag) {
  const char* argv[] = {"gnndse", "train", "--verbose", "--extension"};
  cli::Args args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.has("extension"));
}

}  // namespace
}  // namespace gnndse
