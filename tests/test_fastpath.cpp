// Tape-free inference fast path: bit-identity against the autodiff tape
// across model variants, heads, and thread counts; template/skeleton cache
// behaviour; and workspace reuse (no steady-state allocation).
#include "gnn/infer.hpp"
#include "model/dataset.hpp"
#include "model/predictive_model.hpp"
#include "model/trainer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dspace/design_space.hpp"
#include "gnn/batch.hpp"
#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "oracle/evaluator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gnndse::model {
namespace {

ModelOptions tiny_options(ModelKind kind, std::int64_t out_dim) {
  ModelOptions mo;
  mo.kind = kind;
  mo.gnn_layers = 3;
  mo.hidden = 16;
  mo.out_dim = out_dim;
  return mo;
}

std::vector<hlssim::DesignConfig> sample_configs(const kir::Kernel& kernel,
                                                 std::size_t n,
                                                 std::uint64_t seed) {
  dspace::DesignSpace space(kernel);
  util::Rng rng(seed);
  std::vector<hlssim::DesignConfig> configs;
  configs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) configs.push_back(space.sample(rng));
  return configs;
}

std::vector<gnn::GraphData> featurize_all(
    SampleFactory& factory, const kir::Kernel& kernel,
    const std::vector<hlssim::DesignConfig>& configs) {
  std::vector<gnn::GraphData> graphs;
  graphs.reserve(configs.size());
  for (const auto& c : configs) graphs.push_back(factory.featurize(kernel, c));
  return graphs;
}

std::vector<const gnn::GraphData*> pointers(
    const std::vector<gnn::GraphData>& graphs) {
  std::vector<const gnn::GraphData*> ptrs;
  ptrs.reserve(graphs.size());
  for (const auto& g : graphs) ptrs.push_back(&g);
  return ptrs;
}

/// Exact float comparison: the fast path's contract is bit-identity with
/// the tape, not tolerance-level agreement.
void expect_bitwise(const tensor::Tensor& a, const tensor::Tensor& b,
                    const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " element " << i;
}

/// Restores the default pool size even when an assertion fails mid-test.
struct ThreadGuard {
  ~ThreadGuard() { util::set_parallel_threads(0); }
};

TEST(FastPath, BitIdenticalToTapeAcrossKindsAndThreads) {
  ThreadGuard guard;
  kir::Kernel kernel = kernels::make_kernel("spmv-crs");
  SampleFactory factory;
  const auto configs = sample_configs(kernel, 12, 7);
  const auto graphs = featurize_all(factory, kernel, configs);
  const auto ptrs = pointers(graphs);

  const ModelKind kinds[] = {
      ModelKind::kM1MlpPragma, ModelKind::kM2MlpContext, ModelKind::kM3Gcn,
      ModelKind::kM4Gat,       ModelKind::kM5Tconv,      ModelKind::kM6TconvJkn,
      ModelKind::kM7Full};
  for (ModelKind kind : kinds) {
    util::Rng rng(11);
    PredictiveModel model(tiny_options(kind, 4), rng);
    Trainer trainer(model, TrainOptions{});
    for (int threads : {1, 2, 4}) {
      util::set_parallel_threads(threads);
      tensor::Tensor tape = trainer.predict_graphs_tape(ptrs);
      tensor::Tensor fast = trainer.predict_graphs(ptrs);
      expect_bitwise(tape, fast, to_string(kind));
    }
  }
}

TEST(FastPath, UngatedResidualAndSingleObjectiveHeadsBitIdentical) {
  ThreadGuard guard;
  kir::Kernel kernel = kernels::make_kernel("gemm-ncubed");
  SampleFactory factory;
  const auto configs = sample_configs(kernel, 10, 3);
  const auto graphs = featurize_all(factory, kernel, configs);
  const auto ptrs = pointers(graphs);

  // BRAM regressor (out_dim 1) and the ablation without the beta gate.
  for (bool gated : {true, false}) {
    ModelOptions mo = tiny_options(ModelKind::kM7Full, 1);
    mo.tconv_gated_residual = gated;
    util::Rng rng(5);
    PredictiveModel model(mo, rng);
    TrainOptions to;
    to.objectives = {kBram};
    Trainer trainer(model, to);
    for (int threads : {1, 2, 4}) {
      util::set_parallel_threads(threads);
      expect_bitwise(trainer.predict_graphs_tape(ptrs),
                     trainer.predict_graphs(ptrs),
                     gated ? "bram gated" : "bram ungated");
    }
  }

  // Validity classifier (logits).
  util::Rng rng(9);
  PredictiveModel clf(tiny_options(ModelKind::kM7Full, 1), rng);
  TrainOptions to;
  to.task = Task::kClassification;
  Trainer trainer(clf, to);
  for (int threads : {1, 2, 4}) {
    util::set_parallel_threads(threads);
    expect_bitwise(trainer.predict_graphs_tape(ptrs),
                   trainer.predict_graphs(ptrs), "classifier");
  }
}

TEST(FastPath, BatchForMatchesPerConfigAssembly) {
  kir::Kernel kernel = kernels::make_kernel("gemm-ncubed");
  SampleFactory factory;

  // Two different config sets of the same size: the second call reuses the
  // first call's cached skeleton, so it also proves per-config pragma slots
  // never leak between calls.
  for (std::uint64_t seed : {1u, 2u}) {
    const auto configs = sample_configs(kernel, 8, seed);
    const auto graphs = featurize_all(factory, kernel, configs);
    gnn::GraphBatch ref = gnn::make_batch(pointers(graphs));
    const gnn::GraphBatch& b = factory.batch_for(kernel, configs);

    expect_bitwise(ref.x, b.x, "batch x");
    expect_bitwise(ref.e, b.e, "batch e");
    expect_bitwise(ref.aux, b.aux, "batch aux");
    EXPECT_EQ(ref.src_sl, b.src_sl);
    EXPECT_EQ(ref.dst_sl, b.dst_sl);
    EXPECT_EQ(ref.gcn_coeff, b.gcn_coeff);
    EXPECT_EQ(ref.node_graph, b.node_graph);
    EXPECT_EQ(ref.node_offset, b.node_offset);
    EXPECT_EQ(ref.num_nodes, b.num_nodes);
    EXPECT_EQ(ref.num_graphs, b.num_graphs);
  }
}

TEST(FastPath, TemplateInvalidatedOnKernelEdit) {
  obs::set_enabled(true);
  obs::Counter& hits = obs::counter("gnn.template_hits");
  obs::Counter& misses = obs::counter("gnn.template_misses");

  kir::Kernel kernel = kernels::make_kernel("spmv-crs");
  SampleFactory factory;
  const auto configs = sample_configs(kernel, 2, 4);

  const std::int64_t m0 = misses.value();
  factory.featurize(kernel, configs[0]);  // first touch: one miss
  EXPECT_EQ(misses.value(), m0 + 1);

  const std::int64_t h0 = hits.value();
  factory.featurize(kernel, configs[1]);  // warm template: hit, no rebuild
  EXPECT_EQ(hits.value(), h0 + 1);
  EXPECT_EQ(misses.value(), m0 + 1);

  // Edit the kernel in place: same name, different digest -> the stale
  // template must be rebuilt, not served.
  const std::uint64_t before = oracle::kernel_digest(kernel);
  kernel.loops[0].trip_count *= 2;
  ASSERT_NE(oracle::kernel_digest(kernel), before);
  factory.featurize(kernel, configs[0]);
  EXPECT_EQ(misses.value(), m0 + 2);

  obs::set_enabled(false);
}

TEST(FastPath, TemplateBudgetEvictsLruButNeverMru) {
  obs::set_enabled(true);
  obs::Counter& misses = obs::counter("gnn.template_misses");
  obs::Counter& evictions = obs::counter("gnn.template_evictions");

  kir::Kernel k1 = kernels::make_kernel("spmv-crs");
  kir::Kernel k2 = kernels::make_kernel("gemm-ncubed");
  const auto cfg1 = sample_configs(k1, 1, 4)[0];
  const auto cfg2 = sample_configs(k2, 1, 4)[0];

  // A 1-byte budget can never hold two templates, but the MRU entry must
  // survive its own insert (the factory never evicts the template the
  // caller is about to use).
  SampleFactory tight(1);
  const std::int64_t m0 = misses.value(), e0 = evictions.value();
  tight.featurize(k1, cfg1);  // build k1 (sole entry: kept despite budget)
  EXPECT_EQ(misses.value(), m0 + 1);
  EXPECT_EQ(evictions.value(), e0);
  tight.featurize(k1, cfg1);  // still resident
  EXPECT_EQ(misses.value(), m0 + 1);

  tight.featurize(k2, cfg2);  // k2 becomes MRU; k1 evicted
  EXPECT_EQ(misses.value(), m0 + 2);
  EXPECT_EQ(evictions.value(), e0 + 1);
  tight.featurize(k2, cfg2);  // MRU still resident
  EXPECT_EQ(misses.value(), m0 + 2);

  tight.featurize(k1, cfg1);  // k1 rebuilt, k2 evicted in turn
  EXPECT_EQ(misses.value(), m0 + 3);
  EXPECT_EQ(evictions.value(), e0 + 2);

  // Unlimited budget (<= 0): both templates stay resident.
  SampleFactory unlimited(0);
  const std::int64_t m1 = misses.value(), e1 = evictions.value();
  unlimited.featurize(k1, cfg1);
  unlimited.featurize(k2, cfg2);
  unlimited.featurize(k1, cfg1);
  unlimited.featurize(k2, cfg2);
  EXPECT_EQ(misses.value(), m1 + 2);
  EXPECT_EQ(evictions.value(), e1);

  obs::set_enabled(false);
}

TEST(FastPath, WorkspaceStopsGrowingAfterWarmup) {
  kir::Kernel kernel = kernels::make_kernel("spmv-crs");
  SampleFactory factory;
  const auto configs = sample_configs(kernel, 16, 13);
  const auto graphs = featurize_all(factory, kernel, configs);
  const auto ptrs = pointers(graphs);

  util::Rng rng(17);
  PredictiveModel model(tiny_options(ModelKind::kM7Full, 4), rng);
  Trainer trainer(model, TrainOptions{});

  tensor::Tensor first = trainer.predict_graphs(ptrs);
  const std::size_t bytes = trainer.inference_session().workspace_bytes();
  const std::size_t slots = trainer.inference_session().num_slots();
  EXPECT_GT(bytes, 0u);
  EXPECT_GT(slots, 0u);

  for (int round = 0; round < 3; ++round) {
    tensor::Tensor again = trainer.predict_graphs(ptrs);
    expect_bitwise(first, again, "steady-state prediction");
    EXPECT_EQ(trainer.inference_session().workspace_bytes(), bytes);
    EXPECT_EQ(trainer.inference_session().num_slots(), slots);
  }
}

TEST(FastPath, EdgeProjectionCacheInvalidatedByTraining) {
  kir::Kernel kernel = kernels::make_kernel("spmv-crs");
  SampleFactory factory;
  const auto configs = sample_configs(kernel, 8, 29);
  const auto graphs = featurize_all(factory, kernel, configs);
  // One long-lived batch reused across a weight update — exactly the DSE
  // skeleton situation the per-batch edge-projection cache must survive.
  gnn::GraphBatch batch = gnn::make_batch(pointers(graphs));

  util::Rng rng(31);
  PredictiveModel model(tiny_options(ModelKind::kM7Full, 4), rng);
  TrainOptions to;
  to.epochs = 2;
  Trainer trainer(model, to);
  tensor::Tensor before = trainer.predict_batch(batch);  // warms the cache

  Dataset ds;
  ds.samples.resize(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    ds.samples[i].kernel = kernel.name;
    ds.samples[i].graph = graphs[i];
    ds.samples[i].target = {0.5f, 0.1f, 0.2f, 0.3f, 0.4f};
    ds.samples[i].valid = true;
  }
  trainer.fit(ds, ds.all_indices());

  // Same batch object, updated weights: the fast path must recompute the
  // cached projections, matching a fresh tape forward bit for bit.
  const tensor::Tensor& fast = trainer.predict_batch(batch);
  tensor::Tape tape;
  const tensor::Tensor& ref = tape.value(model.forward(tape, batch));
  expect_bitwise(ref, fast, "post-training prediction");

  // Sanity: training actually moved the weights, so a stale cache would
  // have been visible above.
  bool changed = false;
  for (std::int64_t i = 0; i < before.numel() && !changed; ++i)
    changed = before.data()[i] != fast.data()[i];
  EXPECT_TRUE(changed);
}

TEST(FastPath, EmbeddingsMatchTapeGraphEmbedding) {
  kir::Kernel kernel = kernels::make_kernel("spmv-crs");
  SampleFactory factory;
  const auto configs = sample_configs(kernel, 6, 21);
  const auto graphs = featurize_all(factory, kernel, configs);
  const auto ptrs = pointers(graphs);

  util::Rng rng(23);
  PredictiveModel model(tiny_options(ModelKind::kM7Full, 4), rng);
  Trainer trainer(model, TrainOptions{});

  // Tape reference: forward the whole batch, read last_graph_embedding.
  gnn::GraphBatch batch = gnn::make_batch(ptrs);
  tensor::Tape tape;
  model.forward(tape, batch);
  const tensor::Tensor& ref = tape.value(model.last_graph_embedding());

  tensor::Tensor fast = trainer.embed_graphs(ptrs);
  expect_bitwise(ref, fast, "graph embedding");
}

}  // namespace
}  // namespace gnndse::model
