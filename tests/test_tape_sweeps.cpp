// Parameterized property sweeps over the autodiff ops: gradient checks at
// multiple shapes, and algebraic identities that must hold exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.hpp"
#include "tensor/tape.hpp"
#include "util/rng.hpp"

namespace gnndse::tensor {
namespace {

struct ShapeCase {
  std::int64_t rows;
  std::int64_t cols;
};

class MatmulShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(MatmulShapes, GradientMatchesFiniteDifference) {
  const auto [m, k] = GetParam();
  const std::int64_t n = 3;
  util::Rng rng(m * 100 + k);
  Parameter a(uniform_init({m, k}, 0.8f, rng));
  Tensor b = uniform_init({k, n}, 0.8f, rng);

  a.zero_grad();
  {
    Tape t;
    VarId loss = t.mse_loss(t.matmul(t.param(a), t.constant(b)),
                            Tensor({m, n}));
    t.backward(loss);
  }
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < std::min<std::int64_t>(a.numel(), 6); ++i) {
    const float orig = a.value.at(i);
    auto eval = [&](float v) {
      a.value.at(i) = v;
      Tape t;
      return t.value(t.mse_loss(t.matmul(t.param(a), t.constant(b)),
                                Tensor({m, n})))
          .at(0);
    };
    const float up = eval(orig + eps), down = eval(orig - eps);
    a.value.at(i) = orig;
    EXPECT_NEAR(a.grad.at(i), (up - down) / (2 * eps), 3e-2f)
        << "shape " << m << "x" << k << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulShapes,
                         ::testing::Values(ShapeCase{1, 1}, ShapeCase{2, 5},
                                           ShapeCase{7, 3}, ShapeCase{16, 16},
                                           ShapeCase{1, 31}),
                         [](const auto& info) {
                           return std::to_string(info.param.rows) + "x" +
                                  std::to_string(info.param.cols);
                         });

class SegmentSoftmaxSizes : public ::testing::TestWithParam<int> {};

TEST_P(SegmentSoftmaxSizes, SumsToOnePerSegment) {
  const int edges = GetParam();
  util::Rng rng(edges);
  std::vector<std::int32_t> seg;
  const int num_segments = std::max(1, edges / 3);
  for (int i = 0; i < edges; ++i)
    seg.push_back(static_cast<std::int32_t>(rng.uniform_int(
        static_cast<std::uint64_t>(num_segments))));
  Tensor scores({edges, 1});
  for (int i = 0; i < edges; ++i)
    scores.at(i) = static_cast<float>(rng.normal(0.0, 3.0));

  Tape t;
  VarId y = t.segment_softmax(t.constant(scores), seg, num_segments);
  std::vector<double> sums(static_cast<std::size_t>(num_segments), 0.0);
  std::vector<int> counts(static_cast<std::size_t>(num_segments), 0);
  for (int i = 0; i < edges; ++i) {
    sums[static_cast<std::size_t>(seg[static_cast<std::size_t>(i)])] +=
        t.value(y).at(i, 0);
    ++counts[static_cast<std::size_t>(seg[static_cast<std::size_t>(i)])];
    EXPECT_GE(t.value(y).at(i, 0), 0.0f);
  }
  for (int s = 0; s < num_segments; ++s)
    if (counts[static_cast<std::size_t>(s)] > 0)
      EXPECT_NEAR(sums[static_cast<std::size_t>(s)], 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SegmentSoftmaxSizes,
                         ::testing::Values(1, 4, 17, 64, 301));

TEST(TapeAlgebra, MatmulDistributesOverAdd) {
  // (A + B) C == AC + BC through the tape, bit-for-bit not required but
  // to float tolerance.
  util::Rng rng(9);
  Tensor a = uniform_init({4, 6}, 1.0f, rng);
  Tensor b = uniform_init({4, 6}, 1.0f, rng);
  Tensor c = uniform_init({6, 3}, 1.0f, rng);
  Tape t;
  VarId lhs = t.matmul(t.add(t.constant(a), t.constant(b)), t.constant(c));
  VarId rhs = t.add(t.matmul(t.constant(a), t.constant(c)),
                    t.matmul(t.constant(b), t.constant(c)));
  for (std::int64_t i = 0; i < t.value(lhs).numel(); ++i)
    EXPECT_NEAR(t.value(lhs).at(i), t.value(rhs).at(i), 1e-4f);
}

TEST(TapeAlgebra, GatherOfIdentityIsIdentity) {
  util::Rng rng(10);
  Tensor x = uniform_init({5, 3}, 1.0f, rng);
  Tape t;
  VarId y = t.gather_rows(t.constant(x), {0, 1, 2, 3, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(t.value(y).at(i), x.at(i));
}

TEST(TapeAlgebra, ScatterGatherAdjoint) {
  // <scatter(x), y> == <x, gather(y)> — the defining adjoint relation the
  // backward passes rely on.
  util::Rng rng(11);
  std::vector<std::int32_t> idx{2, 0, 2, 1, 4};
  Tensor x = uniform_init({5, 2}, 1.0f, rng);
  Tensor y = uniform_init({6, 2}, 1.0f, rng);
  Tape t;
  VarId sx = t.scatter_add_rows(t.constant(x), idx, 6);
  VarId gy = t.gather_rows(t.constant(y), idx);
  const Tensor& sxv = t.value(sx);
  const Tensor& gyv = t.value(gy);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < sxv.numel(); ++i) lhs += sxv.at(i) * y.at(i);
  for (std::int64_t i = 0; i < gyv.numel(); ++i) rhs += gyv.at(i) * x.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(TapeAlgebra, MaxListIdempotent) {
  util::Rng rng(12);
  Tensor x = uniform_init({3, 3}, 1.0f, rng);
  Tape t;
  VarId v = t.constant(x);
  VarId m = t.max_list({v, v, v});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(t.value(m).at(i), x.at(i));
}

TEST(TapeAlgebra, SigmoidSymmetry) {
  // sigmoid(-x) == 1 - sigmoid(x)
  Tensor x({5}, {-4.0f, -1.0f, 0.0f, 2.5f, 7.0f});
  Tensor nx = x;
  nx.scale_(-1.0f);
  Tape t;
  VarId a = t.sigmoid(t.constant(x));
  VarId b = t.sigmoid(t.constant(nx));
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_NEAR(t.value(a).at(i) + t.value(b).at(i), 1.0f, 1e-6f);
}

}  // namespace
}  // namespace gnndse::tensor
