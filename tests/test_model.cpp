// Model stack: normalization (eq. 11), dataset assembly, all seven model
// variants' forward passes, training convergence, metric computation, and
// weight serialization.
#include "model/dataset.hpp"
#include "model/normalizer.hpp"
#include "model/predictive_model.hpp"
#include "model/trainer.hpp"
#include "model/weights.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "db/explorer.hpp"
#include "kernels/kernels.hpp"
#include "oracle/evaluator.hpp"

namespace gnndse::model {
namespace {

db::Database small_db(const std::vector<kir::Kernel>& kernels, int budget) {
  oracle::SimEvaluator hls;
  util::Rng rng(21);
  return db::generate_initial_database(
      kernels, hls, rng, [budget](const std::string&) { return budget; });
}

TEST(Normalizer, LatencyTransformMatchesEq11) {
  Normalizer n(1'000'000.0);
  EXPECT_FLOAT_EQ(n.latency_target(1'000'000.0), 0.0f);
  EXPECT_FLOAT_EQ(n.latency_target(500'000.0), 1.0f);  // log2(2)
  EXPECT_FLOAT_EQ(n.latency_target(1'000.0), std::log2(1000.0f));
  // Faster designs get larger targets (the loss emphasizes them).
  EXPECT_GT(n.latency_target(100.0), n.latency_target(10'000.0));
  // Clamped at 0 for designs slower than the normalization factor.
  EXPECT_FLOAT_EQ(n.latency_target(2'000'000.0), 0.0f);
}

TEST(Normalizer, RoundTrip) {
  Normalizer n(4'812'119.0);
  for (double cycles : {660.0, 12'345.0, 1e6}) {
    EXPECT_NEAR(n.latency_from_target(n.latency_target(cycles)) / cycles, 1.0,
                1e-3);
  }
}

TEST(Normalizer, FitUsesMaxValidLatency) {
  hlssim::HlsResult a;
  a.valid = true;
  a.cycles = 5000;
  hlssim::HlsResult b = a;
  b.cycles = 9000;
  hlssim::HlsResult c = a;
  c.valid = false;
  c.cycles = 1e9;  // invalid: ignored
  std::vector<db::DataPoint> pts{{"k", {}, a}, {"k", {}, b}, {"k", {}, c}};
  EXPECT_DOUBLE_EQ(Normalizer::fit(pts).norm_factor(), 9000.0);
}

TEST(Normalizer, TargetsOrderAndUtilPassthrough) {
  Normalizer n(1000.0);
  hlssim::HlsResult r;
  r.valid = true;
  r.cycles = 500;
  r.util_dsp = 0.25;
  r.util_lut = 0.5;
  r.util_ff = 0.75;
  r.util_bram = 0.1;
  auto t = n.targets(r);
  EXPECT_FLOAT_EQ(t[kLatency], 1.0f);
  EXPECT_FLOAT_EQ(t[kDsp], 0.25f);
  EXPECT_FLOAT_EQ(t[kLut], 0.5f);
  EXPECT_FLOAT_EQ(t[kFf], 0.75f);
  EXPECT_FLOAT_EQ(t[kBram], 0.1f);
}

TEST(SampleFactory, CachesKernelStructures) {
  kir::Kernel k = kernels::make_kernel("aes");
  SampleFactory f;
  const auto& g1 = f.graph(k);
  const auto& g2 = f.graph(k);
  EXPECT_EQ(&g1, &g2);  // same cached object
  auto d1 = f.featurize(k, hlssim::DesignConfig::neutral(k));
  EXPECT_EQ(d1.x.rows(), g1.num_nodes());
  EXPECT_GT(d1.aux.numel(), 0);
}

TEST(DatasetBuild, TargetsAndValidityCarriedOver) {
  auto kernels = std::vector<kir::Kernel>{kernels::make_kernel("spmv-crs")};
  db::Database database = small_db(kernels, 40);
  Normalizer norm = Normalizer::fit(database.points());
  SampleFactory f;
  Dataset ds = build_dataset(database, kernels, norm, f);
  ASSERT_EQ(ds.samples.size(), database.size());
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    EXPECT_EQ(ds.samples[i].valid, database.points()[i].result.valid);
    if (ds.samples[i].valid)
      EXPECT_GE(ds.samples[i].target[kLatency], 0.0f);
  }
  EXPECT_EQ(ds.valid_indices().size(), database.counts_total().valid);
}

TEST(DatasetSplit, PartitionsWithoutOverlap) {
  Dataset ds;
  ds.samples.resize(100);
  util::Rng rng(3);
  auto [train, test] = Dataset::split(ds.all_indices(), 0.8, rng);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  std::set<std::size_t> all(train.begin(), train.end());
  for (auto i : test) EXPECT_TRUE(all.insert(i).second);
  EXPECT_EQ(all.size(), 100u);
}

TEST(DatasetFolds, ThreeFoldCoversAll) {
  Dataset ds;
  ds.samples.resize(31);
  util::Rng rng(3);
  auto folds = Dataset::folds(ds.all_indices(), 3, rng);
  ASSERT_EQ(folds.size(), 3u);
  std::set<std::size_t> all;
  for (const auto& f : folds)
    for (auto i : f) EXPECT_TRUE(all.insert(i).second);
  EXPECT_EQ(all.size(), 31u);
  EXPECT_THROW(Dataset::folds(ds.all_indices(), 1, rng),
               std::invalid_argument);
}

class AllVariantsForward : public ::testing::TestWithParam<ModelKind> {};

TEST_P(AllVariantsForward, ProducesFiniteOutputs) {
  auto kernels = std::vector<kir::Kernel>{kernels::make_kernel("aes")};
  db::Database database = small_db(kernels, 20);
  Normalizer norm = Normalizer::fit(database.points());
  SampleFactory f;
  Dataset ds = build_dataset(database, kernels, norm, f);
  ASSERT_GE(ds.samples.size(), 4u);

  ModelOptions mo;
  mo.kind = GetParam();
  mo.hidden = 16;
  mo.gnn_layers = 3;
  mo.out_dim = 4;
  util::Rng rng(1);
  PredictiveModel m(mo, rng);
  EXPECT_GT(m.num_weights(), 0);

  TrainOptions to;
  to.epochs = 1;
  Trainer tr(m, to);
  tensor::Tensor pred = tr.predict(ds, ds.all_indices());
  EXPECT_EQ(pred.rows(), static_cast<std::int64_t>(ds.samples.size()));
  EXPECT_EQ(pred.cols(), 4);
  for (std::int64_t i = 0; i < pred.numel(); ++i)
    EXPECT_TRUE(std::isfinite(pred.at(i)));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllVariantsForward,
    ::testing::Values(ModelKind::kM1MlpPragma, ModelKind::kM2MlpContext,
                      ModelKind::kM3Gcn, ModelKind::kM4Gat,
                      ModelKind::kM5Tconv, ModelKind::kM6TconvJkn,
                      ModelKind::kM7Full),
    [](const auto& info) {
      switch (info.param) {
        case ModelKind::kM1MlpPragma: return "M1";
        case ModelKind::kM2MlpContext: return "M2";
        case ModelKind::kM3Gcn: return "M3";
        case ModelKind::kM4Gat: return "M4";
        case ModelKind::kM5Tconv: return "M5";
        case ModelKind::kM6TconvJkn: return "M6";
        default: return "M7";
      }
    });

TEST(Training, RegressionLossDecreases) {
  auto kernels =
      std::vector<kir::Kernel>{kernels::make_kernel("gemm-ncubed")};
  db::Database database = small_db(kernels, 120);
  Normalizer norm = Normalizer::fit(database.points());
  SampleFactory f;
  Dataset ds = build_dataset(database, kernels, norm, f);

  ModelOptions mo;
  mo.hidden = 32;
  mo.gnn_layers = 3;
  mo.out_dim = 4;
  util::Rng rng(1);
  PredictiveModel m(mo, rng);
  TrainOptions to;
  to.epochs = 1;
  Trainer tr(m, to);
  const float first = tr.fit(ds, ds.valid_indices());
  TrainOptions to2 = to;
  to2.epochs = 10;
  Trainer tr2(m, to2);
  const float last = tr2.fit(ds, ds.valid_indices());
  EXPECT_LT(last, first * 0.7f);
}

TEST(Training, ClassifierLearnsValidity) {
  auto kernels = std::vector<kir::Kernel>{kernels::make_kernel("nw")};
  db::Database database = small_db(kernels, 150);
  Normalizer norm = Normalizer::fit(database.points());
  SampleFactory f;
  Dataset ds = build_dataset(database, kernels, norm, f);
  const auto c = database.counts_total();
  ASSERT_GT(c.total - c.valid, 10u);  // nw yields plenty of invalid points

  ModelOptions mo;
  mo.hidden = 32;
  mo.gnn_layers = 3;
  mo.out_dim = 1;
  util::Rng rng(1);
  PredictiveModel m(mo, rng);
  TrainOptions to;
  to.task = Task::kClassification;
  to.epochs = 30;
  to.lr = 3e-3f;  // imbalanced data: see PipelineOptions::cls_lr
  Trainer tr(m, to);
  tr.fit(ds, ds.all_indices());
  auto metrics = eval_classification(tr, ds, ds.all_indices());
  // Must beat the majority-class base rate (the DB is imbalanced) and
  // actually detect the minority valid class.
  const float base_rate =
      1.0f - static_cast<float>(c.valid) / static_cast<float>(c.total);
  EXPECT_GT(metrics.accuracy, std::max(base_rate + 0.03f, 0.8f));
  EXPECT_GT(metrics.f1, 0.4f);
}

TEST(Metrics, RegressionRmseHandComputed) {
  // Build a dataset of two samples and a trivially-predictable model? No:
  // check the metric arithmetic itself via a 1-sample dataset and a model
  // prediction read back from predict().
  auto kernels = std::vector<kir::Kernel>{kernels::make_kernel("aes")};
  db::Database database = small_db(kernels, 10);
  Normalizer norm = Normalizer::fit(database.points());
  SampleFactory f;
  Dataset ds = build_dataset(database, kernels, norm, f);
  ModelOptions mo;
  mo.hidden = 16;
  mo.gnn_layers = 2;
  mo.out_dim = 4;
  util::Rng rng(1);
  PredictiveModel m(mo, rng);
  TrainOptions to;
  Trainer tr(m, to);
  std::vector<std::size_t> one{0};
  tensor::Tensor pred = tr.predict(ds, one);
  auto metrics = eval_regression(tr, ds, one);
  const float expect_lat =
      std::abs(pred.at(0, 0) - ds.samples[0].target[kLatency]);
  EXPECT_NEAR(metrics.rmse[kLatency], expect_lat, 1e-4f);
  const float manual_sum = metrics.rmse[kLatency] + metrics.rmse[kDsp] +
                           metrics.rmse[kLut] + metrics.rmse[kFf];
  EXPECT_NEAR(metrics.rmse_sum, manual_sum, 1e-5f);
}

TEST(Metrics, ClassificationEdgeCases) {
  ClassificationMetrics m;
  EXPECT_EQ(m.accuracy, 0.0f);
  // combine() overlays the BRAM column and adds the sums.
  RegressionMetrics main;
  main.rmse[kLatency] = 1.0f;
  main.rmse_sum = 1.5f;
  RegressionMetrics bram;
  bram.rmse[kBram] = 0.25f;
  bram.rmse_sum = 0.25f;
  auto combined = combine(main, bram);
  EXPECT_FLOAT_EQ(combined.rmse[kBram], 0.25f);
  EXPECT_FLOAT_EQ(combined.rmse[kLatency], 1.0f);
  EXPECT_FLOAT_EQ(combined.rmse_sum, 1.75f);
}

TEST(Weights, SaveLoadRoundTrip) {
  ModelOptions mo;
  mo.hidden = 16;
  mo.gnn_layers = 2;
  mo.out_dim = 4;
  util::Rng rng(1);
  PredictiveModel a(mo, rng);
  const std::string path = ::testing::TempDir() + "weights_test.bin";
  save_params(a.params(), path);
  EXPECT_TRUE(weights_exist(path));

  util::Rng rng2(99);
  PredictiveModel b(mo, rng2);
  load_params(b.params(), path);
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->numel(); ++j)
      EXPECT_FLOAT_EQ(pa[i]->value.at(j), pb[i]->value.at(j));
  std::remove(path.c_str());
}

TEST(Weights, LoadRejectsWrongArchitecture) {
  ModelOptions mo;
  mo.hidden = 16;
  mo.gnn_layers = 2;
  mo.out_dim = 4;
  util::Rng rng(1);
  PredictiveModel a(mo, rng);
  const std::string path = ::testing::TempDir() + "weights_mismatch.bin";
  save_params(a.params(), path);
  ModelOptions other = mo;
  other.hidden = 32;
  PredictiveModel b(other, rng);
  EXPECT_THROW(load_params(b.params(), path), std::runtime_error);
  EXPECT_FALSE(weights_exist(::testing::TempDir() + "nonexistent.bin"));
  std::remove(path.c_str());
}

TEST(TrainerGuards, MisconfiguredModelsRejected) {
  ModelOptions mo;
  mo.out_dim = 4;
  util::Rng rng(1);
  PredictiveModel m(mo, rng);
  TrainOptions to;
  to.objectives = {kLatency};  // 1 objective vs out_dim 4
  EXPECT_THROW(Trainer(m, to), std::invalid_argument);
  TrainOptions tc;
  tc.task = Task::kClassification;  // needs out_dim 1
  EXPECT_THROW(Trainer(m, tc), std::invalid_argument);
}

}  // namespace
}  // namespace gnndse::model
