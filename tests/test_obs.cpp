// Telemetry subsystem: counter/gauge/histogram math (percentile edges,
// empty histogram), span nesting and ordering, JSON round-trip of a run
// report, thread-safety of the registry, and the zero-cost-disabled gate.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace gnndse {
namespace {

/// Re-arms telemetry for each test and restores the disabled default.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_all();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_all();
  }
};

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser — enough to round-trip a report.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected ") + c + " got " +
                               s_[pos_]);
    ++pos_;
  }
  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      default:
        return number();
    }
  }
  Json object() {
    Json v;
    v.kind = Json::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Json key = string_value();
      expect(':');
      v.obj[key.str] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }
  Json array() {
    Json v;
    v.kind = Json::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  Json string_value() {
    Json v;
    v.kind = Json::Kind::kString;
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        c = e == 'n' ? '\n' : e;
      }
      v.str.push_back(c);
    }
    if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return v;
  }
  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.b = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }
  Json number() {
    Json v;
    v.kind = Json::Kind::kNumber;
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    if (end == pos_) throw std::runtime_error("bad number");
    v.num = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Counters and gauges.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  obs::Counter& c = obs::counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  obs::add(c);
  obs::add(c, 41);
  EXPECT_EQ(c.value(), 42);
  obs::reset_all();
  EXPECT_EQ(c.value(), 0);
  // The handle survives reset: same metric, still registered.
  obs::add(c, 7);
  EXPECT_EQ(obs::counter("test.counter").value(), 7);
}

TEST_F(ObsTest, DisabledRecordingIsDropped) {
  obs::Counter& c = obs::counter("test.disabled");
  obs::set_enabled(false);
  obs::add(c, 5);
  EXPECT_EQ(c.value(), 0);
  obs::set_enabled(true);
  obs::add(c, 5);
  EXPECT_EQ(c.value(), 5);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  obs::Gauge& g = obs::gauge("test.gauge");
  obs::set(g, 1.5);
  obs::set(g, -2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST_F(ObsTest, TwoThreadsHammeringOneCounterIsExact) {
  obs::Counter& c = obs::counter("test.mt_counter");
  constexpr int kPerThread = 200'000;
  auto hammer = [&c] {
    for (int i = 0; i < kPerThread; ++i) obs::add(c);
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(c.value(), 2 * kPerThread);
}

// ---------------------------------------------------------------------------
// Histogram math.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, EmptyHistogramReportsZeros) {
  obs::Histogram& h = obs::histogram("test.empty_hist");
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 0.0);
}

TEST_F(ObsTest, HistogramStatsAndPercentiles) {
  obs::Histogram& h = obs::histogram("test.hist");
  // 100 observations: 1..100 ms.
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  // Bucket-resolution estimates: p50 of 1..100 lands in the (32,64] bucket,
  // p95 in the (64,128] bucket (clamped to the observed max of 100).
  EXPECT_GE(h.percentile(0.5), 50.0);
  EXPECT_LE(h.percentile(0.5), 64.0);
  EXPECT_GE(h.percentile(0.95), 95.0);
  EXPECT_LE(h.percentile(0.95), 100.0);
  // Edges: p0 is the first non-empty bucket's bound, p100 the exact max.
  EXPECT_GT(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST_F(ObsTest, HistogramSingleObservationPercentileEdges) {
  obs::Histogram& h = obs::histogram("test.hist_one");
  h.observe(3.0);
  // Every percentile of one observation clamps to that observation.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST_F(ObsTest, HistogramOverflowBucketAndNegativeClamp) {
  obs::Histogram& h = obs::histogram("test.hist_edge");
  h.observe(-5.0);  // clamped to 0 -> first bucket
  h.observe(1e9);   // far beyond the last finite bound -> overflow bucket
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets.front(), 1);
  EXPECT_EQ(buckets.back(), 1);
  // The overflow percentile reports the observed max, not a bucket bound.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e9);
}

TEST_F(ObsTest, HistogramConcurrentObservationsKeepExactCount) {
  obs::Histogram& h = obs::histogram("test.hist_mt");
  constexpr int kPerThread = 50'000;
  auto hammer = [&h] {
    for (int i = 0; i < kPerThread; ++i)
      h.observe(static_cast<double>(i % 7));
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(h.count(), 2 * kPerThread);
  std::int64_t bucket_total = 0;
  for (std::int64_t n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, 2 * kPerThread);
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpansNestAndRecordInStartOrder) {
  {
    obs::ScopedSpan outer("outer");
    {
      obs::ScopedSpan first("first");
      first.add("key", 2.0);
      first.add("key", 3.0);
    }
    { obs::ScopedSpan second("second"); }
    outer.add("done", 1.0);
  }
  { obs::ScopedSpan sibling("sibling"); }

  auto spans = obs::trace_snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "first");
  EXPECT_EQ(spans[2].name, "second");
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[0].id);
  EXPECT_EQ(spans[3].parent, -1);
  for (const auto& s : spans) EXPECT_FALSE(s.open);
  // Children start within the parent and cannot outlive it.
  EXPECT_GE(spans[1].start_ms, spans[0].start_ms);
  EXPECT_LE(spans[1].duration_ms, spans[0].duration_ms);
  // Attached counters accumulate per key.
  ASSERT_EQ(spans[1].counters.size(), 1u);
  EXPECT_EQ(spans[1].counters[0].first, "key");
  EXPECT_DOUBLE_EQ(spans[1].counters[0].second, 5.0);
}

TEST_F(ObsTest, DisabledSpansStillTimeButDoNotRecord) {
  obs::set_enabled(false);
  obs::ScopedSpan span("invisible");
  EXPECT_GE(span.seconds(), 0.0);  // the stopwatch works regardless
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

// ---------------------------------------------------------------------------
// Report JSON round-trip.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ReportJsonRoundTrips) {
  obs::add(obs::counter("rt.counter"), 42);
  obs::set(obs::gauge("rt.gauge"), 2.75);
  obs::Histogram& h = obs::histogram("rt.hist");
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  {
    obs::ScopedSpan root("pipeline");
    obs::ScopedSpan child("train");
    child.add("epochs", 3.0);
  }

  const std::string json = obs::report_json("test_obs", 1.25);
  Json doc = JsonParser(json).parse();

  EXPECT_EQ(doc.at("schema_version").num, 1.0);
  EXPECT_EQ(doc.at("tool").str, "test_obs");
  EXPECT_DOUBLE_EQ(doc.at("elapsed_seconds").num, 1.25);
  EXPECT_EQ(doc.at("counters").at("rt.counter").num, 42.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("rt.gauge").num, 2.75);

  const Json& hist = doc.at("histograms").at("rt.hist");
  EXPECT_EQ(hist.at("count").num, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("sum_ms").num, 7.0);
  EXPECT_DOUBLE_EQ(hist.at("min_ms").num, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("max_ms").num, 4.0);
  std::int64_t bucket_total = 0;
  for (const Json& b : hist.at("buckets").arr)
    bucket_total += static_cast<std::int64_t>(b.at("count").num);
  EXPECT_EQ(bucket_total, 3);

  ASSERT_EQ(doc.at("spans").arr.size(), 1u);
  const Json& root = doc.at("spans").arr[0];
  EXPECT_EQ(root.at("name").str, "pipeline");
  ASSERT_EQ(root.at("children").arr.size(), 1u);
  const Json& child = root.at("children").arr[0];
  EXPECT_EQ(child.at("name").str, "train");
  EXPECT_DOUBLE_EQ(child.at("counters").at("epochs").num, 3.0);
  EXPECT_TRUE(child.at("children").arr.empty());
  EXPECT_GE(child.at("duration_ms").num, 0.0);
}

TEST_F(ObsTest, ReportEscapesStrings) {
  obs::add(obs::counter("weird\"name\\with\nnewline"), 1);
  const std::string json = obs::report_json("tool \"quoted\"", 0.0);
  Json doc = JsonParser(json).parse();
  EXPECT_EQ(doc.at("tool").str, "tool \"quoted\"");
  EXPECT_EQ(doc.at("counters").at("weird\"name\\with\nnewline").num, 1.0);
}

TEST_F(ObsTest, ReportSessionWritesFileAndClosesRootSpan) {
  const std::string path = ::testing::TempDir() + "/obs_session_report.json";
  obs::set_enabled(false);  // the session flips it on itself
  {
    obs::ReportSession session("test_tool", path);
    ASSERT_TRUE(session.active());
    EXPECT_TRUE(obs::enabled());
    obs::ScopedSpan work("work");
    obs::add(obs::counter("session.counter"), 9);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Json doc = JsonParser(json).parse();
  EXPECT_EQ(doc.at("tool").str, "test_tool");
  ASSERT_EQ(doc.at("spans").arr.size(), 1u);
  EXPECT_EQ(doc.at("spans").arr[0].at("name").str, "pipeline");
  EXPECT_FALSE(doc.at("spans").arr[0].has("open"));
  EXPECT_EQ(doc.at("spans").arr[0].at("children").arr[0].at("name").str,
            "work");
  EXPECT_EQ(doc.at("counters").at("session.counter").num, 9.0);
}

TEST_F(ObsTest, InactiveReportSessionDoesNothing) {
  obs::set_enabled(false);
  obs::ReportSession session("noop", "");
  // No GNNDSE_REPORT in the test environment and no explicit path.
  if (!session.active()) {
    EXPECT_FALSE(obs::enabled());
    EXPECT_TRUE(obs::trace_snapshot().empty());
  }
}

}  // namespace
}  // namespace gnndse
