// Telemetry subsystem: counter/gauge/histogram math (percentile edges,
// empty histogram), span nesting and ordering, JSON round-trip of a run
// report, thread-safety of the registry, and the zero-cost-disabled gate.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace gnndse {
namespace {

/// Re-arms telemetry for each test and restores the disabled default.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_all();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_all();
  }
};

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser — enough to round-trip a report.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected ") + c + " got " +
                               s_[pos_]);
    ++pos_;
  }
  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      default:
        return number();
    }
  }
  Json object() {
    Json v;
    v.kind = Json::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Json key = string_value();
      expect(':');
      v.obj[key.str] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }
  Json array() {
    Json v;
    v.kind = Json::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  Json string_value() {
    Json v;
    v.kind = Json::Kind::kString;
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        c = e == 'n' ? '\n' : e;
      }
      v.str.push_back(c);
    }
    if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return v;
  }
  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.b = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }
  Json number() {
    Json v;
    v.kind = Json::Kind::kNumber;
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    if (end == pos_) throw std::runtime_error("bad number");
    v.num = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Counters and gauges.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  obs::Counter& c = obs::counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  obs::add(c);
  obs::add(c, 41);
  EXPECT_EQ(c.value(), 42);
  obs::reset_all();
  EXPECT_EQ(c.value(), 0);
  // The handle survives reset: same metric, still registered.
  obs::add(c, 7);
  EXPECT_EQ(obs::counter("test.counter").value(), 7);
}

TEST_F(ObsTest, DisabledRecordingIsDropped) {
  obs::Counter& c = obs::counter("test.disabled");
  obs::set_enabled(false);
  obs::add(c, 5);
  EXPECT_EQ(c.value(), 0);
  obs::set_enabled(true);
  obs::add(c, 5);
  EXPECT_EQ(c.value(), 5);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  obs::Gauge& g = obs::gauge("test.gauge");
  obs::set(g, 1.5);
  obs::set(g, -2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST_F(ObsTest, TwoThreadsHammeringOneCounterIsExact) {
  obs::Counter& c = obs::counter("test.mt_counter");
  constexpr int kPerThread = 200'000;
  auto hammer = [&c] {
    for (int i = 0; i < kPerThread; ++i) obs::add(c);
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(c.value(), 2 * kPerThread);
}

// ---------------------------------------------------------------------------
// Histogram math.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, EmptyHistogramReportsZeros) {
  obs::Histogram& h = obs::histogram("test.empty_hist");
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 0.0);
}

TEST_F(ObsTest, HistogramStatsAndPercentiles) {
  obs::Histogram& h = obs::histogram("test.hist");
  // 100 observations: 1..100 ms.
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  // Bucket-resolution estimates: p50 of 1..100 lands in the (32,64] bucket,
  // p95 in the (64,128] bucket (clamped to the observed max of 100).
  EXPECT_GE(h.percentile(0.5), 50.0);
  EXPECT_LE(h.percentile(0.5), 64.0);
  EXPECT_GE(h.percentile(0.95), 95.0);
  EXPECT_LE(h.percentile(0.95), 100.0);
  // Edges: p0 is the first non-empty bucket's bound, p100 the exact max.
  EXPECT_GT(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST_F(ObsTest, HistogramSingleObservationPercentileEdges) {
  obs::Histogram& h = obs::histogram("test.hist_one");
  h.observe(3.0);
  // Every percentile of one observation clamps to that observation.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST_F(ObsTest, HistogramOverflowBucketAndNegativeClamp) {
  obs::Histogram& h = obs::histogram("test.hist_edge");
  h.observe(-5.0);  // clamped to 0 -> first bucket
  h.observe(1e9);   // far beyond the last finite bound -> overflow bucket
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets.front(), 1);
  EXPECT_EQ(buckets.back(), 1);
  // The overflow percentile reports the observed max, not a bucket bound.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e9);
}

TEST_F(ObsTest, HistogramConcurrentObservationsKeepExactCount) {
  obs::Histogram& h = obs::histogram("test.hist_mt");
  constexpr int kPerThread = 50'000;
  auto hammer = [&h] {
    for (int i = 0; i < kPerThread; ++i)
      h.observe(static_cast<double>(i % 7));
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(h.count(), 2 * kPerThread);
  std::int64_t bucket_total = 0;
  for (std::int64_t n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, 2 * kPerThread);
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpansNestAndRecordInStartOrder) {
  {
    obs::ScopedSpan outer("outer");
    {
      obs::ScopedSpan first("first");
      first.add("key", 2.0);
      first.add("key", 3.0);
    }
    { obs::ScopedSpan second("second"); }
    outer.add("done", 1.0);
  }
  { obs::ScopedSpan sibling("sibling"); }

  auto spans = obs::trace_snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "first");
  EXPECT_EQ(spans[2].name, "second");
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[0].id);
  EXPECT_EQ(spans[3].parent, -1);
  for (const auto& s : spans) EXPECT_FALSE(s.open);
  // Children start within the parent and cannot outlive it.
  EXPECT_GE(spans[1].start_ms, spans[0].start_ms);
  EXPECT_LE(spans[1].duration_ms, spans[0].duration_ms);
  // Attached counters accumulate per key.
  ASSERT_EQ(spans[1].counters.size(), 1u);
  EXPECT_EQ(spans[1].counters[0].first, "key");
  EXPECT_DOUBLE_EQ(spans[1].counters[0].second, 5.0);
}

TEST_F(ObsTest, DisabledSpansStillTimeButDoNotRecord) {
  obs::set_enabled(false);
  obs::ScopedSpan span("invisible");
  EXPECT_GE(span.seconds(), 0.0);  // the stopwatch works regardless
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

// ---------------------------------------------------------------------------
// Report JSON round-trip.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ReportJsonRoundTrips) {
  obs::add(obs::counter("rt.counter"), 42);
  obs::set(obs::gauge("rt.gauge"), 2.75);
  obs::Histogram& h = obs::histogram("rt.hist");
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  {
    obs::ScopedSpan root("pipeline");
    obs::ScopedSpan child("train");
    child.add("epochs", 3.0);
  }

  const std::string json = obs::report_json("test_obs", 1.25);
  Json doc = JsonParser(json).parse();

  EXPECT_EQ(doc.at("schema_version").num, 2.0);
  EXPECT_EQ(doc.at("tool").str, "test_obs");
  EXPECT_DOUBLE_EQ(doc.at("elapsed_seconds").num, 1.25);
  EXPECT_EQ(doc.at("counters").at("rt.counter").num, 42.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("rt.gauge").num, 2.75);

  const Json& hist = doc.at("histograms").at("rt.hist");
  EXPECT_EQ(hist.at("count").num, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("sum_ms").num, 7.0);
  EXPECT_DOUBLE_EQ(hist.at("min_ms").num, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("max_ms").num, 4.0);
  std::int64_t bucket_total = 0;
  for (const Json& b : hist.at("buckets").arr)
    bucket_total += static_cast<std::int64_t>(b.at("count").num);
  EXPECT_EQ(bucket_total, 3);

  ASSERT_EQ(doc.at("spans").arr.size(), 1u);
  const Json& root = doc.at("spans").arr[0];
  EXPECT_EQ(root.at("name").str, "pipeline");
  // v2: every span names the thread that recorded it.
  EXPECT_GE(root.at("tid").num, 0.0);
  ASSERT_EQ(root.at("children").arr.size(), 1u);
  const Json& child = root.at("children").arr[0];
  EXPECT_EQ(child.at("name").str, "train");
  EXPECT_GE(child.at("tid").num, 0.0);
  EXPECT_DOUBLE_EQ(child.at("counters").at("epochs").num, 3.0);
  EXPECT_TRUE(child.at("children").arr.empty());
  EXPECT_GE(child.at("duration_ms").num, 0.0);
}

TEST_F(ObsTest, ReportEscapesStrings) {
  obs::add(obs::counter("weird\"name\\with\nnewline"), 1);
  const std::string json = obs::report_json("tool \"quoted\"", 0.0);
  Json doc = JsonParser(json).parse();
  EXPECT_EQ(doc.at("tool").str, "tool \"quoted\"");
  EXPECT_EQ(doc.at("counters").at("weird\"name\\with\nnewline").num, 1.0);
}

TEST_F(ObsTest, ReportSessionWritesFileAndClosesRootSpan) {
  const std::string path = ::testing::TempDir() + "/obs_session_report.json";
  obs::set_enabled(false);  // the session flips it on itself
  {
    obs::ReportSession session("test_tool", path);
    ASSERT_TRUE(session.active());
    EXPECT_TRUE(obs::enabled());
    obs::ScopedSpan work("work");
    obs::add(obs::counter("session.counter"), 9);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Json doc = JsonParser(json).parse();
  EXPECT_EQ(doc.at("tool").str, "test_tool");
  ASSERT_EQ(doc.at("spans").arr.size(), 1u);
  EXPECT_EQ(doc.at("spans").arr[0].at("name").str, "pipeline");
  EXPECT_FALSE(doc.at("spans").arr[0].has("open"));
  EXPECT_EQ(doc.at("spans").arr[0].at("children").arr[0].at("name").str,
            "work");
  EXPECT_EQ(doc.at("counters").at("session.counter").num, 9.0);
}

TEST_F(ObsTest, InactiveReportSessionDoesNothing) {
  obs::set_enabled(false);
  obs::ReportSession session("noop", "");
  // No GNNDSE_REPORT in the test environment and no explicit path.
  if (!session.active()) {
    EXPECT_FALSE(obs::enabled());
    EXPECT_TRUE(obs::trace_snapshot().empty());
  }
}

// ---------------------------------------------------------------------------
// Cross-thread span context and thread identity.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpanContextAdoptsAndRestoresParent) {
  EXPECT_EQ(obs::current_span_id(), -1);
  obs::ScopedSpan outer("outer");
  const std::int64_t outer_id = obs::current_span_id();
  ASSERT_GE(outer_id, 0);
  {
    obs::SpanContext ctx(-1);  // detach: next span is root-level
    EXPECT_EQ(obs::current_span_id(), -1);
    obs::ScopedSpan detached("detached");
  }
  EXPECT_EQ(obs::current_span_id(), outer_id);  // restored
  auto spans = obs::trace_snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "detached");
  EXPECT_EQ(spans[1].parent, -1);
}

TEST_F(ObsTest, SpanContextParentsSpansAcrossThreads) {
  std::int64_t outer_id = -1;
  {
    obs::ScopedSpan outer("outer");
    outer_id = obs::current_span_id();
    std::thread worker([outer_id] {
      obs::SpanContext ctx(outer_id);
      obs::ScopedSpan child("remote_child");
    });
    worker.join();
  }
  auto spans = obs::trace_snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "remote_child");
  EXPECT_EQ(spans[1].parent, outer_id);
  EXPECT_NE(spans[1].tid, spans[0].tid);
}

TEST_F(ObsTest, SpanCapacityDropsExcessAndCounts) {
  obs::set_trace_capacity(2);
  { obs::ScopedSpan a("a"); }
  { obs::ScopedSpan b("b"); }
  { obs::ScopedSpan c("c"); }  // beyond capacity: dropped, not recorded
  EXPECT_EQ(obs::trace_snapshot().size(), 2u);
  EXPECT_EQ(obs::trace_spans_dropped(), 1);
  obs::clear_trace();
  EXPECT_EQ(obs::trace_spans_dropped(), 0);
  obs::set_trace_capacity(131072);  // restore the default for later tests
}

// ---------------------------------------------------------------------------
// Chrome-trace export.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceExportsValidEventsWithThreadNames) {
  obs::set_thread_name("main");
  {
    obs::ScopedSpan outer("outer");
    outer.add("items", 7.0);
    obs::ScopedSpan inner("inner");
  }
  std::thread t([] {
    obs::set_thread_name("helper");
    obs::ScopedSpan span("helper_work");
  });
  t.join();

  const std::string json = obs::chrome_trace_json("test_obs");
  Json doc = JsonParser(json).parse();
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  const double epoch = doc.at("otherData").at("trace_epoch_unix_us").num;
  EXPECT_GT(epoch, 0.0);

  int n_process = 0, n_complete = 0;
  bool saw_main = false, saw_helper = false, saw_helper_event = false;
  std::int64_t helper_tid = -1;
  for (const Json& ev : doc.at("traceEvents").arr) {
    const std::string& ph = ev.at("ph").str;
    if (ph == "M") {
      if (ev.at("name").str == "process_name") {
        ++n_process;
        EXPECT_EQ(ev.at("args").at("name").str, "test_obs");
      } else if (ev.at("name").str == "thread_name") {
        const std::string& name = ev.at("args").at("name").str;
        if (name == "main") saw_main = true;
        if (name == "helper") {
          saw_helper = true;
          helper_tid = static_cast<std::int64_t>(ev.at("tid").num);
        }
      }
    } else {
      ++n_complete;
      EXPECT_EQ(ph, "X");
      EXPECT_GE(ev.at("ts").num, epoch);  // absolute microseconds
      EXPECT_GE(ev.at("dur").num, 0.0);
      if (ev.at("name").str == "helper_work") {
        saw_helper_event = true;
        EXPECT_EQ(static_cast<std::int64_t>(ev.at("tid").num), helper_tid);
      }
      if (ev.at("name").str == "outer") {
        EXPECT_DOUBLE_EQ(ev.at("args").at("items").num, 7.0);
      }
    }
  }
  EXPECT_EQ(n_process, 1);
  EXPECT_EQ(n_complete, 3);
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_helper);
  EXPECT_TRUE(saw_helper_event);
}

// ---------------------------------------------------------------------------
// Heartbeat sampler.
// ---------------------------------------------------------------------------

std::vector<Json> read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  std::vector<Json> samples;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) samples.push_back(JsonParser(line).parse());
  return samples;
}

TEST_F(ObsTest, HeartbeatWritesMonotonicSamples) {
  const std::string path = ::testing::TempDir() + "/obs_heartbeat_mono.ndjson";
  std::remove(path.c_str());
  obs::add(obs::counter("hb.work"), 1);
  {
    obs::HeartbeatSampler sampler(path, 20.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    obs::add(obs::counter("hb.work"), 5);
    sampler.stop();
    EXPECT_GE(sampler.samples_written(), 2);
    sampler.stop();  // idempotent
  }
  auto samples = read_heartbeat(path);
  ASSERT_GE(samples.size(), 2u);
  double prev_elapsed = -1.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Json& s = samples[i];
    EXPECT_EQ(s.at("schema").str, "gnndse.heartbeat.v1");
    EXPECT_EQ(s.at("seq").num, static_cast<double>(i));
    EXPECT_GT(s.at("elapsed_ms").num, prev_elapsed);
    prev_elapsed = s.at("elapsed_ms").num;
    EXPECT_TRUE(s.at("rates").has("oracle.hit_ratio"));
  }
  // The final (stop-time) sample sees the post-start counter bumps.
  EXPECT_EQ(samples.back().at("counters").at("hb.work").num, 6.0);
}

TEST_F(ObsTest, HeartbeatSubIntervalRunStillEmitsTwoSamples) {
  const std::string path = ::testing::TempDir() + "/obs_heartbeat_short.ndjson";
  std::remove(path.c_str());
  {
    // Interval far longer than the sampler's lifetime: the immediate
    // first sample plus the final stop-time sample must still land.
    obs::HeartbeatSampler sampler(path, 60'000.0);
  }
  EXPECT_EQ(read_heartbeat(path).size(), 2u);
}

TEST_F(ObsTest, HeartbeatStartStopRacesCleanlyWithMetricWrites) {
  const std::string path = ::testing::TempDir() + "/obs_heartbeat_race.ndjson";
  std::remove(path.c_str());
  obs::Counter& c = obs::counter("hb.race_counter");
  obs::Histogram& h = obs::histogram("hb.race_hist");
  std::atomic<bool> done{false};
  std::thread writer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      obs::add(c);
      obs::observe(h, 1.0);
    }
  });
  {
    obs::HeartbeatSampler sampler(path, 10.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }  // destructor stops mid-hammer
  done.store(true, std::memory_order_relaxed);
  writer.join();
  auto samples = read_heartbeat(path);
  ASSERT_GE(samples.size(), 2u);
  // Counters are monotonic across samples even under concurrent writes.
  double prev = -1.0;
  for (const Json& s : samples) {
    const double v = s.at("counters").at("hb.race_counter").num;
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_F(ObsTest, HistogramObserveRacesSnapshotCleanly) {
  obs::Histogram& h = obs::histogram("race.hist");
  constexpr int kPerThread = 20'000;
  auto hammer = [&h] {
    for (int i = 0; i < kPerThread; ++i)
      h.observe(static_cast<double>(i % 100));
  };
  std::thread a(hammer), b(hammer);
  // Snapshot concurrently with the writers: totals may lag but must never
  // tear (every snapshot internally consistent, counts non-decreasing).
  std::int64_t prev_count = 0;
  for (int i = 0; i < 50; ++i) {
    for (const auto& snap : obs::histograms_snapshot()) {
      if (snap.name != "race.hist") continue;
      EXPECT_GE(snap.count, prev_count);
      prev_count = snap.count;
    }
  }
  a.join();
  b.join();
  EXPECT_EQ(h.count(), 2 * kPerThread);
}

}  // namespace
}  // namespace gnndse
