#include "serve/server.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "oracle/stack.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gnndse::serve {

namespace {

std::string format_predict(std::int64_t id, const PredictResult& r) {
  if (!r.ok) return error_line(id, r.error);
  std::string out = ok_head(id);
  out += ",\"kind\":\"predict\",";
  out += predicted_fields(r.predicted, r.p_valid);
  out += ",\"model_version\":" + std::to_string(r.model_version);
  out += ",\"batch_size\":" + std::to_string(r.batch_size);
  out += "}";
  return out;
}

}  // namespace

Server::Server(ModelSlot& slot, model::SampleFactory& factory,
               const ServerOptions& opts)
    : slot_(slot),
      factory_(factory),
      opts_(opts),
      listener_(opts.port),
      batcher_(slot, factory, opts.batcher) {
  // Polling and stats read the metrics registry; a daemon with telemetry
  // off would answer every poll with zeros.
  obs::set_enabled(true);
}

Server::~Server() {
  // run() normally joins everything; this covers a Server that was never
  // run (or whose run() threw).
  request_drain();
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    c->sock.shutdown_both();
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
  }
  std::lock_guard<std::mutex> jlock(jobs_mu_);
  for (auto& [id, job] : jobs_) {
    job->cancel.store(true);
    if (job->thread.joinable()) job->thread.join();
  }
}

void Server::run() {
  util::log_info("serve: listening on 127.0.0.1:", port());
  while (true) {
    Socket client = listener_.accept();
    if (!client.valid()) break;  // drained or listener error
    if (draining_.load()) break;
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(client);
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    reap_finished_conns();
  }

  // Drain order: flush the batcher first so writers blocked on predict
  // futures resolve (late predicts fail with "batcher stopped"), then
  // join connections (no new requests after that), then cancel and join
  // whatever sweeps remain — drain is a shutdown, not a checkpoint.
  batcher_.stop();
  // Joins happen OUTSIDE conns_mu_: a reader thread handling an admin
  // drain is itself inside request_drain() waiting for this mutex, so
  // joining it while holding the lock would deadlock. The listener is
  // already down, so nothing appends to conns_ after the swap.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) c->sock.shutdown_read();
  for (auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : jobs_) job->cancel.store(true);
    for (auto& [id, job] : jobs_)
      if (job->thread.joinable()) job->thread.join();
  }
  util::log_info("serve: drained");
}

void Server::request_drain() {
  draining_.store(true);
  listener_.shutdown();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& c : conns_) c->sock.shutdown_read();
}

void Server::reap_finished_conns() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  auto it = conns_.begin();
  while (it != conns_.end()) {
    Conn& c = **it;
    if (c.reader_done.load() && c.writer_done.load()) {
      if (c.reader.joinable()) c.reader.join();
      if (c.writer.joinable()) c.writer.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::reader_loop(const std::shared_ptr<Conn>& conn) {
  LineReader lines(conn->sock);
  std::string line;
  while (!draining_.load() && lines.read_line(&line)) {
    if (line.empty()) continue;
    handle_line(line, *conn);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
  }
  conn->cv.notify_all();
  conn->reader_done.store(true);
}

void Server::writer_loop(const std::shared_ptr<Conn>& conn) {
  while (true) {
    Conn::Out entry;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock,
                    [&] { return conn->closed || !conn->outbox.empty(); });
      if (conn->outbox.empty()) break;  // closed + drained
      entry = std::move(conn->outbox.front());
      conn->outbox.pop_front();
    }
    const std::string resp = entry.is_future
                                 ? format_predict(entry.id, entry.fut.get())
                                 : std::move(entry.text);
    if (!conn->sock.send_line(resp)) break;
  }
  // Peer is gone (or intake closed): make sure the reader unblocks too.
  conn->sock.shutdown_both();
  conn->writer_done.store(true);
}

void Server::push_text(Conn& conn, std::string text) {
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    Conn::Out out;
    out.text = std::move(text);
    conn.outbox.push_back(std::move(out));
  }
  conn.cv.notify_all();
}

void Server::handle_line(const std::string& line, Conn& conn) {
  static obs::Counter& c_requests = obs::counter("serve.requests");
  obs::add(c_requests);

  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    push_text(conn, error_line(-1, e.what()));
    return;
  }

  try {
    switch (req.kind) {
      case Request::Kind::kPredict: {
        // The reader never waits on inference: it enqueues the future and
        // keeps parsing, so pipelined predicts pile into the batcher's
        // coalescing window.
        Conn::Out out;
        out.is_future = true;
        out.id = req.id;
        out.fut =
            batcher_.submit(std::move(req.kernel), std::move(req.config));
        {
          std::lock_guard<std::mutex> lock(conn.mu);
          conn.outbox.push_back(std::move(out));
        }
        conn.cv.notify_all();
        return;
      }
      case Request::Kind::kSweep:
        push_text(conn, handle_sweep(req));
        return;
      case Request::Kind::kPoll:
        push_text(conn, handle_poll(req));
        return;
      case Request::Kind::kCancel:
        push_text(conn, handle_cancel(req));
        return;
      case Request::Kind::kAdmin:
        push_text(conn, handle_admin(req));
        return;
    }
  } catch (const std::exception& e) {
    push_text(conn, error_line(req.id, e.what()));
  }
}

std::string Server::handle_sweep(Request& req) {
  auto job = std::make_shared<SweepJob>();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job->job_id = "job-" + std::to_string(next_job_++);
    jobs_[job->job_id] = job;
  }
  obs::add(obs::counter("serve.sweeps"));
  const std::int64_t id = req.id;
  const std::string job_id = job->job_id;
  job->thread = std::thread(
      [this, job, r = std::move(req)]() mutable { run_sweep_job(job, std::move(r)); });
  return ok_head(id) + ",\"kind\":\"sweep\",\"job\":" + json_quote(job_id) +
         "}";
}

void Server::run_sweep_job(const std::shared_ptr<SweepJob>& job,
                           Request req) {
  try {
    // Private instance + factory: ModelDse drives batch_for (a
    // single-consumer path) and trainers are never shareable, so nothing
    // here touches the batcher's state.
    ModelInstance instance;
    instance.ensure(slot_.current());
    job->model_version = instance.version();
    model::SampleFactory factory;
    dse::ModelDse dse(instance.bundle(), instance.normalizer(), factory);

    dse::DseOptions dopts;
    dopts.time_limit_seconds =
        req.time_limit > 0 ? req.time_limit : opts_.sweep_time_limit;
    dopts.top_m = req.top_m > 0 ? req.top_m : opts_.top_m;
    dopts.util_threshold = opts_.util_threshold;
    dopts.cancel = &job->cancel;
    util::Rng rng(opts_.seed);
    dse::DseResult result = dse.run(req.kernel, dopts, rng);

    if (req.evaluate && !result.cancelled) {
      oracle::OracleOptions oo = oracle::OracleOptions::from_env();
      oo.cache_path = cache_path_for(req.client);
      oracle::OracleStack oracle(oo);
      auto top = dse.evaluate_top(req.kernel, result, oracle,
                                  dopts.util_threshold);
      job->evaluated = true;
      if (top.best) {
        job->eval_best_found = true;
        job->eval_best_config = top.best->config.key();
        job->eval_best_cycles = top.best->result.cycles;
      }
    }
    job->result = std::move(result);
  } catch (const std::exception& e) {
    job->error = e.what();
  }
  job->done.store(true, std::memory_order_release);
}

std::string Server::handle_poll(const Request& req) {
  std::shared_ptr<SweepJob> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(req.job);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) return error_line(req.id, "unknown job '" + req.job + "'");

  std::string out = ok_head(req.id) + ",\"kind\":\"poll\",\"job\":" +
                    json_quote(job->job_id);
  if (!job->done.load(std::memory_order_acquire)) {
    // Progress comes from the dse.* heartbeat gauges the search updates
    // between chunks — the same substrate `--heartbeat` streams.
    out += ",\"state\":\"running\"";
    out += ",\"elapsed\":" +
           double_str(obs::gauge("dse.search_elapsed_seconds").value());
    out += ",\"time_limit\":" +
           double_str(obs::gauge("dse.time_limit_seconds").value());
    out += ",\"configs_explored\":" +
           std::to_string(obs::counter("dse.configs_explored").value());
    out += ",\"frontier\":" +
           double_str(obs::gauge("dse.frontier_size").value());
    // Sweep-pipeline health: stage-time / wall-time so far (> 1 means
    // featurize genuinely overlaps predict) and the live scoring rate.
    out += ",\"overlap_ratio\":" +
           double_str(obs::gauge("dse.pipeline.overlap_ratio").value());
    out += ",\"configs_per_sec\":" +
           double_str(obs::gauge("dse.sweep_configs_per_sec").value());
    out += "}";
    return out;
  }

  if (!job->error.empty())
    return error_line(req.id, "job " + job->job_id + ": " + job->error);

  const dse::DseResult& r = job->result;
  out += ",\"state\":";
  out += r.cancelled ? "\"cancelled\"" : "\"done\"";
  out += ",\"model_version\":" + std::to_string(job->model_version);
  out += ",\"num_explored\":" + std::to_string(r.num_explored);
  out += ",\"search_seconds\":" + double_str(r.search_seconds);
  out += ",\"stages\":{\"featurize_ms\":" + double_str(r.stages.featurize_ms) +
         ",\"predict_ms\":" + double_str(r.stages.predict_ms) +
         ",\"rank_ms\":" + double_str(r.stages.rank_ms) +
         ",\"wall_ms\":" + double_str(r.stages.wall_ms) +
         ",\"overlap_ratio\":" + double_str(r.stages.overlap_ratio) + "}";
  out += ",\"top\":[";
  for (std::size_t i = 0; i < r.top.size(); ++i) {
    if (i) out += ",";
    out += "{\"config\":" + json_quote(r.top[i].config.key()) + ",";
    out += predicted_fields(r.top[i].predicted, r.top[i].p_valid);
    out += "}";
  }
  out += "]";
  if (job->evaluated) {
    out += ",\"evaluated\":true";
    if (job->eval_best_found) {
      out += ",\"best_config\":" + json_quote(job->eval_best_config);
      out += ",\"best_cycles\":" + double_str(job->eval_best_cycles);
    }
  }
  out += "}";
  return out;
}

std::string Server::handle_cancel(const Request& req) {
  std::shared_ptr<SweepJob> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(req.job);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) return error_line(req.id, "unknown job '" + req.job + "'");
  job->cancel.store(true);
  obs::add(obs::counter("serve.cancels"));
  return ok_head(req.id) + ",\"kind\":\"cancel\",\"job\":" +
         json_quote(job->job_id) + "}";
}

std::string Server::handle_admin(const Request& req) {
  if (req.op == "reload-model") {
    const std::string prefix =
        req.weights.empty() ? opts_.weights_prefix : req.weights;
    if (prefix.empty())
      return error_line(req.id,
                        "reload-model: no weights prefix (request "
                        "\"weights\" or server --weights)");
    SnapshotPtr cur = slot_.current();
    if (!cur) return error_line(req.id, "reload-model: no model installed");
    // Architecture and normalizer carry over: reload swaps weights, not
    // the model shape. Shape mismatches surface when the next consumer
    // rebuilds (assign_params is count- and shape-checked).
    auto snap = snapshot_from_files(prefix, cur->base, cur->norm_factor);
    const std::uint64_t version = slot_.install(std::move(snap));
    util::log_info("serve: installed model v", version, " from ", prefix,
                   ".*");
    return ok_head(req.id) +
           ",\"kind\":\"admin\",\"op\":\"reload-model\",\"model_version\":" +
           std::to_string(version) + "}";
  }
  if (req.op == "stats") {
    SnapshotPtr cur = slot_.current();
    std::size_t num_jobs, running = 0;
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      num_jobs = jobs_.size();
      for (const auto& [id, job] : jobs_)
        if (!job->done.load()) ++running;
    }
    obs::Histogram& h_batch = obs::histogram("serve.batch_size");
    std::string out = ok_head(req.id) + ",\"kind\":\"admin\",\"op\":\"stats\"";
    out += ",\"model_version\":" +
           std::to_string(cur ? cur->version : 0);
    out += ",\"requests\":" +
           std::to_string(obs::counter("serve.requests").value());
    out += ",\"batches\":" +
           std::to_string(obs::counter("serve.batches").value());
    out += ",\"model_swaps\":" +
           std::to_string(obs::counter("serve.model_swaps").value());
    out += ",\"jobs\":" + std::to_string(num_jobs);
    out += ",\"jobs_running\":" + std::to_string(running);
    out += ",\"batch_count\":" + std::to_string(h_batch.count());
    out += ",\"batch_p50\":" + double_str(h_batch.percentile(0.5));
    out += ",\"batch_max\":" + double_str(h_batch.max());
    out += ",\"queue_depth\":" +
           double_str(obs::gauge("serve.queue_depth").value());
    out += "}";
    return out;
  }
  // drain: acknowledge first (the writer flushes this before the
  // connection winds down — SHUT_RD leaves the send side open).
  obs::add(obs::counter("serve.drains"));
  request_drain();
  return ok_head(req.id) + ",\"kind\":\"admin\",\"op\":\"drain\"}";
}

std::string Server::cache_path_for(const std::string& client) const {
  if (opts_.cache_dir.empty()) return "";
  return opts_.cache_dir + "/" + (client.empty() ? "default" : client) +
         ".csv";
}

}  // namespace gnndse::serve
