#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace gnndse::serve {

namespace {

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("serve: bad host address '" + host + "'");
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(const char* data, std::size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not SIGPIPE.
    const long n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::send_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  return send_all(framed.data(), framed.size());
}

long Socket::recv_some(char* buf, std::size_t cap) {
  while (true) {
    const long n = ::recv(fd_, buf, cap, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool LineReader::read_line(std::string* line) {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::size_t end = nl;
      if (end > 0 && buf_[end - 1] == '\r') --end;
      line->assign(buf_, 0, end);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (eof_) return false;
    char chunk[4096];
    const long n = sock_.recv_some(chunk, sizeof chunk);
    if (n <= 0) {
      eof_ = true;
      continue;  // a final unterminated fragment is dropped, not a line
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

ListenSocket::ListenSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    close();
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }
  if (::listen(fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    close();
    throw std::runtime_error("serve: listen failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
  else
    port_ = port;
}

Socket ListenSocket::accept() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();  // shut down or hard error: caller stops accepting
  }
}

void ListenSocket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  sockaddr_in addr = loopback_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

}  // namespace gnndse::serve
