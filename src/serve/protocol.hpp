// Wire protocol of the serve daemon: line-delimited JSON, one request per
// line in, one response per line out, paired in order per connection.
//
// Request kinds (docs/serving.md has the full reference):
//   {"kind":"predict","kernel":{...},"config":"L0:cg/4/1;..."?,
//    "client":"name"?,"id":N?}
//   {"kind":"sweep","kernel":{...},"time_limit":S?,"top_m":M?,
//    "evaluate":true?,"client":"name"?,"id":N?}
//   {"kind":"poll","job":"job-1","id":N?}
//   {"kind":"cancel","job":"job-1","id":N?}
//   {"kind":"admin","op":"reload-model"|"stats"|"drain","weights":PREFIX?,
//    "id":N?}
//
// Kernels ride along as the same JSON object `gnndse eval --kernels`
// accepts (frontend/kernel_json); configs use DesignConfig::key() strings.
// Responses are single-line JSON objects with "ok" plus the request's "id"
// echoed back when one was given. Floats are rendered with %.9g — enough
// digits to round-trip float32, so a client can compare predictions across
// daemons (or against a direct in-process run) bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "hlssim/config.hpp"
#include "kir/kernel.hpp"
#include "model/normalizer.hpp"

namespace gnndse::serve {

struct Request {
  enum class Kind { kPredict, kSweep, kPoll, kCancel, kAdmin };

  Kind kind = Kind::kPredict;
  /// Client-chosen correlation id, echoed in the response; -1 = absent.
  std::int64_t id = -1;
  /// Cache namespace for oracle results ([A-Za-z0-9_.-], no leading dot);
  /// empty = the daemon's default namespace.
  std::string client;

  // predict / sweep
  kir::Kernel kernel;
  hlssim::DesignConfig config;  // predict; neutral when "config" is absent
  double time_limit = 0.0;      // sweep; 0 = server default
  int top_m = 0;                // sweep; 0 = server default
  bool evaluate = false;        // sweep: run the oracle on the top designs

  // poll / cancel
  std::string job;

  // admin
  std::string op;
  std::string weights;  // reload-model: new <prefix>.{main,bram,cls}.bin
};

/// Parses one request line. Throws std::runtime_error with a line-numbered
/// message on malformed JSON, unknown kinds/keys, or invalid field values.
Request parse_request(const std::string& line);

/// `s` as a double-quoted JSON string literal.
std::string json_quote(const std::string& s);

/// Shortest decimal that round-trips a float32 (%.9g) / float64 (%.17g).
std::string float_str(float v);
std::string double_str(double v);

/// {"id":N,"ok":false,"error":"..."} (id omitted when -1).
std::string error_line(std::int64_t id, const std::string& message);

/// Prefix `{"id":N,"ok":true` (id omitted when -1) for response builders
/// to append fields onto.
std::string ok_head(std::int64_t id);

/// `"predicted":{"latency":...,...},"p_valid":...` — shared by the daemon's
/// predict responses and `gnndse predict`, so the two are string-comparable.
std::string predicted_fields(const std::array<float, model::kNumObjectives>& p,
                             float p_valid);

}  // namespace gnndse::serve
