#include "serve/batcher.hpp"

#include <chrono>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace gnndse::serve {

namespace {

/// Same branch-stable form as dse.cpp's sigmoidf, so a predict response
/// is bit-identical to the p_valid a ModelDse run computes for the same
/// config.
float sigmoidf(float x) {
  return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                : std::exp(x) / (1.0f + std::exp(x));
}

/// featurize() indexes cfg.loops by pragma-site loop id without a bounds
/// check, so a mismatched config must be rejected before it gets there.
void check_config(const kir::Kernel& kernel,
                  const hlssim::DesignConfig& config) {
  if (config.loops.size() != kernel.loops.size())
    throw std::invalid_argument(
        "config has " + std::to_string(config.loops.size()) +
        " loops but kernel '" + kernel.name + "' has " +
        std::to_string(kernel.loops.size()));
}

}  // namespace

PredictResult predict_single(ModelInstance& instance,
                             model::SampleFactory& factory,
                             const kir::Kernel& kernel,
                             const hlssim::DesignConfig& config) {
  PredictResult r;
  try {
    check_config(kernel, config);
    const gnn::GraphData graph = factory.featurize(kernel, config);
    const gnn::GraphBatch batch = gnn::make_batch({&graph});
    dse::ModelBundle bundle = instance.bundle();
    const tensor::Tensor& main_pred =
        bundle.regression_main->predict_batch(batch);
    const tensor::Tensor& bram_pred =
        bundle.regression_bram->predict_batch(batch);
    const tensor::Tensor& valid_pred =
        bundle.classifier->predict_batch(batch);
    r.ok = true;
    r.predicted[model::kLatency] = main_pred.at(0, 0);
    r.predicted[model::kDsp] = main_pred.at(0, 1);
    r.predicted[model::kLut] = main_pred.at(0, 2);
    r.predicted[model::kFf] = main_pred.at(0, 3);
    r.predicted[model::kBram] = bram_pred.at(0, 0);
    r.p_valid = sigmoidf(valid_pred.at(0, 0));
    r.model_version = instance.version();
    r.batch_size = 1;
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

BatcherOptions BatcherOptions::from_env() {
  BatcherOptions o;
  o.max_batch = util::env_int("GNNDSE_SERVE_BATCH", o.max_batch);
  if (o.max_batch < 1) o.max_batch = 1;
  o.max_wait_us = util::env_int64("GNNDSE_SERVE_BATCH_US", o.max_wait_us);
  if (o.max_wait_us < 0) o.max_wait_us = 0;
  return o;
}

Batcher::Batcher(ModelSlot& slot, model::SampleFactory& factory,
                 const BatcherOptions& opts)
    : slot_(slot), factory_(factory), opts_(opts) {
  worker_ = std::thread([this] { worker(); });
}

Batcher::~Batcher() { stop(); }

std::future<PredictResult> Batcher::submit(kir::Kernel kernel,
                                           hlssim::DesignConfig config) {
  static obs::Gauge& g_depth = obs::gauge("serve.queue_depth");
  Item item;
  item.kernel = std::move(kernel);
  item.config = std::move(config);
  std::future<PredictResult> fut = item.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      PredictResult r;
      r.error = "serve: batcher stopped";
      item.promise.set_value(std::move(r));
      return fut;
    }
    queue_.push_back(std::move(item));
    obs::set(g_depth, static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return fut;
}

void Batcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !worker_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void Batcher::worker() {
  static obs::Gauge& g_depth = obs::gauge("serve.queue_depth");
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // stop with nothing left: drained
      continue;
    }
    // First request opens the coalescing window: linger until the batch
    // fills, the deadline passes, or shutdown starts draining.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(opts_.max_wait_us);
    cv_.wait_until(lock, deadline, [&] {
      return stop_ ||
             queue_.size() >= static_cast<std::size_t>(opts_.max_batch);
    });

    std::vector<Item> items;
    const std::size_t take =
        std::min(queue_.size(), static_cast<std::size_t>(opts_.max_batch));
    items.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      items.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    obs::set(g_depth, static_cast<double>(queue_.size()));

    lock.unlock();
    flush(items);
    lock.lock();
  }
}

void Batcher::flush(std::vector<Item>& items) {
  static obs::Histogram& h_batch = obs::histogram("serve.batch_size");
  static obs::Counter& c_batches = obs::counter("serve.batches");
  obs::observe(h_batch, static_cast<double>(items.size()));
  obs::add(c_batches);

  // Featurization errors (bad kernels surface here) fail one request, not
  // the batch around it.
  std::vector<gnn::GraphData> graphs;
  std::vector<std::size_t> live;
  graphs.reserve(items.size());
  live.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    try {
      check_config(items[i].kernel, items[i].config);
      graphs.push_back(factory_.featurize(items[i].kernel, items[i].config));
      live.push_back(i);
    } catch (const std::exception& e) {
      PredictResult r;
      r.error = e.what();
      items[i].promise.set_value(std::move(r));
    }
  }
  if (live.empty()) return;

  try {
    instance_.ensure(slot_.current());
    std::vector<const gnn::GraphData*> ptrs;
    ptrs.reserve(graphs.size());
    for (const auto& g : graphs) ptrs.push_back(&g);
    const gnn::GraphBatch batch = gnn::make_batch(ptrs);

    // Three distinct trainers, three distinct inference workspaces: all
    // three references stay valid through the fill loop (the same pattern
    // as ModelDse::score_chunk).
    dse::ModelBundle bundle = instance_.bundle();
    const tensor::Tensor& main_pred = bundle.regression_main->predict_batch(batch);
    const tensor::Tensor& bram_pred = bundle.regression_bram->predict_batch(batch);
    const tensor::Tensor& valid_pred = bundle.classifier->predict_batch(batch);

    for (std::size_t row = 0; row < live.size(); ++row) {
      PredictResult r;
      r.ok = true;
      const auto i = static_cast<std::int64_t>(row);
      r.predicted[model::kLatency] = main_pred.at(i, 0);
      r.predicted[model::kDsp] = main_pred.at(i, 1);
      r.predicted[model::kLut] = main_pred.at(i, 2);
      r.predicted[model::kFf] = main_pred.at(i, 3);
      r.predicted[model::kBram] = bram_pred.at(i, 0);
      r.p_valid = sigmoidf(valid_pred.at(i, 0));
      r.model_version = instance_.version();
      r.batch_size = static_cast<int>(live.size());
      items[live[row]].promise.set_value(std::move(r));
    }
  } catch (const std::exception& e) {
    for (std::size_t idx : live) {
      PredictResult r;
      r.error = e.what();
      items[idx].promise.set_value(std::move(r));
    }
  }
}

}  // namespace gnndse::serve
