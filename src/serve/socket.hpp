// Portable (POSIX) TCP socket wrapper for the serve daemon: thin RAII
// types over the BSD socket calls, so everything platform-specific stays in
// this one translation unit. The protocol layer above only sees
// "line in, line out".
//
// Server side:  ListenSocket ls(port);   // port 0 -> ephemeral, ls.port()
//               Socket c = ls.accept();  // invalid after shutdown()
// Client side:  Socket c = connect_to("127.0.0.1", port);
// Both sides:   LineReader lr(c); lr.read_line(&line); c.send_line(line);
//
// Sockets bind/connect on the loopback interface only — the daemon is a
// local service behind a CLI, not an internet-facing endpoint; putting a
// real fleet of these behind a load balancer is a deployment concern, not
// a protocol one (docs/serving.md).
#pragma once

#include <cstdint>
#include <string>

namespace gnndse::serve {

/// RAII file descriptor for one connected TCP stream.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the whole buffer (looping over partial writes). Returns false
  /// on any send error (peer gone); never throws.
  bool send_all(const char* data, std::size_t len);
  bool send_line(const std::string& line);  // appends '\n'

  /// Reads up to `cap` bytes; returns bytes read, 0 on orderly shutdown,
  /// -1 on error.
  long recv_some(char* buf, std::size_t cap);

  /// Shuts down both directions without closing the fd — unblocks a
  /// thread parked in recv on this socket. Safe to call from another
  /// thread.
  void shutdown_both();

  /// Read side only: unblocks recv while keeping the write side open, so
  /// drain can stop intake and still flush queued responses.
  void shutdown_read();

  void close();

 private:
  int fd_ = -1;
};

/// Buffered '\n'-delimited line reader over a Socket.
class LineReader {
 public:
  explicit LineReader(Socket& s) : sock_(s) {}

  /// Blocks until one full line arrives. Returns false on EOF/error with
  /// no complete line buffered. The trailing '\n' (and a preceding '\r')
  /// is stripped.
  bool read_line(std::string* line);

 private:
  Socket& sock_;
  std::string buf_;
  bool eof_ = false;
};

/// Listening socket on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port; query the outcome with port()). Throws std::runtime_error when
/// bind/listen fails.
class ListenSocket {
 public:
  explicit ListenSocket(std::uint16_t port);
  ~ListenSocket() { close(); }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Blocks for the next connection; an invalid Socket means the listener
  /// was shut down (drain) or errored.
  Socket accept();

  /// Unblocks accept() from another thread; subsequent accepts fail.
  void shutdown();

  std::uint16_t port() const { return port_; }

 private:
  void close();

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1-style `host`:`port`; throws std::runtime_error on
/// failure (used by `gnndse client` and the tests).
Socket connect_to(const std::string& host, std::uint16_t port);

}  // namespace gnndse::serve
