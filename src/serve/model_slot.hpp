// Hot-swappable model bundle for the serve daemon.
//
// A Trainer (and the PredictiveModel underneath it) is a single-consumer
// object: forward_infer writes into the trainer's InferenceSession
// workspace and stashes `last_embedding_infer_`, so sharing one across
// threads races. The daemon therefore never shares live models. Instead it
// shares immutable *snapshots* — version-stamped parameter blobs plus the
// normalizer factor — and every consumer (the batcher's flush thread, each
// sweep job) owns a private ModelInstance it lazily rebuilds from the
// current snapshot.
//
// Hot swap = install a new snapshot into the ModelSlot. In-flight batches
// keep the shared_ptr to the old snapshot and finish on the weights they
// started with; the next ensure() call picks up the new version. Responses
// carry the version so clients can tell which weights produced them.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dse/pipeline.hpp"

namespace gnndse::serve {

/// Immutable weights snapshot. `version` is stamped by ModelSlot::install;
/// fresh snapshots carry 0.
struct ModelSnapshot {
  std::uint64_t version = 0;
  double norm_factor = 1.0;
  /// Architecture shared by the three heads (out_dim is overridden per
  /// head: 4 for main, 1 for bram/classifier).
  model::ModelOptions base;
  std::vector<tensor::Tensor> main_params, bram_params, cls_params;
};

using SnapshotPtr = std::shared_ptr<const ModelSnapshot>;

/// Deep-copies the current weights out of a trained bundle. The result is
/// mutable only until ModelSlot::install stamps and publishes it.
std::shared_ptr<ModelSnapshot> snapshot_from_trained(
    dse::TrainedModels& models, double norm_factor);

/// Reads <prefix>.{main,bram,cls}.bin without constructing models —
/// the reload-model admin path. Throws std::runtime_error on I/O failure.
std::shared_ptr<ModelSnapshot> snapshot_from_files(
    const std::string& prefix, const model::ModelOptions& base,
    double norm_factor);

/// The swappable slot: holds the current snapshot behind a mutex (a grab is
/// one shared_ptr copy, never blocking on model work).
class ModelSlot {
 public:
  SnapshotPtr current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

  /// Stamps the snapshot with the next version and makes it current.
  /// Returns the stamped version. Counts serve.model_swaps for every
  /// install after the first.
  std::uint64_t install(std::shared_ptr<ModelSnapshot> next);

 private:
  mutable std::mutex mu_;
  SnapshotPtr snap_;
  std::uint64_t last_version_ = 0;
};

/// One consumer's private models + trainers, rebuilt on demand from a
/// snapshot. Not thread-safe — exactly one thread drives an instance.
class ModelInstance {
 public:
  /// Rebuilds models/trainers iff `snap` is a different version than the
  /// one currently loaded (a version match is a cheap no-op).
  void ensure(const SnapshotPtr& snap);

  dse::ModelBundle bundle() {
    return dse::ModelBundle{main_trainer_.get(), bram_trainer_.get(),
                            cls_trainer_.get()};
  }
  const model::Normalizer& normalizer() const { return norm_; }
  std::uint64_t version() const { return snap_ ? snap_->version : 0; }

 private:
  SnapshotPtr snap_;
  model::Normalizer norm_;
  std::unique_ptr<model::PredictiveModel> main_model_, bram_model_, cls_model_;
  std::unique_ptr<model::Trainer> main_trainer_, bram_trainer_, cls_trainer_;
};

}  // namespace gnndse::serve
