// Request coalescing for the predict fast path.
//
// Connection threads submit (kernel, config) pairs and get a future; a
// single flush thread collects whatever accumulated — up to
// GNNDSE_SERVE_BATCH requests, waiting at most GNNDSE_SERVE_BATCH_US
// microseconds after the first one arrives — and runs them as ONE
// disjoint-union GraphBatch through each model head. Batch composition
// does not change the numbers (per-row matmuls, per-segment softmax;
// enforced by tests/test_fastpath.cpp), so a prediction is bit-identical
// whether it rode alone or coalesced with 31 strangers.
//
// The flush thread owns a private ModelInstance; it re-checks the ModelSlot
// before every flush, so a hot swap takes effect on the next batch while
// the in-flight one finishes on the snapshot it started with.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_slot.hpp"

namespace gnndse::serve {

struct BatcherOptions {
  /// Flush when this many predicts are pending (GNNDSE_SERVE_BATCH).
  int max_batch = 16;
  /// ... or this long after the first pending request arrived
  /// (GNNDSE_SERVE_BATCH_US).
  std::int64_t max_wait_us = 2000;

  static BatcherOptions from_env();
};

struct PredictResult {
  bool ok = false;
  std::string error;
  /// Normalized objective predictions (model::Objective order: latency,
  /// DSP, LUT, FF, BRAM) and the classifier's validity probability —
  /// exactly the numbers ModelDse ranks with.
  std::array<float, model::kNumObjectives> predicted{};
  float p_valid = 0.0f;
  /// Snapshot version that produced the numbers, and how many requests
  /// shared the batch (clients assert coalescing happened with this).
  std::uint64_t model_version = 0;
  int batch_size = 0;
};

/// Single-sample reference prediction through a private instance, no
/// coalescing — the path `gnndse predict` and the e2e check compare the
/// daemon's batched responses against. Bit-identical to a coalesced
/// response on the same snapshot version (batch composition independence).
/// The instance must already be ensure()d on a snapshot.
PredictResult predict_single(ModelInstance& instance,
                             model::SampleFactory& factory,
                             const kir::Kernel& kernel,
                             const hlssim::DesignConfig& config);

class Batcher {
 public:
  /// The factory may be shared with other featurize() users (that call is
  /// thread-safe); the slot is the daemon's swappable model.
  Batcher(ModelSlot& slot, model::SampleFactory& factory,
          const BatcherOptions& opts);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueues one prediction; the future resolves after the batch it rides
  /// in flushes. A featurization error fails only this request; a model
  /// error fails the whole batch. Never throws after construction —
  /// failures come back through the future.
  std::future<PredictResult> submit(kir::Kernel kernel,
                                    hlssim::DesignConfig config);

  /// Flushes everything still queued, then joins the worker. Subsequent
  /// submits fail immediately. Idempotent; also run by the destructor.
  void stop();

 private:
  struct Item {
    kir::Kernel kernel;
    hlssim::DesignConfig config;
    std::promise<PredictResult> promise;
  };

  void worker();
  void flush(std::vector<Item>& items);

  ModelSlot& slot_;
  model::SampleFactory& factory_;
  BatcherOptions opts_;
  ModelInstance instance_;  // touched only by the worker thread

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace gnndse::serve
