#include "serve/protocol.hpp"

#include <cstdio>
#include <set>
#include <stdexcept>

#include "frontend/json_value.hpp"
#include "frontend/kernel_json.hpp"

namespace gnndse::serve {

namespace {

using frontend::json::Value;

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("serve request: " + msg);
}

const Value& require(const Value& root, const std::string& key,
                     Value::Type type, const char* what) {
  const Value* v = root.find(key);
  if (!v) fail("missing required key '" + key + "'");
  if (v->type != type)
    fail("key '" + key + "' must be " + what + " (line " +
         std::to_string(v->line) + ")");
  return *v;
}

std::string get_string(const Value& root, const std::string& key,
                       const std::string& fallback) {
  const Value* v = root.find(key);
  if (!v) return fallback;
  if (v->type != Value::Type::kString)
    fail("key '" + key + "' must be a string (line " +
         std::to_string(v->line) + ")");
  return v->str;
}

std::int64_t get_int(const Value& root, const std::string& key,
                     std::int64_t fallback) {
  const Value* v = root.find(key);
  if (!v) return fallback;
  if (v->type != Value::Type::kInt)
    fail("key '" + key + "' must be an integer (line " +
         std::to_string(v->line) + ")");
  return v->num;
}

double get_number(const Value& root, const std::string& key, double fallback) {
  const Value* v = root.find(key);
  if (!v) return fallback;
  if (v->type != Value::Type::kInt && v->type != Value::Type::kDouble)
    fail("key '" + key + "' must be a number (line " +
         std::to_string(v->line) + ")");
  return v->as_double();
}

bool get_bool(const Value& root, const std::string& key, bool fallback) {
  const Value* v = root.find(key);
  if (!v) return fallback;
  if (v->type != Value::Type::kBool)
    fail("key '" + key + "' must be a boolean (line " +
         std::to_string(v->line) + ")");
  return v->boolean;
}

/// Unknown keys are protocol errors — a typoed "time_limi" should fail
/// loudly, not silently run with the default.
void check_keys(const Value& root, const std::set<std::string>& allowed) {
  for (const auto& [key, value] : root.object) {
    if (!allowed.count(key))
      fail("unknown key '" + key + "' (line " + std::to_string(value.line) +
           ")");
  }
}

/// Cache namespaces become file names (cache_dir/<client>.csv), so the
/// charset is restricted to names that cannot escape the directory.
void check_client(const std::string& client) {
  if (client.empty()) return;
  if (client[0] == '.') fail("client name must not start with '.'");
  if (client.size() > 64) fail("client name too long (max 64)");
  for (char c : client) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) fail("client name may only contain [A-Za-z0-9_.-]");
  }
}

}  // namespace

Request parse_request(const std::string& line) {
  Value root;
  try {
    root = frontend::json::parse_value(line, "serve request");
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(e.what());
  }
  if (root.type != Value::Type::kObject)
    fail("request must be a JSON object");

  Request req;
  const std::string kind =
      require(root, "kind", Value::Type::kString, "a string").str;
  req.id = get_int(root, "id", -1);

  if (kind == "predict") {
    check_keys(root, {"kind", "id", "client", "kernel", "config"});
    req.kind = Request::Kind::kPredict;
    req.kernel = frontend::kernel_from_json_value(
        require(root, "kernel", Value::Type::kObject, "an object"));
    const std::string key = get_string(root, "config", "");
    try {
      req.config = key.empty() ? hlssim::DesignConfig::neutral(req.kernel)
                               : hlssim::parse_config_key(key);
    } catch (const std::exception& e) {
      fail(std::string("bad config key: ") + e.what());
    }
    if (req.config.loops.size() != req.kernel.loops.size())
      fail("config has " + std::to_string(req.config.loops.size()) +
           " loops but kernel '" + req.kernel.name + "' has " +
           std::to_string(req.kernel.loops.size()));
  } else if (kind == "sweep") {
    check_keys(root,
               {"kind", "id", "client", "kernel", "time_limit", "top_m",
                "evaluate"});
    req.kind = Request::Kind::kSweep;
    req.kernel = frontend::kernel_from_json_value(
        require(root, "kernel", Value::Type::kObject, "an object"));
    req.time_limit = get_number(root, "time_limit", 0.0);
    if (req.time_limit < 0.0) fail("time_limit must be >= 0");
    req.top_m = static_cast<int>(get_int(root, "top_m", 0));
    if (req.top_m < 0) fail("top_m must be >= 0");
    req.evaluate = get_bool(root, "evaluate", false);
  } else if (kind == "poll" || kind == "cancel") {
    check_keys(root, {"kind", "id", "job"});
    req.kind =
        kind == "poll" ? Request::Kind::kPoll : Request::Kind::kCancel;
    req.job = require(root, "job", Value::Type::kString, "a string").str;
    if (req.job.empty()) fail("job id must be non-empty");
  } else if (kind == "admin") {
    check_keys(root, {"kind", "id", "op", "weights"});
    req.kind = Request::Kind::kAdmin;
    req.op = require(root, "op", Value::Type::kString, "a string").str;
    if (req.op != "reload-model" && req.op != "stats" && req.op != "drain")
      fail("unknown admin op '" + req.op +
           "' (expected reload-model, stats, or drain)");
    req.weights = get_string(root, "weights", "");
  } else {
    fail("unknown kind '" + kind +
         "' (expected predict, sweep, poll, cancel, or admin)");
  }

  req.client = get_string(root, "client", "");
  check_client(req.client);
  return req;
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string float_str(float v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(v));
  return buf;
}

std::string double_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string error_line(std::int64_t id, const std::string& message) {
  std::string out = "{";
  if (id >= 0) out += "\"id\":" + std::to_string(id) + ",";
  out += "\"ok\":false,\"error\":" + json_quote(message) + "}";
  return out;
}

std::string ok_head(std::int64_t id) {
  std::string out = "{";
  if (id >= 0) out += "\"id\":" + std::to_string(id) + ",";
  out += "\"ok\":true";
  return out;
}

std::string predicted_fields(const std::array<float, model::kNumObjectives>& p,
                             float p_valid) {
  std::string out = "\"predicted\":{";
  for (int i = 0; i < model::kNumObjectives; ++i) {
    if (i) out += ",";
    out += json_quote(model::objective_name(i)) + ":" + float_str(p[i]);
  }
  out += "},\"p_valid\":" + float_str(p_valid);
  return out;
}

}  // namespace gnndse::serve
