#include "serve/model_slot.hpp"

#include "model/weights.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace gnndse::serve {

std::shared_ptr<ModelSnapshot> snapshot_from_trained(
    dse::TrainedModels& models, double norm_factor) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->norm_factor = norm_factor;
  snap->base = models.main_model().options();
  snap->main_params = model::copy_params(models.main_model().params());
  snap->bram_params = model::copy_params(models.bram_model().params());
  snap->cls_params = model::copy_params(models.cls_model().params());
  return snap;
}

std::shared_ptr<ModelSnapshot> snapshot_from_files(
    const std::string& prefix, const model::ModelOptions& base,
    double norm_factor) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->norm_factor = norm_factor;
  snap->base = base;
  snap->main_params = model::load_raw_params(prefix + ".main.bin");
  snap->bram_params = model::load_raw_params(prefix + ".bram.bin");
  snap->cls_params = model::load_raw_params(prefix + ".cls.bin");
  return snap;
}

std::uint64_t ModelSlot::install(std::shared_ptr<ModelSnapshot> next) {
  std::lock_guard<std::mutex> lock(mu_);
  next->version = ++last_version_;
  snap_ = std::move(next);
  if (last_version_ > 1) obs::add(obs::counter("serve.model_swaps"));
  return last_version_;
}

void ModelInstance::ensure(const SnapshotPtr& snap) {
  if (!snap) throw std::runtime_error("serve: no model installed");
  if (snap_ && snap_->version == snap->version) return;

  // Rebuild from scratch: constructing with a fixed rng then overwriting
  // every parameter yields the snapshot weights exactly; assign_params
  // bumps the params version so the conv layers' parameter-keyed caches
  // refresh.
  util::Rng rng(1);
  model::ModelOptions mo = snap->base;
  mo.out_dim = 4;
  main_model_ = std::make_unique<model::PredictiveModel>(mo, rng);
  mo.out_dim = 1;
  bram_model_ = std::make_unique<model::PredictiveModel>(mo, rng);
  cls_model_ = std::make_unique<model::PredictiveModel>(mo, rng);
  model::assign_params(main_model_->params(), snap->main_params);
  model::assign_params(bram_model_->params(), snap->bram_params);
  model::assign_params(cls_model_->params(), snap->cls_params);

  model::TrainOptions to;
  main_trainer_ = std::make_unique<model::Trainer>(*main_model_, to);
  model::TrainOptions tb = to;
  tb.objectives = {model::kBram};
  bram_trainer_ = std::make_unique<model::Trainer>(*bram_model_, tb);
  model::TrainOptions tc = to;
  tc.task = model::Task::kClassification;
  cls_trainer_ = std::make_unique<model::Trainer>(*cls_model_, tc);

  norm_ = model::Normalizer(snap->norm_factor);
  snap_ = snap;
}

}  // namespace gnndse::serve
