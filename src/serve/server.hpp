// The serve daemon: accepts connections on loopback TCP, speaks the
// line-delimited JSON protocol (protocol.hpp), and multiplexes three kinds
// of work over one trained model bundle:
//
//   predict — featurize + fast-path inference, coalesced by the Batcher
//   sweep   — async ModelDse run as a job ("job-N"): poll for progress
//             (the dse.* heartbeat gauges), cancel cooperatively
//   admin   — reload-model (hot swap from weight files), stats, drain
//
// Per connection, a reader thread parses and dispatches requests while a
// writer thread sends responses strictly in request order — so one
// pipelined connection that fires 32 predicts back-to-back still coalesces
// them into batches (the reader never blocks on inference; it enqueues the
// future and keeps reading).
//
// Oracle results for `evaluate` sweeps are cached per client namespace:
// cache_dir/<client>.csv, so tenants sharing a daemon don't mix persistent
// caches.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace gnndse::serve {

struct ServerOptions {
  /// 0 = kernel-assigned ephemeral port; read the outcome from port().
  std::uint16_t port = 0;
  /// Default weight-file prefix for `reload-model` without "weights".
  std::string weights_prefix;
  /// Directory for per-client oracle cache CSVs; empty = in-memory only.
  std::string cache_dir;
  /// Sweep defaults when the request leaves them 0.
  double sweep_time_limit = 5.0;
  int top_m = 10;
  double util_threshold = 0.8;
  std::uint64_t seed = 1;
  BatcherOptions batcher;
};

class Server {
 public:
  /// Binds the listener immediately (so port() is valid before run()) and
  /// enables telemetry — polling and stats read the obs registry.
  Server(ModelSlot& slot, model::SampleFactory& factory,
         const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Accept loop; returns after a drain (admin request or request_drain):
  /// intake stops, queued responses flush, sweeps are cancelled and
  /// joined, the batcher drains.
  void run();

  /// Thread-safe external drain trigger (tests, signal handlers).
  void request_drain();

 private:
  struct Conn {
    Socket sock;
    std::thread reader, writer;

    struct Out {
      bool is_future = false;
      std::int64_t id = -1;
      std::future<PredictResult> fut;
      std::string text;
    };
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Out> outbox;
    bool closed = false;  // reader finished; writer exits once drained
    std::atomic<bool> reader_done{false}, writer_done{false};
  };

  struct SweepJob {
    std::string job_id;
    std::atomic<bool> cancel{false};
    std::atomic<bool> done{false};
    std::thread thread;

    /// Result fields, written by the job thread before `done` is set
    /// (release) and read by pollers after observing done (acquire).
    std::string error;
    dse::DseResult result;
    std::uint64_t model_version = 0;
    bool evaluated = false;
    bool eval_best_found = false;
    std::string eval_best_config;
    double eval_best_cycles = 0.0;
  };

  void reader_loop(const std::shared_ptr<Conn>& conn);
  void writer_loop(const std::shared_ptr<Conn>& conn);
  /// Parses + dispatches one line; enqueues exactly one outbox entry.
  void handle_line(const std::string& line, Conn& conn);
  void push_text(Conn& conn, std::string text);

  std::string handle_sweep(Request& req);
  std::string handle_poll(const Request& req);
  std::string handle_cancel(const Request& req);
  std::string handle_admin(const Request& req);
  void run_sweep_job(const std::shared_ptr<SweepJob>& job, Request req);

  std::string cache_path_for(const std::string& client) const;
  void reap_finished_conns();

  ModelSlot& slot_;
  model::SampleFactory& factory_;
  ServerOptions opts_;
  ListenSocket listener_;
  Batcher batcher_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;

  std::mutex jobs_mu_;
  std::map<std::string, std::shared_ptr<SweepJob>> jobs_;
  int next_job_ = 1;

  std::atomic<bool> draining_{false};
};

}  // namespace gnndse::serve
