#include "kir/kernel.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace gnndse::kir {

int Kernel::num_pragma_sites() const {
  int n = 0;
  for (const Loop& l : loops) n += l.num_pragma_sites();
  return n;
}

int Kernel::loop_depth(int loop_id) const {
  int depth = 0;
  int cur = loops[static_cast<std::size_t>(loop_id)].parent;
  while (cur != -1) {
    ++depth;
    cur = loops[static_cast<std::size_t>(cur)].parent;
  }
  return depth;
}

bool Kernel::is_ancestor(int ancestor, int loop_id) const {
  int cur = loops[static_cast<std::size_t>(loop_id)].parent;
  while (cur != -1) {
    if (cur == ancestor) return true;
    cur = loops[static_cast<std::size_t>(cur)].parent;
  }
  return false;
}

std::vector<int> Kernel::subtree(int loop_id) const {
  std::vector<int> out;
  std::vector<int> stack{loop_id};
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const Loop& l = loops[static_cast<std::size_t>(cur)];
    for (auto it = l.children.rbegin(); it != l.children.rend(); ++it)
      stack.push_back(*it);
  }
  return out;
}

std::vector<int> Kernel::innermost_loops() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < loops.size(); ++i)
    if (loops[i].children.empty()) out.push_back(static_cast<int>(i));
  return out;
}

void validate(const Kernel& k) {
  auto fail = [&k](const std::string& msg) {
    throw std::invalid_argument("kernel '" + k.name + "': " + msg);
  };
  if (k.name.empty()) fail("empty name");

  for (const Array& a : k.arrays) {
    if (a.name.empty()) fail("array with empty name");
    if (a.num_elems <= 0) fail("array " + a.name + " has num_elems <= 0");
    if (a.elem_bits <= 0) fail("array " + a.name + " has elem_bits <= 0");
  }

  // An ancestor walk that cannot rely on the (not yet verified) invariants:
  // parent indices are checked for range/order before it is used.
  auto encloses = [&k](int ancestor, int loop_id) {
    for (int cur = loop_id; cur != -1;
         cur = k.loops[static_cast<std::size_t>(cur)].parent)
      if (cur == ancestor) return true;
    return false;
  };

  for (std::size_t i = 0; i < k.loops.size(); ++i) {
    const Loop& l = k.loops[i];
    if (l.name.empty()) fail("loop " + std::to_string(i) + " has empty name");
    if (l.trip_count <= 0) fail("loop " + l.name + " has trip count <= 0");
    if (l.parent != -1) {
      if (l.parent < 0 || static_cast<std::size_t>(l.parent) >= k.loops.size())
        fail("loop " + l.name + " has out-of-range parent");
      if (static_cast<std::size_t>(l.parent) >= i)
        fail("loop " + l.name + " precedes its parent (topological order)");
      const Loop& p = k.loops[static_cast<std::size_t>(l.parent)];
      if (std::find(p.children.begin(), p.children.end(),
                    static_cast<int>(i)) == p.children.end())
        fail("loop " + l.name + " missing from parent's children");
    } else if (std::find(k.top_loops.begin(), k.top_loops.end(),
                         static_cast<int>(i)) == k.top_loops.end()) {
      fail("top-level loop " + l.name + " missing from top_loops");
    }
    for (int c : l.children) {
      if (c < 0 || static_cast<std::size_t>(c) >= k.loops.size())
        fail("loop " + l.name + " lists an out-of-range child");
      if (k.loops[static_cast<std::size_t>(c)].parent != static_cast<int>(i))
        fail("loop " + l.name + " lists a child whose parent is another loop");
    }
    if (std::set<int>(l.children.begin(), l.children.end()).size() !=
        l.children.size())
      fail("loop " + l.name + " lists a child twice");
    for (int s : l.stmts) {
      if (s < 0 || static_cast<std::size_t>(s) >= k.stmts.size())
        fail("loop " + l.name + " lists an out-of-range stmt");
      if (k.stmts[static_cast<std::size_t>(s)].parent_loop !=
          static_cast<int>(i))
        fail("loop " + l.name + " lists a stmt belonging to another loop");
    }
    if (std::set<int>(l.stmts.begin(), l.stmts.end()).size() != l.stmts.size())
      fail("loop " + l.name + " lists a stmt twice");
    auto check_options = [&](const std::vector<std::int64_t>& opts, bool can,
                             const char* what) {
      if (!can) {
        if (!opts.empty()) fail(std::string(what) + " options on a loop without the site");
        return;
      }
      if (opts.empty()) fail(std::string(what) + " site without options");
      if (std::find(opts.begin(), opts.end(), 1) == opts.end())
        fail(std::string(what) + " options must include 1");
      for (auto f : opts) {
        if (f < 1) fail(std::string(what) + " factor < 1");
        if (f > l.trip_count)
          fail(std::string(what) + " factor exceeds trip count");
      }
    };
    check_options(l.parallel_options, l.can_parallel, "parallel");
    check_options(l.tile_options, l.can_tile, "tile");
  }

  for (std::size_t s = 0; s < k.stmts.size(); ++s) {
    const Stmt& st = k.stmts[s];
    if (st.parent_loop < 0 ||
        static_cast<std::size_t>(st.parent_loop) >= k.loops.size())
      fail("stmt " + st.name + " has no parent loop");
    const Loop& pl = k.loops[static_cast<std::size_t>(st.parent_loop)];
    if (std::find(pl.stmts.begin(), pl.stmts.end(), static_cast<int>(s)) ==
        pl.stmts.end())
      fail("stmt " + st.name + " missing from parent loop's stmt list");
    for (const ArrayAccess& a : st.accesses) {
      if (a.array < 0 || static_cast<std::size_t>(a.array) >= k.arrays.size())
        fail("stmt " + st.name + " accesses out-of-range array");
      if (a.driving_loop != -1) {
        if (a.driving_loop < 0 ||
            static_cast<std::size_t>(a.driving_loop) >= k.loops.size())
          fail("stmt " + st.name + " has out-of-range driving loop");
        if (!encloses(a.driving_loop, st.parent_loop))
          fail("stmt " + st.name +
               " has a driving loop that does not enclose it");
      }
    }
    if (st.dep_loop != -1) {
      if (st.dep_loop < 0 ||
          static_cast<std::size_t>(st.dep_loop) >= k.loops.size())
        fail("stmt " + st.name + " has out-of-range dep loop");
      if (!encloses(st.dep_loop, st.parent_loop))
        fail("stmt " + st.name + " has a dep loop that does not enclose it");
      if (st.dep_distance < 1) fail("stmt " + st.name + " dep distance < 1");
      if (st.dep_latency < 1) fail("stmt " + st.name + " dep latency < 1");
    } else if (st.dep_distance != 0 || st.dep_latency != 0) {
      fail("stmt " + st.name + " has dep fields without a dep loop");
    }
  }

  std::set<int> tops(k.top_loops.begin(), k.top_loops.end());
  if (tops.size() != k.top_loops.size()) fail("top_loops lists a loop twice");
  for (int t : k.top_loops) {
    if (t < 0 || static_cast<std::size_t>(t) >= k.loops.size())
      fail("top_loops lists an out-of-range loop");
    if (k.loops[static_cast<std::size_t>(t)].parent != -1)
      fail("top_loops lists a nested loop");
  }

  if (!k.loop_function.empty() && k.loop_function.size() != k.loops.size())
    fail("loop_function size mismatch");
  if (k.num_functions < 1) fail("num_functions < 1");
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

KernelBuilder::KernelBuilder(std::string name) {
  kernel_.name = std::move(name);
}

int KernelBuilder::add_array(const std::string& name, std::int64_t elems,
                             bool off_chip, int elem_bits) {
  kernel_.arrays.push_back(Array{name, elems, elem_bits, off_chip});
  return static_cast<int>(kernel_.arrays.size() - 1);
}

int KernelBuilder::begin_loop(const std::string& name, std::int64_t trip_count,
                              int parent) {
  Loop l;
  l.name = name;
  l.trip_count = trip_count;
  l.parent = parent;
  kernel_.loops.push_back(std::move(l));
  const int id = static_cast<int>(kernel_.loops.size() - 1);
  if (parent == -1) {
    kernel_.top_loops.push_back(id);
  } else {
    kernel_.loops[static_cast<std::size_t>(parent)].children.push_back(id);
  }
  return id;
}

int KernelBuilder::add_stmt(int loop_id, const std::string& name, OpMix ops,
                            std::vector<ArrayAccess> accesses) {
  Stmt s;
  s.name = name;
  s.parent_loop = loop_id;
  s.ops = ops;
  s.accesses = std::move(accesses);
  kernel_.stmts.push_back(std::move(s));
  const int id = static_cast<int>(kernel_.stmts.size() - 1);
  kernel_.loops[static_cast<std::size_t>(loop_id)].stmts.push_back(id);
  return id;
}

void KernelBuilder::set_recurrence(int stmt_id, int loop_id, int distance,
                                   int latency, bool associative) {
  Stmt& s = kernel_.stmts[static_cast<std::size_t>(stmt_id)];
  s.dep_loop = loop_id;
  s.dep_distance = distance;
  s.dep_latency = latency;
  s.dep_associative = associative;
}

void KernelBuilder::set_loop_function(int loop_id, int fn) {
  if (kernel_.loop_function.empty())
    kernel_.loop_function.assign(kernel_.loops.size() + 16, 0);
  if (kernel_.loop_function.size() < kernel_.loops.size())
    kernel_.loop_function.resize(kernel_.loops.size(), 0);
  kernel_.loop_function[static_cast<std::size_t>(loop_id)] = fn;
}

Kernel KernelBuilder::build() {
  if (!kernel_.loop_function.empty())
    kernel_.loop_function.resize(kernel_.loops.size(), 0);
  validate(kernel_);
  return kernel_;
}

std::vector<std::int64_t> candidate_factors(std::int64_t trip_count,
                                            std::int64_t max_factor,
                                            bool powers_of_two_only) {
  std::vector<std::int64_t> out;
  const std::int64_t cap = std::min(trip_count, max_factor);
  for (std::int64_t f = 1; f <= cap; ++f) {
    const bool pow2 = (f & (f - 1)) == 0;
    if (powers_of_two_only && !pow2) continue;
    // Divisors give clean unrolls; non-divisor powers of two are still
    // offered because Merlin pads the loop (at a cost hlssim models).
    if (trip_count % f != 0 && !pow2) continue;
    out.push_back(f);
  }
  // Merlin treats the full trip count as a useful "unroll everything"
  // factor even when it moderately exceeds max_factor.
  if (trip_count <= 4 * max_factor &&
      std::find(out.begin(), out.end(), trip_count) == out.end())
    out.push_back(trip_count);
  return out;
}

}  // namespace gnndse::kir
