// Kernel IR: the loop-nest program representation for FPGA accelerator
// kernels.
//
// The paper's pipeline starts from C source compiled to LLVM IR; our
// substrate is a structured loop-nest IR that carries exactly the
// information both downstream consumers need:
//   * hlssim  — trip counts, operation mixes, array access patterns and
//     loop-carried dependences, from which cycle counts and resource usage
//     are derived under Merlin pragma semantics;
//   * graphgen — the structure that is lowered to a ProGraML-style
//     instruction/variable/constant graph with pragma nodes.
//
// Pragma *sites* (the `auto{...}` placeholders of Code 1 in the paper) are
// per-loop capability flags plus candidate factor lists; concrete
// configurations live in dspace/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gnndse::kir {

/// On-chip or off-chip storage for a kernel array.
struct Array {
  std::string name;
  std::int64_t num_elems = 0;
  int elem_bits = 32;
  /// True for kernel interface arrays living in DDR (accessed via AXI);
  /// false for scratchpads the kernel declares locally (BRAM from the
  /// start).
  bool off_chip = true;
};

/// How a statement walks an array with respect to its innermost driving
/// loop. Determines burst/coalescing feasibility in the simulator and the
/// `key_text` of the generated load/store nodes.
enum class AccessKind {
  kSequential,  // a[i], unit stride in the driving loop
  kStrided,     // a[i*S + c], S > 1
  kIndirect,    // a[idx[i]] — gather/scatter, defeats bursting
  kBroadcast,   // same element every iteration of the driving loop
};

struct ArrayAccess {
  int array = -1;  // index into Kernel::arrays
  bool is_write = false;
  AccessKind kind = AccessKind::kSequential;
  /// Loop (by id) whose induction variable drives the fastest-moving
  /// subscript; -1 when the access is loop-invariant.
  int driving_loop = -1;
};

/// Operation mix of one straight-line statement instance.
struct OpMix {
  int adds = 0;   // add/sub (int or fp)
  int muls = 0;   // multiplies -> DSP pressure
  int divs = 0;   // divides -> long latency, heavy LUT
  int cmps = 0;   // comparisons / selects
  int logic = 0;  // bitwise ops (xor/and/shift) — crypto kernels
  int specials = 0;  // exp/sqrt/table-lookup style ops

  int total() const { return adds + muls + divs + cmps + logic + specials; }
};

/// One statement in a loop body.
struct Stmt {
  std::string name;
  int parent_loop = -1;  // loop whose body executes this stmt
  OpMix ops;
  std::vector<ArrayAccess> accesses;
  /// Loop-carried recurrence this statement participates in:
  /// produces a value consumed `dep_distance` iterations later of loop
  /// `dep_loop`, through a chain of `dep_latency` cycles (e.g. a running
  /// accumulation: dep_latency = fp-add latency, distance = 1).
  int dep_loop = -1;
  int dep_distance = 0;
  int dep_latency = 0;
  /// True for associative recurrences (sum/max reductions) that HLS can
  /// parallelize with a reduction tree; false for general DP chains
  /// (e.g. nw) where parallelization forces serialization or synthesis
  /// blow-up.
  bool dep_associative = true;
};

/// One loop in the nest. Loops form a forest; `parent == -1` marks a
/// top-level loop of the kernel function body.
struct Loop {
  std::string name;
  std::int64_t trip_count = 0;
  int parent = -1;
  std::vector<int> children;  // loop ids, in program order
  std::vector<int> stmts;     // statement ids executed in this body

  // -- pragma sites (the auto{...} placeholders) --------------------------
  bool can_pipeline = false;
  bool can_parallel = false;
  bool can_tile = false;
  /// Candidate parallel factors (always includes 1 = "pragma absent").
  std::vector<std::int64_t> parallel_options;
  /// Candidate tile factors (always includes 1).
  std::vector<std::int64_t> tile_options;

  int num_pragma_sites() const {
    return (can_pipeline ? 1 : 0) + (can_parallel ? 1 : 0) +
           (can_tile ? 1 : 0);
  }
};

/// A whole accelerator kernel.
struct Kernel {
  std::string name;
  std::vector<Array> arrays;
  std::vector<Loop> loops;  // parents always precede children
  std::vector<Stmt> stmts;
  std::vector<int> top_loops;  // ids of top-level loops, program order
  /// Number of source functions (>1 when the kernel has helper functions;
  /// used for call-flow edges in the graph).
  int num_functions = 1;
  /// For multi-function kernels: loop id -> function index (0 = top).
  std::vector<int> loop_function;

  int function_of_loop(int loop_id) const {
    if (loop_function.empty()) return 0;
    return loop_function[static_cast<std::size_t>(loop_id)];
  }

  /// Total pragma sites across all loops (the paper's "#pragmas").
  int num_pragma_sites() const;

  /// Depth of a loop (top-level = 0).
  int loop_depth(int loop_id) const;

  /// True when `ancestor` is a (transitive) parent of `loop_id`.
  bool is_ancestor(int ancestor, int loop_id) const;

  /// All loops in the subtree rooted at `loop_id`, including itself.
  std::vector<int> subtree(int loop_id) const;

  /// Innermost loops (no children).
  std::vector<int> innermost_loops() const;
};

/// Structural sanity checks; throws std::invalid_argument on violation.
/// Verified invariants: parent/child symmetry in both directions (no
/// duplicate or stolen children/stmts), topological parent-before-child
/// ordering, top_loops exactly covering parentless loops, statement
/// linkage, positive trip counts and array extents, option lists that
/// contain 1 and do not exceed the trip count, and dep/driving loops that
/// actually enclose their statement. Both the text frontend
/// (src/frontend/) and the seeded generator run every kernel through this
/// before it reaches hlssim/graphgen.
void validate(const Kernel& k);

// ---------------------------------------------------------------------------
// Builder — fluent construction used by src/kernels.
// ---------------------------------------------------------------------------

/// Convenience builder so kernel definitions read like the loop nests they
/// describe. Example:
///
///   KernelBuilder b("gemm-ncubed");
///   int A = b.array("A", 4096);
///   int i = b.loop("i", 64).pipeline().parallel({1,2,4,8}).done();
///   ...
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  int add_array(const std::string& name, std::int64_t elems,
                bool off_chip = true, int elem_bits = 32);

  /// Opens a loop under `parent` (-1 = top level). Returns the loop id.
  int begin_loop(const std::string& name, std::int64_t trip_count,
                 int parent = -1);

  Loop& loop(int id) { return kernel_.loops[static_cast<std::size_t>(id)]; }

  /// Adds a statement to `loop_id`'s body; returns the statement id.
  int add_stmt(int loop_id, const std::string& name, OpMix ops,
               std::vector<ArrayAccess> accesses = {});

  /// Marks the last-added statement as part of a loop-carried recurrence.
  void set_recurrence(int stmt_id, int loop_id, int distance, int latency,
                      bool associative = true);

  void set_num_functions(int n) { kernel_.num_functions = n; }
  void set_loop_function(int loop_id, int fn);

  /// Validates and returns the finished kernel.
  Kernel build();

 private:
  Kernel kernel_;
};

/// Standard candidate factor lists used by the benchmark kernels: divisors
/// of `trip_count` that are <= max_factor, optionally thinned to powers of
/// two plus the trip count itself (Merlin's useful factors).
std::vector<std::int64_t> candidate_factors(std::int64_t trip_count,
                                            std::int64_t max_factor = 64,
                                            bool powers_of_two_only = false);

}  // namespace gnndse::kir
