#include "model/trainer.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace gnndse::model {

using tensor::Tape;
using tensor::Tensor;
using tensor::VarId;

Trainer::Trainer(PredictiveModel& model, TrainOptions opts)
    : model_(model), opts_(std::move(opts)),
      adam_(tensor::AdamConfig{.lr = opts_.lr}) {
  if (opts_.task == Task::kRegression &&
      static_cast<std::int64_t>(opts_.objectives.size()) !=
          model_.options().out_dim)
    throw std::invalid_argument(
        "Trainer: model out_dim must match the number of objectives");
  if (opts_.task == Task::kClassification && model_.options().out_dim != 1)
    throw std::invalid_argument("Trainer: classifier needs out_dim == 1");
  adam_.register_params(model_.params());
}

Tensor Trainer::batch_targets(const Dataset& ds,
                              const std::vector<std::size_t>& idx) const {
  const std::int64_t out =
      opts_.task == Task::kClassification
          ? 1
          : static_cast<std::int64_t>(opts_.objectives.size());
  Tensor t({static_cast<std::int64_t>(idx.size()), out});
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Sample& s = ds.samples[idx[i]];
    if (opts_.task == Task::kClassification) {
      t.at(static_cast<std::int64_t>(i), 0) = s.valid ? 1.0f : 0.0f;
    } else {
      for (std::size_t o = 0; o < opts_.objectives.size(); ++o)
        t.at(static_cast<std::int64_t>(i), static_cast<std::int64_t>(o)) =
            s.target[static_cast<std::size_t>(opts_.objectives[o])];
    }
  }
  return t;
}

float Trainer::fit(const Dataset& ds,
                   const std::vector<std::size_t>& train_idx) {
  static obs::Counter& c_epochs = obs::counter("train.epochs");
  static obs::Counter& c_steps = obs::counter("train.steps");
  static obs::Histogram& h_step = obs::histogram("train.step_ms");
  static obs::Histogram& h_fwd = obs::histogram("train.forward_ms");
  static obs::Histogram& h_bwd = obs::histogram("train.backward_ms");
  static obs::Histogram& h_epoch = obs::histogram("train.epoch_ms");
  static obs::Gauge& g_loss = obs::gauge("train.last_epoch_loss");

  obs::ScopedSpan span(opts_.task == Task::kClassification
                           ? "train.fit.classifier"
                           : "train.fit.regression");
  util::Rng rng(opts_.seed);
  std::vector<std::size_t> order = train_idx;
  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    util::Timer epoch_timer;
    rng.shuffle(order);
    double loss_acc = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(opts_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(opts_.batch_size));
      std::vector<std::size_t> bidx(order.begin() + static_cast<long>(start),
                                    order.begin() + static_cast<long>(end));
      std::vector<const gnn::GraphData*> graphs;
      graphs.reserve(bidx.size());
      for (std::size_t i : bidx) graphs.push_back(&ds.samples[i].graph);
      gnn::GraphBatch batch = gnn::make_batch(graphs);
      Tensor targets = batch_targets(ds, bidx);

      const bool rec = obs::enabled();
      util::Timer step_timer;
      adam_.zero_grad();
      Tape tape;
      VarId pred = model_.forward(tape, batch);
      VarId loss = opts_.task == Task::kClassification
                       ? tape.bce_with_logits(pred, targets)
                       : tape.mse_loss(pred, targets);
      loss_acc += tape.value(loss).at(0);
      ++batches;
      const double fwd_ms = rec ? step_timer.millis() : 0.0;
      tape.backward(loss);
      adam_.step();
      if (rec) {
        const double step_ms = step_timer.millis();
        h_fwd.observe(fwd_ms);
        h_bwd.observe(step_ms - fwd_ms);
        h_step.observe(step_ms);
        c_steps.add();
      }
    }
    last_epoch_loss =
        batches ? static_cast<float>(loss_acc / static_cast<double>(batches))
                : 0.0f;
    if (obs::enabled()) {
      c_epochs.add();
      h_epoch.observe(epoch_timer.millis());
      g_loss.set(last_epoch_loss);
    }
    if (opts_.verbose)
      util::log_info("epoch ", epoch + 1, "/", opts_.epochs,
                     " loss=", last_epoch_loss);
  }
  span.add("epochs", static_cast<double>(opts_.epochs));
  span.add("final_loss", static_cast<double>(last_epoch_loss));
  return last_epoch_loss;
}

Tensor Trainer::predict(const Dataset& ds,
                        const std::vector<std::size_t>& idx) {
  std::vector<const gnn::GraphData*> graphs;
  graphs.reserve(idx.size());
  for (std::size_t i : idx) graphs.push_back(&ds.samples[i].graph);
  return predict_graphs(graphs);
}

const Tensor& Trainer::predict_batch(const gnn::GraphBatch& batch) {
  static obs::Counter& c_inf = obs::counter("gnn.inferences");
  static obs::Gauge& g_ws = obs::gauge("gnn.workspace_bytes");
  obs::ScopedSpan span("gnn.predict_batch");
  span.add("graphs", static_cast<double>(batch.num_graphs));
  const Tensor& pred = model_.forward_infer(session_, batch);
  if (obs::enabled()) {
    c_inf.add(batch.num_graphs);
    g_ws.set(static_cast<double>(session_.workspace_bytes()));
  }
  return pred;
}

void predict_batch_concurrent(std::span<Trainer* const> heads,
                              const gnn::GraphBatch& batch,
                              std::span<const tensor::Tensor*> out) {
  if (heads.size() != out.size())
    throw std::invalid_argument("predict_batch_concurrent: size mismatch");
  // One pool task per head (grain 1). With a single-lane pool (or inside a
  // nested parallel region) the chunks run inline in index order, which is
  // exactly the sequential head-after-head path; with more lanes the heads
  // run concurrently, each confined to its own trainer's workspace. Either
  // way every head computes the same bits. parallel_for marks its workers
  // as in-parallel, so the matmuls inside each head run inline rather than
  // re-entering the pool.
  util::parallel_for(static_cast<std::int64_t>(heads.size()), 1,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         const auto h = static_cast<std::size_t>(i);
                         out[h] = &heads[h]->predict_batch(batch);
                       }
                     });
}

namespace {

/// Chunked fast-path prediction shared by both predict_graphs overloads:
/// `make_chunk(start, end)` assembles the batch for graphs [start, end).
template <typename MakeChunk>
Tensor predict_chunked(Trainer& trainer, std::size_t count, std::int64_t out,
                       MakeChunk&& make_chunk) {
  static obs::Histogram& h_inf = obs::histogram("gnn.inference_batch_ms");
  util::Timer timer;
  Tensor result({static_cast<std::int64_t>(count), out});
  for (std::size_t start = 0; start < count; start += Trainer::kChunk) {
    const std::size_t end = std::min(count, start + Trainer::kChunk);
    gnn::GraphBatch batch = make_chunk(start, end);
    const Tensor& v = trainer.predict_batch(batch);
    std::copy_n(v.data(), v.numel(),
                result.data() + static_cast<std::int64_t>(start) * out);
  }
  obs::observe(h_inf, timer.millis());
  return result;
}

}  // namespace

Tensor Trainer::predict_graphs(
    const std::vector<const gnn::GraphData*>& graphs) {
  return predict_chunked(
      *this, graphs.size(), model_.options().out_dim,
      [&](std::size_t start, std::size_t end) {
        return gnn::make_batch(std::vector<const gnn::GraphData*>(
            graphs.begin() + static_cast<long>(start),
            graphs.begin() + static_cast<long>(end)));
      });
}

Tensor Trainer::predict_graphs(std::span<const gnn::GraphData> graphs) {
  return predict_chunked(*this, graphs.size(), model_.options().out_dim,
                         [&](std::size_t start, std::size_t end) {
                           return gnn::make_batch(
                               graphs.subspan(start, end - start));
                         });
}

Tensor Trainer::predict_graphs_tape(
    const std::vector<const gnn::GraphData*>& graphs) {
  const std::int64_t out = model_.options().out_dim;
  Tensor result({static_cast<std::int64_t>(graphs.size()), out});
  for (std::size_t start = 0; start < graphs.size(); start += kChunk) {
    const std::size_t end = std::min(graphs.size(), start + kChunk);
    std::vector<const gnn::GraphData*> chunk(
        graphs.begin() + static_cast<long>(start),
        graphs.begin() + static_cast<long>(end));
    gnn::GraphBatch batch = gnn::make_batch(chunk);
    Tape tape;
    VarId pred = model_.forward(tape, batch);
    const Tensor& v = tape.value(pred);
    std::copy_n(v.data(), v.numel(),
                result.data() + static_cast<std::int64_t>(start) * out);
  }
  return result;
}

Tensor Trainer::embed_graphs(
    const std::vector<const gnn::GraphData*>& graphs) {
  Tensor result;
  for (std::size_t start = 0; start < graphs.size(); start += kChunk) {
    const std::size_t end = std::min(graphs.size(), start + kChunk);
    std::vector<const gnn::GraphData*> chunk(
        graphs.begin() + static_cast<long>(start),
        graphs.begin() + static_cast<long>(end));
    gnn::GraphBatch batch = gnn::make_batch(chunk);
    predict_batch(batch);
    const Tensor& emb = model_.last_graph_embedding_infer();
    if (result.numel() == 0)
      result = Tensor({static_cast<std::int64_t>(graphs.size()), emb.cols()});
    std::copy_n(emb.data(), emb.numel(),
                result.data() + static_cast<std::int64_t>(start) * emb.cols());
  }
  return result;
}

RegressionMetrics eval_regression(Trainer& trainer, const Dataset& ds,
                                  const std::vector<std::size_t>& test_idx) {
  RegressionMetrics m;
  if (test_idx.empty()) return m;
  Tensor pred = trainer.predict(ds, test_idx);
  const auto& objectives = trainer.options().objectives;
  for (std::size_t o = 0; o < objectives.size(); ++o) {
    double se = 0.0;
    for (std::size_t i = 0; i < test_idx.size(); ++i) {
      const float truth =
          ds.samples[test_idx[i]]
              .target[static_cast<std::size_t>(objectives[o])];
      const float p = pred.at(static_cast<std::int64_t>(i),
                              static_cast<std::int64_t>(o));
      se += static_cast<double>(p - truth) * (p - truth);
    }
    const float rmse = static_cast<float>(
        std::sqrt(se / static_cast<double>(test_idx.size())));
    m.rmse[static_cast<std::size_t>(objectives[o])] = rmse;
    m.rmse_sum += rmse;
  }
  return m;
}

ClassificationMetrics eval_classification(
    Trainer& trainer, const Dataset& ds,
    const std::vector<std::size_t>& test_idx) {
  ClassificationMetrics m;
  if (test_idx.empty()) return m;
  Tensor pred = trainer.predict(ds, test_idx);
  long tp = 0, fp = 0, tn = 0, fn = 0;
  for (std::size_t i = 0; i < test_idx.size(); ++i) {
    const bool predicted = pred.at(static_cast<std::int64_t>(i), 0) > 0.0f;
    const bool truth = ds.samples[test_idx[i]].valid;
    if (predicted && truth) ++tp;
    else if (predicted && !truth) ++fp;
    else if (!predicted && !truth) ++tn;
    else ++fn;
  }
  m.accuracy = static_cast<float>(tp + tn) /
               static_cast<float>(test_idx.size());
  const float denom = static_cast<float>(2 * tp + fp + fn);
  m.f1 = denom > 0 ? 2.0f * static_cast<float>(tp) / denom : 0.0f;
  return m;
}

RegressionMetrics combine(const RegressionMetrics& main,
                          const RegressionMetrics& bram) {
  RegressionMetrics out = main;
  for (std::size_t i = 0; i < out.rmse.size(); ++i)
    if (bram.rmse[i] > 0.0f) out.rmse[i] = bram.rmse[i];
  out.rmse_sum = main.rmse_sum + bram.rmse_sum;
  return out;
}

}  // namespace gnndse::model
