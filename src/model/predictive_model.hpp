// The predictive models of Table 2.
//
//   M1  MLP-pragma            — pragma vector only (Kwon et al. [7])
//   M2  MLP-pragma-program    — initial node embeddings, sum-pooled, MLP
//   M3  GNN-DSE-GCN           — 6x GCNConv, sum pool
//   M4  GNN-DSE-GAT           — 6x GATConv, sum pool
//   M5  GNN-DSE-TransformerConv — 6x TransformerConv, sum pool
//   M6  M5 + Jumping Knowledge (max)
//   M7  M6 + node-attention pooling  (the full GNN-DSE model, Fig 4)
//
// Every variant ends in the same 4-layer MLP prediction head. Regression
// heads output multiple objectives (multi-task, §4.3.2); classification
// outputs one logit (valid/invalid).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "gnn/batch.hpp"
#include "gnn/conv.hpp"
#include "gnn/pool.hpp"

namespace gnndse::model {

enum class ModelKind {
  kM1MlpPragma,
  kM2MlpContext,
  kM3Gcn,
  kM4Gat,
  kM5Tconv,
  kM6TconvJkn,
  kM7Full
};

const char* to_string(ModelKind kind);

struct ModelOptions {
  ModelKind kind = ModelKind::kM7Full;
  int gnn_layers = 6;       // paper: 6 GNN layers
  std::int64_t hidden = 64; // paper: 64 features
  std::int64_t node_feat_dim = 0;   // filled from graphgen defaults if 0
  std::int64_t edge_feat_dim = 0;
  std::int64_t pragma_vec_dim = 0;  // M1 input width
  std::int64_t out_dim = 4;         // 4 = latency/DSP/LUT/FF; 1 = BRAM or logit
  /// Ablation toggle: false replaces TransformerConv's beta gate with a
  /// plain skip connection (see DESIGN.md §5.1).
  bool tconv_gated_residual = true;
};

class PredictiveModel : public gnn::Module {
 public:
  PredictiveModel(const ModelOptions& opts, util::Rng& rng);

  /// Forward over a batch of graphs -> [B, out_dim].
  tensor::VarId forward(tensor::Tape& t, const gnn::GraphBatch& b);

  /// Tape-free forward over a batch -> [B, out_dim], bit-identical to
  /// forward() at every thread count. The returned reference (and
  /// last_graph_embedding_infer()) live in the session's workspace until
  /// its next begin(). Counts `gnn.fastpath_forwards`.
  const tensor::Tensor& forward_infer(gnn::InferenceSession& s,
                                      const gnn::GraphBatch& b);

  /// Graph-level embedding of the last forward (input to the MLP head);
  /// used for the t-SNE analysis (Fig 6).
  tensor::VarId last_graph_embedding() const { return last_embedding_; }

  /// Fast-path counterpart of last_graph_embedding(): the pooled embedding
  /// of the last forward_infer() call.
  const tensor::Tensor& last_graph_embedding_infer() const {
    if (!last_embedding_infer_)
      throw std::logic_error("no forward_infer has run yet");
    return *last_embedding_infer_;
  }

  /// Node-attention scores of the last forward (M7 only, Fig 5).
  tensor::VarId last_attention() const;

  const ModelOptions& options() const { return opts_; }
  std::vector<tensor::Parameter*> params() override;
  std::int64_t num_weights();

 private:
  ModelOptions opts_;
  std::vector<std::unique_ptr<gnn::ConvLayer>> convs_;
  std::unique_ptr<gnn::AttentionPool> att_pool_;
  std::unique_ptr<gnn::Mlp> head_;
  tensor::VarId last_embedding_ = tensor::kInvalidVar;
  const tensor::Tensor* last_embedding_infer_ = nullptr;
};

}  // namespace gnndse::model
