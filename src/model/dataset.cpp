#include "model/dataset.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "oracle/evaluator.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace gnndse::model {

namespace {
/// Default GraphTemplate budget: generous enough that the benchmark
/// suite's templates (a few hundred KB each) never evict in practice —
/// the cap exists for long-lived services fed open-ended kernel streams.
constexpr std::int64_t kDefaultTemplateBudget = 256ll << 20;
}  // namespace

SampleFactory::SampleFactory()
    : SampleFactory(
          util::env_int64("GNNDSE_TEMPLATE_BUDGET", kDefaultTemplateBudget)) {}

SampleFactory::SampleFactory(std::int64_t template_budget_bytes)
    : template_budget_bytes_(template_budget_bytes) {}

std::size_t SampleFactory::GraphTemplate::approx_bytes() const {
  std::size_t b = sizeof(GraphTemplate);
  b += static_cast<std::size_t>(edge_feats.numel() + base_x.numel()) *
       sizeof(float);
  b += (src.capacity() + dst.capacity()) * sizeof(std::int32_t);
  b += graph.nodes.capacity() * sizeof(graphgen::GraphNode);
  b += graph.edges.capacity() * sizeof(graphgen::GraphEdge);
  b += (graph.pragma_nodes.capacity() + graph.loop_icmp_nodes.capacity()) *
       sizeof(std::int32_t);
  if (space) b += sizeof(dspace::DesignSpace);
  return b;
}

void SampleFactory::enforce_budget_locked() {
  static obs::Counter& c_evict = obs::counter("gnn.template_evictions");
  if (template_budget_bytes_ > 0) {
    // Never evict the MRU front: it is the template the caller is about to
    // use (and the one pinned by the returned shared_ptr).
    while (cache_bytes_ > static_cast<std::size_t>(template_budget_bytes_) &&
           lru_.size() > 1) {
      auto it = cache_.find(lru_.back());
      cache_bytes_ -= it->second.bytes;
      cache_.erase(it);
      lru_.pop_back();
      obs::add(c_evict);
    }
  }
  obs::gauge("gnn.template_bytes").set(static_cast<double>(cache_bytes_));
}

std::shared_ptr<const SampleFactory::GraphTemplate> SampleFactory::cache_for(
    const kir::Kernel& kernel) {
  static obs::Counter& c_hits = obs::counter("gnn.template_hits");
  static obs::Counter& c_misses = obs::counter("gnn.template_misses");
  const std::uint64_t digest = oracle::kernel_digest(kernel);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(kernel.name);
    if (it != cache_.end() && it->second.tpl->digest == digest) {
      obs::add(c_hits);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.tpl;
    }
  }
  // Build outside the lock: lowering a kernel is the expensive part, and
  // entries are immutable once built, so the worst case of two threads
  // racing on the same cold kernel is one discarded duplicate build.
  obs::add(c_misses);
  auto kc = std::make_shared<GraphTemplate>();
  kc->digest = digest;
  kc->space = std::make_unique<dspace::DesignSpace>(kernel);
  kc->graph = graphgen::build_graph(kernel, *kc->space);
  kc->edge_feats = graphgen::edge_features(kc->graph);
  kc->src.reserve(kc->graph.edges.size());
  kc->dst.reserve(kc->graph.edges.size());
  for (const auto& e : kc->graph.edges) {
    kc->src.push_back(e.src);
    kc->dst.push_back(e.dst);
  }
  kc->base_x = graphgen::static_node_features(kc->graph, *kc->space);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(kernel.name);
  if (it != cache_.end()) {
    if (it->second.tpl->digest == digest) {
      // Another thread built it first; use theirs (keeps entries unique).
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.tpl;
    }
    // Kernel edited in place: drop the stale template.
    cache_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
  TemplateEntry entry;
  entry.tpl = std::move(kc);
  entry.bytes = entry.tpl->approx_bytes();
  lru_.push_front(kernel.name);
  entry.lru_it = lru_.begin();
  cache_bytes_ += entry.bytes;
  auto tpl = entry.tpl;
  cache_.emplace(kernel.name, std::move(entry));
  enforce_budget_locked();
  return tpl;
}

const dspace::DesignSpace& SampleFactory::space(const kir::Kernel& kernel) {
  return *cache_for(kernel)->space;
}

const graphgen::ProgramGraph& SampleFactory::graph(const kir::Kernel& kernel) {
  return cache_for(kernel)->graph;
}

gnn::GraphData SampleFactory::featurize(const kir::Kernel& kernel,
                                        const hlssim::DesignConfig& cfg) {
  static obs::Counter& c_built = obs::counter("graphgen.graphs_built");
  static obs::Histogram& h_feat = obs::histogram("graphgen.featurize_ms");
  util::Timer timer;
  const auto kc = cache_for(kernel);  // pins the template against eviction
  gnn::GraphData g;
  // Static features are a straight copy of the template; only the pragma
  // slots of this configuration get written on top.
  g.x = kc->base_x;
  graphgen::write_pragma_features(kc->graph, *kc->space, cfg, g.x, 0);
  g.e = kc->edge_feats;
  g.src = kc->src;
  g.dst = kc->dst;
  g.aux = graphgen::pragma_vector(*kc->space, cfg, kMaxPragmaSites);
  if (obs::enabled()) {
    c_built.add();
    h_feat.observe(timer.millis());
  }
  return g;
}

gnn::GraphData SampleFactory::featurize_full(const kir::Kernel& kernel,
                                             const hlssim::DesignConfig& cfg) {
  static obs::Counter& c_built = obs::counter("graphgen.graphs_built");
  static obs::Histogram& h_feat = obs::histogram("graphgen.featurize_ms");
  util::Timer timer;
  const auto kc = cache_for(kernel);  // pins the template against eviction
  gnn::GraphData g;
  g.x = graphgen::node_features(kc->graph, *kc->space, cfg);
  g.e = kc->edge_feats;
  g.src = kc->src;
  g.dst = kc->dst;
  g.aux = graphgen::pragma_vector(*kc->space, cfg, kMaxPragmaSites);
  if (obs::enabled()) {
    c_built.add();
    h_feat.observe(timer.millis());
  }
  return g;
}

std::shared_ptr<SampleFactory::BatchSlot> SampleFactory::acquire_slot(
    const kir::Kernel& kernel, std::size_t size) {
  static obs::Counter& c_hits = obs::counter("gnn.batch_skeleton_hits");
  static obs::Counter& c_misses = obs::counter("gnn.batch_skeleton_misses");
  if (size == 0) throw std::invalid_argument("acquire_slot: empty batch");
  const auto kc = cache_for(kernel);  // pins the template against eviction

  {
    // Free-list lookup (most-recently-released first, keyed by kernel +
    // digest + batch size). A hit hands back an already-assembled skeleton
    // whose batch_id is stable, so the conv layers' edge-projection caches
    // stay warm across sweeps.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = free_slots_.begin(); it != free_slots_.end(); ++it) {
      if ((*it)->kernel == kernel.name && (*it)->digest == kc->digest &&
          (*it)->size == size) {
        std::shared_ptr<BatchSlot> slot = std::move(*it);
        free_slots_.erase(it);
        obs::add(c_hits);
        return slot;
      }
    }
  }
  obs::add(c_misses);
  // Assemble the batch once from `size` copies of the template graph
  // (pragma slots zero) — exactly what make_batch over featurized graphs
  // produces for everything except the per-config slots written later.
  gnn::GraphData proto;
  proto.x = kc->base_x;
  proto.e = kc->edge_feats;
  proto.src = kc->src;
  proto.dst = kc->dst;
  proto.aux = tensor::Tensor({static_cast<std::int64_t>(kMaxPragmaSites) *
                              graphgen::kPragmaVectorPerSite});
  std::vector<const gnn::GraphData*> protos(size, &proto);
  auto slot = std::make_shared<BatchSlot>();
  slot->kernel = kernel.name;
  slot->digest = kc->digest;
  slot->size = size;
  slot->batch = gnn::make_batch(protos);
  return slot;
}

void SampleFactory::write_slot(const kir::Kernel& kernel,
                               std::span<const hlssim::DesignConfig> configs,
                               BatchSlot& slot) {
  if (configs.size() != slot.size)
    throw std::invalid_argument("write_slot: config count != slot size");
  obs::ScopedSpan span("gnn.batch_assemble");
  span.add("configs", static_cast<double>(configs.size()));
  const auto kc = cache_for(kernel);  // pins the template against eviction
  if (kernel.name != slot.kernel || kc->digest != slot.digest)
    throw std::invalid_argument("write_slot: slot belongs to another kernel");

  // Per-config featurization: rewrite only the pragma-dependent slots of
  // each graph's rows (write_pragma_features clears them first, so reuse
  // across calls never leaks a previous configuration). Disjoint row
  // ranges per config — safe to fan out.
  gnn::GraphBatch& b = slot.batch;
  const std::int64_t fa = b.aux.cols();
  util::parallel_for(
      static_cast<std::int64_t>(configs.size()), 8,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const auto gi = static_cast<std::size_t>(i);
          graphgen::write_pragma_features(kc->graph, *kc->space, configs[gi],
                                          b.x, b.node_offset[gi]);
          graphgen::write_pragma_vector(*kc->space, configs[gi],
                                        kMaxPragmaSites,
                                        b.aux.data() + i * fa);
        }
      });
}

void SampleFactory::release_slot(std::shared_ptr<BatchSlot> slot) {
  if (!slot) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_slots_.push_front(std::move(slot));
  if (free_slots_.size() > kMaxSkeletons) free_slots_.pop_back();
}

const gnn::GraphBatch& SampleFactory::batch_for(
    const kir::Kernel& kernel, std::span<const hlssim::DesignConfig> configs) {
  if (configs.empty())
    throw std::invalid_argument("batch_for: empty config list");
  // Release-then-reacquire keeps the previous call's skeleton at the front
  // of the free list, so back-to-back chunks of the same shape reuse one
  // batch (and one batch_id) exactly as the old single-slot cache did.
  if (held_slot_) release_slot(std::move(held_slot_));
  held_slot_ = acquire_slot(kernel, configs.size());
  write_slot(kernel, configs, *held_slot_);
  return held_slot_->batch;
}

Sample SampleFactory::make(const kir::Kernel& kernel,
                           const hlssim::DesignConfig& cfg,
                           const hlssim::HlsResult& result,
                           const Normalizer& norm) {
  Sample s;
  s.kernel = kernel.name;
  s.graph = featurize(kernel, cfg);
  s.target = norm.targets(result);
  s.valid = result.valid;
  return s;
}

std::vector<std::size_t> Dataset::all_indices() const {
  std::vector<std::size_t> out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) out[i] = i;
  return out;
}

std::vector<std::size_t> Dataset::valid_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < samples.size(); ++i)
    if (samples[i].valid) out.push_back(i);
  return out;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>> Dataset::split(
    std::vector<std::size_t> indices, double train_fraction, util::Rng& rng) {
  rng.shuffle(indices);
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(indices.size()) * train_fraction);
  std::vector<std::size_t> train(indices.begin(),
                                 indices.begin() + static_cast<long>(cut));
  std::vector<std::size_t> test(indices.begin() + static_cast<long>(cut),
                                indices.end());
  return {std::move(train), std::move(test)};
}

std::vector<std::vector<std::size_t>> Dataset::folds(
    std::vector<std::size_t> indices, int k, util::Rng& rng) {
  if (k < 2) throw std::invalid_argument("folds: k must be >= 2");
  rng.shuffle(indices);
  std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < indices.size(); ++i)
    out[i % static_cast<std::size_t>(k)].push_back(indices[i]);
  return out;
}

Dataset build_dataset(const db::Database& database,
                      const std::vector<kir::Kernel>& kernels,
                      const Normalizer& norm, SampleFactory& factory) {
  obs::ScopedSpan span("train.build_dataset");
  std::map<std::string, const kir::Kernel*> by_name;
  for (const auto& k : kernels) by_name[k.name] = &k;

  // Warm the per-kernel caches serially so the parallel featurization
  // below never contends on building the same kernel's lowering products.
  for (const auto& k : kernels) factory.space(k);

  Dataset ds;
  const auto& points = database.points();
  ds.samples.resize(points.size());
  util::parallel_for(
      static_cast<std::int64_t>(points.size()), 4,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const auto& p = points[static_cast<std::size_t>(i)];
          auto it = by_name.find(p.kernel);
          if (it == by_name.end())
            throw std::invalid_argument("build_dataset: unknown kernel " +
                                        p.kernel);
          ds.samples[static_cast<std::size_t>(i)] =
              factory.make(*it->second, p.config, p.result, norm);
        }
      });
  span.add("samples", static_cast<double>(ds.samples.size()));
  return ds;
}

}  // namespace gnndse::model
