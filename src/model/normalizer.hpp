// Objective pre-processing (paper §5.2.1):
//   latency:  T = log2(NormalizationFactor / latency)   (eq. 11)
//   resources: divided by the device capacity (the HlsResult already
//   carries utilizations).
// The normalization factor is fitted to the database (max valid latency)
// so the lowest-performance design maps to T = 0 and high-performance
// designs get the large target values the loss then emphasizes.
#pragma once

#include <array>
#include <vector>

#include "db/database.hpp"

namespace gnndse::model {

/// Objective order used throughout the model stack.
enum Objective : int {
  kLatency = 0,
  kDsp = 1,
  kLut = 2,
  kFf = 3,
  kBram = 4,
  kNumObjectives = 5
};

const char* objective_name(int idx);

class Normalizer {
 public:
  /// Fits the latency normalization factor on the valid points of a
  /// database.
  static Normalizer fit(const std::vector<db::DataPoint>& points);

  explicit Normalizer(double norm_factor = 1.0) : norm_factor_(norm_factor) {}

  double norm_factor() const { return norm_factor_; }

  /// Latency target T (eq. 11); clamped at 0 for latencies above the
  /// normalization factor.
  float latency_target(double cycles) const;

  /// Inverse of latency_target.
  double latency_from_target(float t) const;

  /// All five normalized objectives in Objective order.
  std::array<float, kNumObjectives> targets(const hlssim::HlsResult& r) const;

 private:
  double norm_factor_;
};

}  // namespace gnndse::model
