#include "model/weights.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace gnndse::model {

namespace {
constexpr std::uint32_t kMagic = 0x474E4453;  // "GNDS"
}

void save_params(const std::vector<tensor::Parameter*>& params,
                 const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const auto* p : params) {
    const auto& shape = p->value.shape();
    const std::uint32_t rank = static_cast<std::uint32_t>(shape.size());
    out.write(reinterpret_cast<const char*>(&rank), sizeof rank);
    for (auto dim : shape) {
      const std::int64_t d = dim;
      out.write(reinterpret_cast<const char*>(&d), sizeof d);
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(const std::vector<tensor::Parameter*>& params,
                 const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (magic != kMagic)
    throw std::runtime_error("load_params: bad magic in " + path);
  if (count != params.size())
    throw std::runtime_error("load_params: parameter count mismatch");
  for (auto* p : params) {
    std::uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof rank);
    std::vector<std::int64_t> shape(rank);
    for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof d);
    if (shape != p->value.shape())
      throw std::runtime_error("load_params: shape mismatch");
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!in) throw std::runtime_error("load_params: truncated file " + path);
  tensor::bump_params_version();
}

bool weights_exist(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  return in && magic == kMagic;
}

std::vector<tensor::Tensor> copy_params(
    const std::vector<tensor::Parameter*>& params) {
  std::vector<tensor::Tensor> out;
  out.reserve(params.size());
  for (const auto* p : params) out.push_back(p->value);
  return out;
}

std::vector<tensor::Tensor> load_raw_params(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_raw_params: cannot open " + path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (magic != kMagic)
    throw std::runtime_error("load_raw_params: bad magic in " + path);
  std::vector<tensor::Tensor> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof rank);
    if (!in || rank > 8)
      throw std::runtime_error("load_raw_params: corrupt header in " + path);
    std::vector<std::int64_t> shape(rank);
    for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof d);
    tensor::Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    out.push_back(std::move(t));
  }
  if (!in) throw std::runtime_error("load_raw_params: truncated file " + path);
  return out;
}

void assign_params(const std::vector<tensor::Parameter*>& params,
                   const std::vector<tensor::Tensor>& values) {
  if (params.size() != values.size())
    throw std::runtime_error("assign_params: parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->value.shape() != values[i].shape())
      throw std::runtime_error("assign_params: shape mismatch");
    params[i]->value = values[i];
  }
  tensor::bump_params_version();
}

}  // namespace gnndse::model
