#include "model/predictive_model.hpp"

#include <stdexcept>

#include "graphgen/featurize.hpp"
#include "model/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gnndse::model {

using tensor::Tape;
using tensor::VarId;

const char* to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kM1MlpPragma: return "MLP-pragma (as in [7])";
    case ModelKind::kM2MlpContext: return "MLP-pragma-program context";
    case ModelKind::kM3Gcn: return "GNN-DSE- GCN";
    case ModelKind::kM4Gat: return "GNN-DSE- GAT";
    case ModelKind::kM5Tconv: return "GNN-DSE- TransformerConv";
    case ModelKind::kM6TconvJkn: return "GNN-DSE- TransformerConv + JKN";
    case ModelKind::kM7Full:
      return "GNN-DSE (TransformerConv + JKN + node att.)";
  }
  return "?";
}

PredictiveModel::PredictiveModel(const ModelOptions& opts, util::Rng& rng)
    : opts_(opts) {
  if (opts_.node_feat_dim == 0)
    opts_.node_feat_dim = graphgen::kNodeFeatureDim;
  if (opts_.edge_feat_dim == 0)
    opts_.edge_feat_dim = graphgen::kEdgeFeatureDim;
  if (opts_.pragma_vec_dim == 0)
    opts_.pragma_vec_dim =
        kMaxPragmaSites * graphgen::kPragmaVectorPerSite;

  const std::int64_t h = opts_.hidden;
  // The 4-layer MLP prediction head shared by every variant (§5.1).
  auto make_head = [&](std::int64_t in) {
    head_ = std::make_unique<gnn::Mlp>(
        std::vector<std::int64_t>{in, h, h / 2, h / 4, opts_.out_dim}, rng);
  };

  switch (opts_.kind) {
    case ModelKind::kM1MlpPragma:
      make_head(opts_.pragma_vec_dim);
      return;
    case ModelKind::kM2MlpContext:
      make_head(opts_.node_feat_dim);
      return;
    default:
      break;
  }

  for (int l = 0; l < opts_.gnn_layers; ++l) {
    const std::int64_t in = (l == 0) ? opts_.node_feat_dim : h;
    switch (opts_.kind) {
      case ModelKind::kM3Gcn:
        convs_.push_back(std::make_unique<gnn::GCNConv>(in, h, rng));
        break;
      case ModelKind::kM4Gat:
        convs_.push_back(std::make_unique<gnn::GATConv>(in, h, rng));
        break;
      default:
        convs_.push_back(std::make_unique<gnn::TransformerConv>(
            in, h, opts_.edge_feat_dim, rng, opts_.tconv_gated_residual));
        break;
    }
  }
  if (opts_.kind == ModelKind::kM7Full)
    att_pool_ = std::make_unique<gnn::AttentionPool>(h, rng);
  make_head(h);
}

VarId PredictiveModel::forward(Tape& t, const gnn::GraphBatch& b) {
  switch (opts_.kind) {
    case ModelKind::kM1MlpPragma: {
      if (b.aux.numel() == 0)
        throw std::invalid_argument("M1 needs pragma aux features");
      last_embedding_ = t.constant(b.aux);
      return head_->forward(t, last_embedding_);
    }
    case ModelKind::kM2MlpContext: {
      // Program context without a GNN: sum of the initial node embeddings.
      last_embedding_ = gnn::sum_pool(t, t.constant(b.x), b);
      return head_->forward(t, last_embedding_);
    }
    default:
      break;
  }

  VarId hcur = t.constant(b.x);
  std::vector<VarId> layer_outputs;
  layer_outputs.reserve(convs_.size());
  for (auto& conv : convs_) {
    hcur = t.elu(conv->forward(t, hcur, b));
    layer_outputs.push_back(hcur);
  }
  VarId node_repr = hcur;
  if (opts_.kind == ModelKind::kM6TconvJkn ||
      opts_.kind == ModelKind::kM7Full)
    node_repr = gnn::jumping_knowledge_max(t, layer_outputs);

  VarId graph_repr;
  if (opts_.kind == ModelKind::kM7Full)
    graph_repr = att_pool_->forward(t, node_repr, b);
  else
    graph_repr = gnn::sum_pool(t, node_repr, b);
  last_embedding_ = graph_repr;
  return head_->forward(t, graph_repr);
}

const tensor::Tensor& PredictiveModel::forward_infer(
    gnn::InferenceSession& s, const gnn::GraphBatch& b) {
  static obs::Counter& c_fast = obs::counter("gnn.fastpath_forwards");
  obs::add(c_fast);
  s.begin();
  switch (opts_.kind) {
    case ModelKind::kM1MlpPragma: {
      if (b.aux.numel() == 0)
        throw std::invalid_argument("M1 needs pragma aux features");
      last_embedding_infer_ = &b.aux;
      return head_->forward_infer(s, b.aux);
    }
    case ModelKind::kM2MlpContext: {
      // Program context without a GNN: sum of the initial node embeddings.
      const tensor::Tensor& emb = gnn::sum_pool_infer(s, b.x, b);
      last_embedding_infer_ = &emb;
      return head_->forward_infer(s, emb);
    }
    default:
      break;
  }

  // Phase spans split a fast-path forward into its trace-visible stages:
  // message passing (+ JKN), graph pooling, and the prediction head.
  const tensor::Tensor* hcur = &b.x;
  std::vector<const tensor::Tensor*> layer_outputs;
  layer_outputs.reserve(convs_.size());
  const tensor::Tensor* node_repr;
  {
    obs::ScopedSpan span("gnn.fastpath.convs");
    for (auto& conv : convs_) {
      hcur = &s.elu(conv->forward_infer(s, *hcur, b));
      layer_outputs.push_back(hcur);
    }
    node_repr = hcur;
    if (opts_.kind == ModelKind::kM6TconvJkn ||
        opts_.kind == ModelKind::kM7Full)
      node_repr = &gnn::jumping_knowledge_max_infer(s, layer_outputs);
  }

  const tensor::Tensor* graph_repr;
  {
    obs::ScopedSpan span("gnn.fastpath.pool");
    if (opts_.kind == ModelKind::kM7Full)
      graph_repr = &att_pool_->forward_infer(s, *node_repr, b);
    else
      graph_repr = &gnn::sum_pool_infer(s, *node_repr, b);
  }
  last_embedding_infer_ = graph_repr;
  obs::ScopedSpan span("gnn.fastpath.head");
  return head_->forward_infer(s, *graph_repr);
}

VarId PredictiveModel::last_attention() const {
  if (!att_pool_)
    throw std::logic_error("attention scores only exist for the M7 model");
  return att_pool_->last_scores();
}

std::vector<tensor::Parameter*> PredictiveModel::params() {
  std::vector<tensor::Parameter*> out;
  for (auto& c : convs_)
    for (auto* p : c->params()) out.push_back(p);
  if (att_pool_)
    for (auto* p : att_pool_->params()) out.push_back(p);
  for (auto* p : head_->params()) out.push_back(p);
  return out;
}

std::int64_t PredictiveModel::num_weights() {
  std::int64_t n = 0;
  for (auto* p : params()) n += p->numel();
  return n;
}

}  // namespace gnndse::model
