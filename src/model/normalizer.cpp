#include "model/normalizer.hpp"

#include <algorithm>
#include <cmath>

namespace gnndse::model {

const char* objective_name(int idx) {
  switch (idx) {
    case kLatency: return "Latency";
    case kDsp: return "DSP";
    case kLut: return "LUT";
    case kFf: return "FF";
    case kBram: return "BRAM";
  }
  return "?";
}

Normalizer Normalizer::fit(const std::vector<db::DataPoint>& points) {
  double max_latency = 1.0;
  for (const auto& p : points)
    if (p.result.valid) max_latency = std::max(max_latency, p.result.cycles);
  return Normalizer(max_latency);
}

float Normalizer::latency_target(double cycles) const {
  if (cycles <= 0.0) return 0.0f;
  const double t = std::log2(norm_factor_ / cycles);
  return static_cast<float>(std::max(t, 0.0));
}

double Normalizer::latency_from_target(float t) const {
  return norm_factor_ / std::exp2(static_cast<double>(t));
}

std::array<float, kNumObjectives> Normalizer::targets(
    const hlssim::HlsResult& r) const {
  return {latency_target(r.cycles), static_cast<float>(r.util_dsp),
          static_cast<float>(r.util_lut), static_cast<float>(r.util_ff),
          static_cast<float>(r.util_bram)};
}

}  // namespace gnndse::model
