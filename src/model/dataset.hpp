// Dataset assembly: database points -> featurized graphs + targets.
//
// Per-kernel structures (design space, program graph, edge features) are
// built once and shared; only node features (pragma fill) differ between
// design points of the same kernel.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "gnn/batch.hpp"
#include "graphgen/featurize.hpp"
#include "graphgen/program_graph.hpp"
#include "kir/kernel.hpp"
#include "model/normalizer.hpp"
#include "util/rng.hpp"

namespace gnndse::model {

/// Maximum pragma sites across the benchmark suite (2mm has 14) — the M1
/// baseline pads its pragma vector to this.
inline constexpr int kMaxPragmaSites = 16;

struct Sample {
  std::string kernel;
  gnn::GraphData graph;                      // includes aux pragma vector
  std::array<float, kNumObjectives> target;  // normalized objectives
  bool valid = false;
};

/// Caches per-kernel lowering products and featurizes design points.
/// Thread-safe: featurize() may be called concurrently from the parallel
/// DSE/trainer stages — the cache map is mutex-guarded and its entries are
/// immutable once built (std::map nodes are reference-stable).
class SampleFactory {
 public:
  SampleFactory() = default;

  /// Featurizes one (kernel, config) pair; `result` supplies the targets
  /// (pass a default HlsResult for pure-inference samples).
  Sample make(const kir::Kernel& kernel, const hlssim::DesignConfig& cfg,
              const hlssim::HlsResult& result, const Normalizer& norm);

  /// Inference-only featurization (targets zeroed, valid=false).
  gnn::GraphData featurize(const kir::Kernel& kernel,
                           const hlssim::DesignConfig& cfg);

  const dspace::DesignSpace& space(const kir::Kernel& kernel);
  const graphgen::ProgramGraph& graph(const kir::Kernel& kernel);

 private:
  struct KernelCache {
    std::unique_ptr<dspace::DesignSpace> space;
    graphgen::ProgramGraph graph;
    tensor::Tensor edge_feats;
    std::vector<std::int32_t> src, dst;
  };
  KernelCache& cache_for(const kir::Kernel& kernel);

  std::mutex mu_;
  std::map<std::string, KernelCache> cache_;
};

struct Dataset {
  std::vector<Sample> samples;

  std::vector<std::size_t> all_indices() const;
  std::vector<std::size_t> valid_indices() const;

  /// Random train/test split (paper: 80/20).
  static std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
  split(std::vector<std::size_t> indices, double train_fraction,
        util::Rng& rng);

  /// k-fold partition of the given indices (paper: 3-fold CV).
  static std::vector<std::vector<std::size_t>> folds(
      std::vector<std::size_t> indices, int k, util::Rng& rng);
};

/// Builds the dataset for a whole database.
Dataset build_dataset(const db::Database& database,
                      const std::vector<kir::Kernel>& kernels,
                      const Normalizer& norm, SampleFactory& factory);

}  // namespace gnndse::model
