// Dataset assembly: database points -> featurized graphs + targets.
//
// Per-kernel structures (design space, program graph, edge features) are
// built once and shared; only node features (pragma fill) differ between
// design points of the same kernel.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "gnn/batch.hpp"
#include "graphgen/featurize.hpp"
#include "graphgen/program_graph.hpp"
#include "kir/kernel.hpp"
#include "model/normalizer.hpp"
#include "util/rng.hpp"

namespace gnndse::model {

/// Maximum pragma sites across the benchmark suite (2mm has 14) — the M1
/// baseline pads its pragma vector to this.
inline constexpr int kMaxPragmaSites = 16;

struct Sample {
  std::string kernel;
  gnn::GraphData graph;                      // includes aux pragma vector
  std::array<float, kNumObjectives> target;  // normalized objectives
  bool valid = false;
};

/// Caches per-kernel lowering products and featurizes design points.
///
/// Two cache layers back the inference fast path:
///  * GraphTemplate — everything invariant across configurations of one
///    kernel (design space, program graph, edge features, edge index, and
///    the static node-feature matrix with the pragma slots zeroed), built
///    once per kernel *digest* (oracle::kernel_digest): editing a kernel
///    in place invalidates and rebuilds its template.
///    The map is byte-budgeted (GNNDSE_TEMPLATE_BUDGET, bytes; <= 0 means
///    unlimited): when inserting a template pushes the estimated resident
///    size past the budget, least-recently-used templates are evicted —
///    never the just-touched MRU entry, so the kernel being worked on
///    always stays resident. Entries are shared_ptr-held; featurize()/
///    batch_for() pin the template they use, so a concurrent eviction can
///    only drop the map's reference, never free a template mid-use.
///    References returned by space()/graph() are valid while the template
///    is resident: for the single-kernel DSE/attention loops that is the
///    MRU guarantee; callers interleaving many kernels under a tight
///    budget must re-fetch instead of holding them long-term.
///    Telemetry: `gnn.template_hits` / `gnn.template_misses` /
///    `gnn.template_evictions`, with the resident estimate in the
///    `gnn.template_bytes` gauge.
///  * batch skeleton — the assembled GraphBatch for B copies of the
///    template graph, pooled per (kernel, B) since topology (src_sl/
///    dst_sl/gcn_coeff/node_graph/node_offset) is identical across
///    configurations. acquire_slot()/write_slot()/release_slot() lease
///    skeletons out of a bounded free list; batch_for() is a convenience
///    wrapper holding one lease, reducing per-config featurization to
///    rewriting pragma feature slots inside the pooled batch.
///    Telemetry: `gnn.batch_skeleton_hits` / `gnn.batch_skeleton_misses`.
///
/// Thread-safe for featurize()/space()/graph() (mutex-guarded map with
/// reference-stable, immutable-once-built entries) and for acquire_slot()/
/// release_slot() (mutex-guarded free list) — the parallel DSE, the
/// pipelined sweep engine, and trainer stages rely on that. batch_for() is
/// single-consumer: it returns a reference into its held slot that is
/// valid (and must not be used concurrently) until the next batch_for()
/// call on the same factory.
class SampleFactory {
 public:
  /// Budget from GNNDSE_TEMPLATE_BUDGET (default 256 MiB).
  SampleFactory();
  /// Explicit template byte budget (testing hook; <= 0 means unlimited).
  explicit SampleFactory(std::int64_t template_budget_bytes);

  /// Featurizes one (kernel, config) pair; `result` supplies the targets
  /// (pass a default HlsResult for pure-inference samples).
  Sample make(const kir::Kernel& kernel, const hlssim::DesignConfig& cfg,
              const hlssim::HlsResult& result, const Normalizer& norm);

  /// Inference-only featurization (targets zeroed, valid=false).
  gnn::GraphData featurize(const kir::Kernel& kernel,
                           const hlssim::DesignConfig& cfg);

  /// Featurization without the static-feature template: recomputes the full
  /// node-feature matrix per config, exactly as the pipeline did before the
  /// template cache existed. Same bits as featurize(); only slower. The DSE
  /// tape path uses it so bench_fastpath's baseline measures the
  /// pre-fast-path pipeline rather than a hybrid that already enjoys the
  /// template cache.
  gnn::GraphData featurize_full(const kir::Kernel& kernel,
                                const hlssim::DesignConfig& cfg);

  /// Shared batch assembly for one DSE chunk: one GraphBatch reused by all
  /// three model heads, with the topology skeleton cached per (kernel,
  /// configs.size()) and only the pragma-dependent feature slots rewritten
  /// per call. Bit-identical to featurizing each config and calling
  /// gnn::make_batch.
  const gnn::GraphBatch& batch_for(const kir::Kernel& kernel,
                                   std::span<const hlssim::DesignConfig> configs);

  /// A leased batch skeleton: the assembled GraphBatch for `size` copies of
  /// one kernel's template graph, owned by the caller until release_slot().
  /// Unlike batch_for()'s single shared slot, several leased slots of the
  /// same (kernel, size) can be live at once — the pipelined sweep engine
  /// double-buffers two and writes them from different threads. The
  /// GraphBatch (and its batch_id, which keys the conv layers'
  /// edge-projection caches) stays stable across write_slot() calls;
  /// release_slot() parks it on a bounded free list so repeated sweeps
  /// (serve jobs) reacquire warm skeletons and keep their projections.
  struct BatchSlot {
    std::string kernel;
    std::uint64_t digest = 0;
    std::size_t size = 0;
    gnn::GraphBatch batch;
  };
  std::shared_ptr<BatchSlot> acquire_slot(const kir::Kernel& kernel,
                                          std::size_t size);
  /// Rewrites the slot's pragma-dependent feature slots for `configs`
  /// (configs.size() must equal slot.size). Bit-identical to featurizing
  /// each config and calling gnn::make_batch. Thread-safe across distinct
  /// slots; a single slot is single-writer.
  void write_slot(const kir::Kernel& kernel,
                  std::span<const hlssim::DesignConfig> configs,
                  BatchSlot& slot);
  void release_slot(std::shared_ptr<BatchSlot> slot);

  const dspace::DesignSpace& space(const kir::Kernel& kernel);
  const graphgen::ProgramGraph& graph(const kir::Kernel& kernel);

 private:
  struct GraphTemplate {
    std::uint64_t digest = 0;
    std::unique_ptr<dspace::DesignSpace> space;
    graphgen::ProgramGraph graph;
    tensor::Tensor edge_feats;
    std::vector<std::int32_t> src, dst;
    /// Static node features (pragma slots zero) shared by every config.
    tensor::Tensor base_x;

    /// Estimated resident bytes (tensors + index vectors + graph storage)
    /// for the LRU budget accounting.
    std::size_t approx_bytes() const;
  };
  /// Returns the (possibly freshly built) template for this kernel, moved
  /// to the MRU position. The shared_ptr pins it: safe to use even if a
  /// concurrent insert evicts it from the map.
  std::shared_ptr<const GraphTemplate> cache_for(const kir::Kernel& kernel);
  /// Evicts LRU templates (never the MRU front) until the resident
  /// estimate fits the budget. Caller holds mu_.
  void enforce_budget_locked();

  /// Free slots, most-recently-released first; capped at kMaxSkeletons (a
  /// 256-config skeleton of a mid-size kernel is ~13 MB of node features —
  /// DSE works one kernel at a time, so a small pool covers the
  /// double-buffered full + tail chunk sizes without ballooning across a
  /// 9-kernel run). Guarded by mu_; leased slots live outside the list.
  static constexpr std::size_t kMaxSkeletons = 4;
  std::list<std::shared_ptr<BatchSlot>> free_slots_;
  /// batch_for()'s single shared lease (released and reacquired per call,
  /// so the MRU free slot keeps its batch_id across calls).
  std::shared_ptr<BatchSlot> held_slot_;

  std::mutex mu_;
  struct TemplateEntry {
    std::shared_ptr<const GraphTemplate> tpl;
    std::size_t bytes = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_it;
  };
  std::map<std::string, TemplateEntry> cache_;
  std::list<std::string> lru_;
  std::size_t cache_bytes_ = 0;
  std::int64_t template_budget_bytes_ = 0;  // <= 0: unlimited
};

struct Dataset {
  std::vector<Sample> samples;

  std::vector<std::size_t> all_indices() const;
  std::vector<std::size_t> valid_indices() const;

  /// Random train/test split (paper: 80/20).
  static std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
  split(std::vector<std::size_t> indices, double train_fraction,
        util::Rng& rng);

  /// k-fold partition of the given indices (paper: 3-fold CV).
  static std::vector<std::vector<std::size_t>> folds(
      std::vector<std::size_t> indices, int k, util::Rng& rng);
};

/// Builds the dataset for a whole database.
Dataset build_dataset(const db::Database& database,
                      const std::vector<kir::Kernel>& kernels,
                      const Normalizer& norm, SampleFactory& factory);

}  // namespace gnndse::model
