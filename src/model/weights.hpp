// Flat binary serialization of model weights, so separate bench binaries
// can share one trained model bundle instead of retraining.
//
// Format: magic, count, then per parameter {rank, dims..., float data}.
// Loading requires an architecturally-identical model (same parameter
// shapes in the same order).
#pragma once

#include <string>
#include <vector>

#include "tensor/tape.hpp"

namespace gnndse::model {

void save_params(const std::vector<tensor::Parameter*>& params,
                 const std::string& path);

/// Throws std::runtime_error on mismatch or I/O failure.
void load_params(const std::vector<tensor::Parameter*>& params,
                 const std::string& path);

/// True when `path` exists and holds a weight file.
bool weights_exist(const std::string& path);

/// Deep copies of the current parameter values — the immutable snapshot
/// blobs the serve model slot hands to concurrent consumers.
std::vector<tensor::Tensor> copy_params(
    const std::vector<tensor::Parameter*>& params);

/// Reads a weight file into freestanding tensors (no model required), so a
/// snapshot can be taken without constructing a throwaway model first.
/// Throws std::runtime_error on I/O failure or a bad header.
std::vector<tensor::Tensor> load_raw_params(const std::string& path);

/// Assigns blob values into a model's parameters (count- and shape-checked;
/// throws std::runtime_error on mismatch) and bumps
/// tensor::params_version() so parameter-keyed caches (the TransformerConv
/// edge projections) refresh.
void assign_params(const std::vector<tensor::Parameter*>& params,
                   const std::vector<tensor::Tensor>& values);

}  // namespace gnndse::model
