// Flat binary serialization of model weights, so separate bench binaries
// can share one trained model bundle instead of retraining.
//
// Format: magic, count, then per parameter {rank, dims..., float data}.
// Loading requires an architecturally-identical model (same parameter
// shapes in the same order).
#pragma once

#include <string>
#include <vector>

#include "tensor/tape.hpp"

namespace gnndse::model {

void save_params(const std::vector<tensor::Parameter*>& params,
                 const std::string& path);

/// Throws std::runtime_error on mismatch or I/O failure.
void load_params(const std::vector<tensor::Parameter*>& params,
                 const std::string& path);

/// True when `path` exists and holds a weight file.
bool weights_exist(const std::string& path);

}  // namespace gnndse::model
