// Training and evaluation harness (paper §5.1: Adam, lr 1e-3, 80/20 split,
// RMSE metric for regression; accuracy and F1 for the validity classifier).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "model/dataset.hpp"
#include "model/predictive_model.hpp"
#include "tensor/adam.hpp"

namespace gnndse::model {

enum class Task { kRegression, kClassification };

struct TrainOptions {
  Task task = Task::kRegression;
  /// Objective columns (indices into Sample::target) the model predicts;
  /// ignored for classification. The paper trains one model on
  /// {latency, DSP, LUT, FF} and a separate one on {BRAM} (§5.2.1).
  std::vector<int> objectives{kLatency, kDsp, kLut, kFf};
  int epochs = 30;
  int batch_size = 32;
  float lr = 1e-3f;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct RegressionMetrics {
  /// RMSE per Objective (entries for objectives the model does not predict
  /// stay 0).
  std::array<float, kNumObjectives> rmse{};
  /// Sum over predicted objectives (the paper's "All" column convention).
  float rmse_sum = 0.0f;
};

struct ClassificationMetrics {
  float accuracy = 0.0f;
  float f1 = 0.0f;
};

class Trainer {
 public:
  Trainer(PredictiveModel& model, TrainOptions opts);

  /// Minibatch training on the given sample indices. Returns the mean
  /// training loss of the final epoch.
  float fit(const Dataset& ds, const std::vector<std::size_t>& train_idx);

  /// Raw model outputs, [n, out_dim] (logits for classification). Both
  /// overloads run the tape-free fast path (bit-identical to the tape;
  /// enforced by tests/test_fastpath.cpp) in kChunk-sized batches.
  tensor::Tensor predict(const Dataset& ds,
                         const std::vector<std::size_t>& idx);
  tensor::Tensor predict_graphs(
      const std::vector<const gnn::GraphData*>& graphs);
  tensor::Tensor predict_graphs(std::span<const gnn::GraphData> graphs);

  /// Reference implementation of predict_graphs through the autodiff Tape.
  /// Kept as the bit-identity baseline for tests and the tape-vs-fast
  /// benchmark (bench_fastpath).
  tensor::Tensor predict_graphs_tape(
      const std::vector<const gnn::GraphData*>& graphs);

  /// Fast-path forward over one prebuilt batch -> [B, out_dim]. The
  /// returned reference lives in the trainer's inference workspace until
  /// the next predict call. This is the DSE hot loop's entry point: the
  /// caller assembles (or reuses) a single GraphBatch that all three model
  /// heads share.
  const tensor::Tensor& predict_batch(const gnn::GraphBatch& batch);

  /// Graph-level embeddings (the encoder output that feeds the MLP head),
  /// [n, D] — the paper's Fig 6 visualizes these through t-SNE.
  tensor::Tensor embed_graphs(const std::vector<const gnn::GraphData*>& graphs);

  const TrainOptions& options() const { return opts_; }

  /// Inference workspace (telemetry/tests: workspace_bytes, num_slots).
  const gnn::InferenceSession& inference_session() const { return session_; }

  /// Prediction/embedding chunk size: one GraphBatch per kChunk graphs.
  static constexpr std::size_t kChunk = 256;

 private:
  tensor::Tensor batch_targets(const Dataset& ds,
                               const std::vector<std::size_t>& idx) const;

  PredictiveModel& model_;
  TrainOptions opts_;
  tensor::Adam adam_;
  gnn::InferenceSession session_;
};

/// Fast-path forward of one shared batch through several independent model
/// heads, dispatched as parallel tasks on the util pool (one task per
/// head). Each head runs entirely inside its own trainer's
/// InferenceSession workspace, so the results are bit-identical to calling
/// heads[i]->predict_batch(batch) sequentially — at every thread count
/// (enforced by tests/test_sweep.cpp). out[i] points into heads[i]'s
/// workspace and stays valid until that trainer's next predict call.
/// The batch must stay immutable for the duration of the call.
void predict_batch_concurrent(std::span<Trainer* const> heads,
                              const gnn::GraphBatch& batch,
                              std::span<const tensor::Tensor*> out);

RegressionMetrics eval_regression(Trainer& trainer, const Dataset& ds,
                                  const std::vector<std::size_t>& test_idx);

ClassificationMetrics eval_classification(Trainer& trainer, const Dataset& ds,
                                          const std::vector<std::size_t>& test_idx);

/// Combines two regression models (main objectives + BRAM) into one
/// five-objective metric row, as the paper reports in Table 2.
RegressionMetrics combine(const RegressionMetrics& main,
                          const RegressionMetrics& bram);

}  // namespace gnndse::model
