// Training and evaluation harness (paper §5.1: Adam, lr 1e-3, 80/20 split,
// RMSE metric for regression; accuracy and F1 for the validity classifier).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "model/dataset.hpp"
#include "model/predictive_model.hpp"
#include "tensor/adam.hpp"

namespace gnndse::model {

enum class Task { kRegression, kClassification };

struct TrainOptions {
  Task task = Task::kRegression;
  /// Objective columns (indices into Sample::target) the model predicts;
  /// ignored for classification. The paper trains one model on
  /// {latency, DSP, LUT, FF} and a separate one on {BRAM} (§5.2.1).
  std::vector<int> objectives{kLatency, kDsp, kLut, kFf};
  int epochs = 30;
  int batch_size = 32;
  float lr = 1e-3f;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct RegressionMetrics {
  /// RMSE per Objective (entries for objectives the model does not predict
  /// stay 0).
  std::array<float, kNumObjectives> rmse{};
  /// Sum over predicted objectives (the paper's "All" column convention).
  float rmse_sum = 0.0f;
};

struct ClassificationMetrics {
  float accuracy = 0.0f;
  float f1 = 0.0f;
};

class Trainer {
 public:
  Trainer(PredictiveModel& model, TrainOptions opts);

  /// Minibatch training on the given sample indices. Returns the mean
  /// training loss of the final epoch.
  float fit(const Dataset& ds, const std::vector<std::size_t>& train_idx);

  /// Raw model outputs, [n, out_dim] (logits for classification).
  tensor::Tensor predict(const Dataset& ds,
                         const std::vector<std::size_t>& idx);
  tensor::Tensor predict_graphs(
      const std::vector<const gnn::GraphData*>& graphs);

  /// Graph-level embeddings (the encoder output that feeds the MLP head),
  /// [n, D] — the paper's Fig 6 visualizes these through t-SNE.
  tensor::Tensor embed_graphs(const std::vector<const gnn::GraphData*>& graphs);

  const TrainOptions& options() const { return opts_; }

 private:
  tensor::Tensor batch_targets(const Dataset& ds,
                               const std::vector<std::size_t>& idx) const;

  PredictiveModel& model_;
  TrainOptions opts_;
  tensor::Adam adam_;
};

RegressionMetrics eval_regression(Trainer& trainer, const Dataset& ds,
                                  const std::vector<std::size_t>& test_idx);

ClassificationMetrics eval_classification(Trainer& trainer, const Dataset& ds,
                                          const std::vector<std::size_t>& test_idx);

/// Combines two regression models (main objectives + BRAM) into one
/// five-objective metric row, as the paper reports in Table 2.
RegressionMetrics combine(const RegressionMetrics& main,
                          const RegressionMetrics& bram);

}  // namespace gnndse::model
