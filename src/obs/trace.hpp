// Hierarchical trace spans: ScopedSpan opens a span on construction and
// closes it on destruction, nesting under the innermost span still open on
// the same thread. Finished spans carry wall-clock (start offset + duration,
// via util::Timer), the recording thread's id, an absolute begin timestamp,
// and any counters attached with add(); the report exporter flattens the
// records into a span tree and the Chrome-trace exporter
// (obs/chrome_trace.hpp) renders them as a per-thread timeline.
//
// A ScopedSpan always runs its Timer (one clock read at construction), so
// callers can use seconds() for time limits whether or not telemetry is
// recording — folding the old bare util::Timer call sites into the span API.
// Recording itself happens only when obs::enabled().
//
// Cross-thread nesting: spans opened on a thread with no open ancestor are
// root-level by default. Work handed to another thread (the global thread
// pool) adopts the submitting thread's innermost span by wrapping the task
// in a SpanContext built from current_span_id() — util::parallel_for does
// this for every chunk, so pool-side spans nest under their logical parent
// instead of becoming orphans.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.hpp"

namespace gnndse::obs {

/// One finished (or still-open) span as stored in the trace.
struct SpanRecord {
  std::string name;
  std::int64_t id = -1;
  std::int64_t parent = -1;  // -1 = root level
  std::int64_t tid = 0;      // trace-local thread id (see thread_names())
  double start_ms = 0.0;     // offset from the trace epoch
  /// Absolute begin timestamp (microseconds since the Unix epoch), for
  /// exporters that need wall-clock alignment across processes.
  std::int64_t start_unix_us = 0;
  double duration_ms = 0.0;
  bool open = true;
  std::vector<std::pair<std::string, double>> counters;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const std::string& name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches (accumulates) a named value on this span.
  void add(const std::string& key, double value);

  /// Elapsed wall-clock since construction; works even when disabled.
  double seconds() const { return timer_.seconds(); }
  double millis() const { return timer_.millis(); }

 private:
  util::Timer timer_;
  std::int64_t id_ = -1;  // -1 when telemetry was disabled at construction
};

/// Innermost open span id on the calling thread (-1 when none). Capture it
/// before handing work to another thread and wrap the remote execution in
/// a SpanContext so spans opened there nest under the logical parent.
std::int64_t current_span_id();

/// RAII adoption of another thread's span as this thread's parent: spans
/// opened while the context is alive become children of `parent_id`. The
/// previous parent is restored on destruction. Cheap (two thread-local
/// writes) and safe to use whether or not telemetry is enabled.
class SpanContext {
 public:
  explicit SpanContext(std::int64_t parent_id);
  ~SpanContext();
  SpanContext(const SpanContext&) = delete;
  SpanContext& operator=(const SpanContext&) = delete;

 private:
  std::int64_t saved_;
};

/// Registers a human-readable name for the calling thread ("main",
/// "pool-worker-3"). Names are recorded regardless of obs::enabled() —
/// registration is bounded by the thread count — and surface as Chrome
/// trace thread_name metadata. Unnamed threads default to "thread-<tid>".
void set_thread_name(const std::string& name);

struct ThreadName {
  std::int64_t tid;
  std::string name;
};
/// Every thread the trace layer has seen (named or spanned), by tid.
std::vector<ThreadName> thread_names();

/// Microseconds since the Unix epoch at trace time zero (the first touch
/// of the trace store). span.start_unix_us == this + span.start_ms * 1000.
std::int64_t trace_epoch_unix_us();

/// Snapshot of all recorded spans, in creation (start) order. Ids are
/// indices into the returned vector.
std::vector<SpanRecord> trace_snapshot();

/// Caps the number of recorded spans so unbounded runs (long sweeps,
/// serving daemons) cannot grow the trace without limit; spans beyond the
/// cap are dropped and counted in the `obs.trace_spans_dropped` counter.
/// Testing hook — the default (131072) is plenty for every pipeline run.
void set_trace_capacity(std::size_t max_spans);
std::int64_t trace_spans_dropped();

/// Drops every recorded span (testing hook; reset_all() calls this too).
void clear_trace();

}  // namespace gnndse::obs
