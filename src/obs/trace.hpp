// Hierarchical trace spans: ScopedSpan opens a span on construction and
// closes it on destruction, nesting under the innermost span still open on
// the same thread. Finished spans carry wall-clock (start offset + duration,
// via util::Timer) and any counters attached with add(); the exporter
// flattens the records into a span tree.
//
// A ScopedSpan always runs its Timer (one clock read at construction), so
// callers can use seconds() for time limits whether or not telemetry is
// recording — folding the old bare util::Timer call sites into the span API.
// Recording itself happens only when obs::enabled().
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.hpp"

namespace gnndse::obs {

/// One finished (or still-open) span as stored in the trace.
struct SpanRecord {
  std::string name;
  std::int64_t id = -1;
  std::int64_t parent = -1;  // -1 = root level
  double start_ms = 0.0;     // offset from the trace epoch
  double duration_ms = 0.0;
  bool open = true;
  std::vector<std::pair<std::string, double>> counters;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const std::string& name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches (accumulates) a named value on this span.
  void add(const std::string& key, double value);

  /// Elapsed wall-clock since construction; works even when disabled.
  double seconds() const { return timer_.seconds(); }
  double millis() const { return timer_.millis(); }

 private:
  util::Timer timer_;
  std::int64_t id_ = -1;  // -1 when telemetry was disabled at construction
};

/// Snapshot of all recorded spans, in creation (start) order. Ids are
/// indices into the returned vector.
std::vector<SpanRecord> trace_snapshot();

/// Drops every recorded span (testing hook; reset_all() calls this too).
void clear_trace();

}  // namespace gnndse::obs
