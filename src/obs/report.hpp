// Machine-readable run reports: serializes the metrics registry and the
// recorded span tree to JSON (schema_version 2; see docs/observability.md
// for the schema and scripts/check_report.py for a stdlib-only validator).
//
// ReportSession is the one-liner used by the CLI (--report PATH) and by
// every bench binary (GNNDSE_REPORT env var, via bench_common.hpp): when
// any output is configured it enables telemetry, opens the root `pipeline`
// span, and writes the outputs on destruction. It now drives all three
// telemetry sinks:
//
//   report     --report PATH      / GNNDSE_REPORT        JSON run report
//   trace      --trace PATH       / GNNDSE_TRACE         Chrome-trace JSON
//                                                        (obs/chrome_trace.hpp)
//   heartbeat  --heartbeat PATH   / GNNDSE_HEARTBEAT     live NDJSON stream
//                                   (+ GNNDSE_HEARTBEAT_MS interval)
//                                                        (obs/heartbeat.hpp)
//
// With nothing configured the session does nothing and instrumentation
// throughout the pipeline stays a no-op.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "obs/trace.hpp"

namespace gnndse::obs {

class HeartbeatSampler;

/// Renders the full report JSON: tool name, elapsed seconds, counters,
/// gauges, histograms (with p50/p95/max and raw buckets), and the span tree.
std::string report_json(const std::string& tool, double elapsed_seconds);

/// Writes report_json() to `path`. Returns false (and logs a warning)
/// on I/O failure instead of throwing — reports are best-effort.
bool write_report(const std::string& path, const std::string& tool,
                  double elapsed_seconds);

/// Env var naming the report destination for bench/test binaries.
inline constexpr const char* kReportEnvVar = "GNNDSE_REPORT";

class ReportSession {
 public:
  /// Activates when any of the three paths is non-empty; empty paths fall
  /// back to their env vars ($GNNDSE_REPORT / $GNNDSE_TRACE /
  /// $GNNDSE_HEARTBEAT). Inactive sessions cost nothing. An active
  /// session turns telemetry on, names the calling thread "main", opens
  /// the root span (named "pipeline"), and starts the heartbeat sampler
  /// when a heartbeat path is configured.
  explicit ReportSession(std::string tool, std::string report_path = "",
                         std::string trace_path = "",
                         std::string heartbeat_path = "");
  ~ReportSession();
  ReportSession(const ReportSession&) = delete;
  ReportSession& operator=(const ReportSession&) = delete;

  bool active() const { return active_; }
  const std::string& path() const { return report_path_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& heartbeat_path() const { return heartbeat_path_; }

  /// Wall-clock since construction — active or not, so binaries can use
  /// the session as their run stopwatch (replacing a bare util::Timer).
  double seconds() const { return timer_.seconds(); }

 private:
  std::string tool_, report_path_, trace_path_, heartbeat_path_;
  bool active_ = false;
  util::Timer timer_;
  std::optional<ScopedSpan> root_;
  std::unique_ptr<HeartbeatSampler> heartbeat_;
};

}  // namespace gnndse::obs
