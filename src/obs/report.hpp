// Machine-readable run reports: serializes the metrics registry and the
// recorded span tree to JSON (schema_version 1; see docs/observability.md
// for the schema and scripts/check_report.py for a stdlib-only validator).
//
// ReportSession is the one-liner used by the CLI (--report PATH) and by
// every bench binary (GNNDSE_REPORT env var, via bench_common.hpp): when a
// path is configured it enables telemetry, opens the root `pipeline` span,
// and writes the report on destruction. With no path it does nothing and
// instrumentation throughout the pipeline stays a no-op.
#pragma once

#include <optional>
#include <string>

#include "obs/trace.hpp"

namespace gnndse::obs {

/// Renders the full report JSON: tool name, elapsed seconds, counters,
/// gauges, histograms (with p50/p95/max and raw buckets), and the span tree.
std::string report_json(const std::string& tool, double elapsed_seconds);

/// Writes report_json() to `path`. Returns false (and logs a warning)
/// on I/O failure instead of throwing — reports are best-effort.
bool write_report(const std::string& path, const std::string& tool,
                  double elapsed_seconds);

/// Env var naming the report destination for bench/test binaries.
inline constexpr const char* kReportEnvVar = "GNNDSE_REPORT";

class ReportSession {
 public:
  /// Activates when `path` is non-empty, otherwise when $GNNDSE_REPORT is
  /// set; inactive sessions cost nothing. An active session turns
  /// telemetry on and opens the root span (named "pipeline").
  explicit ReportSession(std::string tool, std::string path = "");
  ~ReportSession();
  ReportSession(const ReportSession&) = delete;
  ReportSession& operator=(const ReportSession&) = delete;

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Wall-clock since construction — active or not, so binaries can use
  /// the session as their run stopwatch (replacing a bare util::Timer).
  double seconds() const { return timer_.seconds(); }

 private:
  std::string tool_, path_;
  util::Timer timer_;
  std::optional<ScopedSpan> root_;
};

}  // namespace gnndse::obs
