// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-bucket latency histograms (p50/p95/max), all thread-safe.
//
// Instrumentation is designed to sit in hot loops (hls_sim.cpp, conv.cpp):
// every recording helper first runs an inlined check of a single relaxed
// atomic flag and returns immediately when telemetry is disabled, so a
// disabled build path costs one predictable branch. Metric handles returned
// by counter()/gauge()/histogram() are stable for the process lifetime —
// resolve them once (function-local static) and reuse them.
//
// Naming convention (docs/observability.md): `subsystem.metric[_unit]`,
// e.g. `hlssim.evaluations`, `dse.configs_explored`, `train.forward_ms`.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gnndse::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when telemetry recording is on (set by ReportSession / set_enabled).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

/// Monotonic counter. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram for latencies in milliseconds: log-spaced bucket
/// upper bounds from 1 µs to ~17 min (powers of two), plus an overflow
/// bucket. Percentiles are bucket-resolution estimates (the upper bound of
/// the bucket where the cumulative count crosses the quantile, clamped to
/// the exact observed max); an empty histogram reports 0 everywhere.
class Histogram {
 public:
  /// Bucket upper bounds in ms: 2^-10 .. 2^20 (31 finite buckets).
  static constexpr int kNumFinite = 31;
  static double bucket_bound(int i);  // i in [0, kNumFinite)

  void observe(double value_ms);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  /// q in [0,1]; q=0.5 -> p50. Returns 0 when empty.
  double percentile(double q) const;
  /// Cumulative counts are not snapshotted atomically; values observed
  /// concurrently with a read may land in either side of the report.
  std::vector<std::int64_t> bucket_counts() const;
  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kNumFinite + 1] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

/// Registry lookup: returns the process-wide metric with this name,
/// creating it on first use. References stay valid for the process
/// lifetime (reset_all() zeroes values but never removes metrics).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Inline recording helpers — no-ops (one relaxed load + branch) when
/// telemetry is disabled. Use these in hot loops.
inline void add(Counter& c, std::int64_t n = 1) {
  if (enabled()) c.add(n);
}
inline void set(Gauge& g, double v) {
  if (enabled()) g.set(v);
}
inline void observe(Histogram& h, double value_ms) {
  if (enabled()) h.observe(value_ms);
}

/// Snapshot of every registered metric, sorted by name (for the exporter).
struct CounterSnapshot {
  std::string name;
  std::int64_t value;
};
struct GaugeSnapshot {
  std::string name;
  double value;
};
struct HistogramSnapshot {
  std::string name;
  std::int64_t count;
  double sum, min, max, p50, p95;
  std::vector<std::int64_t> buckets;  // kNumFinite + overflow
};
std::vector<CounterSnapshot> counters_snapshot();
std::vector<GaugeSnapshot> gauges_snapshot();
std::vector<HistogramSnapshot> histograms_snapshot();

/// Zeroes every metric and clears the recorded span trace (testing hook;
/// does not invalidate previously returned metric references).
void reset_all();

}  // namespace gnndse::obs
