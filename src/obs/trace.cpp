#include "obs/trace.hpp"

#include <chrono>
#include <mutex>

#include "obs/metrics.hpp"

namespace gnndse::obs {

namespace {

constexpr std::size_t kDefaultTraceCapacity = 131072;

struct TraceStore {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  util::Timer epoch;  // trace time zero = first touch of the store
  std::int64_t epoch_unix_us = 0;
  std::size_t capacity = kDefaultTraceCapacity;
  std::int64_t dropped = 0;
  std::int64_t next_tid = 0;
  std::vector<std::string> names;  // indexed by tid
};

TraceStore& store() {
  // Deliberately leaked so spans can close and be exported during static
  // destruction (file-scope ReportSession), mirroring registry().
  static TraceStore* t = [] {
    auto* s = new TraceStore();
    s->epoch_unix_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    return s;
  }();
  return *t;
}

/// Innermost open span on this thread; new spans nest under it. Spans
/// opened on other threads without an ancestor (and without a SpanContext)
/// become root-level.
thread_local std::int64_t t_current_parent = -1;

/// Trace-local id of this thread; -1 until the thread first records a span
/// or registers a name.
thread_local std::int64_t t_tid = -1;

/// Assigns this thread's tid on first use. Caller must hold store().mu.
std::int64_t thread_tid_locked(TraceStore& t) {
  if (t_tid < 0) {
    t_tid = t.next_tid++;
    t.names.emplace_back("thread-" + std::to_string(t_tid));
  }
  return t_tid;
}

}  // namespace

ScopedSpan::ScopedSpan(const std::string& name) {
  if (!enabled()) return;
  static Counter& c_dropped = counter("obs.trace_spans_dropped");
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.spans.size() >= t.capacity) {
    ++t.dropped;
    c_dropped.add();
    return;  // id_ stays -1: this span records nothing
  }
  id_ = static_cast<std::int64_t>(t.spans.size());
  SpanRecord rec;
  rec.name = name;
  rec.id = id_;
  rec.parent = t_current_parent;
  rec.tid = thread_tid_locked(t);
  rec.start_ms = t.epoch.millis();
  rec.start_unix_us =
      t.epoch_unix_us + static_cast<std::int64_t>(rec.start_ms * 1e3);
  t.spans.push_back(std::move(rec));
  t_current_parent = id_;
}

ScopedSpan::~ScopedSpan() {
  if (id_ < 0) return;
  const double dur = timer_.millis();
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  // clear_trace() may have run while this span was open.
  if (id_ < static_cast<std::int64_t>(t.spans.size())) {
    SpanRecord& rec = t.spans[static_cast<std::size_t>(id_)];
    rec.duration_ms = dur;
    rec.open = false;
    t_current_parent = rec.parent;
  } else {
    t_current_parent = -1;
  }
}

void ScopedSpan::add(const std::string& key, double value) {
  if (id_ < 0) return;
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  if (id_ >= static_cast<std::int64_t>(t.spans.size())) return;
  SpanRecord& rec = t.spans[static_cast<std::size_t>(id_)];
  for (auto& [k, v] : rec.counters) {
    if (k == key) {
      v += value;
      return;
    }
  }
  rec.counters.emplace_back(key, value);
}

std::int64_t current_span_id() { return t_current_parent; }

SpanContext::SpanContext(std::int64_t parent_id) : saved_(t_current_parent) {
  t_current_parent = parent_id;
}

SpanContext::~SpanContext() { t_current_parent = saved_; }

void set_thread_name(const std::string& name) {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  const std::int64_t tid = thread_tid_locked(t);
  t.names[static_cast<std::size_t>(tid)] = name;
}

std::vector<ThreadName> thread_names() {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  std::vector<ThreadName> out;
  out.reserve(t.names.size());
  for (std::size_t i = 0; i < t.names.size(); ++i)
    out.push_back({static_cast<std::int64_t>(i), t.names[i]});
  return out;
}

std::int64_t trace_epoch_unix_us() {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.epoch_unix_us;
}

std::vector<SpanRecord> trace_snapshot() {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.spans;
}

void set_trace_capacity(std::size_t max_spans) {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  t.capacity = max_spans;
}

std::int64_t trace_spans_dropped() {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.dropped;
}

void clear_trace() {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  t.spans.clear();
  t.dropped = 0;
  t_current_parent = -1;
  t.epoch.reset();
  t.epoch_unix_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
}

}  // namespace gnndse::obs
