#include "obs/trace.hpp"

#include <mutex>

#include "obs/metrics.hpp"

namespace gnndse::obs {

namespace {

struct TraceStore {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  util::Timer epoch;  // trace time zero = first touch of the store
};

TraceStore& store() {
  // Deliberately leaked so spans can close and be exported during static
  // destruction (file-scope ReportSession), mirroring registry().
  static TraceStore* t = new TraceStore();
  return *t;
}

/// Innermost open span on this thread; new spans nest under it. Spans
/// opened on other threads without an ancestor become root-level.
thread_local std::int64_t t_current_parent = -1;

}  // namespace

ScopedSpan::ScopedSpan(const std::string& name) {
  if (!enabled()) return;
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  id_ = static_cast<std::int64_t>(t.spans.size());
  SpanRecord rec;
  rec.name = name;
  rec.id = id_;
  rec.parent = t_current_parent;
  rec.start_ms = t.epoch.millis();
  t.spans.push_back(std::move(rec));
  t_current_parent = id_;
}

ScopedSpan::~ScopedSpan() {
  if (id_ < 0) return;
  const double dur = timer_.millis();
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  // clear_trace() may have run while this span was open.
  if (id_ < static_cast<std::int64_t>(t.spans.size())) {
    SpanRecord& rec = t.spans[static_cast<std::size_t>(id_)];
    rec.duration_ms = dur;
    rec.open = false;
    t_current_parent = rec.parent;
  } else {
    t_current_parent = -1;
  }
}

void ScopedSpan::add(const std::string& key, double value) {
  if (id_ < 0) return;
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  if (id_ >= static_cast<std::int64_t>(t.spans.size())) return;
  SpanRecord& rec = t.spans[static_cast<std::size_t>(id_)];
  for (auto& [k, v] : rec.counters) {
    if (k == key) {
      v += value;
      return;
    }
  }
  rec.counters.emplace_back(key, value);
}

std::vector<SpanRecord> trace_snapshot() {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.spans;
}

void clear_trace() {
  TraceStore& t = store();
  std::lock_guard<std::mutex> lock(t.mu);
  t.spans.clear();
  t_current_parent = -1;
  t.epoch.reset();
}

}  // namespace gnndse::obs
