// Minimal JSON rendering helpers shared by the telemetry exporters
// (report.cpp, chrome_trace.cpp, heartbeat.cpp). Internal to src/obs —
// consumers of the reports parse them with real JSON libraries
// (scripts/*.py use the Python stdlib).
#pragma once

#include <sstream>
#include <string>

namespace gnndse::obs::jsonu {

/// Appends `s` as a double-quoted JSON string with the escapes the
/// exporters need (quote, backslash, newline; metric and span names never
/// carry other control characters).
inline void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

/// Appends a finite JSON number; JSON has no inf/nan, so those clamp to
/// null-free sentinels.
inline void append_number(std::ostringstream& os, double v) {
  if (!(v == v)) {
    os << 0;
    return;
  }
  if (v > 1e308) {
    os << 1e308;
    return;
  }
  if (v < -1e308) {
    os << -1e308;
    return;
  }
  os << v;
}

}  // namespace gnndse::obs::jsonu
