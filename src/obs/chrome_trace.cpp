#include "obs/chrome_trace.hpp"

#include <fstream>

#include "obs/json_util.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace gnndse::obs {

namespace {

using jsonu::append_escaped;
using jsonu::append_number;

/// One metadata event ("ph":"M") naming a process or thread row.
void append_metadata(std::ostringstream& os, const char* what,
                     std::int64_t tid, const std::string& name) {
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid << ",\"name\":\"" << what
     << "\",\"args\":{\"name\":";
  append_escaped(os, name);
  os << "}}";
}

}  // namespace

std::string chrome_trace_json(const std::string& process_name) {
  std::ostringstream os;
  os.precision(9);
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":";
  append_escaped(os, process_name);
  os << ",\"trace_epoch_unix_us\":" << trace_epoch_unix_us()
     << ",\"spans_dropped\":" << trace_spans_dropped()
     << "},\"traceEvents\":[";

  append_metadata(os, "process_name", 0, process_name);
  for (const ThreadName& t : thread_names()) {
    os << ',';
    append_metadata(os, "thread_name", t.tid, t.name);
  }

  for (const SpanRecord& s : trace_snapshot()) {
    os << ",{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid << ",\"name\":";
    append_escaped(os, s.name);
    os << ",\"cat\":\"gnndse\",\"ts\":" << s.start_unix_us << ",\"dur\":";
    // Complete events carry duration in microseconds. Spans still open at
    // export time (only possible outside ReportSession, which closes the
    // root first) render with zero duration and an open marker.
    append_number(os, s.open ? 0.0 : s.duration_ms * 1e3);
    os << ",\"args\":{";
    bool first = true;
    if (s.open) {
      os << "\"open\":true";
      first = false;
    }
    for (const auto& [k, v] : s.counters) {
      if (!first) os << ',';
      first = false;
      append_escaped(os, k);
      os << ':';
      append_number(os, v);
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

bool write_chrome_trace(const std::string& path,
                        const std::string& process_name) {
  std::ofstream out(path);
  if (!out) {
    util::log_warn("obs: cannot open trace path ", path);
    return false;
  }
  out << chrome_trace_json(process_name) << '\n';
  if (!out.good()) {
    util::log_warn("obs: short write to trace path ", path);
    return false;
  }
  return true;
}

}  // namespace gnndse::obs
