// Heartbeat progress stream: a background sampler that appends one NDJSON
// snapshot of the metrics registry per interval while a run is in flight,
// so long phases (dataset generation over the HLS oracle, GNN training,
// multi-round DSE sweeps) can be observed live instead of only via the
// run report at process exit. This is the polling substrate the planned
// DSE-as-a-service daemon and sharded sweeps consume.
//
// Each line (schema `gnndse.heartbeat.v1`, docs/observability.md):
//
//   {"schema":"gnndse.heartbeat.v1","seq":3,"elapsed_ms":1502.1,
//    "unix_ms":1754650000123,
//    "counters":{"dse.configs_explored":8000,...},
//    "gauges":{"dse.frontier_size":80,...},
//    "rates":{"dse.configs_per_sec":5300.0,
//             "hlssim.evaluations_per_sec":12.0,
//             "oracle.hit_ratio":0.42,"eta_seconds":3.5}}
//
// Rates are derived: *_per_sec from the counter delta since the previous
// sample, oracle.hit_ratio cumulatively from oracle.hits/misses, and
// eta_seconds from the dse.time_limit_seconds / dse.search_elapsed_seconds
// gauges while a search is running. elapsed_ms is strictly monotonic
// across samples; seq starts at 0. A sample is written immediately on
// start and a final one on stop, so even sub-interval runs emit >= 2.
//
// Wired up by ReportSession: set GNNDSE_HEARTBEAT=<path> (interval via
// GNNDSE_HEARTBEAT_MS, default 500, floor 10) and the sampler runs for
// the session's lifetime.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "util/timer.hpp"

namespace gnndse::obs {

/// Env vars naming the heartbeat destination and sample interval.
inline constexpr const char* kHeartbeatEnvVar = "GNNDSE_HEARTBEAT";
inline constexpr const char* kHeartbeatIntervalEnvVar = "GNNDSE_HEARTBEAT_MS";
inline constexpr double kHeartbeatDefaultIntervalMs = 500.0;

class HeartbeatSampler {
 public:
  /// Opens `path` for appending and starts the sampler thread (one sample
  /// immediately, then one per `interval_ms`, floored at 10 ms). A path
  /// that cannot be opened logs a warning and leaves the sampler inert.
  HeartbeatSampler(std::string path, double interval_ms);
  ~HeartbeatSampler();
  HeartbeatSampler(const HeartbeatSampler&) = delete;
  HeartbeatSampler& operator=(const HeartbeatSampler&) = delete;

  /// Stops the sampler thread and writes the final sample. Idempotent.
  void stop();

  /// Samples written so far (including the final one after stop()).
  std::int64_t samples_written() const;

 private:
  void run();
  void write_sample();

  std::string path_;
  double interval_ms_;
  std::ofstream out_;
  util::Timer timer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::int64_t seq_ = 0;
  double last_elapsed_ms_ = -1.0;
  /// Previous sample's values for the derived rates.
  double prev_elapsed_ms_ = 0.0;
  std::int64_t prev_configs_ = 0;
  std::int64_t prev_evals_ = 0;

  std::thread thread_;  // last: started after every field is ready
};

}  // namespace gnndse::obs
