// Chrome-trace exporter: renders the recorded span store as Trace Event
// Format JSON (the `traceEvents` schema understood by Perfetto and
// chrome://tracing). Each closed span becomes one complete ("ph":"X")
// event on its recording thread's row, with absolute microsecond
// timestamps and the span's attached counters as args; registered thread
// names (obs::set_thread_name — "main", "pool-worker-N") become
// thread_name metadata so a pipeline run reads as a per-thread timeline
// of train/featurize/predict/oracle spans.
//
// Wired up by ReportSession: set GNNDSE_TRACE=<path> (or pass `--trace`
// to the CLI) and the trace is written when the session closes. See
// docs/observability.md for the Perfetto workflow.
#pragma once

#include <string>

namespace gnndse::obs {

/// Env var naming the Chrome-trace destination (ReportSession fallback).
inline constexpr const char* kTraceEnvVar = "GNNDSE_TRACE";

/// Renders the full trace store as Trace Event Format JSON.
std::string chrome_trace_json(const std::string& process_name);

/// Writes chrome_trace_json() to `path`. Returns false (and logs a
/// warning) on I/O failure instead of throwing — traces are best-effort.
bool write_chrome_trace(const std::string& path,
                        const std::string& process_name);

}  // namespace gnndse::obs
