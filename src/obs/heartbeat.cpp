#include "obs/heartbeat.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace gnndse::obs {

namespace {

using jsonu::append_escaped;
using jsonu::append_number;

std::int64_t unix_millis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::int64_t counter_value(const std::vector<CounterSnapshot>& counters,
                           const char* name) {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

double gauge_value(const std::vector<GaugeSnapshot>& gauges,
                   const char* name) {
  for (const auto& g : gauges)
    if (g.name == name) return g.value;
  return 0.0;
}

}  // namespace

HeartbeatSampler::HeartbeatSampler(std::string path, double interval_ms)
    : path_(std::move(path)),
      interval_ms_(std::max(interval_ms, 10.0)),
      out_(path_, std::ios::app) {
  if (!out_) {
    util::log_warn("obs: cannot open heartbeat path ", path_);
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    return;
  }
  thread_ = std::thread([this] { run(); });
}

HeartbeatSampler::~HeartbeatSampler() { stop(); }

void HeartbeatSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Already stopped (or never started) — just make sure the thread is
      // reaped when stop() raced the constructor's inert path.
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample after the thread is gone: captures the end-of-run state
  // and guarantees >= 2 samples even for sub-interval runs.
  write_sample();
  out_.flush();
}

std::int64_t HeartbeatSampler::samples_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void HeartbeatSampler::run() {
  write_sample();  // t = 0 snapshot
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock,
                 std::chrono::duration<double, std::milli>(interval_ms_),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    write_sample();
    lock.lock();
  }
}

void HeartbeatSampler::write_sample() {
  const std::vector<CounterSnapshot> counters = counters_snapshot();
  const std::vector<GaugeSnapshot> gauges = gauges_snapshot();

  std::lock_guard<std::mutex> lock(mu_);
  double elapsed = timer_.millis();
  // elapsed_ms is the stream's monotonicity key; guard against two samples
  // landing inside clock resolution.
  if (elapsed <= last_elapsed_ms_) elapsed = last_elapsed_ms_ + 1e-3;

  std::ostringstream os;
  os.precision(9);
  os << "{\"schema\":\"gnndse.heartbeat.v1\",\"seq\":" << seq_
     << ",\"elapsed_ms\":";
  append_number(os, elapsed);
  os << ",\"unix_ms\":" << unix_millis();

  os << ",\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, c.name);
    os << ':' << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, g.name);
    os << ':';
    append_number(os, g.value);
  }
  os << "}";

  // Derived rates: throughput since the previous sample, cumulative oracle
  // hit ratio, and the DSE search's remaining-budget estimate.
  const std::int64_t configs = counter_value(counters, "dse.configs_explored");
  const std::int64_t evals = counter_value(counters, "hlssim.evaluations");
  const double dt_s = (elapsed - prev_elapsed_ms_) / 1e3;
  os << ",\"rates\":{\"dse.configs_per_sec\":";
  append_number(os, dt_s > 0 ? static_cast<double>(configs - prev_configs_) /
                                   dt_s
                             : 0.0);
  os << ",\"hlssim.evaluations_per_sec\":";
  append_number(
      os, dt_s > 0 ? static_cast<double>(evals - prev_evals_) / dt_s : 0.0);
  const std::int64_t hits = counter_value(counters, "oracle.hits");
  const std::int64_t misses = counter_value(counters, "oracle.misses");
  os << ",\"oracle.hit_ratio\":";
  append_number(os, hits + misses > 0
                        ? static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0);
  const double limit = gauge_value(gauges, "dse.time_limit_seconds");
  if (limit > 0.0) {
    const double search_elapsed =
        gauge_value(gauges, "dse.search_elapsed_seconds");
    os << ",\"eta_seconds\":";
    append_number(os, std::max(0.0, limit - search_elapsed));
  }
  os << "}}";

  out_ << os.str() << '\n';
  out_.flush();
  prev_elapsed_ms_ = elapsed;
  prev_configs_ = configs;
  prev_evals_ = evals;
  last_elapsed_ms_ = elapsed;
  ++seq_;
}

}  // namespace gnndse::obs
