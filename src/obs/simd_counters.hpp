// Per-kernel SIMD dispatch telemetry.
//
// Each dispatched kernel resolves one of these as a function-local static;
// level() reads the active dispatch level, bumps the matching
// `simd.<kernel>.<level>` counter (one increment per kernel call, not per
// element), and refreshes the `tensor.simd_level` gauge so a report taken
// after obs::reset_all() still shows the live level. With telemetry
// disabled the cost is the counters' single relaxed-flag check.
//
//   static obs::SimdDispatch dispatch("row_sum");
//   const util::SimdLevel lvl = dispatch.level();
//   ... switch kernel variant on lvl ...
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "util/cpu.hpp"

namespace gnndse::obs {

class SimdDispatch {
 public:
  explicit SimdDispatch(const char* kernel)
      : counters_{
            &counter(std::string("simd.") + kernel + ".scalar"),
            &counter(std::string("simd.") + kernel + ".avx2"),
            &counter(std::string("simd.") + kernel + ".avx512"),
        },
        gauge_(&gauge("tensor.simd_level")) {}

  util::SimdLevel level() {
    const util::SimdLevel l = util::active_simd_level();
    add(*counters_[static_cast<int>(l)]);
    set(*gauge_, static_cast<double>(util::simd_level_width(l)));
    return l;
  }

 private:
  Counter* counters_[3];
  Gauge* gauge_;
};

}  // namespace gnndse::obs
