#include "obs/report.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace gnndse::obs {

namespace {

// JSON string/number rendering in the style of graphgen/json_export.cpp.
void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void append_number(std::ostringstream& os, double v) {
  // JSON has no inf/nan; clamp to null-free sentinels.
  if (!(v == v)) {
    os << 0;
    return;
  }
  if (v > 1e308) {
    os << 1e308;
    return;
  }
  if (v < -1e308) {
    os << -1e308;
    return;
  }
  os << v;
}

void append_span(std::ostringstream& os, const std::vector<SpanRecord>& spans,
                 const std::vector<std::vector<std::int64_t>>& children,
                 std::int64_t id) {
  const SpanRecord& s = spans[static_cast<std::size_t>(id)];
  os << "{\"name\":";
  append_escaped(os, s.name);
  os << ",\"start_ms\":";
  append_number(os, s.start_ms);
  os << ",\"duration_ms\":";
  append_number(os, s.duration_ms);
  if (s.open) os << ",\"open\":true";
  if (!s.counters.empty()) {
    os << ",\"counters\":{";
    bool first = true;
    for (const auto& [k, v] : s.counters) {
      if (!first) os << ',';
      first = false;
      append_escaped(os, k);
      os << ':';
      append_number(os, v);
    }
    os << '}';
  }
  os << ",\"children\":[";
  bool first = true;
  for (std::int64_t ch : children[static_cast<std::size_t>(id)]) {
    if (!first) os << ',';
    first = false;
    append_span(os, spans, children, ch);
  }
  os << "]}";
}

}  // namespace

std::string report_json(const std::string& tool, double elapsed_seconds) {
  std::ostringstream os;
  os.precision(9);
  os << "{\"schema_version\":1,\"tool\":";
  append_escaped(os, tool);
  os << ",\"elapsed_seconds\":";
  append_number(os, elapsed_seconds);

  os << ",\"counters\":{";
  bool first = true;
  for (const auto& c : counters_snapshot()) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, c.name);
    os << ':' << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges_snapshot()) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, g.name);
    os << ':';
    append_number(os, g.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms_snapshot()) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, h.name);
    os << ":{\"count\":" << h.count << ",\"sum_ms\":";
    append_number(os, h.sum);
    os << ",\"min_ms\":";
    append_number(os, h.min);
    os << ",\"max_ms\":";
    append_number(os, h.max);
    os << ",\"p50_ms\":";
    append_number(os, h.p50);
    os << ",\"p95_ms\":";
    append_number(os, h.p95);
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) os << ',';
      os << "{\"le_ms\":";
      if (i + 1 < h.buckets.size())
        append_number(os, Histogram::bucket_bound(static_cast<int>(i)));
      else
        os << "\"inf\"";
      os << ",\"count\":" << h.buckets[i] << '}';
    }
    os << "]}";
  }

  os << "},\"spans\":[";
  const std::vector<SpanRecord> spans = trace_snapshot();
  std::vector<std::vector<std::int64_t>> children(spans.size());
  std::vector<std::int64_t> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent >= 0 && s.parent < static_cast<std::int64_t>(spans.size()))
      children[static_cast<std::size_t>(s.parent)].push_back(s.id);
    else
      roots.push_back(s.id);
  }
  first = true;
  for (std::int64_t r : roots) {
    if (!first) os << ',';
    first = false;
    append_span(os, spans, children, r);
  }
  os << "]}";
  return os.str();
}

bool write_report(const std::string& path, const std::string& tool,
                  double elapsed_seconds) {
  std::ofstream out(path);
  if (!out) {
    util::log_warn("obs: cannot open report path ", path);
    return false;
  }
  out << report_json(tool, elapsed_seconds) << '\n';
  if (!out.good()) {
    util::log_warn("obs: short write to report path ", path);
    return false;
  }
  return true;
}

ReportSession::ReportSession(std::string tool, std::string path)
    : tool_(std::move(tool)), path_(std::move(path)) {
  if (path_.empty()) {
    const char* env = std::getenv(kReportEnvVar);
    if (env != nullptr && *env != '\0') path_ = env;
  }
  if (path_.empty()) return;
  set_enabled(true);
  root_.emplace("pipeline");
}

ReportSession::~ReportSession() {
  if (path_.empty()) return;
  root_.reset();  // close the root span before exporting
  if (write_report(path_, tool_, timer_.seconds()))
    util::log_info("obs: run report written to ", path_);
}

}  // namespace gnndse::obs
