#include "obs/report.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace gnndse::obs {

namespace {

using jsonu::append_escaped;
using jsonu::append_number;

void append_span(std::ostringstream& os, const std::vector<SpanRecord>& spans,
                 const std::vector<std::vector<std::int64_t>>& children,
                 std::int64_t id) {
  const SpanRecord& s = spans[static_cast<std::size_t>(id)];
  os << "{\"name\":";
  append_escaped(os, s.name);
  os << ",\"tid\":" << s.tid << ",\"start_ms\":";
  append_number(os, s.start_ms);
  os << ",\"duration_ms\":";
  append_number(os, s.duration_ms);
  if (s.open) os << ",\"open\":true";
  if (!s.counters.empty()) {
    os << ",\"counters\":{";
    bool first = true;
    for (const auto& [k, v] : s.counters) {
      if (!first) os << ',';
      first = false;
      append_escaped(os, k);
      os << ':';
      append_number(os, v);
    }
    os << '}';
  }
  os << ",\"children\":[";
  bool first = true;
  for (std::int64_t ch : children[static_cast<std::size_t>(id)]) {
    if (!first) os << ',';
    first = false;
    append_span(os, spans, children, ch);
  }
  os << "]}";
}

/// Path from `explicit_path`, else from `env_var`, else empty.
std::string resolve_path(std::string explicit_path, const char* env_var) {
  if (!explicit_path.empty()) return explicit_path;
  const char* env = std::getenv(env_var);
  if (env != nullptr && *env != '\0') return env;
  return {};
}

double heartbeat_interval_ms() {
  const char* env = std::getenv(kHeartbeatIntervalEnvVar);
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
    util::log_warn("obs: ignoring invalid ", kHeartbeatIntervalEnvVar, "=",
                   env);
  }
  return kHeartbeatDefaultIntervalMs;
}

}  // namespace

std::string report_json(const std::string& tool, double elapsed_seconds) {
  std::ostringstream os;
  os.precision(9);
  // v2: spans carry "tid" (trace-local thread id) so report consumers can
  // distinguish pool-side work from the submitting thread.
  os << "{\"schema_version\":2,\"tool\":";
  append_escaped(os, tool);
  os << ",\"elapsed_seconds\":";
  append_number(os, elapsed_seconds);

  os << ",\"counters\":{";
  bool first = true;
  for (const auto& c : counters_snapshot()) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, c.name);
    os << ':' << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges_snapshot()) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, g.name);
    os << ':';
    append_number(os, g.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms_snapshot()) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, h.name);
    os << ":{\"count\":" << h.count << ",\"sum_ms\":";
    append_number(os, h.sum);
    os << ",\"min_ms\":";
    append_number(os, h.min);
    os << ",\"max_ms\":";
    append_number(os, h.max);
    os << ",\"p50_ms\":";
    append_number(os, h.p50);
    os << ",\"p95_ms\":";
    append_number(os, h.p95);
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) os << ',';
      os << "{\"le_ms\":";
      if (i + 1 < h.buckets.size())
        append_number(os, Histogram::bucket_bound(static_cast<int>(i)));
      else
        os << "\"inf\"";
      os << ",\"count\":" << h.buckets[i] << '}';
    }
    os << "]}";
  }

  os << "},\"spans\":[";
  const std::vector<SpanRecord> spans = trace_snapshot();
  std::vector<std::vector<std::int64_t>> children(spans.size());
  std::vector<std::int64_t> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent >= 0 && s.parent < static_cast<std::int64_t>(spans.size()))
      children[static_cast<std::size_t>(s.parent)].push_back(s.id);
    else
      roots.push_back(s.id);
  }
  first = true;
  for (std::int64_t r : roots) {
    if (!first) os << ',';
    first = false;
    append_span(os, spans, children, r);
  }
  os << "]}";
  return os.str();
}

bool write_report(const std::string& path, const std::string& tool,
                  double elapsed_seconds) {
  std::ofstream out(path);
  if (!out) {
    util::log_warn("obs: cannot open report path ", path);
    return false;
  }
  out << report_json(tool, elapsed_seconds) << '\n';
  if (!out.good()) {
    util::log_warn("obs: short write to report path ", path);
    return false;
  }
  return true;
}

ReportSession::ReportSession(std::string tool, std::string report_path,
                             std::string trace_path,
                             std::string heartbeat_path)
    : tool_(std::move(tool)),
      report_path_(resolve_path(std::move(report_path), kReportEnvVar)),
      trace_path_(resolve_path(std::move(trace_path), kTraceEnvVar)),
      heartbeat_path_(
          resolve_path(std::move(heartbeat_path), kHeartbeatEnvVar)) {
  active_ =
      !(report_path_.empty() && trace_path_.empty() && heartbeat_path_.empty());
  if (!active_) return;
  set_enabled(true);
  set_thread_name("main");
  root_.emplace("pipeline");
  if (!heartbeat_path_.empty())
    heartbeat_ = std::make_unique<HeartbeatSampler>(heartbeat_path_,
                                                    heartbeat_interval_ms());
}

ReportSession::~ReportSession() {
  if (!active_) return;
  // Order matters: stop the sampler (its final NDJSON line captures the
  // end-of-run registry), close the root span so the exporters see it with
  // a real duration, then render the report and trace.
  if (heartbeat_ != nullptr) {
    heartbeat_->stop();
    util::log_info("obs: heartbeat stream written to ", heartbeat_path_);
  }
  root_.reset();
  if (!report_path_.empty() &&
      write_report(report_path_, tool_, timer_.seconds()))
    util::log_info("obs: run report written to ", report_path_);
  if (!trace_path_.empty() && write_chrome_trace(trace_path_, tool_))
    util::log_info("obs: chrome trace written to ", trace_path_);
}

}  // namespace gnndse::obs
