#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

namespace gnndse::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

double Histogram::bucket_bound(int i) {
  // 2^-10 ms (~1 µs) up to 2^20 ms (~17.5 min).
  return std::ldexp(1.0, i - 10);
}

namespace {

int bucket_index(double value_ms) {
  for (int i = 0; i < Histogram::kNumFinite; ++i)
    if (value_ms <= Histogram::bucket_bound(i)) return i;
  return Histogram::kNumFinite;  // overflow
}

/// Relaxed fetch-add / fetch-min / fetch-max for atomic<double> via CAS.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur > v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double value_ms) {
  if (!(value_ms >= 0.0)) value_ms = 0.0;  // clamp negatives and NaN
  buckets_[bucket_index(value_ms)].fetch_add(1, std::memory_order_relaxed);
  // First observation seeds min_ (otherwise min would stick at the 0 init).
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0)
    min_.store(value_ms, std::memory_order_relaxed);
  else
    atomic_min(min_, value_ms);
  atomic_max(max_, value_ms);
  atomic_add(sum_, value_ms);
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::percentile(double q) const {
  const std::int64_t n = count();
  if (n <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n)));
  const std::int64_t target = std::max<std::int64_t>(rank, 1);
  std::int64_t cum = 0;
  for (int i = 0; i <= kNumFinite; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= target) {
      const double bound =
          i < kNumFinite ? bucket_bound(i) : max_.load(std::memory_order_relaxed);
      // A bucket bound can overshoot the largest value actually seen.
      return std::min(bound, max_.load(std::memory_order_relaxed));
    }
  }
  return max_.load(std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(kNumFinite + 1);
  for (int i = 0; i <= kNumFinite; ++i)
    out[static_cast<std::size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (int i = 0; i <= kNumFinite; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

namespace {

/// std::map keeps node addresses stable across inserts, so references
/// handed out by counter()/gauge()/histogram() never dangle.
struct Registry {
  std::mutex mu;
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
};

Registry& registry() {
  // Deliberately leaked: a ReportSession may live as a file-scope static
  // (test_integration, bench binaries under GNNDSE_REPORT) and snapshot the
  // registry during static destruction, after a function-local static here
  // would already be gone.
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.counters[name];
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.gauges[name];
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.histograms[name];
}

std::vector<CounterSnapshot> counters_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<CounterSnapshot> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.push_back({name, c.value()});
  return out;
}

std::vector<GaugeSnapshot> gauges_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<GaugeSnapshot> out;
  out.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) out.push_back({name, g.value()});
  return out;
}

std::vector<HistogramSnapshot> histograms_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<HistogramSnapshot> out;
  out.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms)
    out.push_back({name, h.count(), h.sum(), h.min(), h.max(),
                   h.percentile(0.50), h.percentile(0.95),
                   h.bucket_counts()});
  return out;
}

void clear_trace();  // trace.cpp

void reset_all() {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& [name, c] : r.counters) c.reset();
    for (auto& [name, g] : r.gauges) g.reset();
    for (auto& [name, h] : r.histograms) h.reset();
  }
  clear_trace();
}

}  // namespace gnndse::obs
