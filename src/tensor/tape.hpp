// Reverse-mode automatic differentiation on a linear tape.
//
// A Tape is built fresh for every forward pass (one minibatch of graphs).
// Ops append nodes in topological order; backward() walks the tape in
// reverse. Model weights live outside the tape as Parameter objects; a
// tape leaf created via param() accumulates its gradient back into the
// Parameter when backward() reaches it.
//
// The op set is exactly what the GNN-DSE model needs: dense linear algebra,
// pointwise nonlinearities, and the graph primitives (gather/scatter by edge
// index, segment softmax for attention, segment sums for pooling, and an
// elementwise max over layer outputs for the Jumping Knowledge Network).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace gnndse::tensor {

/// A trainable weight: value plus accumulated gradient, updated by Adam.
struct Parameter {
  Tensor value;
  Tensor grad;

  Parameter() = default;
  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill_(0.0f); }
  std::int64_t numel() const { return value.numel(); }
};

using VarId = std::int32_t;
inline constexpr VarId kInvalidVar = -1;

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- tape construction -------------------------------------------------

  /// Non-differentiable input (e.g. node features).
  VarId constant(Tensor v);

  /// Differentiable leaf bound to an external Parameter; backward()
  /// accumulates into p.grad.
  VarId param(Parameter& p);

  // --- dense ops ----------------------------------------------------------

  VarId matmul(VarId a, VarId b);
  VarId add(VarId a, VarId b);
  VarId sub(VarId a, VarId b);
  VarId mul(VarId a, VarId b);
  VarId scale(VarId a, float s);
  /// a[N,F] + bias[F] broadcast over rows.
  VarId add_rowvec(VarId a, VarId bias);
  VarId concat_cols(const std::vector<VarId>& parts);
  /// Row-wise sum: [N,F] -> [N,1].
  VarId row_sum(VarId a);
  /// col[N,1] * x[N,F], broadcasting the column.
  VarId mul_colbcast(VarId col, VarId x);
  /// Select a single column c of a [N,F] tensor -> [N,1].
  VarId select_col(VarId a, std::int64_t c);

  // --- nonlinearities ------------------------------------------------------

  VarId relu(VarId a);
  VarId leaky_relu(VarId a, float negative_slope = 0.2f);
  VarId elu(VarId a, float alpha = 1.0f);
  VarId sigmoid(VarId a);
  VarId tanh(VarId a);

  // --- graph primitives ----------------------------------------------------

  /// out[i,:] = a[idx[i],:]. Backward scatter-adds into a.
  VarId gather_rows(VarId a, std::vector<std::int32_t> idx);
  /// out[idx[i],:] += a[i,:], out has num_rows rows.
  VarId scatter_add_rows(VarId a, std::vector<std::int32_t> idx,
                         std::int64_t num_rows);
  /// Softmax of scores[E,1] within segments given by seg[E] (values in
  /// [0, num_segments)). Standard max-shifted formulation.
  VarId segment_softmax(VarId scores, std::vector<std::int32_t> seg,
                        std::int64_t num_segments);
  /// Elementwise max over same-shape tensors (JKN combine).
  VarId max_list(const std::vector<VarId>& parts);

  // --- losses (scalar outputs) ---------------------------------------------

  /// Mean squared error against a constant target.
  VarId mse_loss(VarId pred, const Tensor& target);
  /// Weighted MSE: mean of w .* (pred-target)^2 (w broadcast per element).
  VarId mse_loss_weighted(VarId pred, const Tensor& target, const Tensor& w);
  /// Numerically-stable binary cross-entropy on logits.
  VarId bce_with_logits(VarId logits, const Tensor& targets);
  VarId sum_all(VarId a);
  VarId mean_all(VarId a);

  // --- execution ------------------------------------------------------------

  const Tensor& value(VarId id) const { return nodes_[id]->value; }
  /// Gradient of a node; valid after backward(). Zero tensor if untouched.
  const Tensor& grad(VarId id);

  /// Run reverse-mode on a scalar output. May be called once per tape.
  void backward(VarId loss);

  std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;  // lazily allocated; empty until touched
    bool requires_grad = false;
    // Invoked in reverse tape order; reads this->grad, accumulates parents'.
    std::function<void(Tape&)> backward_fn;
  };

  VarId push(Tensor value, bool requires_grad,
             std::function<void(Tape&)> backward_fn);
  Tensor& grad_ref(VarId id);
  bool wants_grad(VarId id) const { return nodes_[id]->requires_grad; }

  std::vector<std::unique_ptr<Node>> nodes_;
  bool backward_done_ = false;
};

}  // namespace gnndse::tensor
