// Matmul kernel variants. This TU is compiled with the portable baseline
// flags; the AVX2/AVX-512 bodies opt into their ISA via per-function target
// attributes, so one binary carries every variant and the dispatch level
// picks at runtime. FMA is deliberately never enabled: the scalar baseline
// (plain x86-64 has no FMA instruction) rounds the multiply and the add
// separately, and the vector variants must produce the same bits.
#include "tensor/simd.hpp"

#include <algorithm>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GNNDSE_X86 1
#endif

namespace gnndse::tensor::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar tile (the reference bits; also the partial-tile path of every
// level). kFullTile lets the compiler fully unroll the kJt-wide loops.
// ---------------------------------------------------------------------------

template <bool kFullTile>
void tile_scalar(const float* ap, const float* bp, float* o, std::int64_t i0,
                 std::int64_t i1, std::int64_t k, std::int64_t n,
                 std::int64_t x0, std::int64_t x1, std::int64_t j0,
                 std::int64_t jt, bool init, const float* bias) {
  const bool last = x1 == k;
  for (std::int64_t i = i0; i < i1; ++i) {
    float acc[kJt];
    float* orow = o + i * n + j0;
    const std::int64_t w = kFullTile ? kJt : jt;
    if (init)
      for (std::int64_t jj = 0; jj < w; ++jj) acc[jj] = 0.0f;
    else
      for (std::int64_t jj = 0; jj < w; ++jj) acc[jj] = orow[jj];
    const float* arow = ap + i * k;
    for (std::int64_t x = x0; x < x1; ++x) {
      const float av_ix = arow[x];
      if (av_ix == 0.0f) continue;
      const float* brow = bp + x * n + j0;
      for (std::int64_t jj = 0; jj < w; ++jj) acc[jj] += av_ix * brow[jj];
    }
    if (last && bias != nullptr)
      for (std::int64_t jj = 0; jj < w; ++jj) acc[jj] += bias[j0 + jj];
    for (std::int64_t jj = 0; jj < w; ++jj) orow[jj] = acc[jj];
  }
}

#ifdef GNNDSE_X86

// ---------------------------------------------------------------------------
// AVX2 full tile: 4 ymm accumulators = the 32-float column tile. Per k
// step: broadcast a[i,x], then mul + add per lane — each output column's
// additions stay in ascending-x order, so the bits match tile_scalar. The
// a == 0 skip is kept: it is observable (0 * inf, -0 + 0) and part of the
// scalar kernel's semantics.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void tile_avx2(
    const float* ap, const float* bp, float* o, std::int64_t i0,
    std::int64_t i1, std::int64_t k, std::int64_t n, std::int64_t x0,
    std::int64_t x1, std::int64_t j0, bool init, const float* bias) {
  const bool last = x1 == k;
  for (std::int64_t i = i0; i < i1; ++i) {
    float* orow = o + i * n + j0;
    __m256 acc0, acc1, acc2, acc3;
    if (init) {
      acc0 = acc1 = acc2 = acc3 = _mm256_setzero_ps();
    } else {
      acc0 = _mm256_loadu_ps(orow);
      acc1 = _mm256_loadu_ps(orow + 8);
      acc2 = _mm256_loadu_ps(orow + 16);
      acc3 = _mm256_loadu_ps(orow + 24);
    }
    const float* arow = ap + i * k;
    for (std::int64_t x = x0; x < x1; ++x) {
      const float av_ix = arow[x];
      if (av_ix == 0.0f) continue;
      const __m256 av = _mm256_set1_ps(av_ix);
      const float* brow = bp + x * n + j0;
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 16)));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 24)));
    }
    if (last && bias != nullptr) {
      acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(bias + j0));
      acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(bias + j0 + 8));
      acc2 = _mm256_add_ps(acc2, _mm256_loadu_ps(bias + j0 + 16));
      acc3 = _mm256_add_ps(acc3, _mm256_loadu_ps(bias + j0 + 24));
    }
    _mm256_storeu_ps(orow, acc0);
    _mm256_storeu_ps(orow + 8, acc1);
    _mm256_storeu_ps(orow + 16, acc2);
    _mm256_storeu_ps(orow + 24, acc3);
  }
}

// AVX-512 full tile: 2 zmm accumulators, same order contract.
__attribute__((target("avx512f"))) void tile_avx512(
    const float* ap, const float* bp, float* o, std::int64_t i0,
    std::int64_t i1, std::int64_t k, std::int64_t n, std::int64_t x0,
    std::int64_t x1, std::int64_t j0, bool init, const float* bias) {
  const bool last = x1 == k;
  for (std::int64_t i = i0; i < i1; ++i) {
    float* orow = o + i * n + j0;
    __m512 acc0, acc1;
    if (init) {
      acc0 = acc1 = _mm512_setzero_ps();
    } else {
      acc0 = _mm512_loadu_ps(orow);
      acc1 = _mm512_loadu_ps(orow + 16);
    }
    const float* arow = ap + i * k;
    for (std::int64_t x = x0; x < x1; ++x) {
      const float av_ix = arow[x];
      if (av_ix == 0.0f) continue;
      const __m512 av = _mm512_set1_ps(av_ix);
      const float* brow = bp + x * n + j0;
      acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(av, _mm512_loadu_ps(brow)));
      acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(av, _mm512_loadu_ps(brow + 16)));
    }
    if (last && bias != nullptr) {
      acc0 = _mm512_add_ps(acc0, _mm512_loadu_ps(bias + j0));
      acc1 = _mm512_add_ps(acc1, _mm512_loadu_ps(bias + j0 + 16));
    }
    _mm512_storeu_ps(orow, acc0);
    _mm512_storeu_ps(orow + 16, acc1);
  }
}

#endif  // GNNDSE_X86

}  // namespace

void matmul_rows(util::SimdLevel level, const float* ap, const float* bp,
                 float* o, std::int64_t i0, std::int64_t i1, std::int64_t k,
                 std::int64_t n, bool init, const float* bias) {
#ifndef GNNDSE_X86
  level = util::SimdLevel::kScalar;
#endif
  for (std::int64_t x0 = 0; x0 < k; x0 += kKc) {
    const std::int64_t x1 = std::min(k, x0 + kKc);
    const bool panel_init = init && x0 == 0;
    for (std::int64_t j0 = 0; j0 < n; j0 += kJt) {
      const std::int64_t jt = std::min(kJt, n - j0);
      if (jt == kJt) {
        switch (level) {
#ifdef GNNDSE_X86
          case util::SimdLevel::kAvx512:
            tile_avx512(ap, bp, o, i0, i1, k, n, x0, x1, j0, panel_init, bias);
            continue;
          case util::SimdLevel::kAvx2:
            tile_avx2(ap, bp, o, i0, i1, k, n, x0, x1, j0, panel_init, bias);
            continue;
#endif
          default:
            tile_scalar<true>(ap, bp, o, i0, i1, k, n, x0, x1, j0, jt,
                              panel_init, bias);
            continue;
        }
      }
      tile_scalar<false>(ap, bp, o, i0, i1, k, n, x0, x1, j0, jt, panel_init,
                         bias);
    }
  }
}

}  // namespace gnndse::tensor::simd
