// Adam optimizer (Kingma & Ba, 2014) — the paper trains with Adam at
// learning rate 1e-3 (§5.1).
#pragma once

#include <vector>

#include "tensor/tape.hpp"

namespace gnndse::tensor {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Holds first/second moment state per registered Parameter and applies
/// bias-corrected updates. Parameters are registered once and must outlive
/// the optimizer.
class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  void register_param(Parameter& p);
  void register_params(const std::vector<Parameter*>& ps);

  /// Applies one update from the gradients currently accumulated in each
  /// parameter's .grad, then leaves the gradients untouched (call
  /// zero_grad() separately).
  void step();

  void zero_grad();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  std::size_t num_params() const { return slots_.size(); }

 private:
  struct Slot {
    Parameter* param;
    Tensor m;  // first moment
    Tensor v;  // second moment
  };

  AdamConfig config_;
  std::vector<Slot> slots_;
  long step_count_ = 0;
};

}  // namespace gnndse::tensor
