// Weight initialization schemes.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace gnndse::tensor {

/// Xavier/Glorot uniform init for a [fan_in, fan_out] weight matrix.
Tensor xavier_uniform(std::int64_t fan_in, std::int64_t fan_out,
                      util::Rng& rng);

/// Kaiming/He normal init (for ReLU-family activations).
Tensor kaiming_normal(std::int64_t fan_in, std::int64_t fan_out,
                      util::Rng& rng);

/// Uniform in [-bound, bound].
Tensor uniform_init(std::vector<std::int64_t> shape, float bound,
                    util::Rng& rng);

}  // namespace gnndse::tensor
