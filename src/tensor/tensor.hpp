// Dense row-major float32 tensor used throughout the GNN stack.
//
// Scope: 1-D and 2-D tensors are the workhorses (node-feature matrices,
// weight matrices, per-edge score columns). The class stores a flat
// std::vector<float> with value semantics; all autodiff lives in tape.hpp.
#pragma once

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/aligned.hpp"

namespace gnndse::tensor {

class Tensor {
 public:
  /// Backing store: 64-byte-aligned so the SIMD kernel layer's full-width
  /// vector loads on tensor bases never straddle cache lines.
  using Storage = util::AlignedVector<float>;

  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);

  /// Tensor with explicit contents; data.size() must equal the shape volume
  /// (copied into aligned storage).
  Tensor(std::vector<std::int64_t> shape, const std::vector<float>& data);

  static Tensor zeros(std::vector<std::int64_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor full(std::vector<std::int64_t> shape, float value);
  static Tensor scalar(float value) { return Tensor({1}, {value}); }

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }

  /// Rows/cols of a 2-D tensor (rows of a 1-D tensor = numel, cols = 1).
  /// Inline: at(r, c) calls cols() per element, so these sit on the hot
  /// path of every row-indexed kernel.
  std::int64_t rows() const {
    return shape_.empty() ? 0 : shape_[0];
  }
  std::int64_t cols() const {
    if (shape_.empty()) return 0;
    std::int64_t c = 1;
    for (std::size_t i = 1; i < shape_.size(); ++i) c *= shape_[i];
    return c;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float at(std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }
  float& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * cols() + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols() + c)];
  }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Reshape without copying; new volume must match.
  Tensor reshaped(std::vector<std::int64_t> shape) const;

  /// In-place reshape that reuses the existing allocation whenever the
  /// new volume fits the current capacity (the workspace-slot reuse in
  /// gnn::InferenceSession depends on this being allocation-free in steady
  /// state). `zero` clears the contents; otherwise they are unspecified
  /// and the caller must overwrite every element.
  void reset_(std::vector<std::int64_t> shape, bool zero);

  /// In-place accumulation: *this += other (shapes must match).
  void add_(const Tensor& other);
  /// In-place scaling: *this *= s.
  void scale_(float s);
  /// Set all entries to v.
  void fill_(float v);

  float sum() const;
  float min() const;
  float max() const;
  float mean() const;
  /// Frobenius / L2 norm.
  float norm() const;

  std::string shape_str() const;

 private:
  std::vector<std::int64_t> shape_;
  Storage data_;
};

std::ostream& operator<<(std::ostream& os, const Tensor& t);

// ---------------------------------------------------------------------------
// Raw (non-autodiff) kernels. The tape ops in tape.cpp call into these for
// both forward values and gradient accumulation.
// ---------------------------------------------------------------------------

/// C = op(A) x op(B) where op is optional transpose. Shapes are checked.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// C += op(A) x op(B) into an existing output (used for grad accumulation).
/// Above a FLOP threshold, rows of the output are split across the global
/// thread pool (util/parallel.hpp) with an L2-blocked kernel; per-element
/// accumulation order is fixed, so results are bit-identical at every
/// thread count. Transposed operands are packed once into thread-local
/// scratch shared read-only by all row chunks.
void matmul_acc(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                Tensor& out);

/// C = A x B (+ bias per row), overwriting `out` — no zero fill needed.
/// Per-element arithmetic is the same ascending-k sum from zero as
/// matmul_acc on a zeroed output, followed by the same single bias add as
/// add_rowvec, so results are bit-identical to that two-op sequence; this
/// entry just skips the memset and the extra memory sweep (the inference
/// fast path's Linear uses it).
void matmul_bias(const Tensor& a, const Tensor& b, const Tensor* bias,
                 Tensor& out);

/// Elementwise binary ops (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

/// out[r, :] = a[r, :] + bias[:]  (bias is 1-D of length a.cols()).
Tensor add_rowvec(const Tensor& a, const Tensor& bias);

/// Gather rows: out[i, :] = a[idx[i], :].
Tensor gather_rows(const Tensor& a, const std::vector<std::int32_t>& idx);

/// Scatter-add rows: out[idx[i], :] += a[i, :]; out has `num_rows` rows.
Tensor scatter_add_rows(const Tensor& a, const std::vector<std::int32_t>& idx,
                        std::int64_t num_rows);

/// Concatenate along columns; all inputs must share the row count.
Tensor concat_cols(const std::vector<const Tensor*>& parts);

/// Process-wide monotonic version of all trainable parameters: bumped by
/// every Adam::step() and load_params() call. Inference-side caches of
/// weight-derived values (e.g. TransformerConv's per-batch edge
/// projections) key on it so a training step or weight load can never
/// serve stale results.
std::uint64_t params_version();
void bump_params_version();

}  // namespace gnndse::tensor
