#include "tensor/init.hpp"

#include <cmath>

namespace gnndse::tensor {

Tensor xavier_uniform(std::int64_t fan_in, std::int64_t fan_out,
                      util::Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return uniform_init({fan_in, fan_out}, bound, rng);
}

Tensor kaiming_normal(std::int64_t fan_in, std::int64_t fan_out,
                      util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  Tensor t({fan_in, fan_out});
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor uniform_init(std::vector<std::int64_t> shape, float bound,
                    util::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-bound, bound));
  return t;
}

}  // namespace gnndse::tensor
