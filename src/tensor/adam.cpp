#include "tensor/adam.hpp"

#include <cmath>

namespace gnndse::tensor {

void Adam::register_param(Parameter& p) {
  slots_.push_back(Slot{&p, Tensor(p.value.shape()), Tensor(p.value.shape())});
}

void Adam::register_params(const std::vector<Parameter*>& ps) {
  for (Parameter* p : ps) register_param(*p);
}

void Adam::step() {
  bump_params_version();
  ++step_count_;
  const float b1 = config_.beta1, b2 = config_.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step_count_));
  for (Slot& s : slots_) {
    float* w = s.param->value.data();
    const float* g = s.param->grad.data();
    float* m = s.m.data();
    float* v = s.v.data();
    const std::int64_t n = s.param->numel();
    for (std::int64_t i = 0; i < n; ++i) {
      float gi = g[i];
      if (config_.weight_decay != 0.0f) gi += config_.weight_decay * w[i];
      m[i] = b1 * m[i] + (1.0f - b1) * gi;
      v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

void Adam::zero_grad() {
  for (Slot& s : slots_) s.param->zero_grad();
}

}  // namespace gnndse::tensor
