#include "tensor/tape.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gnndse::tensor {

VarId Tape::push(Tensor value, bool requires_grad,
                 std::function<void(Tape&)> backward_fn) {
  auto node = std::make_unique<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->backward_fn = std::move(backward_fn);
  nodes_.push_back(std::move(node));
  return static_cast<VarId>(nodes_.size() - 1);
}

Tensor& Tape::grad_ref(VarId id) {
  Node& n = *nodes_[id];
  if (n.grad.numel() == 0) n.grad = Tensor(n.value.shape());
  return n.grad;
}

const Tensor& Tape::grad(VarId id) { return grad_ref(id); }

VarId Tape::constant(Tensor v) { return push(std::move(v), false, nullptr); }

VarId Tape::param(Parameter& p) {
  Parameter* pp = &p;
  VarId id = push(p.value, true, nullptr);
  nodes_[id]->backward_fn = [id, pp](Tape& t) {
    pp->grad.add_(t.grad_ref(id));
  };
  return id;
}

// ---------------------------------------------------------------------------
// Dense ops.
// ---------------------------------------------------------------------------

VarId Tape::matmul(VarId a, VarId b) {
  Tensor out = tensor::matmul(value(a), value(b));
  bool rg = wants_grad(a) || wants_grad(b);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, b, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      if (t.wants_grad(a))
        matmul_acc(g, t.value(b), false, true, t.grad_ref(a));
      if (t.wants_grad(b))
        matmul_acc(t.value(a), g, true, false, t.grad_ref(b));
    };
  }
  return id;
}

VarId Tape::add(VarId a, VarId b) {
  Tensor out = tensor::add(value(a), value(b));
  bool rg = wants_grad(a) || wants_grad(b);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, b, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      if (t.wants_grad(a)) t.grad_ref(a).add_(g);
      if (t.wants_grad(b)) t.grad_ref(b).add_(g);
    };
  }
  return id;
}

VarId Tape::sub(VarId a, VarId b) {
  Tensor out = tensor::sub(value(a), value(b));
  bool rg = wants_grad(a) || wants_grad(b);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, b, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      if (t.wants_grad(a)) t.grad_ref(a).add_(g);
      if (t.wants_grad(b)) {
        Tensor& gb = t.grad_ref(b);
        const float* gp = g.data();
        float* bp = gb.data();
        for (std::int64_t i = 0; i < gb.numel(); ++i) bp[i] -= gp[i];
      }
    };
  }
  return id;
}

VarId Tape::mul(VarId a, VarId b) {
  Tensor out = tensor::mul(value(a), value(b));
  bool rg = wants_grad(a) || wants_grad(b);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, b, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      if (t.wants_grad(a)) t.grad_ref(a).add_(tensor::mul(g, t.value(b)));
      if (t.wants_grad(b)) t.grad_ref(b).add_(tensor::mul(g, t.value(a)));
    };
  }
  return id;
}

VarId Tape::scale(VarId a, float s) {
  Tensor out = value(a);
  out.scale_(s);
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, s, id](Tape& t) {
      Tensor g = t.grad_ref(id);
      g.scale_(s);
      t.grad_ref(a).add_(g);
    };
  }
  return id;
}

VarId Tape::add_rowvec(VarId a, VarId bias) {
  Tensor out = tensor::add_rowvec(value(a), value(bias));
  bool rg = wants_grad(a) || wants_grad(bias);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, bias, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      if (t.wants_grad(a)) t.grad_ref(a).add_(g);
      if (t.wants_grad(bias)) {
        Tensor& gb = t.grad_ref(bias);
        const std::int64_t r = g.rows(), c = g.cols();
        const float* gp = g.data();
        float* bp = gb.data();
        for (std::int64_t i = 0; i < r; ++i)
          for (std::int64_t j = 0; j < c; ++j) bp[j] += gp[i * c + j];
      }
    };
  }
  return id;
}

VarId Tape::concat_cols(const std::vector<VarId>& parts) {
  std::vector<const Tensor*> vs;
  vs.reserve(parts.size());
  bool rg = false;
  for (VarId p : parts) {
    vs.push_back(&value(p));
    rg = rg || wants_grad(p);
  }
  Tensor out = tensor::concat_cols(vs);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    std::vector<VarId> ps = parts;
    nodes_[id]->backward_fn = [ps, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      const std::int64_t r = g.rows(), total_c = g.cols();
      std::int64_t off = 0;
      for (VarId p : ps) {
        const std::int64_t c = t.value(p).cols();
        if (t.wants_grad(p)) {
          Tensor& gp = t.grad_ref(p);
          for (std::int64_t i = 0; i < r; ++i)
            for (std::int64_t j = 0; j < c; ++j)
              gp.at(i, j) += g.data()[i * total_c + off + j];
        }
        off += c;
      }
    };
  }
  return id;
}

VarId Tape::row_sum(VarId a) {
  const Tensor& av = value(a);
  const std::int64_t r = av.rows(), c = av.cols();
  Tensor out({r, 1});
  for (std::int64_t i = 0; i < r; ++i) {
    float acc = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) acc += av.at(i, j);
    out.at(i, 0) = acc;
  }
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      Tensor& ga = t.grad_ref(a);
      const std::int64_t r2 = ga.rows(), c2 = ga.cols();
      for (std::int64_t i = 0; i < r2; ++i) {
        const float gi = g.at(i, 0);
        for (std::int64_t j = 0; j < c2; ++j) ga.at(i, j) += gi;
      }
    };
  }
  return id;
}

VarId Tape::mul_colbcast(VarId col, VarId x) {
  const Tensor& cv = value(col);
  const Tensor& xv = value(x);
  if (cv.rows() != xv.rows() || cv.cols() != 1)
    throw std::invalid_argument("mul_colbcast: col must be [N,1]");
  const std::int64_t r = xv.rows(), c = xv.cols();
  Tensor out({r, c});
  for (std::int64_t i = 0; i < r; ++i) {
    const float s = cv.at(i, 0);
    for (std::int64_t j = 0; j < c; ++j) out.at(i, j) = s * xv.at(i, j);
  }
  bool rg = wants_grad(col) || wants_grad(x);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [col, x, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      const Tensor& cv2 = t.value(col);
      const Tensor& xv2 = t.value(x);
      const std::int64_t r2 = xv2.rows(), c2 = xv2.cols();
      if (t.wants_grad(col)) {
        Tensor& gc = t.grad_ref(col);
        for (std::int64_t i = 0; i < r2; ++i) {
          float acc = 0.0f;
          for (std::int64_t j = 0; j < c2; ++j) acc += g.at(i, j) * xv2.at(i, j);
          gc.at(i, 0) += acc;
        }
      }
      if (t.wants_grad(x)) {
        Tensor& gx = t.grad_ref(x);
        for (std::int64_t i = 0; i < r2; ++i) {
          const float s = cv2.at(i, 0);
          for (std::int64_t j = 0; j < c2; ++j) gx.at(i, j) += s * g.at(i, j);
        }
      }
    };
  }
  return id;
}

VarId Tape::select_col(VarId a, std::int64_t c) {
  const Tensor& av = value(a);
  if (c < 0 || c >= av.cols())
    throw std::invalid_argument("select_col: column out of range");
  const std::int64_t r = av.rows(), cols = av.cols();
  Tensor out({r, 1});
  for (std::int64_t i = 0; i < r; ++i) out.at(i, 0) = av.at(i, c);
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, c, cols, id](Tape& t) {
      (void)cols;
      const Tensor& g = t.grad_ref(id);
      Tensor& ga = t.grad_ref(a);
      for (std::int64_t i = 0; i < g.rows(); ++i) ga.at(i, c) += g.at(i, 0);
    };
  }
  return id;
}

// ---------------------------------------------------------------------------
// Nonlinearities.
// ---------------------------------------------------------------------------

namespace {

template <typename Fwd>
Tensor map_unary(const Tensor& in, Fwd f) {
  Tensor out = in;
  float* p = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) p[i] = f(p[i]);
  return out;
}

}  // namespace

VarId Tape::relu(VarId a) {
  Tensor out = map_unary(value(a), [](float x) { return x > 0 ? x : 0.0f; });
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      const Tensor& x = t.value(a);
      Tensor& ga = t.grad_ref(a);
      for (std::int64_t i = 0; i < x.numel(); ++i)
        if (x.at(i) > 0) ga.at(i) += g.at(i);
    };
  }
  return id;
}

VarId Tape::leaky_relu(VarId a, float negative_slope) {
  const float s = negative_slope;
  Tensor out = map_unary(value(a), [s](float x) { return x > 0 ? x : s * x; });
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, s, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      const Tensor& x = t.value(a);
      Tensor& ga = t.grad_ref(a);
      for (std::int64_t i = 0; i < x.numel(); ++i)
        ga.at(i) += (x.at(i) > 0 ? 1.0f : s) * g.at(i);
    };
  }
  return id;
}

VarId Tape::elu(VarId a, float alpha) {
  Tensor out = map_unary(value(a), [alpha](float x) {
    return x > 0 ? x : alpha * (std::exp(x) - 1.0f);
  });
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, alpha, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      const Tensor& x = t.value(a);
      const Tensor& y = t.value(id);
      Tensor& ga = t.grad_ref(a);
      for (std::int64_t i = 0; i < x.numel(); ++i)
        ga.at(i) += (x.at(i) > 0 ? 1.0f : y.at(i) + alpha) * g.at(i);
    };
  }
  return id;
}

VarId Tape::sigmoid(VarId a) {
  Tensor out = map_unary(value(a), [](float x) {
    // Branch on sign for numerical stability.
    if (x >= 0) {
      const float e = std::exp(-x);
      return 1.0f / (1.0f + e);
    }
    const float e = std::exp(x);
    return e / (1.0f + e);
  });
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      const Tensor& y = t.value(id);
      Tensor& ga = t.grad_ref(a);
      for (std::int64_t i = 0; i < y.numel(); ++i)
        ga.at(i) += y.at(i) * (1.0f - y.at(i)) * g.at(i);
    };
  }
  return id;
}

VarId Tape::tanh(VarId a) {
  Tensor out = map_unary(value(a), [](float x) { return std::tanh(x); });
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      const Tensor& y = t.value(id);
      Tensor& ga = t.grad_ref(a);
      for (std::int64_t i = 0; i < y.numel(); ++i)
        ga.at(i) += (1.0f - y.at(i) * y.at(i)) * g.at(i);
    };
  }
  return id;
}

// ---------------------------------------------------------------------------
// Graph primitives.
// ---------------------------------------------------------------------------

VarId Tape::gather_rows(VarId a, std::vector<std::int32_t> idx) {
  Tensor out = tensor::gather_rows(value(a), idx);
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    auto idx_sh = std::make_shared<std::vector<std::int32_t>>(std::move(idx));
    nodes_[id]->backward_fn = [a, idx_sh, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      Tensor& ga = t.grad_ref(a);
      const std::int64_t c = ga.cols();
      for (std::size_t i = 0; i < idx_sh->size(); ++i) {
        const float* src = g.data() + static_cast<std::int64_t>(i) * c;
        float* dst = ga.data() + static_cast<std::int64_t>((*idx_sh)[i]) * c;
        for (std::int64_t j = 0; j < c; ++j) dst[j] += src[j];
      }
    };
  }
  return id;
}

VarId Tape::scatter_add_rows(VarId a, std::vector<std::int32_t> idx,
                             std::int64_t num_rows) {
  Tensor out = tensor::scatter_add_rows(value(a), idx, num_rows);
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    auto idx_sh = std::make_shared<std::vector<std::int32_t>>(std::move(idx));
    nodes_[id]->backward_fn = [a, idx_sh, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      Tensor& ga = t.grad_ref(a);
      const std::int64_t c = ga.cols();
      for (std::size_t i = 0; i < idx_sh->size(); ++i) {
        const float* src = g.data() + static_cast<std::int64_t>((*idx_sh)[i]) * c;
        float* dst = ga.data() + static_cast<std::int64_t>(i) * c;
        for (std::int64_t j = 0; j < c; ++j) dst[j] += src[j];
      }
    };
  }
  return id;
}

VarId Tape::segment_softmax(VarId scores, std::vector<std::int32_t> seg,
                            std::int64_t num_segments) {
  const Tensor& sv = value(scores);
  if (sv.cols() != 1 || static_cast<std::int64_t>(seg.size()) != sv.rows())
    throw std::invalid_argument("segment_softmax: scores must be [E,1]");
  const std::int64_t e = sv.rows();

  // Forward: max-shifted exp / segment sum.
  std::vector<float> seg_max(static_cast<std::size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (std::int64_t i = 0; i < e; ++i)
    seg_max[seg[i]] = std::max(seg_max[seg[i]], sv.at(i, 0));
  Tensor out({e, 1});
  std::vector<float> seg_sum(static_cast<std::size_t>(num_segments), 0.0f);
  for (std::int64_t i = 0; i < e; ++i) {
    const float v = std::exp(sv.at(i, 0) - seg_max[seg[i]]);
    out.at(i, 0) = v;
    seg_sum[seg[i]] += v;
  }
  for (std::int64_t i = 0; i < e; ++i) {
    const float denom = seg_sum[seg[i]];
    out.at(i, 0) = denom > 0 ? out.at(i, 0) / denom : 0.0f;
  }

  bool rg = wants_grad(scores);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    auto seg_sh = std::make_shared<std::vector<std::int32_t>>(std::move(seg));
    nodes_[id]->backward_fn = [scores, seg_sh, num_segments, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      const Tensor& y = t.value(id);
      Tensor& gs = t.grad_ref(scores);
      // dx_i = y_i * (g_i - sum_{j in seg(i)} g_j * y_j)
      std::vector<float> seg_dot(static_cast<std::size_t>(num_segments), 0.0f);
      const std::int64_t e2 = y.rows();
      for (std::int64_t i = 0; i < e2; ++i)
        seg_dot[(*seg_sh)[i]] += g.at(i, 0) * y.at(i, 0);
      for (std::int64_t i = 0; i < e2; ++i)
        gs.at(i, 0) += y.at(i, 0) * (g.at(i, 0) - seg_dot[(*seg_sh)[i]]);
    };
  }
  return id;
}

VarId Tape::max_list(const std::vector<VarId>& parts) {
  if (parts.empty()) throw std::invalid_argument("max_list: empty input");
  const Tensor& first = value(parts[0]);
  Tensor out = first;
  auto argmax =
      std::make_shared<std::vector<std::uint16_t>>(first.numel(), 0);
  bool rg = wants_grad(parts[0]);
  for (std::size_t k = 1; k < parts.size(); ++k) {
    const Tensor& v = value(parts[k]);
    if (!v.same_shape(first))
      throw std::invalid_argument("max_list: shape mismatch");
    rg = rg || wants_grad(parts[k]);
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      if (v.at(i) > out.at(i)) {
        out.at(i) = v.at(i);
        (*argmax)[i] = static_cast<std::uint16_t>(k);
      }
    }
  }
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    std::vector<VarId> ps = parts;
    nodes_[id]->backward_fn = [ps, argmax, id](Tape& t) {
      const Tensor& g = t.grad_ref(id);
      for (std::int64_t i = 0; i < g.numel(); ++i) {
        const VarId winner = ps[(*argmax)[i]];
        if (t.wants_grad(winner)) t.grad_ref(winner).at(i) += g.at(i);
      }
    };
  }
  return id;
}

// ---------------------------------------------------------------------------
// Losses and reductions.
// ---------------------------------------------------------------------------

VarId Tape::sum_all(VarId a) {
  Tensor out = Tensor::scalar(value(a).sum());
  bool rg = wants_grad(a);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    nodes_[id]->backward_fn = [a, id](Tape& t) {
      const float g = t.grad_ref(id).at(0);
      Tensor& ga = t.grad_ref(a);
      for (std::int64_t i = 0; i < ga.numel(); ++i) ga.at(i) += g;
    };
  }
  return id;
}

VarId Tape::mean_all(VarId a) {
  const std::int64_t n = value(a).numel();
  VarId s = sum_all(a);
  return scale(s, 1.0f / static_cast<float>(n));
}

VarId Tape::mse_loss(VarId pred, const Tensor& target) {
  const Tensor& p = value(pred);
  if (!p.same_shape(target))
    throw std::invalid_argument("mse_loss: shape mismatch");
  const std::int64_t n = p.numel();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = p.at(i) - target.at(i);
    acc += d * d;
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc / n));
  bool rg = wants_grad(pred);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    auto tgt = std::make_shared<Tensor>(target);
    nodes_[id]->backward_fn = [pred, tgt, n, id](Tape& t) {
      const float g = t.grad_ref(id).at(0);
      const Tensor& p2 = t.value(pred);
      Tensor& gp = t.grad_ref(pred);
      const float k = 2.0f * g / static_cast<float>(n);
      for (std::int64_t i = 0; i < n; ++i)
        gp.at(i) += k * (p2.at(i) - tgt->at(i));
    };
  }
  return id;
}

VarId Tape::mse_loss_weighted(VarId pred, const Tensor& target,
                              const Tensor& w) {
  const Tensor& p = value(pred);
  if (!p.same_shape(target) || !p.same_shape(w))
    throw std::invalid_argument("mse_loss_weighted: shape mismatch");
  const std::int64_t n = p.numel();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = p.at(i) - target.at(i);
    acc += w.at(i) * d * d;
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc / n));
  bool rg = wants_grad(pred);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    auto tgt = std::make_shared<Tensor>(target);
    auto ww = std::make_shared<Tensor>(w);
    nodes_[id]->backward_fn = [pred, tgt, ww, n, id](Tape& t) {
      const float g = t.grad_ref(id).at(0);
      const Tensor& p2 = t.value(pred);
      Tensor& gp = t.grad_ref(pred);
      const float k = 2.0f * g / static_cast<float>(n);
      for (std::int64_t i = 0; i < n; ++i)
        gp.at(i) += k * ww->at(i) * (p2.at(i) - tgt->at(i));
    };
  }
  return id;
}

VarId Tape::bce_with_logits(VarId logits, const Tensor& targets) {
  const Tensor& z = value(logits);
  if (!z.same_shape(targets))
    throw std::invalid_argument("bce_with_logits: shape mismatch");
  const std::int64_t n = z.numel();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double x = z.at(i), t = targets.at(i);
    // max(x,0) - x*t + log(1+exp(-|x|)) — numerically stable.
    acc += std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::abs(x)));
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc / n));
  bool rg = wants_grad(logits);
  VarId id = push(std::move(out), rg, nullptr);
  if (rg) {
    auto tgt = std::make_shared<Tensor>(targets);
    nodes_[id]->backward_fn = [logits, tgt, n, id](Tape& t) {
      const float g = t.grad_ref(id).at(0);
      const Tensor& z2 = t.value(logits);
      Tensor& gz = t.grad_ref(logits);
      const float k = g / static_cast<float>(n);
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = z2.at(i);
        float sig;
        if (x >= 0) {
          const float e = std::exp(-x);
          sig = 1.0f / (1.0f + e);
        } else {
          const float e = std::exp(x);
          sig = e / (1.0f + e);
        }
        gz.at(i) += k * (sig - tgt->at(i));
      }
    };
  }
  return id;
}

void Tape::backward(VarId loss) {
  if (backward_done_)
    throw std::logic_error("Tape::backward called twice on the same tape");
  backward_done_ = true;
  if (value(loss).numel() != 1)
    throw std::invalid_argument("Tape::backward: loss must be a scalar");
  grad_ref(loss).fill_(1.0f);
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    Node& n = **it;
    if (!n.requires_grad || !n.backward_fn) continue;
    if (n.grad.numel() == 0) continue;  // never touched: no downstream use
    n.backward_fn(*this);
  }
}

}  // namespace gnndse::tensor
