#include "tensor/tensor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/simd_counters.hpp"
#include "tensor/simd.hpp"
#include "util/parallel.hpp"

namespace gnndse::tensor {
namespace {

std::size_t volume(const std::vector<std::int64_t>& shape) {
  std::size_t v = 1;
  for (auto d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    v *= static_cast<std::size_t>(d);
  }
  return v;
}

}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), data_(volume(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::int64_t> shape, const std::vector<float>& data)
    : shape_(std::move(shape)), data_(data.begin(), data.end()) {
  if (data_.size() != volume(shape_))
    throw std::invalid_argument("Tensor: data size does not match shape");
}


Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::reshaped(std::vector<std::int64_t> shape) const {
  if (static_cast<std::int64_t>(volume(shape)) != numel())
    throw std::invalid_argument("Tensor::reshaped: volume mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::reset_(std::vector<std::int64_t> shape, bool zero) {
  const std::size_t v = volume(shape);
  if (zero)
    data_.assign(v, 0.0f);
  else
    data_.resize(v);
  shape_ = std::move(shape);
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(other))
    throw std::invalid_argument("Tensor::add_: shape mismatch " + shape_str() +
                                " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Tensor::scale_(float s) {
  for (auto& v : data_) v *= s;
}

void Tensor::fill_(float v) { std::fill(data_.begin(), data_.end(), v); }

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::min() const {
  if (data_.empty()) throw std::runtime_error("Tensor::min on empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::runtime_error("Tensor::max on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

float Tensor::norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::string Tensor::shape_str() const {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) oss << ", ";
    oss << shape_[i];
  }
  oss << ']';
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << t.shape_str() << " {";
  const std::int64_t n = std::min<std::int64_t>(t.numel(), 8);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << t.at(i);
  }
  if (t.numel() > n) os << ", ...";
  os << "}";
  return os;
}

// ---------------------------------------------------------------------------
// Matmul.
// ---------------------------------------------------------------------------

namespace {

struct MatView {
  const float* p;
  std::int64_t rows, cols;
  bool trans;
  std::int64_t r() const { return trans ? cols : rows; }
  std::int64_t c() const { return trans ? rows : cols; }
  float at(std::int64_t i, std::int64_t j) const {
    return trans ? p[j * cols + i] : p[i * cols + j];
  }
};

MatView view2d(const Tensor& t, bool trans) {
  if (t.rank() != 2)
    throw std::invalid_argument("matmul requires rank-2 tensors, got " +
                                t.shape_str());
  return MatView{t.data(), t.dim(0), t.dim(1), trans};
}

/// Transpose-pack scratch reused across calls: the backward pass hits the
/// trans_a/trans_b paths on every step, and a fresh heap allocation per
/// call dominated small-batch gradient time. Thread-local so concurrent
/// matmuls (e.g. from parallel DSE stages) never share a buffer; the
/// operands are packed once by the caller, then read-only for all chunks
/// of the row-parallel loop below.
thread_local std::vector<float> tl_pack_a;
thread_local std::vector<float> tl_pack_b;

/// Fan out only when the product is worth a pool round-trip, and size the
/// row grain so each chunk carries at least this many FLOPs.
constexpr std::int64_t kParallelFlops = std::int64_t{1} << 20;

}  // namespace

namespace {

void matmul_impl(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                 Tensor& out, bool init, const float* bias) {
  MatView av = view2d(a, trans_a);
  MatView bv = view2d(b, trans_b);
  const std::int64_t m = av.r(), k = av.c(), n = bv.c();
  if (bv.r() != k)
    throw std::invalid_argument("matmul: inner dims mismatch " +
                                a.shape_str() + " x " + b.shape_str());
  if (out.rank() != 2 || out.dim(0) != m || out.dim(1) != n)
    throw std::invalid_argument("matmul_acc: bad output shape");

  float* o = out.data();
  // Hot layout: A [m,k] row-major, B [k,n] row-major -> i-k-j loop keeps B
  // row accesses contiguous and vectorizable. Other layouts pack once into
  // the thread-local scratch so the hot loop always runs on row-major
  // operands.
  const float* ap = a.data();
  const float* bp = b.data();
  if (trans_a) {
    tl_pack_a.resize(static_cast<std::size_t>(m) * k);
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t x = 0; x < k; ++x) tl_pack_a[i * k + x] = av.at(i, x);
    ap = tl_pack_a.data();
  }
  if (trans_b) {
    tl_pack_b.resize(static_cast<std::size_t>(k) * n);
    for (std::int64_t x = 0; x < k; ++x)
      for (std::int64_t j = 0; j < n; ++j) tl_pack_b[x * n + j] = bv.at(x, j);
    bp = tl_pack_b.data();
  }

  // SIMD level resolved once per matmul (simd::matmul_rows walks the k
  // panels and register tiles; see tensor/simd.hpp — bit-identical at
  // every level) and shared by all row chunks.
  static obs::SimdDispatch dispatch("matmul");
  const util::SimdLevel lvl = dispatch.level();

  const std::int64_t flops = 2 * m * k * n;
  if (flops >= kParallelFlops && !util::in_parallel_region()) {
    static obs::Counter& c_par = obs::counter("tensor.parallel_matmuls");
    obs::add(c_par);
    const std::int64_t grain = std::max<std::int64_t>(
        1, kParallelFlops / std::max<std::int64_t>(1, 2 * k * n));
    util::parallel_for(m, grain, [&](std::int64_t i0, std::int64_t i1) {
      simd::matmul_rows(lvl, ap, bp, o, i0, i1, k, n, init, bias);
    });
  } else {
    simd::matmul_rows(lvl, ap, bp, o, 0, m, k, n, init, bias);
  }
}

}  // namespace

void matmul_acc(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                Tensor& out) {
  matmul_impl(a, b, trans_a, trans_b, out, /*init=*/false, /*bias=*/nullptr);
}

void matmul_bias(const Tensor& a, const Tensor& b, const Tensor* bias,
                 Tensor& out) {
  if (bias != nullptr && bias->numel() != view2d(b, false).c())
    throw std::invalid_argument("matmul_bias: bias length != cols");
  matmul_impl(a, b, false, false, out, /*init=*/true,
              bias != nullptr ? bias->data() : nullptr);
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  MatView av = view2d(a, trans_a);
  MatView bv = view2d(b, trans_b);
  Tensor out({av.r(), bv.c()});
  matmul_acc(a, b, trans_a, trans_b, out);
  return out;
}

// ---------------------------------------------------------------------------
// Elementwise and structured ops.
// ---------------------------------------------------------------------------

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b))
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  const float* bp = b.data();
  float* op = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) op[i] -= bp[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  const float* bp = b.data();
  float* op = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) op[i] *= bp[i];
  return out;
}

Tensor add_rowvec(const Tensor& a, const Tensor& bias) {
  if (bias.numel() != a.cols())
    throw std::invalid_argument("add_rowvec: bias length != cols");
  Tensor out = a;
  const std::int64_t r = a.rows(), c = a.cols();
  const float* bp = bias.data();
  float* op = out.data();
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j) op[i * c + j] += bp[j];
  return out;
}

Tensor gather_rows(const Tensor& a, const std::vector<std::int32_t>& idx) {
  const std::int64_t c = a.cols();
  Tensor out({static_cast<std::int64_t>(idx.size()), c});
  const float* ap = a.data();
  float* op = out.data();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    assert(idx[i] >= 0 && idx[i] < a.rows());
    std::copy_n(ap + static_cast<std::int64_t>(idx[i]) * c, c,
                op + static_cast<std::int64_t>(i) * c);
  }
  return out;
}

Tensor scatter_add_rows(const Tensor& a, const std::vector<std::int32_t>& idx,
                        std::int64_t num_rows) {
  if (static_cast<std::int64_t>(idx.size()) != a.rows())
    throw std::invalid_argument("scatter_add_rows: index length != rows");
  const std::int64_t c = a.cols();
  Tensor out({num_rows, c});
  const float* ap = a.data();
  float* op = out.data();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    assert(idx[i] >= 0 && idx[i] < num_rows);
    const float* src = ap + static_cast<std::int64_t>(i) * c;
    float* dst = op + static_cast<std::int64_t>(idx[i]) * c;
    for (std::int64_t j = 0; j < c; ++j) dst[j] += src[j];
  }
  return out;
}

Tensor concat_cols(const std::vector<const Tensor*>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: empty input");
  const std::int64_t r = parts[0]->rows();
  std::int64_t total_c = 0;
  for (const Tensor* p : parts) {
    if (p->rows() != r)
      throw std::invalid_argument("concat_cols: row count mismatch");
    total_c += p->cols();
  }
  Tensor out({r, total_c});
  float* op = out.data();
  for (std::int64_t i = 0; i < r; ++i) {
    std::int64_t off = 0;
    for (const Tensor* p : parts) {
      const std::int64_t c = p->cols();
      std::copy_n(p->data() + i * c, c, op + i * total_c + off);
      off += c;
    }
  }
  return out;
}

namespace {
std::atomic<std::uint64_t> g_params_version{1};
}  // namespace

std::uint64_t params_version() {
  return g_params_version.load(std::memory_order_relaxed);
}

void bump_params_version() {
  g_params_version.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gnndse::tensor
