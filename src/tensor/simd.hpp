// Runtime-dispatched matmul row kernels (scalar / AVX2 / AVX-512).
//
// matmul_rows computes rows [i0, i1) of C (+)= A x B on row-major packed
// operands, walking k in 256-wide panels and columns in 32-float register
// tiles (see docs/performance.md). Every variant performs the exact same
// per-element float operations in the same ascending-k order — the vector
// lanes cover independent output columns, the multiply and add round
// separately (no FMA contraction at any level), and partial column tiles
// always run the scalar path — so the result bits are identical at every
// dispatch level, thread count, and row split.
//
// `init`: the first k panel stores instead of accumulating, so the output
// needs no zero fill. `bias`: added once per element after its final panel
// (the fused matmul_bias epilogue). Callers resolve the level once per
// matmul (obs/simd_counters.hpp) and pass it into every row chunk.
#pragma once

#include <cstdint>

#include "util/cpu.hpp"

namespace gnndse::tensor::simd {

/// k-panel depth: one panel of B (kKc x n floats) stays hot in L2 while the
/// row sweep streams over A.
inline constexpr std::int64_t kKc = 256;

/// Column-tile width: 32 output floats live in registers for a whole k
/// panel (4 ymm / 2 zmm accumulators).
inline constexpr std::int64_t kJt = 32;

void matmul_rows(util::SimdLevel level, const float* ap, const float* bp,
                 float* o, std::int64_t i0, std::int64_t i1, std::int64_t k,
                 std::int64_t n, bool init, const float* bias);

}  // namespace gnndse::tensor::simd
