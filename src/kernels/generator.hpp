// Seeded random kernel generator — mints deterministic, valid loop-nest
// kernels so datasets are no longer capped at the 19 hand-coded benchmarks.
//
// Every structural choice (nest shape, trip counts, op mixes, access kinds,
// loop-carried recurrences, pragma-site placement) is drawn from one
// util::Rng stream seeded explicitly, so the same (config, seed) pair
// always produces a bit-identical kir::Kernel — and, through the canonical
// serializer in src/frontend/, a byte-identical .json file. Generated
// kernels pass kir::validate() by construction (KernelBuilder::build()
// validates) and carry the seed in their name ("<prefix>-s<seed>"), which
// keeps oracle::kernel_digest distinct across seeds.
//
// The knobs mirror what the DAC'22 suite varies across benchmarks:
// MachSuite/Polybench kernels are 2-4 deep nests of 8..512-trip loops with
// 1-3 statements, mostly-sequential accesses with occasional
// indirect/strided ones, and recurrences on reduction loops. See
// docs/kernels.md for the full knob table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kir/kernel.hpp"

namespace gnndse::kernels {

struct GeneratorConfig {
  // -- structure ----------------------------------------------------------
  int min_loops = 2;   ///< loops per kernel, inclusive range
  int max_loops = 6;
  int max_depth = 3;   ///< deepest allowed nest (top level = depth 1)
  std::int64_t min_trip = 4;    ///< trip counts, drawn as powers of two
  std::int64_t max_trip = 256;  ///< (clamped into [min_trip, max_trip])
  int min_arrays = 2;
  int max_arrays = 5;
  std::int64_t max_array_elems = 1 << 16;
  int max_stmts_per_loop = 2;  ///< statements per innermost loop (>= 1)

  // -- statement content --------------------------------------------------
  double dep_probability = 0.35;      ///< stmt carries a loop recurrence
  double indirect_probability = 0.12; ///< access is a gather (vs sequential)
  double strided_probability = 0.15;  ///< access is strided
  double off_chip_probability = 0.7;  ///< array lives in DDR vs scratchpad

  // -- pragma sites -------------------------------------------------------
  /// Probability that a loop exposes each applicable pragma site
  /// (pipeline / parallel / tile-on-outer-loops). At least one site is
  /// always emitted so every generated kernel has a non-trivial design
  /// space.
  double pragma_density = 0.7;
  std::int64_t max_parallel_factor = 32;

  /// Kernel names are "<prefix>-s<seed>".
  std::string name_prefix = "gen";
};

/// Deterministically generates one valid kernel from (config, seed).
kir::Kernel generate(const GeneratorConfig& cfg, std::uint64_t seed);

/// Generates `count` kernels with seeds base_seed, base_seed+1, ...
std::vector<kir::Kernel> generate_batch(const GeneratorConfig& cfg,
                                        std::uint64_t base_seed, int count);

}  // namespace gnndse::kernels
