#include "kernels/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace gnndse::kernels {
namespace {

using kir::AccessKind;
using kir::ArrayAccess;
using kir::KernelBuilder;
using kir::OpMix;

/// A power of two in [lo, hi] (both clamped to >= 1), uniform over the
/// available exponents. Powers of two keep candidate_factors() lists rich.
std::int64_t pow2_between(util::Rng& rng, std::int64_t lo, std::int64_t hi) {
  lo = std::max<std::int64_t>(1, lo);
  hi = std::max(lo, hi);
  int lo_exp = 0;
  while ((std::int64_t{1} << lo_exp) < lo) ++lo_exp;
  int hi_exp = lo_exp;
  while (hi_exp < 62 && (std::int64_t{1} << (hi_exp + 1)) <= hi) ++hi_exp;
  return std::int64_t{1} << rng.uniform_int(static_cast<std::int64_t>(lo_exp),
                                            static_cast<std::int64_t>(hi_exp));
}

}  // namespace

kir::Kernel generate(const GeneratorConfig& cfg, std::uint64_t seed) {
  if (cfg.min_loops < 1 || cfg.max_loops < cfg.min_loops)
    throw std::invalid_argument("generator: bad loop count range");
  if (cfg.max_depth < 1) throw std::invalid_argument("generator: max_depth < 1");
  if (cfg.min_arrays < 1 || cfg.max_arrays < cfg.min_arrays)
    throw std::invalid_argument("generator: bad array count range");
  if (cfg.min_trip < 1 || cfg.max_trip < cfg.min_trip)
    throw std::invalid_argument("generator: bad trip count range");
  if (cfg.max_stmts_per_loop < 1)
    throw std::invalid_argument("generator: max_stmts_per_loop < 1");

  util::Rng rng(seed);
  KernelBuilder b(cfg.name_prefix + "-s" + std::to_string(seed));

  // Arrays. One extra index array is appended lazily if any access comes
  // out indirect, mirroring how spmv/md-knn carry their neighbor lists.
  const int num_arrays = static_cast<int>(
      rng.uniform_int(cfg.min_arrays, cfg.max_arrays));
  std::vector<int> arrays;
  for (int a = 0; a < num_arrays; ++a) {
    std::int64_t elems = pow2_between(rng, 64, cfg.max_array_elems);
    const bool off_chip = rng.bernoulli(cfg.off_chip_probability);
    // Scratchpads burn BRAM from cycle zero; keep them lookup-table sized
    // (like aes' sbox) so the neutral design never starts over budget.
    if (!off_chip) elems = std::min<std::int64_t>(elems, 4096);
    arrays.push_back(b.add_array("a" + std::to_string(a), elems, off_chip));
  }
  // Index array for gathers: spmv/md-knn style a[idx[i]] accesses read the
  // subscript stream sequentially and the data array indirectly.
  const int index_array =
      b.add_array("idx", pow2_between(rng, 64, cfg.max_trip * 4), true, 32);

  // Loop forest: each new loop nests under a random existing loop that has
  // room (depth < max_depth), or opens a new top-level nest. Appending
  // keeps parents before children, which kir::validate() requires.
  const int num_loops = static_cast<int>(
      rng.uniform_int(cfg.min_loops, cfg.max_loops));
  std::vector<int> loops;
  std::vector<int> depth;  // 1-based
  for (int l = 0; l < num_loops; ++l) {
    std::vector<int> candidates;
    for (std::size_t i = 0; i < loops.size(); ++i)
      if (depth[i] < cfg.max_depth) candidates.push_back(loops[i]);
    int parent = -1;
    int d = 1;
    // Bias toward nesting: flat forests make trivially pipelined kernels.
    if (!candidates.empty() && rng.bernoulli(0.75)) {
      parent = candidates[static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(candidates.size())))];
      d = depth[static_cast<std::size_t>(
              std::find(loops.begin(), loops.end(), parent) -
              loops.begin())] +
          1;
    }
    const std::int64_t trip = pow2_between(rng, cfg.min_trip, cfg.max_trip);
    loops.push_back(b.begin_loop("L" + std::to_string(l), trip, parent));
    depth.push_back(d);
  }

  // Statements: every innermost loop gets at least one; outer loops
  // occasionally get a prologue/epilogue statement (like mvt's x-store or
  // md-knn's force_store).
  auto push_random_access = [&](std::vector<ArrayAccess>& out, int loop,
                                bool is_write) {
    AccessKind kind = AccessKind::kSequential;
    if (!is_write) {
      const double r = rng.uniform();
      if (r < cfg.indirect_probability)
        kind = AccessKind::kIndirect;
      else if (r < cfg.indirect_probability + cfg.strided_probability)
        kind = AccessKind::kStrided;
      else if (r < cfg.indirect_probability + cfg.strided_probability + 0.1)
        kind = AccessKind::kBroadcast;
    }
    const int arr = arrays[static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(arrays.size())))];
    const int driving = kind == AccessKind::kBroadcast ? -1 : loop;
    if (kind == AccessKind::kIndirect)
      out.push_back(
          ArrayAccess{index_array, false, AccessKind::kSequential, loop});
    out.push_back(ArrayAccess{arr, is_write, kind, driving});
  };
  int stmt_id = 0;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const bool innermost = b.loop(loops[i]).children.empty();
    int n_stmts = 0;
    if (innermost)
      n_stmts = static_cast<int>(
          rng.uniform_int(1, std::max(1, cfg.max_stmts_per_loop)));
    else if (rng.bernoulli(0.2))
      n_stmts = 1;
    for (int s = 0; s < n_stmts; ++s) {
      OpMix ops;
      ops.adds = static_cast<int>(rng.uniform_int(0, 4));
      ops.muls = static_cast<int>(rng.uniform_int(0, 3));
      ops.cmps = static_cast<int>(rng.uniform_int(0, 2));
      if (rng.bernoulli(0.15)) ops.logic = static_cast<int>(rng.uniform_int(1, 6));
      if (rng.bernoulli(0.08)) ops.divs = 1;
      if (rng.bernoulli(0.05)) ops.specials = 1;
      if (ops.total() == 0) ops.adds = 1;

      std::vector<ArrayAccess> accesses;
      const int n_reads = static_cast<int>(rng.uniform_int(1, 3));
      for (int r = 0; r < n_reads; ++r)
        push_random_access(accesses, loops[i], false);
      if (rng.bernoulli(0.7))
        push_random_access(accesses, loops[i], true);

      const int id = b.add_stmt(loops[i], "s" + std::to_string(stmt_id++),
                                ops, std::move(accesses));
      if (rng.bernoulli(cfg.dep_probability)) {
        // Recurrence carried on the statement's loop or an enclosing one.
        std::vector<int> chain{loops[i]};
        for (int cur = b.loop(loops[i]).parent; cur != -1;
             cur = b.loop(cur).parent)
          chain.push_back(cur);
        const int dep_loop = chain[static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::uint64_t>(chain.size())))];
        const int distance = static_cast<int>(rng.uniform_int(1, 2));
        const int latency = static_cast<int>(rng.uniform_int(2, 8));
        b.set_recurrence(id, dep_loop, distance, latency,
                         /*associative=*/rng.bernoulli(0.7));
      }
    }
  }
  // Pragma sites. Tiling only on loops that contain other loops (tiling an
  // innermost loop is what parallel already expresses under Merlin).
  int sites = 0;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    kir::Loop& l = b.loop(loops[i]);
    if (rng.bernoulli(cfg.pragma_density)) {
      l.can_pipeline = true;
      ++sites;
    }
    if (rng.bernoulli(cfg.pragma_density)) {
      l.can_parallel = true;
      l.parallel_options =
          kir::candidate_factors(l.trip_count, cfg.max_parallel_factor);
      ++sites;
    }
    if (!l.children.empty() && rng.bernoulli(cfg.pragma_density * 0.5)) {
      l.can_tile = true;
      l.tile_options = kir::candidate_factors(
          l.trip_count, std::min<std::int64_t>(8, l.trip_count), true);
      ++sites;
    }
  }
  if (sites == 0) {
    // Guarantee a non-trivial design space.
    kir::Loop& l = b.loop(loops.back());
    l.can_pipeline = true;
    l.can_parallel = true;
    l.parallel_options =
        kir::candidate_factors(l.trip_count, cfg.max_parallel_factor);
  }

  kir::Kernel k = b.build();

  // Drop arrays no access ended up referencing: graphgen treats an
  // accessless array node as an isolated-node error, and real kernels have
  // no unused interface arrays either. Indices are remapped in place.
  std::vector<bool> used(k.arrays.size(), false);
  for (const kir::Stmt& st : k.stmts)
    for (const kir::ArrayAccess& a : st.accesses)
      used[static_cast<std::size_t>(a.array)] = true;
  std::vector<int> remap(k.arrays.size(), -1);
  std::vector<kir::Array> kept;
  for (std::size_t a = 0; a < k.arrays.size(); ++a) {
    if (!used[a]) continue;
    remap[a] = static_cast<int>(kept.size());
    kept.push_back(k.arrays[a]);
  }
  k.arrays = std::move(kept);
  for (kir::Stmt& st : k.stmts)
    for (kir::ArrayAccess& a : st.accesses)
      a.array = remap[static_cast<std::size_t>(a.array)];
  kir::validate(k);
  return k;
}

std::vector<kir::Kernel> generate_batch(const GeneratorConfig& cfg,
                                        std::uint64_t base_seed, int count) {
  std::vector<kir::Kernel> out;
  out.reserve(static_cast<std::size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i)
    out.push_back(generate(cfg, base_seed + static_cast<std::uint64_t>(i)));
  return out;
}

}  // namespace gnndse::kernels
