// The benchmark kernels used in the paper's evaluation (§5.1, Tables 1 & 3),
// re-expressed in the kernel IR.
//
// Training set (MachSuite + Polybench): aes, atax, gemm-blocked,
// gemm-ncubed, mvt, spmv-crs, spmv-ellpack, stencil, nw.
// Unseen set (Polybench, §5.4): bicg, doitgen, gesummv, 2mm.
//
// Each definition follows the loop structure, problem size, operation mix
// and dependence pattern of the benchmark source, and exposes the same
// number of pragma sites the paper reports (aes 3, atax 5, gemm-blocked 9,
// gemm-ncubed 7, mvt 8, spmv-crs 3, spmv-ellpack 3, stencil 7, nw 6;
// bicg 5, doitgen 6, gesummv 4, 2mm 14).
#pragma once

#include <string>
#include <vector>

#include "kir/kernel.hpp"

namespace gnndse::kernels {

/// Names of the nine kernels in the training database (Table 1 order).
const std::vector<std::string>& training_kernel_names();

/// Names of the four unseen kernels (Table 3 order).
const std::vector<std::string>& unseen_kernel_names();

/// Builds a kernel by name. Thin wrapper over Registry::global().get()
/// (kernels/registry.hpp), so besides the compiled-in suites it also finds
/// kernels registered from files or the generator; unknown names throw
/// std::invalid_argument listing near-miss candidates.
kir::Kernel make_kernel(const std::string& name);

/// All training kernels, in Table 1 order.
std::vector<kir::Kernel> make_training_kernels();

/// All unseen kernels, in Table 3 order.
std::vector<kir::Kernel> make_unseen_kernels();

namespace detail {

/// One compiled-in kernel constructor; the tables below seed
/// Registry::global() (kernels/registry.hpp), which owns all lookups.
struct NamedFactory {
  const char* name;
  kir::Kernel (*make)();
};

/// The 13 DAC'22 kernels (9 training then 4 unseen, table order).
const std::vector<NamedFactory>& builtin_factories();

}  // namespace detail

}  // namespace gnndse::kernels
