#include "kernels/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "frontend/kernel_json.hpp"
#include "kernels/kernels.hpp"
#include "kernels/kernels_extension.hpp"

namespace gnndse::kernels {
namespace {

/// Classic Levenshtein distance; the name sets are tiny (tens of entries),
/// so the O(n*m) table is irrelevant.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

const char* provenance_name(Provenance p) {
  switch (p) {
    case Provenance::kBuiltin:
      return "builtin";
    case Provenance::kExtension:
      return "extension";
    case Provenance::kFile:
      return "file";
    case Provenance::kGenerated:
      return "generated";
  }
  return "builtin";
}

Registry& Registry::global() {
  static Registry* reg = [] {
    auto* r = new Registry;
    for (const auto& f : detail::builtin_factories())
      r->add(f.make(), Provenance::kBuiltin);
    for (const auto& f : detail::extension_factories())
      r->add(f.make(), Provenance::kExtension);
    return r;
  }();
  return *reg;
}

void Registry::add(kir::Kernel kernel, Provenance provenance,
                   std::string origin) {
  kir::validate(kernel);
  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = kernel.name;
  if (entries_.find(name) == entries_.end()) order_.push_back(name);
  entries_[name] = KernelEntry{std::move(kernel), provenance, std::move(origin)};
}

std::string Registry::add_file(const std::string& path) {
  kir::Kernel k = frontend::load_kernel_file(path);
  const std::string name = k.name;
  add(std::move(k), Provenance::kFile, path);
  return name;
}

std::vector<std::string> Registry::add_directory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    throw std::invalid_argument("kernel directory not found: " + dir);
  std::vector<std::string> paths;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".json")
      paths.push_back(e.path().string());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> names;
  for (const auto& p : paths) names.push_back(add_file(p));
  return names;
}

bool Registry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) > 0;
}

KernelEntry Registry::entry_locked(const std::string& name) const {
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second;

  // Build the miss message: near-miss names first (edit distance <= 1/3 of
  // the query length, capped at 3 suggestions), then what the registry
  // actually holds per source.
  std::vector<std::pair<std::size_t, std::string>> scored;
  for (const auto& n : order_)
    scored.emplace_back(edit_distance(name, n), n);
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::size_t tol = std::max<std::size_t>(2, name.size() / 3);
  std::ostringstream os;
  os << "unknown kernel '" << name << "'";
  bool any = false;
  for (std::size_t i = 0; i < scored.size() && i < 3; ++i) {
    if (scored[i].first > tol) break;
    os << (any ? ", '" : "; did you mean '") << scored[i].second << "'";
    any = true;
  }
  if (any) os << "?";
  std::size_t counts[4] = {0, 0, 0, 0};
  for (const auto& kv : entries_)
    ++counts[static_cast<int>(kv.second.provenance)];
  os << " (registry holds " << entries_.size() << " kernels:";
  for (int p = 0; p < 4; ++p)
    if (counts[p] > 0)
      os << " " << counts[p] << " "
         << provenance_name(static_cast<Provenance>(p));
  os << "; pass a .json path to load a file kernel)";
  throw std::invalid_argument(os.str());
}

KernelEntry Registry::entry(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entry_locked(name);
}

kir::Kernel Registry::get(const std::string& name) const {
  return entry(name).kernel;
}

kir::Kernel Registry::resolve(const std::string& name_or_path) {
  if (!contains(name_or_path) && frontend::looks_like_kernel_file(name_or_path))
    return get(add_file(name_or_path));
  return get(name_or_path);
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

std::vector<std::string> Registry::names(Provenance p) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& n : order_) {
    auto it = entries_.find(n);
    if (it != entries_.end() && it->second.provenance == p) out.push_back(n);
  }
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace gnndse::kernels
