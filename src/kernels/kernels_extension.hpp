// Extension kernels beyond the DAC'22 evaluation — the paper's future-work
// direction of covering more domains (§6). Usable anywhere the core suite
// is: database generation, training, DSE.
#pragma once

#include <string>
#include <vector>

#include "kir/kernel.hpp"

namespace gnndse::kernels {

/// Names of the extension kernels (gemver, jacobi-2d, fdtd-2d, trmm, syrk,
/// md-knn).
const std::vector<std::string>& extension_kernel_names();

/// Builds an extension kernel by name; throws for unknown names.
kir::Kernel make_extension_kernel(const std::string& name);

std::vector<kir::Kernel> make_extension_kernels();

}  // namespace gnndse::kernels
