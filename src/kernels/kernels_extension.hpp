// Extension kernels beyond the DAC'22 evaluation — the paper's future-work
// direction of covering more domains (§6). Usable anywhere the core suite
// is: database generation, training, DSE.
#pragma once

#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "kir/kernel.hpp"

namespace gnndse::kernels {

/// Names of the extension kernels (gemver, jacobi-2d, fdtd-2d, trmm, syrk,
/// md-knn).
const std::vector<std::string>& extension_kernel_names();

/// Builds an extension kernel by name; throws for unknown names (and for
/// names that exist in the registry but are not extension kernels).
kir::Kernel make_extension_kernel(const std::string& name);

std::vector<kir::Kernel> make_extension_kernels();

namespace detail {
/// The 6 extension kernel constructors, declaration order.
const std::vector<NamedFactory>& extension_factories();
}  // namespace detail

}  // namespace gnndse::kernels
