// The kernel registry: one lookup for every way a kernel can exist.
//
// Kernels used to come exclusively from two hand-coded string-switch
// factories (make_kernel / make_extension_kernel), which capped the system
// at the 19 compiled-in benchmarks. The registry unifies four sources
// behind a single name -> kernel mapping with provenance:
//   * builtin    — the 13 DAC'22 training + unseen kernels (src/kernels/),
//   * extension  — the 6 post-paper kernels (kernels_extension.cpp),
//   * file       — JSON loop-nest descriptions parsed by src/frontend/
//                  (no recompile needed),
//   * generated  — seeded random kernels from kernels::generate().
//
// Lookups that miss throw std::invalid_argument listing near-miss names
// (edit distance) and the available sources, instead of the old bare
// "unknown kernel". All methods are thread-safe.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kir/kernel.hpp"

namespace gnndse::kernels {

enum class Provenance { kBuiltin, kExtension, kFile, kGenerated };

/// "builtin" / "extension" / "file" / "generated".
const char* provenance_name(Provenance p);

struct KernelEntry {
  kir::Kernel kernel;
  Provenance provenance = Provenance::kBuiltin;
  /// Where the kernel came from: empty for compiled-in kernels, the source
  /// path for file kernels, "seed=<n>" for generated ones.
  std::string origin;
};

class Registry {
 public:
  /// An empty registry (no built-ins); mainly for tests.
  Registry() = default;

  /// The process-wide registry, pre-seeded with the 13 builtin and 6
  /// extension kernels. make_kernel()/make_extension_kernel() delegate here.
  static Registry& global();

  /// Registers (or replaces, same name) a validated kernel.
  void add(kir::Kernel kernel, Provenance provenance, std::string origin = "");

  /// Parses `path` with the text frontend and registers the result under
  /// its own name with Provenance::kFile. Returns the kernel name.
  std::string add_file(const std::string& path);

  /// Registers every "*.json" file in `dir` (non-recursive, sorted order).
  /// Returns the names registered; throws if the directory cannot be read
  /// or any file fails to parse/validate.
  std::vector<std::string> add_directory(const std::string& dir);

  bool contains(const std::string& name) const;

  /// Entry lookup; throws std::invalid_argument with near-miss suggestions
  /// and a source summary when `name` is unknown.
  KernelEntry entry(const std::string& name) const;

  /// Kernel lookup (copy); same error contract as entry().
  kir::Kernel get(const std::string& name) const;

  /// Like get(), but a name that looks like a file path (contains '/' or
  /// ends in ".json") is loaded and registered first — this is what lets
  /// `gnndse dse my_kernel.json` run with no recompile.
  kir::Kernel resolve(const std::string& name_or_path);

  /// All registered names in registration order, optionally restricted to
  /// one provenance.
  std::vector<std::string> names() const;
  std::vector<std::string> names(Provenance p) const;

  std::size_t size() const;

 private:
  KernelEntry entry_locked(const std::string& name) const;

  mutable std::mutex mu_;
  std::vector<std::string> order_;
  std::map<std::string, KernelEntry> entries_;
};

}  // namespace gnndse::kernels
