#include "kernels/kernels.hpp"

#include <stdexcept>

#include "kernels/kernels_extension.hpp"
#include "kernels/registry.hpp"

namespace gnndse::kernels {
namespace {

using kir::AccessKind;
using kir::ArrayAccess;
using kir::Kernel;
using kir::KernelBuilder;
using kir::OpMix;
using kir::candidate_factors;

// Floating-point accumulation latency (cycles) — the recurrence chain of a
// `sum += a*b` statement; limits II when the carrying loop is pipelined.
constexpr int kFpAddLat = 4;
// Integer max/compare chain latency for DP recurrences (nw).
constexpr int kDpChainLat = 6;
// AES round-function latency (sbox lookup + xor chain).
constexpr int kAesRoundLat = 6;

ArrayAccess read_seq(int arr, int loop) {
  return ArrayAccess{arr, false, AccessKind::kSequential, loop};
}
ArrayAccess read_strided(int arr, int loop) {
  return ArrayAccess{arr, false, AccessKind::kStrided, loop};
}
ArrayAccess read_ind(int arr, int loop) {
  return ArrayAccess{arr, false, AccessKind::kIndirect, loop};
}
ArrayAccess read_bcast(int arr) {
  return ArrayAccess{arr, false, AccessKind::kBroadcast, -1};
}
ArrayAccess write_seq(int arr, int loop) {
  return ArrayAccess{arr, true, AccessKind::kSequential, loop};
}
// ---------------------------------------------------------------------------
// MachSuite kernels.
// ---------------------------------------------------------------------------

// aes256 encryption of one block: 10 sequential rounds over a 16-byte
// state; each round does sbox substitution (table lookup), shift-rows and
// mix-columns (GF(2^8) xor/shift arithmetic). 3 pragma sites.
Kernel make_aes() {
  KernelBuilder b("aes");
  const int key = b.add_array("key", 32, true, 8);
  const int buf = b.add_array("buf", 16, true, 8);
  const int sbox = b.add_array("sbox", 256, false, 8);

  const int rounds = b.begin_loop("rounds", 10);
  const int bytes = b.begin_loop("bytes", 16, rounds);

  const int sub =
      b.add_stmt(bytes, "sub_shift",
                 OpMix{.adds = 1, .logic = 3},
                 {read_seq(buf, bytes), read_ind(sbox, bytes),
                  read_seq(key, bytes)});
  // State feeds the next round: carried on the rounds loop. A cipher round
  // is not an associative reduction — rounds cannot be parallelized.
  b.set_recurrence(sub, rounds, 1, kAesRoundLat, /*associative=*/false);
  b.add_stmt(bytes, "mix_columns",
             OpMix{.adds = 2, .logic = 6},
             {read_seq(buf, bytes), write_seq(buf, bytes)});

  auto& lr = b.loop(rounds);
  lr.can_pipeline = true;
  auto& lb = b.loop(bytes);
  lb.can_pipeline = true;
  lb.can_parallel = true;
  lb.parallel_options = candidate_factors(16, 16);
  return b.build();
}

// atax: y = A^T (A x). Two accumulation phases over a 410x390 matrix.
// 5 pragma sites.
Kernel make_atax() {
  KernelBuilder b("atax");
  const int a = b.add_array("A", 410 * 390);
  const int x = b.add_array("x", 390);
  const int y = b.add_array("y", 390);
  const int tmp = b.add_array("tmp", 410, /*off_chip=*/false);

  const int i1 = b.begin_loop("i1", 410);
  const int j1 = b.begin_loop("j1", 390, i1);
  const int acc1 = b.add_stmt(j1, "tmp_acc", OpMix{.adds = 1, .muls = 1},
                              {read_seq(a, j1), read_seq(x, j1)});
  b.set_recurrence(acc1, j1, 1, kFpAddLat);
  b.add_stmt(i1, "tmp_store", OpMix{.adds = 0}, {write_seq(tmp, i1)});

  const int i2 = b.begin_loop("i2", 410);
  const int j2 = b.begin_loop("j2", 390, i2);
  const int acc2 = b.add_stmt(
      j2, "y_acc", OpMix{.adds = 1, .muls = 1},
      {read_seq(a, j2), read_bcast(tmp), read_seq(y, j2), write_seq(y, j2)});
  // y[j] accumulates across the *outer* i2 loop.
  b.set_recurrence(acc2, i2, 1, kFpAddLat);

  auto& li1 = b.loop(i1);
  li1.can_pipeline = true;
  li1.can_parallel = true;
  li1.parallel_options = candidate_factors(410);
  auto& lj1 = b.loop(j1);
  lj1.can_pipeline = true;
  auto& li2 = b.loop(i2);
  li2.can_pipeline = true;
  li2.can_parallel = true;
  li2.parallel_options = candidate_factors(410);
  return b.build();
}

// gemm-blocked (MachSuite bbgemm): 64x64 matrix multiply in 8x8 blocks;
// loop order jj, kk, i, k, j. 9 pragma sites.
Kernel make_gemm_blocked() {
  KernelBuilder b("gemm-blocked");
  const int m1 = b.add_array("m1", 64 * 64);
  const int m2 = b.add_array("m2", 64 * 64);
  const int prod = b.add_array("prod", 64 * 64);

  const int jj = b.begin_loop("jj", 8);
  const int kk = b.begin_loop("kk", 8, jj);
  const int i = b.begin_loop("i", 64, kk);
  const int k = b.begin_loop("k", 8, i);
  const int j = b.begin_loop("j", 8, k);

  b.add_stmt(k, "load_m1", OpMix{.adds = 1}, {read_strided(m1, k)});
  const int mac = b.add_stmt(
      j, "mac", OpMix{.adds = 1, .muls = 1},
      {read_seq(m2, j), read_seq(prod, j), write_seq(prod, j)});
  // prod[i][jj+j] accumulates across the k loop.
  b.set_recurrence(mac, k, 1, kFpAddLat);

  auto& ljj = b.loop(jj);
  ljj.can_pipeline = true;
  ljj.can_tile = true;
  ljj.tile_options = candidate_factors(8, 8);
  auto& lkk = b.loop(kk);
  lkk.can_pipeline = true;
  lkk.can_tile = true;
  lkk.tile_options = candidate_factors(8, 8);
  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(64, 32);
  auto& lk = b.loop(k);
  lk.can_pipeline = true;
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  lj.can_parallel = true;
  lj.parallel_options = candidate_factors(8, 8);
  return b.build();
}

// gemm-ncubed: classic triple loop, 64^3. 7 pragma sites.
Kernel make_gemm_ncubed() {
  KernelBuilder b("gemm-ncubed");
  const int m1 = b.add_array("m1", 64 * 64);
  const int m2 = b.add_array("m2", 64 * 64);
  const int prod = b.add_array("prod", 64 * 64);

  const int i = b.begin_loop("i", 64);
  const int j = b.begin_loop("j", 64, i);
  const int k = b.begin_loop("k", 64, j);
  const int mac = b.add_stmt(k, "mac", OpMix{.adds = 1, .muls = 1},
                             {read_seq(m1, k), read_strided(m2, k)});
  b.set_recurrence(mac, k, 1, kFpAddLat);
  b.add_stmt(j, "store", OpMix{}, {write_seq(prod, j)});

  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(64, 32);
  li.can_tile = true;
  li.tile_options = candidate_factors(64, 8, /*powers_of_two_only=*/true);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  lj.can_parallel = true;
  lj.parallel_options = candidate_factors(64, 32);
  auto& lk = b.loop(k);
  lk.can_pipeline = true;
  lk.can_parallel = true;
  lk.parallel_options = candidate_factors(64, 16);
  return b.build();
}

// mvt: x1 = x1 + A y1; x2 = x2 + A^T y2 over a 400x400 matrix.
// 8 pragma sites — the largest training design space (Table 1).
Kernel make_mvt() {
  KernelBuilder b("mvt");
  const int a = b.add_array("A", 400 * 400);
  const int x1 = b.add_array("x1", 400);
  const int x2 = b.add_array("x2", 400);
  const int y1 = b.add_array("y1", 400);
  const int y2 = b.add_array("y2", 400);

  const int i1 = b.begin_loop("i1", 400);
  const int j1 = b.begin_loop("j1", 400, i1);
  const int acc1 = b.add_stmt(j1, "x1_acc", OpMix{.adds = 1, .muls = 1},
                              {read_seq(a, j1), read_seq(y1, j1)});
  b.set_recurrence(acc1, j1, 1, kFpAddLat);
  b.add_stmt(i1, "x1_store", OpMix{}, {write_seq(x1, i1)});

  const int i2 = b.begin_loop("i2", 400);
  const int j2 = b.begin_loop("j2", 400, i2);
  const int acc2 = b.add_stmt(j2, "x2_acc", OpMix{.adds = 1, .muls = 1},
                              {read_strided(a, j2), read_seq(y2, j2)});
  b.set_recurrence(acc2, j2, 1, kFpAddLat);
  b.add_stmt(i2, "x2_store", OpMix{}, {write_seq(x2, i2)});

  for (int loop : {i1, j1, i2, j2}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
    l.can_parallel = true;
    l.parallel_options = candidate_factors(400);
  }
  return b.build();
}

// spmv-crs (MachSuite): compressed-row sparse matrix-vector product,
// 494 rows, indirect column accesses. 3 pragma sites.
Kernel make_spmv_crs() {
  KernelBuilder b("spmv-crs");
  const int val = b.add_array("val", 1666);
  const int cols = b.add_array("cols", 1666);
  const int rowd = b.add_array("rowDelimiters", 495);
  const int vec = b.add_array("vec", 494);
  const int out = b.add_array("out", 494);

  const int i = b.begin_loop("rows", 494);
  // Inner trip varies per row; the average nnz/row of the MachSuite input.
  const int j = b.begin_loop("nnz", 4, i);
  b.add_stmt(i, "row_bounds", OpMix{.adds = 1},
             {read_seq(rowd, i)});
  const int acc = b.add_stmt(
      j, "spmv_acc", OpMix{.adds = 1, .muls = 1},
      {read_seq(val, j), read_seq(cols, j), read_ind(vec, j)});
  b.set_recurrence(acc, j, 1, kFpAddLat);
  b.add_stmt(i, "out_store", OpMix{}, {write_seq(out, i)});

  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(494);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  return b.build();
}

// spmv-ellpack (MachSuite): ELLPACK format, 494 rows x 10 slots.
// 3 pragma sites.
Kernel make_spmv_ellpack() {
  KernelBuilder b("spmv-ellpack");
  const int nzval = b.add_array("nzval", 494 * 10);
  const int cols = b.add_array("cols", 494 * 10);
  const int vec = b.add_array("vec", 494);
  const int out = b.add_array("out", 494);

  const int i = b.begin_loop("rows", 494);
  const int j = b.begin_loop("slots", 10, i);
  const int acc = b.add_stmt(
      j, "ell_acc", OpMix{.adds = 1, .muls = 1},
      {read_seq(nzval, j), read_seq(cols, j), read_ind(vec, j)});
  b.set_recurrence(acc, j, 1, kFpAddLat);
  b.add_stmt(i, "out_store", OpMix{}, {write_seq(out, i)});

  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(494);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  return b.build();
}

// stencil (MachSuite stencil2d): 3x3 convolution over a 128x64 grid.
// 7 pragma sites.
Kernel make_stencil() {
  KernelBuilder b("stencil");
  const int orig = b.add_array("orig", 128 * 64);
  const int sol = b.add_array("sol", 128 * 64);
  const int filt = b.add_array("filter", 9, /*off_chip=*/false);

  const int r = b.begin_loop("r", 126);
  const int c = b.begin_loop("c", 62, r);
  const int k1 = b.begin_loop("k1", 3, c);
  const int k2 = b.begin_loop("k2", 3, k1);
  const int mac =
      b.add_stmt(k2, "conv_mac", OpMix{.adds = 1, .muls = 1},
                 {read_strided(orig, k2), read_bcast(filt)});
  b.set_recurrence(mac, k2, 1, kFpAddLat);
  b.add_stmt(c, "sol_store", OpMix{}, {write_seq(sol, c)});

  auto& lr = b.loop(r);
  lr.can_pipeline = true;
  lr.can_parallel = true;
  lr.parallel_options = candidate_factors(126);
  lr.can_tile = true;
  lr.tile_options = candidate_factors(126, 8);
  auto& lc = b.loop(c);
  lc.can_pipeline = true;
  lc.can_parallel = true;
  lc.parallel_options = candidate_factors(62);
  auto& lk1 = b.loop(k1);
  lk1.can_parallel = true;
  lk1.parallel_options = candidate_factors(3, 3);
  auto& lk2 = b.loop(k2);
  lk2.can_parallel = true;
  lk2.parallel_options = candidate_factors(3, 3);
  return b.build();
}

// nw (MachSuite): Needleman-Wunsch sequence alignment, 128x128 dynamic
// programming with both row- and column-carried dependences. 6 pragma
// sites; most aggressive configurations fail to synthesize (Table 1 shows
// the lowest valid ratio of the suite).
Kernel make_nw() {
  KernelBuilder b("nw");
  const int seqa = b.add_array("seqA", 128, true, 8);
  const int seqb = b.add_array("seqB", 128, true, 8);
  const int m = b.add_array("M", 129 * 129, /*off_chip=*/false);
  const int ptr = b.add_array("ptr", 128 * 128, true, 8);

  const int i = b.begin_loop("i", 128);
  const int j = b.begin_loop("j", 128, i);
  const int score = b.add_stmt(
      j, "dp_cell",
      OpMix{.adds = 3, .cmps = 3},
      {read_seq(seqa, j), read_bcast(seqb), read_seq(m, j), write_seq(m, j),
       write_seq(ptr, j)});
  // M[i][j] depends on M[i][j-1] (distance 1 on j) and on M[i-1][*]
  // (distance 1 on i); the j-carried chain is the tight one. Neither is
  // associative — parallelizing either loop breaks the wavefront.
  b.set_recurrence(score, j, 1, kDpChainLat, /*associative=*/false);
  const int row_dep = b.add_stmt(i, "row_carry", OpMix{.adds = 1},
                                 {read_seq(m, i)});
  b.set_recurrence(row_dep, i, 1, kDpChainLat, /*associative=*/false);

  for (int loop : {i, j}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
    l.can_parallel = true;
    l.parallel_options = candidate_factors(128, 64, true);
    l.can_tile = true;
    l.tile_options = candidate_factors(128, 8, true);
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Unseen Polybench kernels (§5.4, Table 3).
// ---------------------------------------------------------------------------

// bicg: s = A^T r, q = A p in one sweep over a 410x390 matrix.
// 5 pragma sites.
Kernel make_bicg() {
  KernelBuilder b("bicg");
  const int a = b.add_array("A", 410 * 390);
  const int r = b.add_array("r", 410);
  const int p = b.add_array("p", 390);
  const int s = b.add_array("s", 390);
  const int q = b.add_array("q", 410);

  const int i = b.begin_loop("i", 410);
  const int j = b.begin_loop("j", 390, i);
  const int s_acc = b.add_stmt(
      j, "s_acc", OpMix{.adds = 1, .muls = 1},
      {read_bcast(r), read_seq(a, j), read_seq(s, j), write_seq(s, j)});
  b.set_recurrence(s_acc, i, 1, kFpAddLat);  // s[j] accumulates across i
  const int q_acc = b.add_stmt(j, "q_acc", OpMix{.adds = 1, .muls = 1},
                               {read_seq(a, j), read_seq(p, j)});
  b.set_recurrence(q_acc, j, 1, kFpAddLat);  // q[i] accumulates across j
  b.add_stmt(i, "q_store", OpMix{}, {write_seq(q, i)});

  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(410);
  li.can_tile = true;
  li.tile_options = candidate_factors(410, 10);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  lj.can_parallel = true;
  lj.parallel_options = candidate_factors(390);
  return b.build();
}

// doitgen: multiresolution sum, A[r][q][*] <- A[r][q][*] x C4.
// 6 pragma sites, tiny design space (Table 3: the 16-minute case).
Kernel make_doitgen() {
  KernelBuilder b("doitgen");
  const int a = b.add_array("A", 10 * 8 * 30);
  const int c4 = b.add_array("C4", 30 * 30);
  const int sum = b.add_array("sum", 30, /*off_chip=*/false);

  const int r = b.begin_loop("r", 10);
  const int q = b.begin_loop("q", 8, r);
  const int p = b.begin_loop("p", 30, q);
  const int s = b.begin_loop("s", 30, p);
  const int mac = b.add_stmt(s, "sum_acc", OpMix{.adds = 1, .muls = 1},
                             {read_seq(a, s), read_strided(c4, s)});
  b.set_recurrence(mac, s, 1, kFpAddLat);
  b.add_stmt(p, "writeback", OpMix{}, {write_seq(a, p), read_bcast(sum)});

  auto& lr = b.loop(r);
  lr.can_pipeline = true;
  auto& lq = b.loop(q);
  lq.can_pipeline = true;
  auto& lp = b.loop(p);
  lp.can_pipeline = true;
  lp.can_parallel = true;
  lp.parallel_options = candidate_factors(30, 6);
  auto& ls = b.loop(s);
  ls.can_pipeline = true;
  ls.can_parallel = true;
  ls.parallel_options = candidate_factors(30, 6);
  return b.build();
}

// gesummv: y = alpha A x + beta B x over 250x250 matrices.
// 4 pragma sites.
Kernel make_gesummv() {
  KernelBuilder b("gesummv");
  const int a = b.add_array("A", 250 * 250);
  const int bm = b.add_array("B", 250 * 250);
  const int x = b.add_array("x", 250);
  const int y = b.add_array("y", 250);
  const int tmp = b.add_array("tmp", 250, /*off_chip=*/false);

  const int i = b.begin_loop("i", 250);
  const int j = b.begin_loop("j", 250, i);
  const int acc_a = b.add_stmt(j, "tmp_acc", OpMix{.adds = 1, .muls = 1},
                               {read_seq(a, j), read_seq(x, j)});
  b.set_recurrence(acc_a, j, 1, kFpAddLat);
  const int acc_b = b.add_stmt(j, "y_acc", OpMix{.adds = 1, .muls = 1},
                               {read_seq(bm, j), read_seq(x, j)});
  b.set_recurrence(acc_b, j, 1, kFpAddLat);
  b.add_stmt(i, "combine", OpMix{.adds = 1, .muls = 2},
             {write_seq(y, i), read_bcast(tmp)});

  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(250);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  lj.can_parallel = true;
  lj.parallel_options = candidate_factors(250);
  return b.build();
}

// 2mm: D = alpha A B C + beta D — two chained matrix multiplies.
// 14 pragma sites; ~10^8-scale design space (Table 3: heuristic search
// under a one-hour limit).
Kernel make_2mm() {
  KernelBuilder b("2mm");
  const int a = b.add_array("A", 160 * 200);
  const int bm = b.add_array("B", 200 * 180);
  const int c = b.add_array("C", 180 * 220);
  const int d = b.add_array("D", 160 * 220);
  const int tmp = b.add_array("tmp", 160 * 180, /*off_chip=*/false);

  // tmp = alpha * A * B
  const int i1 = b.begin_loop("i1", 160);
  const int j1 = b.begin_loop("j1", 180, i1);
  const int k1 = b.begin_loop("k1", 200, j1);
  const int mac1 = b.add_stmt(k1, "mac1", OpMix{.adds = 1, .muls = 1},
                              {read_seq(a, k1), read_strided(bm, k1)});
  b.set_recurrence(mac1, k1, 1, kFpAddLat);
  b.add_stmt(j1, "tmp_store", OpMix{.muls = 1}, {write_seq(tmp, j1)});

  // D = tmp * C + beta * D
  const int i2 = b.begin_loop("i2", 160);
  const int j2 = b.begin_loop("j2", 220, i2);
  const int k2 = b.begin_loop("k2", 180, j2);
  const int mac2 = b.add_stmt(k2, "mac2", OpMix{.adds = 1, .muls = 1},
                              {read_bcast(tmp), read_strided(c, k2)});
  b.set_recurrence(mac2, k2, 1, kFpAddLat);
  b.add_stmt(j2, "d_store", OpMix{.adds = 1, .muls = 1},
             {read_seq(d, j2), write_seq(d, j2)});

  for (int loop : {i1, i2}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
    l.can_parallel = true;
    l.parallel_options = candidate_factors(160);
    l.can_tile = true;
    l.tile_options = candidate_factors(160, 8, true);
  }
  for (int loop : {j1, j2}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
    l.can_parallel = true;
    l.parallel_options = candidate_factors(b.loop(loop).trip_count);
    l.can_tile = true;
    l.tile_options = candidate_factors(b.loop(loop).trip_count, 8, true);
  }
  for (int loop : {k1, k2}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
  }
  return b.build();
}

}  // namespace

const std::vector<std::string>& training_kernel_names() {
  static const std::vector<std::string> names{
      "aes",      "atax",         "gemm-blocked", "gemm-ncubed", "mvt",
      "spmv-crs", "spmv-ellpack", "stencil",      "nw"};
  return names;
}

const std::vector<std::string>& unseen_kernel_names() {
  static const std::vector<std::string> names{"bicg", "doitgen", "gesummv",
                                              "2mm"};
  return names;
}

namespace detail {

const std::vector<NamedFactory>& builtin_factories() {
  static const std::vector<NamedFactory> factories{
      {"aes", make_aes},
      {"atax", make_atax},
      {"gemm-blocked", make_gemm_blocked},
      {"gemm-ncubed", make_gemm_ncubed},
      {"mvt", make_mvt},
      {"spmv-crs", make_spmv_crs},
      {"spmv-ellpack", make_spmv_ellpack},
      {"stencil", make_stencil},
      {"nw", make_nw},
      {"bicg", make_bicg},
      {"doitgen", make_doitgen},
      {"gesummv", make_gesummv},
      {"2mm", make_2mm},
  };
  return factories;
}

}  // namespace detail

kir::Kernel make_kernel(const std::string& name) {
  return Registry::global().get(name);
}

std::vector<kir::Kernel> make_training_kernels() {
  std::vector<kir::Kernel> out;
  for (const auto& n : training_kernel_names()) out.push_back(make_kernel(n));
  return out;
}

std::vector<kir::Kernel> make_unseen_kernels() {
  std::vector<kir::Kernel> out;
  for (const auto& n : unseen_kernel_names()) out.push_back(make_kernel(n));
  return out;
}

}  // namespace gnndse::kernels
