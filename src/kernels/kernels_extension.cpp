// Extension kernel set — the paper's stated future work (§6) is to expand
// GNN-DSE to more domains. These six kernels widen the training domain mix
// beyond the DAC'22 evaluation: rank-1/rank-k linear algebra (gemver,
// syrk, trmm), time-iterated stencils (jacobi-2d, fdtd-2d) and an
// irregular molecular-dynamics kernel with an indirect neighbor list
// (md-knn, MachSuite).
#include "kernels/kernels_extension.hpp"

#include <stdexcept>

#include "kernels/registry.hpp"

namespace gnndse::kernels {
namespace {

using kir::AccessKind;
using kir::ArrayAccess;
using kir::Kernel;
using kir::KernelBuilder;
using kir::OpMix;
using kir::candidate_factors;

constexpr int kFpAddLat = 4;

ArrayAccess rd_seq(int arr, int loop) {
  return ArrayAccess{arr, false, AccessKind::kSequential, loop};
}
ArrayAccess rd_str(int arr, int loop) {
  return ArrayAccess{arr, false, AccessKind::kStrided, loop};
}
ArrayAccess rd_ind(int arr, int loop) {
  return ArrayAccess{arr, false, AccessKind::kIndirect, loop};
}
ArrayAccess rd_bc(int arr) {
  return ArrayAccess{arr, false, AccessKind::kBroadcast, -1};
}
ArrayAccess wr_seq(int arr, int loop) {
  return ArrayAccess{arr, true, AccessKind::kSequential, loop};
}

// gemver (Polybench): A += u1 v1^T + u2 v2^T; x = beta A^T y + z; w = alpha A x.
// Three phases over a 250x250 matrix. 9 pragma sites.
Kernel make_gemver() {
  KernelBuilder b("gemver");
  const int a = b.add_array("A", 250 * 250);
  const int u1 = b.add_array("u1", 250);
  const int v1 = b.add_array("v1", 250);
  const int x = b.add_array("x", 250);
  const int y = b.add_array("y", 250);
  const int w = b.add_array("w", 250);

  const int i1 = b.begin_loop("i1", 250);
  const int j1 = b.begin_loop("j1", 250, i1);
  b.add_stmt(j1, "rank1", OpMix{.adds = 2, .muls = 2},
             {rd_seq(a, j1), rd_bc(u1), rd_seq(v1, j1), wr_seq(a, j1)});

  const int i2 = b.begin_loop("i2", 250);
  const int j2 = b.begin_loop("j2", 250, i2);
  const int xacc = b.add_stmt(j2, "x_acc", OpMix{.adds = 1, .muls = 2},
                              {rd_str(a, j2), rd_seq(y, j2)});
  b.set_recurrence(xacc, j2, 1, kFpAddLat);
  b.add_stmt(i2, "x_store", OpMix{.adds = 1}, {wr_seq(x, i2)});

  const int i3 = b.begin_loop("i3", 250);
  const int j3 = b.begin_loop("j3", 250, i3);
  const int wacc = b.add_stmt(j3, "w_acc", OpMix{.adds = 1, .muls = 2},
                              {rd_seq(a, j3), rd_bc(x)});
  b.set_recurrence(wacc, j3, 1, kFpAddLat);
  b.add_stmt(i3, "w_store", OpMix{}, {wr_seq(w, i3)});

  for (int loop : {i1, i2, i3}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
    l.can_parallel = true;
    l.parallel_options = candidate_factors(250);
  }
  for (int loop : {j1, j2}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
  }
  b.loop(j1).can_parallel = true;
  b.loop(j1).parallel_options = candidate_factors(250, 32);
  return b.build();
}

// jacobi-2d (Polybench): 5-point stencil iterated over time on a 90x90
// grid; the time loop is strictly sequential. 6 pragma sites.
Kernel make_jacobi2d() {
  KernelBuilder b("jacobi-2d");
  const int a = b.add_array("A", 90 * 90);
  const int bb = b.add_array("B", 90 * 90);

  const int t = b.begin_loop("t", 20);
  const int i = b.begin_loop("i", 88, t);
  const int j = b.begin_loop("j", 88, i);
  const int st = b.add_stmt(j, "jacobi", OpMix{.adds = 4, .muls = 1},
                            {rd_str(a, j), wr_seq(bb, j)});
  // B of step t feeds A of step t+1: the t loop is sequential.
  b.set_recurrence(st, t, 1, 8, /*associative=*/false);

  auto& lt = b.loop(t);
  lt.can_pipeline = true;
  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(88);
  li.can_tile = true;
  li.tile_options = candidate_factors(88, 8, true);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  lj.can_parallel = true;
  lj.parallel_options = candidate_factors(88, 16);
  return b.build();
}

// fdtd-2d (Polybench): three coupled field updates per timestep on a
// 60x80 grid. 9 pragma sites.
Kernel make_fdtd2d() {
  KernelBuilder b("fdtd-2d");
  const int ex = b.add_array("ex", 60 * 80);
  const int ey = b.add_array("ey", 60 * 80);
  const int hz = b.add_array("hz", 60 * 80);

  const int t = b.begin_loop("t", 15);

  const int i1 = b.begin_loop("i_ey", 59, t);
  const int j1 = b.begin_loop("j_ey", 80, i1);
  const int s1 = b.add_stmt(j1, "ey_upd", OpMix{.adds = 2, .muls = 1},
                            {rd_seq(ey, j1), rd_str(hz, j1), wr_seq(ey, j1)});
  b.set_recurrence(s1, t, 1, 8, /*associative=*/false);

  const int i2 = b.begin_loop("i_ex", 60, t);
  const int j2 = b.begin_loop("j_ex", 79, i2);
  b.add_stmt(j2, "ex_upd", OpMix{.adds = 2, .muls = 1},
             {rd_seq(ex, j2), rd_seq(hz, j2), wr_seq(ex, j2)});

  const int i3 = b.begin_loop("i_hz", 59, t);
  const int j3 = b.begin_loop("j_hz", 79, i3);
  b.add_stmt(j3, "hz_upd", OpMix{.adds = 4, .muls = 1},
             {rd_seq(ex, j3), rd_seq(ey, j3), wr_seq(hz, j3)});

  auto& lt = b.loop(t);
  lt.can_pipeline = true;
  for (int loop : {i1, i2, i3}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
    l.can_parallel = true;
    l.parallel_options = candidate_factors(b.loop(loop).trip_count, 16);
  }
  for (int loop : {j1, j2}) {
    auto& l = b.loop(loop);
    l.can_pipeline = true;
  }
  return b.build();
}

// trmm (Polybench): triangular matrix multiply B = alpha A B; the inner
// reduction runs over half the matrix on average (modeled with a reduced
// trip count). 5 pragma sites.
Kernel make_trmm() {
  KernelBuilder b("trmm");
  const int a = b.add_array("A", 120 * 120);
  const int bm = b.add_array("B", 120 * 130);

  const int i = b.begin_loop("i", 120);
  const int j = b.begin_loop("j", 130, i);
  const int k = b.begin_loop("k", 60, j);  // triangular: N/2 average
  const int mac = b.add_stmt(k, "mac", OpMix{.adds = 1, .muls = 1},
                             {rd_str(a, k), rd_str(bm, k)});
  b.set_recurrence(mac, k, 1, kFpAddLat);
  b.add_stmt(j, "scale_store", OpMix{.adds = 1, .muls = 1},
             {rd_seq(bm, j), wr_seq(bm, j)});

  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(120);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  lj.can_parallel = true;
  lj.parallel_options = candidate_factors(130, 16);
  auto& lk = b.loop(k);
  lk.can_pipeline = true;
  return b.build();
}

// syrk (Polybench): C = alpha A A^T + beta C over 80x100. 6 pragma sites.
Kernel make_syrk() {
  KernelBuilder b("syrk");
  const int a = b.add_array("A", 80 * 100);
  const int c = b.add_array("C", 80 * 80);

  const int i = b.begin_loop("i", 80);
  const int j = b.begin_loop("j", 80, i);
  const int k = b.begin_loop("k", 100, j);
  const int mac = b.add_stmt(k, "mac", OpMix{.adds = 1, .muls = 1},
                             {rd_seq(a, k), rd_str(a, k)});
  b.set_recurrence(mac, k, 1, kFpAddLat);
  b.add_stmt(j, "c_upd", OpMix{.adds = 1, .muls = 2},
             {rd_seq(c, j), wr_seq(c, j)});

  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(80);
  li.can_tile = true;
  li.tile_options = candidate_factors(80, 8, true);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  lj.can_parallel = true;
  lj.parallel_options = candidate_factors(80, 16);
  auto& lk = b.loop(k);
  lk.can_pipeline = true;
  return b.build();
}

// md-knn (MachSuite): Lennard-Jones force over a k-nearest-neighbor list —
// indirect position gathers and a heavy arithmetic body with a divide.
// 3 pragma sites.
Kernel make_md_knn() {
  KernelBuilder b("md-knn");
  const int pos = b.add_array("position", 256 * 3);
  const int nl = b.add_array("NL", 256 * 16);
  const int force = b.add_array("force", 256 * 3);

  const int i = b.begin_loop("atoms", 256);
  const int j = b.begin_loop("neighbors", 16, i);
  const int body = b.add_stmt(
      j, "lj_force",
      OpMix{.adds = 6, .muls = 9, .divs = 1},
      {rd_seq(nl, j), rd_ind(pos, j), rd_bc(pos)});
  b.set_recurrence(body, j, 1, kFpAddLat);
  b.add_stmt(i, "force_store", OpMix{}, {wr_seq(force, i)});

  auto& li = b.loop(i);
  li.can_pipeline = true;
  li.can_parallel = true;
  li.parallel_options = candidate_factors(256, 64);
  auto& lj = b.loop(j);
  lj.can_pipeline = true;
  return b.build();
}

}  // namespace

const std::vector<std::string>& extension_kernel_names() {
  static const std::vector<std::string> names{
      "gemver", "jacobi-2d", "fdtd-2d", "trmm", "syrk", "md-knn"};
  return names;
}

namespace detail {

const std::vector<NamedFactory>& extension_factories() {
  static const std::vector<NamedFactory> factories{
      {"gemver", make_gemver},   {"jacobi-2d", make_jacobi2d},
      {"fdtd-2d", make_fdtd2d}, {"trmm", make_trmm},
      {"syrk", make_syrk},       {"md-knn", make_md_knn},
  };
  return factories;
}

}  // namespace detail

kir::Kernel make_extension_kernel(const std::string& name) {
  const KernelEntry e = Registry::global().entry(name);
  if (e.provenance != Provenance::kExtension)
    throw std::invalid_argument("unknown extension kernel: " + name);
  return e.kernel;
}

std::vector<kir::Kernel> make_extension_kernels() {
  std::vector<kir::Kernel> out;
  for (const auto& n : extension_kernel_names())
    out.push_back(make_extension_kernel(n));
  return out;
}

}  // namespace gnndse::kernels
