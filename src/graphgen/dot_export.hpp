// Graphviz export of program graphs, following the paper's Fig 1(b) color
// scheme: instruction nodes blue, variable/constant nodes red, pragma nodes
// purple; control edges blue, data red, call green, pragma purple.
// Optionally annotates pragma nodes with a design configuration's concrete
// options, and scales node size by attention scores (Fig 5 style).
#pragma once

#include <string>
#include <vector>

#include "graphgen/program_graph.hpp"
#include "hlssim/config.hpp"

namespace gnndse::graphgen {

struct DotOptions {
  /// When set, pragma nodes display their concrete option values.
  const dspace::DesignSpace* space = nullptr;
  const hlssim::DesignConfig* config = nullptr;
  /// Per-node attention scores (size = num_nodes); scales node diameter.
  std::vector<float> attention;
};

/// Renders the graph as a Graphviz digraph.
std::string to_dot(const ProgramGraph& g, const DotOptions& opts = {});

/// Writes to_dot() output to a file; throws std::runtime_error on failure.
void write_dot(const ProgramGraph& g, const std::string& path,
               const DotOptions& opts = {});

}  // namespace gnndse::graphgen
