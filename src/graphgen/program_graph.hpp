// ProGraML-style program representation with pragma flow (paper §4.2).
//
// The kernel IR is lowered to a typed multigraph:
//   node types: 0 instruction, 1 variable, 2 constant, 3 pragma
//   edge flows: 0 control, 1 data, 2 call, 3 pragma
// matching the paper's attribute scheme
//   Node = {block, key_text, function, type}
//   Edge = (src, dst, {flow, position})
// Pragma nodes attach to the icmp instruction of their loop; their
// `position` distinguishes tile (0), pipeline (1), parallel (2) exactly as
// the paper's table specifies.
//
// The graph structure depends only on the kernel; a design configuration
// changes nothing but the pragma-node payloads ("Pragma Fill" in Fig 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dspace/design_space.hpp"
#include "kir/kernel.hpp"

namespace gnndse::graphgen {

enum class NodeType : int {
  kInstruction = 0,
  kVariable = 1,
  kConstant = 2,
  kPragma = 3
};

enum class FlowType : int { kControl = 0, kData = 1, kCall = 2, kPragma = 3 };

/// key_text vocabulary (the paper's per-node keyword, e.g. "PIPELINE",
/// "load", "i32*"). Enumerated so featurization is a one-hot.
enum class KeyText : int {
  kExternal = 0,
  kFnEntry,
  kPhi,       // induction variable
  kIcmp,      // loop condition — pragma nodes attach here
  kAddIv,     // induction increment
  kBr,        // branch / back edge
  kLoad,
  kLoadIndirect,
  kLoadStrided,
  kStore,
  kFadd,
  kFmul,
  kFdiv,
  kCmp,
  kLogic,
  kSpecial,
  kArrayF32,   // f32* interface array
  kArrayI8,    // i8* interface array
  kArrayLocal, // on-chip scratchpad
  kConstInt,   // trip count / bound constant
  kAccum,      // associative recurrence variable
  kState,      // non-associative recurrence variable
  kPragmaPipeline,
  kPragmaParallel,
  kPragmaTile,
  kNumKeyTexts
};

const char* to_string(KeyText k);

struct GraphNode {
  NodeType type = NodeType::kInstruction;
  KeyText key = KeyText::kExternal;
  int block = 0;     // LLVM block id: loop id + 1, 0 = function entry
  int function = 0;  // source function index
  /// Generic numeric payload: log2(trip count) for kConstInt, op count for
  /// op nodes, recurrence latency for kAccum/kState; 0 otherwise.
  float numeric = 0.0f;
};

struct GraphEdge {
  std::int32_t src = 0;
  std::int32_t dst = 0;
  FlowType flow = FlowType::kControl;
  int position = 0;
};

struct ProgramGraph {
  std::string kernel_name;
  std::vector<GraphNode> nodes;
  std::vector<GraphEdge> edges;
  /// Node index of the pragma node for each design-space site, aligned
  /// with DesignSpace::sites() ordering.
  std::vector<std::int32_t> pragma_nodes;
  /// Node index of each loop's icmp instruction (for attention analysis).
  std::vector<std::int32_t> loop_icmp_nodes;

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nodes.size());
  }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edges.size());
  }
};

/// Lowers a kernel + its design space to the pragma-annotated program
/// graph. Deterministic; structure is config-independent.
ProgramGraph build_graph(const kir::Kernel& kernel,
                         const dspace::DesignSpace& space);

/// Structural sanity checks (indices in range, pragma nodes typed kPragma,
/// every pragma edge pointing at an icmp, graph weakly connected).
void validate(const ProgramGraph& g);

}  // namespace gnndse::graphgen
