#include "graphgen/json_export.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graphgen/featurize.hpp"

namespace gnndse::graphgen {

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void append_matrix(std::ostringstream& os, const tensor::Tensor& t) {
  os << '[';
  for (std::int64_t r = 0; r < t.rows(); ++r) {
    if (r) os << ',';
    os << '[';
    for (std::int64_t c = 0; c < t.cols(); ++c) {
      if (c) os << ',';
      os << t.at(r, c);
    }
    os << ']';
  }
  os << ']';
}

}  // namespace

std::string to_json(const ProgramGraph& g, const JsonOptions& opts) {
  std::ostringstream os;
  os << "{\"kernel\":";
  append_escaped(os, g.kernel_name);
  os << ",\"num_nodes\":" << g.num_nodes()
     << ",\"num_edges\":" << g.num_edges() << ",\"nodes\":[";
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const GraphNode& n = g.nodes[i];
    if (i) os << ',';
    os << "{\"id\":" << i << ",\"type\":" << static_cast<int>(n.type)
       << ",\"key_text\":";
    append_escaped(os, to_string(n.key));
    os << ",\"block\":" << n.block << ",\"function\":" << n.function
       << ",\"numeric\":" << n.numeric << '}';
  }
  os << "],\"edges\":[";
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    const GraphEdge& e = g.edges[i];
    if (i) os << ',';
    os << "{\"src\":" << e.src << ",\"dst\":" << e.dst
       << ",\"flow\":" << static_cast<int>(e.flow)
       << ",\"position\":" << e.position << '}';
  }
  os << "],\"pragma_nodes\":[";
  for (std::size_t i = 0; i < g.pragma_nodes.size(); ++i) {
    if (i) os << ',';
    os << g.pragma_nodes[i];
  }
  os << ']';

  if (opts.include_features) {
    if (opts.space == nullptr || opts.config == nullptr)
      throw std::invalid_argument(
          "to_json: include_features requires space and config");
    os << ",\"node_features\":";
    append_matrix(os, node_features(g, *opts.space, *opts.config));
    os << ",\"edge_features\":";
    append_matrix(os, edge_features(g));
    os << ",\"config\":";
    append_escaped(os, opts.config->key());
  }
  os << '}';
  return os.str();
}

void write_json(const ProgramGraph& g, const std::string& path,
                const JsonOptions& opts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json: cannot open " + path);
  out << to_json(g, opts);
}

}  // namespace gnndse::graphgen
