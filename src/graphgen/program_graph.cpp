#include "graphgen/program_graph.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

namespace gnndse::graphgen {

using dspace::SiteKind;
using kir::AccessKind;
using kir::Kernel;
using kir::Loop;
using kir::Stmt;

const char* to_string(KeyText k) {
  switch (k) {
    case KeyText::kExternal: return "[external]";
    case KeyText::kFnEntry: return "fn_entry";
    case KeyText::kPhi: return "phi";
    case KeyText::kIcmp: return "icmp";
    case KeyText::kAddIv: return "add";
    case KeyText::kBr: return "br";
    case KeyText::kLoad: return "load";
    case KeyText::kLoadIndirect: return "load.gather";
    case KeyText::kLoadStrided: return "load.strided";
    case KeyText::kStore: return "store";
    case KeyText::kFadd: return "fadd";
    case KeyText::kFmul: return "fmul";
    case KeyText::kFdiv: return "fdiv";
    case KeyText::kCmp: return "cmp";
    case KeyText::kLogic: return "logic";
    case KeyText::kSpecial: return "special";
    case KeyText::kArrayF32: return "f32*";
    case KeyText::kArrayI8: return "i8*";
    case KeyText::kArrayLocal: return "f32_local*";
    case KeyText::kConstInt: return "i32";
    case KeyText::kAccum: return "acc";
    case KeyText::kState: return "state";
    case KeyText::kPragmaPipeline: return "PIPELINE";
    case KeyText::kPragmaParallel: return "PARALLEL";
    case KeyText::kPragmaTile: return "TILE";
    case KeyText::kNumKeyTexts: break;
  }
  return "?";
}

namespace {

class Builder {
 public:
  Builder(const Kernel& k, const dspace::DesignSpace& space)
      : k_(k), space_(space) {
    g_.kernel_name = k.name;
  }

  ProgramGraph run() {
    // Root and per-function entries with call edges (the call flow).
    const std::int32_t root =
        add_node(NodeType::kInstruction, KeyText::kExternal, 0, 0);
    fn_entry_.resize(static_cast<std::size_t>(k_.num_functions));
    for (int f = 0; f < k_.num_functions; ++f) {
      fn_entry_[f] = add_node(NodeType::kInstruction, KeyText::kFnEntry, 0, f);
      add_edge(root, fn_entry_[f], FlowType::kCall, f);
    }

    // Array variable nodes.
    array_node_.resize(k_.arrays.size());
    for (std::size_t a = 0; a < k_.arrays.size(); ++a) {
      const auto& arr = k_.arrays[a];
      KeyText key = !arr.off_chip          ? KeyText::kArrayLocal
                    : (arr.elem_bits <= 8) ? KeyText::kArrayI8
                                           : KeyText::kArrayF32;
      array_node_[a] = add_node(NodeType::kVariable, key, 0, 0,
                                std::log2(static_cast<float>(arr.num_elems)));
    }

    // Loops, in id order (parents first), then statements.
    g_.loop_icmp_nodes.resize(k_.loops.size(), -1);
    for (std::size_t l = 0; l < k_.loops.size(); ++l) build_loop(static_cast<int>(l));

    // Chain control from each function entry to its top-level loops.
    for (int top : k_.top_loops) {
      const int f = k_.function_of_loop(top);
      add_edge(fn_entry_[static_cast<std::size_t>(f)],
               loop_header_[static_cast<std::size_t>(top)],
               FlowType::kControl, 0);
    }

    // Pragma nodes, aligned with the design-space site order.
    for (const auto& site : space_.sites()) {
      KeyText key;
      switch (site.kind) {
        case SiteKind::kTile: key = KeyText::kPragmaTile; break;
        case SiteKind::kPipeline: key = KeyText::kPragmaPipeline; break;
        case SiteKind::kParallel:
        default: key = KeyText::kPragmaParallel; break;
      }
      const Loop& loop = k_.loops[static_cast<std::size_t>(site.loop)];
      const std::int32_t pn =
          add_node(NodeType::kPragma, key, site.loop + 1,
                   k_.function_of_loop(site.loop),
                   std::log2(static_cast<float>(loop.trip_count)));
      add_edge(pn, g_.loop_icmp_nodes[static_cast<std::size_t>(site.loop)],
               FlowType::kPragma, static_cast<int>(site.kind));
      g_.pragma_nodes.push_back(pn);
    }
    return std::move(g_);
  }

 private:
  std::int32_t add_node(NodeType t, KeyText k, int block, int fn,
                        float numeric = 0.0f) {
    g_.nodes.push_back(GraphNode{t, k, block, fn, numeric});
    return static_cast<std::int32_t>(g_.nodes.size() - 1);
  }

  void add_edge(std::int32_t src, std::int32_t dst, FlowType flow,
                int position) {
    g_.edges.push_back(GraphEdge{src, dst, flow, position});
  }

  void build_loop(int lid) {
    if (loop_header_.count(static_cast<std::size_t>(lid))) return;
    const Loop& loop = k_.loops[static_cast<std::size_t>(lid)];
    const int block = lid + 1;
    const int fn = k_.function_of_loop(lid);

    // Loop skeleton: phi (iv) -> icmp -> body ... -> add -> br -> icmp.
    const std::int32_t phi = add_node(NodeType::kInstruction, KeyText::kPhi,
                                      block, fn);
    const std::int32_t icmp = add_node(NodeType::kInstruction, KeyText::kIcmp,
                                       block, fn);
    const std::int32_t bound = add_node(
        NodeType::kConstant, KeyText::kConstInt, block, fn,
        std::log2(static_cast<float>(loop.trip_count)));
    const std::int32_t inc = add_node(NodeType::kInstruction, KeyText::kAddIv,
                                      block, fn);
    const std::int32_t br = add_node(NodeType::kInstruction, KeyText::kBr,
                                     block, fn);
    add_edge(phi, icmp, FlowType::kData, 0);
    add_edge(bound, icmp, FlowType::kData, 1);
    add_edge(phi, inc, FlowType::kData, 0);
    add_edge(inc, phi, FlowType::kData, 0);  // back-edge of the iv cycle
    add_edge(icmp, br, FlowType::kControl, 0);
    add_edge(br, icmp, FlowType::kControl, 1);  // loop back edge

    loop_header_[static_cast<std::size_t>(lid)] = icmp;
    g_.loop_icmp_nodes[static_cast<std::size_t>(lid)] = icmp;

    // Control into the body: icmp -> child loop headers and statements are
    // chained in program order; the last body element feeds `inc`.
    std::int32_t prev = icmp;
    int pos = 2;
    for (int ch : loop.children) {
      // Children are built before their statements are needed; loops are in
      // id order with parents first, so build lazily here.
      if (loop_header_.find(static_cast<std::size_t>(ch)) ==
          loop_header_.end())
        build_loop(ch);
      add_edge(prev, loop_header_[static_cast<std::size_t>(ch)],
               FlowType::kControl, pos++);
      prev = loop_header_[static_cast<std::size_t>(ch)];
    }
    for (int sid : loop.stmts)
      prev = build_stmt(k_.stmts[static_cast<std::size_t>(sid)], block, fn,
                        prev, pos++);
    add_edge(prev, inc, FlowType::kControl, 0);
  }

  std::int32_t build_stmt(const Stmt& s, int block, int fn, std::int32_t prev,
                          int pos) {
    // Loads feed the op chain; the op chain feeds stores. Data edges follow
    // the value flow; a control edge chains the statement into the body.
    std::vector<std::int32_t> loads;
    std::vector<std::int32_t> stores;
    for (const auto& acc : s.accesses) {
      if (acc.is_write) continue;
      KeyText key = KeyText::kLoad;
      if (acc.kind == AccessKind::kIndirect) key = KeyText::kLoadIndirect;
      if (acc.kind == AccessKind::kStrided) key = KeyText::kLoadStrided;
      const std::int32_t ld = add_node(NodeType::kInstruction, key, block, fn);
      add_edge(array_node_[static_cast<std::size_t>(acc.array)], ld,
               FlowType::kData, 0);
      loads.push_back(ld);
    }

    // One op node per nonzero op kind, with the count as numeric payload.
    std::vector<std::int32_t> chain = loads;
    auto add_op = [&](int count, KeyText key) {
      if (count == 0) return;
      const std::int32_t op = add_node(NodeType::kInstruction, key, block, fn,
                                       static_cast<float>(count));
      int p = 0;
      for (std::int32_t in : chain) add_edge(in, op, FlowType::kData, p++);
      chain.assign(1, op);
    };
    add_op(s.ops.muls, KeyText::kFmul);
    add_op(s.ops.adds, KeyText::kFadd);
    add_op(s.ops.divs, KeyText::kFdiv);
    add_op(s.ops.cmps, KeyText::kCmp);
    add_op(s.ops.logic, KeyText::kLogic);
    add_op(s.ops.specials, KeyText::kSpecial);

    // Recurrence variable: a 2-cycle between the chain tail and an
    // accumulator/state variable node marks the loop-carried dependence.
    if (s.dep_loop != -1 && !chain.empty()) {
      const KeyText key =
          s.dep_associative ? KeyText::kAccum : KeyText::kState;
      const std::int32_t rec =
          add_node(NodeType::kVariable, key, s.dep_loop + 1, fn,
                   static_cast<float>(s.dep_latency));
      add_edge(chain.back(), rec, FlowType::kData, 0);
      add_edge(rec, chain.back(), FlowType::kData, 1);
    }

    std::int32_t last_instr = chain.empty() ? prev : chain.back();
    for (const auto& acc : s.accesses) {
      if (!acc.is_write) continue;
      const std::int32_t st =
          add_node(NodeType::kInstruction, KeyText::kStore, block, fn);
      if (!chain.empty()) add_edge(chain.back(), st, FlowType::kData, 0);
      add_edge(st, array_node_[static_cast<std::size_t>(acc.array)],
               FlowType::kData, 0);
      stores.push_back(st);
      last_instr = st;
    }

    // Control chaining through the statement's first instruction.
    const std::int32_t first =
        !loads.empty() ? loads.front()
                       : (!chain.empty() ? chain.front() : last_instr);
    if (first != prev) add_edge(prev, first, FlowType::kControl, pos);
    return last_instr;
  }

  const Kernel& k_;
  const dspace::DesignSpace& space_;
  ProgramGraph g_;
  std::vector<std::int32_t> fn_entry_;
  std::vector<std::int32_t> array_node_;
  std::map<std::size_t, std::int32_t> loop_header_;
};

}  // namespace

ProgramGraph build_graph(const Kernel& kernel,
                         const dspace::DesignSpace& space) {
  Builder b(kernel, space);
  ProgramGraph g = b.run();
  validate(g);
  return g;
}

void validate(const ProgramGraph& g) {
  const auto n = static_cast<std::int32_t>(g.nodes.size());
  auto fail = [&g](const std::string& msg) {
    throw std::logic_error("program graph '" + g.kernel_name + "': " + msg);
  };
  if (n == 0) fail("empty graph");
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (const auto& e : g.edges) {
    if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n)
      fail("edge endpoint out of range");
    ++degree[static_cast<std::size_t>(e.src)];
    ++degree[static_cast<std::size_t>(e.dst)];
    if (e.flow == FlowType::kPragma &&
        g.nodes[static_cast<std::size_t>(e.dst)].key != KeyText::kIcmp)
      fail("pragma edge must target an icmp node");
  }
  for (std::int32_t i = 0; i < n; ++i)
    if (degree[static_cast<std::size_t>(i)] == 0) fail("isolated node");
  for (std::int32_t pn : g.pragma_nodes) {
    if (pn < 0 || pn >= n) fail("pragma node index out of range");
    if (g.nodes[static_cast<std::size_t>(pn)].type != NodeType::kPragma)
      fail("pragma_nodes entry is not a pragma node");
  }
}

}  // namespace gnndse::graphgen
