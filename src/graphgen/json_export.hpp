// JSON serialization of program graphs (nodes, edges, pragma-site mapping,
// and optionally the featurized matrices) so external tooling — Python
// notebooks, other GNN frameworks — can consume the exact graphs this
// repository trains on.
#pragma once

#include <string>

#include "graphgen/program_graph.hpp"
#include "hlssim/config.hpp"

namespace gnndse::graphgen {

struct JsonOptions {
  /// Include the 124-d node features / 12-d edge features for this
  /// configuration (requires `space`).
  bool include_features = false;
  const dspace::DesignSpace* space = nullptr;
  const hlssim::DesignConfig* config = nullptr;
};

/// Renders the graph as a single JSON object:
/// { "kernel": ..., "nodes": [...], "edges": [...], "pragma_nodes": [...],
///   "node_features": [[...]]? , "edge_features": [[...]]? }
std::string to_json(const ProgramGraph& g, const JsonOptions& opts = {});

/// Writes to_json() to a file; throws std::runtime_error on failure.
void write_json(const ProgramGraph& g, const std::string& path,
                const JsonOptions& opts = {});

}  // namespace gnndse::graphgen
