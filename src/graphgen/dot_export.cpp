#include "graphgen/dot_export.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gnndse::graphgen {

namespace {

const char* node_color(NodeType t) {
  switch (t) {
    case NodeType::kInstruction:
      return "#4a90d9";  // blue
    case NodeType::kVariable:
    case NodeType::kConstant:
      return "#d9534f";  // red
    case NodeType::kPragma:
      return "#9b59b6";  // purple
  }
  return "black";
}

const char* edge_color(FlowType f) {
  switch (f) {
    case FlowType::kControl:
      return "#4a90d9";
    case FlowType::kData:
      return "#d9534f";
    case FlowType::kCall:
      return "#5cb85c";  // green
    case FlowType::kPragma:
      return "#9b59b6";
  }
  return "black";
}

std::string pragma_value(const DotOptions& opts, std::size_t site_idx) {
  if (opts.space == nullptr || opts.config == nullptr) return "auto{...}";
  const auto& site = opts.space->sites()[site_idx];
  const auto& lc =
      opts.config->loops[static_cast<std::size_t>(site.loop)];
  switch (site.kind) {
    case dspace::SiteKind::kPipeline:
      return hlssim::to_string(lc.pipeline);
    case dspace::SiteKind::kParallel:
      return std::to_string(lc.parallel);
    case dspace::SiteKind::kTile:
      return std::to_string(lc.tile);
  }
  return "?";
}

}  // namespace

std::string to_dot(const ProgramGraph& g, const DotOptions& opts) {
  std::ostringstream dot;
  dot << "digraph \"" << g.kernel_name << "\" {\n"
      << "  rankdir=TB;\n  node [style=filled, fontname=\"Helvetica\"];\n";

  float max_att = 0.0f;
  if (!opts.attention.empty())
    max_att = *std::max_element(opts.attention.begin(), opts.attention.end());

  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const GraphNode& n = g.nodes[i];
    std::string label = to_string(n.key);
    if (n.type == NodeType::kPragma) {
      // Which site does this node belong to?
      for (std::size_t s = 0; s < g.pragma_nodes.size(); ++s)
        if (g.pragma_nodes[s] == static_cast<std::int32_t>(i))
          label += "=" + pragma_value(opts, s);
    }
    const char* shape =
        n.type == NodeType::kPragma
            ? "box"
            : (n.type == NodeType::kInstruction ? "ellipse" : "diamond");
    dot << "  n" << i << " [label=\"" << label << "\", shape=" << shape
        << ", fillcolor=\"" << node_color(n.type) << "\"";
    if (!opts.attention.empty() && max_att > 0) {
      const double w =
          0.4 + 1.6 * std::sqrt(opts.attention[i] / max_att);
      dot << ", width=" << w << ", height=" << w * 0.6 << ", fixedsize=true";
    }
    dot << "];\n";
  }
  for (const GraphEdge& e : g.edges) {
    dot << "  n" << e.src << " -> n" << e.dst << " [color=\""
        << edge_color(e.flow) << "\"";
    if (e.position > 0) dot << ", label=\"" << e.position << "\"";
    dot << "];\n";
  }
  dot << "}\n";
  return dot.str();
}

void write_dot(const ProgramGraph& g, const std::string& path,
               const DotOptions& opts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dot: cannot open " + path);
  out << to_dot(g, opts);
}

}  // namespace gnndse::graphgen
