#include "graphgen/featurize.hpp"

#include <algorithm>
#include <cmath>

namespace gnndse::graphgen {

using dspace::SiteKind;
using hlssim::DesignConfig;
using hlssim::PipeMode;
using tensor::Tensor;

namespace {

constexpr std::int64_t kTypeOff = 0;       // 4
constexpr std::int64_t kKeyOff = 4;        // 25
constexpr std::int64_t kBlockOff = 29;     // 16
constexpr std::int64_t kFnOff = 45;        // 4
constexpr std::int64_t kDepthOff = 49;     // 8
constexpr std::int64_t kNumericOff = 57;   // 1
constexpr std::int64_t kPipeOff = 58;      // 3
constexpr std::int64_t kParOff = 61;       // 1
constexpr std::int64_t kTileOff = 62;      // 1

float log2f_safe(double v) {
  return v <= 1.0 ? 0.0f : static_cast<float>(std::log2(v));
}

}  // namespace

Tensor node_features(const ProgramGraph& g, const dspace::DesignSpace& space,
                     const DesignConfig& cfg) {
  Tensor x = static_node_features(g, space);
  write_pragma_features(g, space, cfg, x, 0);
  return x;
}

Tensor static_node_features(const ProgramGraph& g,
                            const dspace::DesignSpace& space) {
  const auto& kernel = space.kernel();
  Tensor x({g.num_nodes(), kNodeFeatureDim});
  for (std::int64_t i = 0; i < g.num_nodes(); ++i) {
    const GraphNode& n = g.nodes[static_cast<std::size_t>(i)];
    x.at(i, kTypeOff + static_cast<int>(n.type)) = 1.0f;
    x.at(i, kKeyOff + static_cast<int>(n.key)) = 1.0f;
    x.at(i, kBlockOff + std::min(n.block, 15)) = 1.0f;
    x.at(i, kFnOff + std::min(n.function, 3)) = 1.0f;
    int depth = 0;
    if (n.block > 0) depth = kernel.loop_depth(n.block - 1) + 1;
    x.at(i, kDepthOff + std::min(depth, 7)) = 1.0f;
    x.at(i, kNumericOff) = n.numeric / 16.0f;
  }
  return x;
}

void write_pragma_features(const ProgramGraph& g,
                           const dspace::DesignSpace& space,
                           const DesignConfig& cfg, Tensor& x,
                           std::int64_t row_offset) {
  const auto& sites = space.sites();
  for (std::size_t s = 0; s < sites.size(); ++s) {
    const std::int64_t i = row_offset + g.pragma_nodes[s];
    // Clear the whole pragma block [kPipeOff..kTileOff] so reused buffers
    // carry no stale one-hots from a previous configuration.
    for (std::int64_t c = kPipeOff; c <= kTileOff; ++c) x.at(i, c) = 0.0f;
  }
  for (std::size_t s = 0; s < sites.size(); ++s) {
    const std::int64_t i = row_offset + g.pragma_nodes[s];
    const auto& lc = cfg.loops[static_cast<std::size_t>(sites[s].loop)];
    switch (sites[s].kind) {
      case SiteKind::kPipeline:
        x.at(i, kPipeOff + static_cast<int>(lc.pipeline)) = 1.0f;
        break;
      case SiteKind::kParallel:
        x.at(i, kParOff) =
            log2f_safe(static_cast<double>(lc.parallel)) / 8.0f;
        break;
      case SiteKind::kTile:
        x.at(i, kTileOff) = log2f_safe(static_cast<double>(lc.tile)) / 4.0f;
        break;
    }
  }
}

Tensor edge_features(const ProgramGraph& g) {
  Tensor e({g.num_edges(), kEdgeFeatureDim});
  for (std::int64_t i = 0; i < g.num_edges(); ++i) {
    const GraphEdge& ed = g.edges[static_cast<std::size_t>(i)];
    e.at(i, static_cast<int>(ed.flow)) = 1.0f;
    e.at(i, 4 + std::min(ed.position, 7)) = 1.0f;
  }
  return e;
}

Tensor pragma_vector(const dspace::DesignSpace& space, const DesignConfig& cfg,
                     int max_sites) {
  Tensor v({static_cast<std::int64_t>(max_sites) * kPragmaVectorPerSite});
  write_pragma_vector(space, cfg, max_sites, v.data());
  return v;
}

void write_pragma_vector(const dspace::DesignSpace& space,
                         const DesignConfig& cfg, int max_sites, float* row) {
  std::fill_n(row, static_cast<std::size_t>(max_sites) * kPragmaVectorPerSite,
              0.0f);
  const auto& sites = space.sites();
  for (std::size_t s = 0; s < sites.size() &&
                          s < static_cast<std::size_t>(max_sites);
       ++s) {
    const std::size_t base = s * static_cast<std::size_t>(kPragmaVectorPerSite);
    const auto& lc = cfg.loops[static_cast<std::size_t>(sites[s].loop)];
    switch (sites[s].kind) {
      case SiteKind::kPipeline:
        row[base + static_cast<std::size_t>(lc.pipeline)] = 1.0f;
        break;
      case SiteKind::kParallel:
        row[base + 3] = log2f_safe(static_cast<double>(lc.parallel)) / 8.0f;
        break;
      case SiteKind::kTile:
        row[base + 4] = log2f_safe(static_cast<double>(lc.tile)) / 4.0f;
        break;
    }
  }
}

}  // namespace gnndse::graphgen
