// Featurization: program graph + design configuration -> initial node and
// edge embeddings (paper §4.3: "concatenating the one-hot encoding of their
// attributes and the pragma options", 124 initial node features).
//
// Node feature layout (kNodeFeatureDim = 124):
//   [0..3]    one-hot node type (instruction/variable/constant/pragma)
//   [4..28]   one-hot key_text (25 entries)
//   [29..44]  one-hot block id, capped at 15 (16 entries)
//   [45..48]  one-hot function id, capped at 3 (4 entries)
//   [49..56]  one-hot loop depth of the block, capped at 7 (8 entries)
//   [57]      numeric payload (log2 trip count / op count / dep latency),
//             scaled by 1/16
//   [58..60]  pragma pipeline option one-hot (off/cg/fg)   } zero for
//   [61]      log2(parallel factor) / 8                    } non-pragma
//   [62]      log2(tile factor) / 4                        } nodes
//   [63..123] reserved (zero) — keeps the width at the paper's 124
//
// Edge feature layout (kEdgeFeatureDim = 12):
//   [0..3]  one-hot flow (control/data/call/pragma)
//   [4..11] one-hot position, capped at 7
#pragma once

#include "graphgen/program_graph.hpp"
#include "hlssim/config.hpp"
#include "tensor/tensor.hpp"

namespace gnndse::graphgen {

inline constexpr std::int64_t kNodeFeatureDim = 124;
inline constexpr std::int64_t kEdgeFeatureDim = 12;

/// Node features for one design point. Only pragma-node rows vary across
/// configurations of the same kernel.
tensor::Tensor node_features(const ProgramGraph& g,
                             const dspace::DesignSpace& space,
                             const hlssim::DesignConfig& cfg);

/// Configuration-independent node features: everything node_features writes
/// except the pragma slots [58..62], which are left zero. Cached per kernel
/// by model::SampleFactory's GraphTemplate; combined with
/// write_pragma_features it reproduces node_features bit-for-bit.
tensor::Tensor static_node_features(const ProgramGraph& g,
                                    const dspace::DesignSpace& space);

/// Write the pragma-dependent feature slots of one configuration into `x`
/// at `row_offset` (the first row of this graph inside a stacked buffer).
/// Clears the pragma slot block of every pragma node first, so the buffer
/// can be reused across configurations without stale one-hots surviving.
void write_pragma_features(const ProgramGraph& g,
                           const dspace::DesignSpace& space,
                           const hlssim::DesignConfig& cfg, tensor::Tensor& x,
                           std::int64_t row_offset);

/// Edge features (configuration-independent).
tensor::Tensor edge_features(const ProgramGraph& g);

/// Flat pragma-only feature vector for the M1 baseline (Kwon et al. [7]:
/// an MLP over pragma settings alone, padded to `max_sites`).
/// Layout per site: [pipeline one-hot(3), log2(parallel)/8, log2(tile)/4].
tensor::Tensor pragma_vector(const dspace::DesignSpace& space,
                             const hlssim::DesignConfig& cfg, int max_sites);

inline constexpr int kPragmaVectorPerSite = 5;

/// Writes the pragma vector of one configuration into a preexisting row of
/// `max_sites * kPragmaVectorPerSite` floats (zeroed first, so the buffer
/// can be reused across configurations). pragma_vector delegates here.
void write_pragma_vector(const dspace::DesignSpace& space,
                         const hlssim::DesignConfig& cfg, int max_sites,
                         float* row);

}  // namespace gnndse::graphgen
