// MerlinHls: the HLS-tool substrate.
//
// The paper evaluates every design point with the Merlin Compiler on top of
// Xilinx Vitis HLS (minutes to hours per point). We replace that tool chain
// with a deterministic analytic-plus-heuristic simulator that reproduces
// the *decision structure* an HLS tool exposes to a learner:
//
//   * pipeline off/cg/fg semantics (fg fully unrolls sub-loops — Merlin's
//     rule), initiation interval limited by recurrences (RecMII) and by
//     memory ports / off-chip bandwidth (ResMII);
//   * parallel (unroll) with automatic array partitioning, reduction-tree
//     handling for associative recurrences, and padding penalties for
//     non-divisor factors;
//   * tile with on-chip tile buffers that improve strided off-chip reuse;
//   * Merlin's automatic optimizations: small interface arrays are cached
//     on-chip at kernel start, sequential off-chip accesses become bursts;
//   * resource estimation (DSP/BRAM/LUT/FF) with spatial replication,
//     partition overheads and coarse-grained double buffering;
//   * validity: the tool *refuses* structurally hopeless designs (unroll
//     product or partition limits, parallelized non-associative
//     recurrences) and *times out* (4 h) on designs whose synthesis effort
//     explodes — both are "invalid" classes in the paper's classifier;
//   * a synthetic synthesis wall-clock so AutoDSE-vs-GNN-DSE runtime
//     comparisons (Table 3) are meaningful.
#pragma once

#include <string>

#include "hlssim/config.hpp"
#include "kir/kernel.hpp"

namespace gnndse::hlssim {

/// Target device: Xilinx Virtex Ultrascale+ VCU1525 (VU9P), as in §5.1.
struct FpgaResources {
  long dsp = 6840;
  long bram18 = 4320;      // RAMB18 blocks
  long lut = 1182240;
  long ff = 2364480;
};

struct HlsResult {
  bool valid = false;
  /// Empty when valid; otherwise "timeout: ..." or "refused: ...".
  std::string invalid_reason;

  double cycles = 0.0;  // kernel latency in cycles
  long dsp = 0;
  long bram = 0;  // RAMB18 blocks
  long lut = 0;
  long ff = 0;

  /// Simulated synthesis wall-clock in seconds (what AutoDSE pays per
  /// evaluation). Set for both valid and timed-out designs.
  double synth_seconds = 0.0;

  /// Utilizations relative to the target device (may exceed 1.0 — the HLS
  /// estimate can overflow the chip; the DSE applies the threshold).
  double util_dsp = 0.0, util_bram = 0.0, util_lut = 0.0, util_ff = 0.0;
};

/// The effective per-loop pragma assignment after Merlin's normalization
/// rules: factors clamped to trip counts, cg on childless loops coerced to
/// fg, and fg pipelining fully unrolling every descendant (discarding its
/// own pragmas). This is what the evaluator actually simulates; exposed so
/// users and tests can inspect how the tool reinterprets a configuration.
std::vector<LoopConfig> normalize_config(const kir::Kernel& k,
                                         const DesignConfig& cfg);

class MerlinHls {
 public:
  explicit MerlinHls(FpgaResources device = {}) : device_(device) {}

  /// Evaluates one design point. Deterministic, stateless, and
  /// thread-safe. Memoization lives one layer up, in
  /// oracle::CachingEvaluator — this class always runs the simulator.
  /// Telemetry: counts hlssim.evaluations / .timeouts / .refusals and
  /// times every run into hlssim.evaluate_ms.
  HlsResult evaluate(const kir::Kernel& k, const DesignConfig& cfg) const;

  const FpgaResources& device() const { return device_; }

  /// Synthesis wall-clock limit after which a design is "invalid: timeout"
  /// (the paper uses 4 hours).
  static constexpr double kTimeoutSeconds = 4.0 * 3600.0;

 private:
  FpgaResources device_;
};

}  // namespace gnndse::hlssim
