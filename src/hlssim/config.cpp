#include "hlssim/config.hpp"

#include <sstream>
#include <stdexcept>

namespace gnndse::hlssim {

const char* to_string(PipeMode m) {
  switch (m) {
    case PipeMode::kOff:
      return "off";
    case PipeMode::kCoarse:
      return "cg";
    case PipeMode::kFine:
      return "fg";
  }
  return "?";
}

std::string DesignConfig::key() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    if (i) oss << ';';
    oss << 'L' << i << ':' << to_string(loops[i].pipeline) << '/'
        << loops[i].parallel << '/' << loops[i].tile;
  }
  return oss.str();
}

DesignConfig parse_config_key(const std::string& key) {
  DesignConfig cfg;
  if (key.empty()) return cfg;
  std::istringstream iss(key);
  std::string part;
  while (std::getline(iss, part, ';')) {
    const auto colon = part.find(':');
    if (part.empty() || part[0] != 'L' || colon == std::string::npos)
      throw std::invalid_argument("bad config key segment: " + part);
    const auto s1 = part.find('/', colon);
    const auto s2 = part.find('/', s1 + 1);
    if (s1 == std::string::npos || s2 == std::string::npos)
      throw std::invalid_argument("bad config key segment: " + part);
    LoopConfig lc;
    const std::string mode = part.substr(colon + 1, s1 - colon - 1);
    if (mode == "off")
      lc.pipeline = PipeMode::kOff;
    else if (mode == "cg")
      lc.pipeline = PipeMode::kCoarse;
    else if (mode == "fg")
      lc.pipeline = PipeMode::kFine;
    else
      throw std::invalid_argument("bad pipeline mode: " + mode);
    lc.parallel = std::stoll(part.substr(s1 + 1, s2 - s1 - 1));
    lc.tile = std::stoll(part.substr(s2 + 1));
    cfg.loops.push_back(lc);
  }
  return cfg;
}

}  // namespace gnndse::hlssim
