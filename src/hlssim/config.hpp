// Design-point configuration: one Merlin pragma assignment per loop.
//
// Mirrors the paper's pragma placeholders (§4.2):
//   #pragma ACCEL pipeline auto{...}        -> off | cg | fg
//   #pragma ACCEL parallel factor=auto{...} -> integer factor
//   #pragma ACCEL tile factor=auto{...}     -> integer factor
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kir/kernel.hpp"

namespace gnndse::hlssim {

enum class PipeMode : std::uint8_t { kOff = 0, kCoarse = 1, kFine = 2 };

const char* to_string(PipeMode m);

struct LoopConfig {
  PipeMode pipeline = PipeMode::kOff;
  std::int64_t parallel = 1;
  std::int64_t tile = 1;

  bool operator==(const LoopConfig&) const = default;
};

/// Pragma values for every loop of a kernel (indexed by loop id). Loops
/// without a given pragma site keep the neutral value (off / 1 / 1).
struct DesignConfig {
  std::vector<LoopConfig> loops;

  bool operator==(const DesignConfig&) const = default;

  /// Neutral (all pragmas off) configuration for a kernel.
  static DesignConfig neutral(const kir::Kernel& k) {
    DesignConfig c;
    c.loops.resize(k.loops.size());
    return c;
  }

  /// Compact key such as "L0:cg/4/1;L1:off/1/2" for hashing and CSV files.
  std::string key() const;
};

/// Parses a key produced by DesignConfig::key(). Throws on malformed input.
DesignConfig parse_config_key(const std::string& key);

}  // namespace gnndse::hlssim
