// Hardware cost tables for the HLS simulator: per-operation latency and
// resource footprints for single-precision / integer datapaths on
// UltraScale+ fabric, plus the memory-system and synthesis-effort constants.
//
// The absolute values are in the right ballpark for Vitis HLS estimates;
// what matters for the reproduction is that they induce the qualitative
// trade-offs the GNN has to learn (DSP ~ multiplies x unroll, BRAM jumps
// with partitioning/tiling, II saturated by recurrences and bandwidth).
#pragma once

namespace gnndse::hlssim::cost {

// --- operation latency (cycles) ---------------------------------------------
inline constexpr int kAddLat = 4;   // fp add/sub
inline constexpr int kMulLat = 3;   // fp multiply
inline constexpr int kDivLat = 14;  // fp divide
inline constexpr int kCmpLat = 1;
inline constexpr int kLogicLat = 1;
inline constexpr int kSpecialLat = 8;  // exp/sqrt/table lookup chains

// --- operation resources -----------------------------------------------------
inline constexpr int kAddLut = 220, kAddFf = 180, kAddDsp = 2;
inline constexpr int kMulLut = 100, kMulFf = 120, kMulDsp = 3;
inline constexpr int kDivLut = 800, kDivFf = 900, kDivDsp = 0;
inline constexpr int kCmpLut = 50, kCmpFf = 20;
inline constexpr int kLogicLut = 30, kLogicFf = 10;
inline constexpr int kSpecialLut = 400, kSpecialFf = 300, kSpecialDsp = 2;
inline constexpr int kAccessLut = 25;  // address gen / mux per array access

// --- memory system -----------------------------------------------------------
// Off-chip bus: 512-bit AXI = 64 bytes per cycle of streaming bandwidth.
inline constexpr double kBusBytesPerCycle = 64.0;
// Merlin caches interface arrays up to this many elements in BRAM at
// kernel start (automatic on-chip caching).
inline constexpr long kAutoCacheElems = 4096;
// Per-access latencies (cycles).
inline constexpr int kOnChipRead = 2;
inline constexpr int kOnChipIndirect = 3;
inline constexpr int kOffChipSeq = 1;      // after burst inference
inline constexpr int kOffChipStrided = 8;  // partial burst; /tile reuse
inline constexpr int kOffChipIndirect = 40;
inline constexpr int kBurstSetup = 100;  // per cached array at kernel start

// --- structure ----------------------------------------------------------------
inline constexpr int kLoopIterOverhead = 2;  // control per iteration
inline constexpr int kLoopEntryOverhead = 3;
inline constexpr int kPipelineFlush = 2;
inline constexpr int kCgStageOverhead = 10;

// --- platform baseline (static region / AXI infrastructure) -------------------
inline constexpr long kBaseLut = 150000;
inline constexpr long kBaseFf = 200000;
inline constexpr long kBaseBram = 300;
inline constexpr long kBaseDsp = 10;

// --- tool-validity limits ------------------------------------------------------
inline constexpr long kMaxUnrollProduct = 4096;  // HLS refuses beyond this
inline constexpr long kMaxPartitionBanks = 1024;
inline constexpr long kMaxParallelOffChip = 128;  // refuse wider interfaces

// --- synthesis-effort model -----------------------------------------------------
// synth_seconds = kSynthBase + kSynthLin * effort + kSynthQuad * effort^2.
inline constexpr double kSynthBase = 60.0;
inline constexpr double kSynthLin = 0.25;
inline constexpr double kSynthQuad = 3e-6;
// Non-associative recurrence parallelization: Merlin attempts expensive
// rewrites; effort multiplier 500 * (p-1)^3.
inline constexpr double kNonAssocEffortScale = 500.0;

}  // namespace gnndse::hlssim::cost
