#include "hlssim/hls_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "hlssim/cost_model.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace gnndse::hlssim {
namespace {

using kir::AccessKind;
using kir::Kernel;
using kir::Loop;
using kir::Stmt;

double log2ceil(double x) { return x <= 1.0 ? 0.0 : std::ceil(std::log2(x)); }

/// Result of evaluating one loop subtree.
struct Eval {
  double latency = 0.0;        // cycles for the full loop execution
  double depth1 = 0.0;         // critical path of one body iteration
  double depth_unrolled = 0.0; // critical path if fully spatial
  double exec_bytes = 0.0;     // off-chip bytes moved per full execution
  double body_bytes = 0.0;     // off-chip bytes per single iteration
  double body_ind = 0.0;       // on-chip indirect accesses per iteration
  double exec_ind = 0.0;       // on-chip indirect accesses per full execution
  long dsp = 0, lut = 0, ff = 0, bram = 0;
  double effort = 0.0;
  bool refused = false;
  std::string reason;
};

struct StmtCost {
  double lat = 0.0;
  double bytes = 0.0;  // off-chip bytes per execution
  double ind = 0.0;    // indirect on-chip accesses per execution
  long dsp = 0, lut = 0, ff = 0;
  double effort = 0.0;
};

class Evaluator {
 public:
  Evaluator(const Kernel& k, const DesignConfig& cfg,
            const FpgaResources& device)
      : k_(k), device_(device), eff_(cfg.loops) {
    if (eff_.size() != k.loops.size())
      throw std::invalid_argument("DesignConfig size != number of loops");
    normalize();
  }

  HlsResult run() {
    HlsResult r;
    Eval total;
    std::string bank_refusal;
    total.bram = cached_bram(bank_refusal);
    if (!bank_refusal.empty()) {
      r.valid = false;
      r.invalid_reason = "refused: " + bank_refusal;
      r.synth_seconds = cost::kSynthBase;
      return r;
    }
    double init_cycles = cache_init_cycles();

    for (int top : k_.top_loops) {
      Eval e = eval_loop(top);
      if (e.refused) {
        r.valid = false;
        r.invalid_reason = "refused: " + e.reason;
        r.synth_seconds = cost::kSynthBase;
        return r;
      }
      total.latency += e.latency;
      total.exec_bytes += e.exec_bytes;
      total.dsp += e.dsp;
      total.lut += e.lut;
      total.ff += e.ff;
      total.bram += e.bram;
      total.effort += e.effort;
    }

    // The kernel can never beat the off-chip bandwidth bound.
    const double bw_floor = total.exec_bytes / cost::kBusBytesPerCycle;
    r.cycles = std::max(total.latency + init_cycles, bw_floor);

    r.dsp = total.dsp + cost::kBaseDsp;
    r.lut = total.lut + cost::kBaseLut;
    r.ff = total.ff + cost::kBaseFf;
    r.bram = total.bram + cost::kBaseBram;
    r.util_dsp = static_cast<double>(r.dsp) / device_.dsp;
    r.util_bram = static_cast<double>(r.bram) / device_.bram18;
    r.util_lut = static_cast<double>(r.lut) / device_.lut;
    r.util_ff = static_cast<double>(r.ff) / device_.ff;

    r.synth_seconds = cost::kSynthBase + cost::kSynthLin * total.effort +
                      cost::kSynthQuad * total.effort * total.effort;
    if (r.synth_seconds > MerlinHls::kTimeoutSeconds) {
      r.valid = false;
      r.invalid_reason = "timeout: synthesis exceeded 4h budget";
      r.synth_seconds = MerlinHls::kTimeoutSeconds;
      return r;
    }
    r.valid = true;
    return r;
  }

 private:
  // --- configuration normalization (Merlin rules) -------------------------

  void normalize() { eff_ = normalize_config(k_, DesignConfig{eff_}); }

  // --- memory helpers -------------------------------------------------------

  bool cached(int arr) const {
    const auto& a = k_.arrays[static_cast<std::size_t>(arr)];
    return !a.off_chip || a.num_elems <= cost::kAutoCacheElems;
  }

  long cached_bram(std::string& refusal) {
    long blocks = 0;
    for (std::size_t ai = 0; ai < k_.arrays.size(); ++ai) {
      const auto& a = k_.arrays[ai];
      if (!cached(static_cast<int>(ai))) continue;
      const double bits = static_cast<double>(a.num_elems) * a.elem_bits;
      long base = static_cast<long>(std::ceil(bits / 18432.0));
      // Automatic array partitioning: the widest parallel factor of any
      // loop driving an access to this array sets the bank count.
      long banks = 1;
      for (const Stmt& s : k_.stmts)
        for (const auto& acc : s.accesses)
          if (acc.array == static_cast<int>(ai) && acc.driving_loop >= 0)
            banks = std::max<long>(
                banks, spatial_factor(acc.driving_loop));
      if (banks > cost::kMaxPartitionBanks)
        refusal = "array " + a.name + " needs " + std::to_string(banks) +
                  " partition banks (limit " +
                  std::to_string(cost::kMaxPartitionBanks) + ")";
      blocks += std::max(base, std::min(banks, cost::kMaxPartitionBanks));
    }
    return blocks;
  }

  double cache_init_cycles() const {
    double cycles = 0.0;
    for (std::size_t ai = 0; ai < k_.arrays.size(); ++ai) {
      const auto& a = k_.arrays[ai];
      if (!a.off_chip || !cached(static_cast<int>(ai))) continue;
      cycles += cost::kBurstSetup +
                (static_cast<double>(a.num_elems) * a.elem_bits / 8.0) /
                    cost::kBusBytesPerCycle;
    }
    return cycles;
  }

  /// Product of parallel factors from this loop up to the root — the
  /// spatial replication any instruction in this loop's body experiences.
  long spatial_factor(int loop_id) const {
    double f = 1;
    int cur = loop_id;
    while (cur != -1) {
      f *= static_cast<double>(eff_[static_cast<std::size_t>(cur)].parallel);
      cur = k_.loops[static_cast<std::size_t>(cur)].parent;
    }
    return static_cast<long>(std::min(f, 1e12));
  }

  /// Largest tile factor among this loop and its ancestors — controls
  /// strided off-chip reuse.
  std::int64_t effective_tile(int loop_id) const {
    std::int64_t t = 1;
    int cur = loop_id;
    while (cur != -1) {
      t = std::max(t, eff_[static_cast<std::size_t>(cur)].tile);
      cur = k_.loops[static_cast<std::size_t>(cur)].parent;
    }
    return t;
  }

  StmtCost eval_stmt(const Stmt& s, std::int64_t tile) const {
    StmtCost c;
    const auto& ops = s.ops;
    const double chain = ops.adds * cost::kAddLat + ops.muls * cost::kMulLat +
                         ops.divs * cost::kDivLat + ops.cmps * cost::kCmpLat +
                         ops.logic * cost::kLogicLat +
                         ops.specials * cost::kSpecialLat;
    double max_read = 0.0, max_write = 0.0;
    for (const auto& acc : s.accesses) {
      const auto& arr = k_.arrays[static_cast<std::size_t>(acc.array)];
      const double elem_bytes = arr.elem_bits / 8.0;
      double lat;
      if (cached(acc.array)) {
        lat = acc.kind == AccessKind::kIndirect ? cost::kOnChipIndirect
                                                : cost::kOnChipRead;
        if (acc.kind == AccessKind::kIndirect) c.ind += 1.0;
      } else {
        switch (acc.kind) {
          case AccessKind::kSequential:
            lat = cost::kOffChipSeq;
            c.bytes += elem_bytes;
            break;
          case AccessKind::kStrided:
            lat = std::max<double>(2.0, cost::kOffChipStrided /
                                            static_cast<double>(tile));
            c.bytes += elem_bytes * std::max<double>(
                                        1.0, cost::kOffChipStrided /
                                                 static_cast<double>(tile));
            break;
          case AccessKind::kIndirect:
            lat = cost::kOffChipIndirect;
            c.bytes += cost::kBusBytesPerCycle;  // wasted line per access
            break;
          case AccessKind::kBroadcast:
          default:
            lat = cost::kOnChipRead;  // hoisted into a register
            break;
        }
      }
      if (acc.is_write)
        max_write = std::max(max_write, lat);
      else
        max_read = std::max(max_read, lat);
    }
    c.lat = 1.0 + max_read + chain + max_write;
    c.dsp = ops.adds * cost::kAddDsp + ops.muls * cost::kMulDsp +
            ops.specials * cost::kSpecialDsp;
    c.lut = ops.adds * cost::kAddLut + ops.muls * cost::kMulLut +
            ops.divs * cost::kDivLut + ops.cmps * cost::kCmpLut +
            ops.logic * cost::kLogicLut + ops.specials * cost::kSpecialLut +
            static_cast<long>(s.accesses.size()) * cost::kAccessLut;
    c.ff = static_cast<long>(0.9 * c.lut) + static_cast<long>(c.lat * 8);
    c.effort = 1.0 + ops.total() / 4.0;
    return c;
  }

  // --- loop evaluation -------------------------------------------------------

  Eval eval_loop(int loop_id) {
    const Loop& loop = k_.loops[static_cast<std::size_t>(loop_id)];
    const LoopConfig& c = eff_[static_cast<std::size_t>(loop_id)];
    const std::int64_t tile = effective_tile(loop_id);
    Eval e;

    // Body: statements plus child loops, executed in sequence.
    double stmt_lat = 0.0;
    StmtCost body;
    for (int sid : loop.stmts) {
      StmtCost sc = eval_stmt(k_.stmts[static_cast<std::size_t>(sid)], tile);
      stmt_lat += sc.lat;
      body.bytes += sc.bytes;
      body.ind += sc.ind;
      body.dsp += sc.dsp;
      body.lut += sc.lut;
      body.ff += sc.ff;
      body.effort += sc.effort;
    }

    std::vector<Eval> children;
    children.reserve(loop.children.size());
    double child_lat = 0.0, child_depth_unrolled = 0.0;
    for (int ch : loop.children) {
      Eval ce = eval_loop(ch);
      if (ce.refused) return ce;
      child_lat += ce.latency;
      child_depth_unrolled += ce.depth_unrolled;
      e.body_bytes += ce.exec_bytes;
      e.body_ind += ce.exec_ind;  // child's full execution per our iteration
      e.dsp += ce.dsp;
      e.lut += ce.lut;
      e.ff += ce.ff;
      e.bram += ce.bram;
      e.effort += ce.effort;
      children.push_back(std::move(ce));
    }
    e.body_bytes += body.bytes;
    e.body_ind += body.ind;
    e.dsp += body.dsp;
    e.lut += body.lut;
    e.ff += body.ff;
    e.effort += body.effort;

    // Recurrences carried by this loop (statements anywhere in its body).
    bool has_dep = false, assoc = true;
    int rec_mii = 1, dep_lat = 0;
    for (int d : k_.subtree(loop_id))
      for (int sid : k_.loops[static_cast<std::size_t>(d)].stmts)
        collect_dep(sid, loop_id, has_dep, assoc, rec_mii, dep_lat);

    const std::int64_t p = c.parallel;
    const std::int64_t n = loop.trip_count;

    // --- validity gates -----------------------------------------------------
    const long spatial = spatial_factor(loop_id);
    if (!loop.stmts.empty() && spatial > cost::kMaxUnrollProduct) {
      e.refused = true;
      e.reason = "unroll product " + std::to_string(spatial) + " exceeds " +
                 std::to_string(cost::kMaxUnrollProduct);
      return e;
    }
    if (p > cost::kMaxParallelOffChip && e.body_bytes > 0) {
      e.refused = true;
      e.reason = "parallel factor " + std::to_string(p) +
                 " too wide for off-chip interface";
      return e;
    }

    // Parallelizing a non-associative recurrence: no latency benefit and a
    // synthesis-effort explosion (Merlin tries wavefront rewrites).
    double latency_p = static_cast<double>(p);
    if (has_dep && !assoc && p > 1) {
      latency_p = 1.0;
      const double pd = static_cast<double>(p - 1);
      e.effort += cost::kNonAssocEffortScale * pd * pd * pd;
    }

    // Spatial replication of this loop's body.
    e.dsp *= p;
    e.lut *= p;
    e.ff *= p;
    e.effort = e.effort * static_cast<double>(p) + 5.0;
    // Tile buffers: one RAMB18 bank group per tile chunk for strided
    // off-chip arrays below this loop.
    if (c.tile > 1 && e.body_bytes > 0)
      e.bram += static_cast<long>(c.tile);

    const double trips =
        (has_dep && !assoc) ? static_cast<double>(n)
                            : std::ceil(static_cast<double>(n) / latency_p);

    // Depth of one iteration (children spatially unrolled for fg parents).
    e.depth1 = stmt_lat + child_lat + cost::kLoopIterOverhead;
    double depth_spatial = stmt_lat + child_depth_unrolled;

    switch (c.pipeline) {
      case PipeMode::kFine: {
        // All descendants are fully unrolled; body depth is spatial.
        double ii = 1.0;
        if (has_dep)
          ii = std::max(ii, std::ceil(static_cast<double>(rec_mii)));
        ii = std::max(ii, std::ceil(e.body_bytes * static_cast<double>(p) /
                                    cost::kBusBytesPerCycle));
        ii = std::max(ii, std::ceil(e.body_ind * static_cast<double>(p) / 2.0));
        double depth = depth_spatial + cost::kPipelineFlush;
        if (has_dep && assoc && p > 1)
          depth += log2ceil(static_cast<double>(p)) * dep_lat;
        e.latency = depth + ii * std::max(0.0, trips - 1.0) +
                    cost::kLoopEntryOverhead;
        break;
      }
      case PipeMode::kCoarse: {
        // Dataflow stages: each child loop is a stage (plus one stage for
        // the loop's own statements). Double buffering costs BRAM.
        double stage_max = stmt_lat;
        for (const Eval& ce : children) stage_max = std::max(stage_max, ce.latency);
        const double stages =
            static_cast<double>(children.size()) + (loop.stmts.empty() ? 0 : 1);
        long extra_bram = 0;
        for (const Eval& ce : children) extra_bram += ce.bram;
        e.bram += extra_bram;  // ping-pong buffers
        if (has_dep) {
          // A carried dependence forbids stage overlap across iterations:
          // cg degenerates to sequential execution plus buffering overhead.
          e.latency = trips * (stmt_lat + child_lat +
                               cost::kLoopIterOverhead) *
                          1.05 +
                      cost::kLoopEntryOverhead;
        } else {
          e.latency = stage_max * (trips + stages - 1.0) +
                      cost::kCgStageOverhead + cost::kLoopEntryOverhead;
        }
        if (has_dep && assoc && p > 1)
          e.latency += log2ceil(static_cast<double>(p)) * dep_lat;
        break;
      }
      case PipeMode::kOff:
      default: {
        e.latency =
            trips * (stmt_lat + child_lat + cost::kLoopIterOverhead) +
            cost::kLoopEntryOverhead;
        if (has_dep && assoc && p > 1)
          e.latency += log2ceil(static_cast<double>(p)) * dep_lat;
        break;
      }
    }

    // Unrolled depth for a fine-grained-pipelining ancestor.
    if (has_dep && !assoc)
      e.depth_unrolled = static_cast<double>(n) * (stmt_lat + child_depth_unrolled);
    else if (has_dep)
      e.depth_unrolled = stmt_lat + child_depth_unrolled +
                         log2ceil(static_cast<double>(n)) * dep_lat;
    else
      e.depth_unrolled = stmt_lat + child_depth_unrolled;

    // Bandwidth floor for this subtree.
    e.exec_bytes = e.body_bytes * static_cast<double>(n);
    e.exec_ind = e.body_ind * static_cast<double>(n);
    e.latency = std::max(e.latency, e.exec_bytes / cost::kBusBytesPerCycle);
    return e;
  }

  void collect_dep(int sid, int loop_id, bool& has_dep, bool& assoc,
                   int& rec_mii, int& dep_lat) const {
    const Stmt& s = k_.stmts[static_cast<std::size_t>(sid)];
    if (s.dep_loop != loop_id) return;
    has_dep = true;
    assoc = assoc && s.dep_associative;
    rec_mii = std::max(
        rec_mii, (s.dep_latency + s.dep_distance - 1) / s.dep_distance);
    dep_lat = std::max(dep_lat, s.dep_latency);
  }

  const Kernel& k_;
  const FpgaResources& device_;
  std::vector<LoopConfig> eff_;
};

}  // namespace

std::vector<LoopConfig> normalize_config(const Kernel& k,
                                         const DesignConfig& cfg) {
  std::vector<LoopConfig> eff = cfg.loops;
  if (eff.size() != k.loops.size())
    throw std::invalid_argument("normalize_config: size mismatch");
  for (std::size_t l = 0; l < eff.size(); ++l) {
    const Loop& loop = k.loops[l];
    auto& c = eff[l];
    c.parallel = std::clamp<std::int64_t>(c.parallel, 1, loop.trip_count);
    c.tile = std::clamp<std::int64_t>(c.tile, 1, loop.trip_count);
    // cg pipelining a childless loop degenerates to fine-grained.
    if (c.pipeline == PipeMode::kCoarse && loop.children.empty())
      c.pipeline = PipeMode::kFine;
  }
  // Fine-grained pipelining fully unrolls every descendant loop and
  // discards their pragmas (§2.3 / §4.4 of the paper).
  for (std::size_t l = 0; l < eff.size(); ++l) {
    if (eff[l].pipeline != PipeMode::kFine) continue;
    for (int d : k.subtree(static_cast<int>(l))) {
      if (d == static_cast<int>(l)) continue;
      eff[static_cast<std::size_t>(d)].pipeline = PipeMode::kOff;
      eff[static_cast<std::size_t>(d)].parallel =
          k.loops[static_cast<std::size_t>(d)].trip_count;
      eff[static_cast<std::size_t>(d)].tile = 1;
    }
  }
  return eff;
}

HlsResult MerlinHls::evaluate(const Kernel& k, const DesignConfig& cfg) const {
  static obs::Counter& c_evals = obs::counter("hlssim.evaluations");
  static obs::Counter& c_timeouts = obs::counter("hlssim.timeouts");
  static obs::Counter& c_refusals = obs::counter("hlssim.refusals");
  static obs::Histogram& h_eval = obs::histogram("hlssim.evaluate_ms");

  obs::add(c_evals);
  util::Timer timer;
  Evaluator ev(k, cfg, device_);
  HlsResult r = ev.run();
  if (obs::enabled()) {
    h_eval.observe(timer.millis());
    if (!r.valid) {
      if (r.invalid_reason.rfind("timeout", 0) == 0) c_timeouts.add();
      if (r.invalid_reason.rfind("refused", 0) == 0) c_refusals.add();
    }
  }
  return r;
}

}  // namespace gnndse::hlssim
