#include "frontend/kernel_json.hpp"

#include "frontend/json_value.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gnndse::frontend {
namespace {

using JsonValue = json::Value;

// ---------------------------------------------------------------------------
// JSON -> kir::Kernel, with strict unknown-key rejection.
// ---------------------------------------------------------------------------

[[noreturn]] void fail_at(const JsonValue& v, const std::string& msg) {
  throw std::invalid_argument("kernel json, line " + std::to_string(v.line) +
                              ": " + msg);
}

const JsonValue* find(const JsonValue& obj, const std::string& key) {
  for (const auto& kv : obj.object)
    if (kv.first == key) return &kv.second;
  return nullptr;
}

void check_keys(const JsonValue& obj, std::initializer_list<const char*> keys,
                const char* what) {
  for (const auto& kv : obj.object) {
    bool known = false;
    for (const char* k : keys)
      if (kv.first == k) known = true;
    if (!known)
      fail_at(kv.second, std::string("unknown ") + what + " key \"" +
                             kv.first + "\"");
  }
}

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type, const char* what) {
  const JsonValue* v = find(obj, key);
  if (!v) fail_at(obj, std::string(what) + " is missing \"" + key + "\"");
  if (v->type != type)
    fail_at(*v, std::string(what) + " key \"" + key + "\" has the wrong type");
  return *v;
}

std::int64_t get_int(const JsonValue& obj, const std::string& key,
                     std::int64_t fallback) {
  const JsonValue* v = find(obj, key);
  if (!v) return fallback;
  if (v->type != JsonValue::Type::kInt) fail_at(*v, "\"" + key + "\" must be an integer");
  return v->num;
}

bool get_bool(const JsonValue& obj, const std::string& key, bool fallback) {
  const JsonValue* v = find(obj, key);
  if (!v) return fallback;
  if (v->type != JsonValue::Type::kBool) fail_at(*v, "\"" + key + "\" must be a boolean");
  return v->boolean;
}

std::vector<std::int64_t> get_int_list(const JsonValue& obj,
                                       const std::string& key) {
  const JsonValue* v = find(obj, key);
  std::vector<std::int64_t> out;
  if (!v) return out;
  if (v->type != JsonValue::Type::kArray)
    fail_at(*v, "\"" + key + "\" must be an array of integers");
  for (const JsonValue& e : v->array) {
    if (e.type != JsonValue::Type::kInt)
      fail_at(e, "\"" + key + "\" must contain integers only");
    out.push_back(e.num);
  }
  return out;
}

kir::AccessKind parse_kind(const JsonValue& v) {
  if (v.type != JsonValue::Type::kString) fail_at(v, "\"kind\" must be a string");
  if (v.str == "sequential") return kir::AccessKind::kSequential;
  if (v.str == "strided") return kir::AccessKind::kStrided;
  if (v.str == "indirect") return kir::AccessKind::kIndirect;
  if (v.str == "broadcast") return kir::AccessKind::kBroadcast;
  fail_at(v, "unknown access kind \"" + v.str +
                 "\" (want sequential|strided|indirect|broadcast)");
}

const char* kind_name(kir::AccessKind k) {
  switch (k) {
    case kir::AccessKind::kSequential:
      return "sequential";
    case kir::AccessKind::kStrided:
      return "strided";
    case kir::AccessKind::kIndirect:
      return "indirect";
    case kir::AccessKind::kBroadcast:
      return "broadcast";
  }
  return "sequential";
}

kir::Kernel kernel_from_json(const JsonValue& root) {
  if (root.type != JsonValue::Type::kObject)
    fail_at(root, "top level must be an object");
  check_keys(root, {"name", "num_functions", "arrays", "loops", "stmts"},
             "kernel");
  kir::Kernel k;
  k.name = require(root, "name", JsonValue::Type::kString, "kernel").str;
  k.num_functions =
      static_cast<int>(get_int(root, "num_functions", 1));

  const JsonValue& arrays =
      require(root, "arrays", JsonValue::Type::kArray, "kernel");
  for (const JsonValue& a : arrays.array) {
    if (a.type != JsonValue::Type::kObject) fail_at(a, "array entry must be an object");
    check_keys(a, {"name", "num_elems", "elem_bits", "off_chip"}, "array");
    kir::Array arr;
    arr.name = require(a, "name", JsonValue::Type::kString, "array").str;
    arr.num_elems = require(a, "num_elems", JsonValue::Type::kInt, "array").num;
    arr.elem_bits = static_cast<int>(get_int(a, "elem_bits", 32));
    arr.off_chip = get_bool(a, "off_chip", true);
    k.arrays.push_back(std::move(arr));
  }

  const JsonValue& loops =
      require(root, "loops", JsonValue::Type::kArray, "kernel");
  bool any_function_key = false;
  std::vector<int> functions;
  for (const JsonValue& l : loops.array) {
    if (l.type != JsonValue::Type::kObject) fail_at(l, "loop entry must be an object");
    check_keys(l,
               {"name", "trip_count", "parent", "function", "pipeline",
                "parallel", "tile"},
               "loop");
    kir::Loop loop;
    loop.name = require(l, "name", JsonValue::Type::kString, "loop").str;
    loop.trip_count = require(l, "trip_count", JsonValue::Type::kInt, "loop").num;
    loop.parent = static_cast<int>(get_int(l, "parent", -1));
    loop.can_pipeline = get_bool(l, "pipeline", false);
    loop.parallel_options = get_int_list(l, "parallel");
    loop.can_parallel = !loop.parallel_options.empty();
    loop.tile_options = get_int_list(l, "tile");
    loop.can_tile = !loop.tile_options.empty();
    if (find(l, "function")) any_function_key = true;
    functions.push_back(static_cast<int>(get_int(l, "function", 0)));
    const int id = static_cast<int>(k.loops.size());
    if (loop.parent == -1) {
      k.top_loops.push_back(id);
    } else {
      if (loop.parent < 0 || loop.parent >= id)
        fail_at(l, "loop \"" + loop.name +
                       "\" parent must reference an earlier loop index");
      k.loops[static_cast<std::size_t>(loop.parent)].children.push_back(id);
    }
    k.loops.push_back(std::move(loop));
  }
  // loop_function stays empty unless the file mentions it: an empty vector
  // and an all-zero vector hash differently in oracle::kernel_digest.
  if (any_function_key) k.loop_function = std::move(functions);

  const JsonValue& stmts =
      require(root, "stmts", JsonValue::Type::kArray, "kernel");
  for (const JsonValue& s : stmts.array) {
    if (s.type != JsonValue::Type::kObject) fail_at(s, "stmt entry must be an object");
    check_keys(s, {"name", "loop", "ops", "accesses", "dep"}, "stmt");
    kir::Stmt st;
    st.name = require(s, "name", JsonValue::Type::kString, "stmt").str;
    st.parent_loop = static_cast<int>(require(s, "loop", JsonValue::Type::kInt, "stmt").num);
    if (const JsonValue* ops = find(s, "ops")) {
      if (ops->type != JsonValue::Type::kObject) fail_at(*ops, "\"ops\" must be an object");
      check_keys(*ops, {"adds", "muls", "divs", "cmps", "logic", "specials"},
                 "ops");
      st.ops.adds = static_cast<int>(get_int(*ops, "adds", 0));
      st.ops.muls = static_cast<int>(get_int(*ops, "muls", 0));
      st.ops.divs = static_cast<int>(get_int(*ops, "divs", 0));
      st.ops.cmps = static_cast<int>(get_int(*ops, "cmps", 0));
      st.ops.logic = static_cast<int>(get_int(*ops, "logic", 0));
      st.ops.specials = static_cast<int>(get_int(*ops, "specials", 0));
    }
    if (const JsonValue* accs = find(s, "accesses")) {
      if (accs->type != JsonValue::Type::kArray)
        fail_at(*accs, "\"accesses\" must be an array");
      for (const JsonValue& a : accs->array) {
        if (a.type != JsonValue::Type::kObject)
          fail_at(a, "access entry must be an object");
        check_keys(a, {"array", "write", "kind", "driving_loop"}, "access");
        kir::ArrayAccess acc;
        acc.array = static_cast<int>(
            require(a, "array", JsonValue::Type::kInt, "access").num);
        acc.is_write = get_bool(a, "write", false);
        if (const JsonValue* kind = find(a, "kind")) acc.kind = parse_kind(*kind);
        acc.driving_loop = static_cast<int>(get_int(a, "driving_loop", -1));
        st.accesses.push_back(acc);
      }
    }
    if (const JsonValue* dep = find(s, "dep")) {
      if (dep->type != JsonValue::Type::kObject) fail_at(*dep, "\"dep\" must be an object");
      check_keys(*dep, {"loop", "distance", "latency", "associative"}, "dep");
      st.dep_loop = static_cast<int>(
          require(*dep, "loop", JsonValue::Type::kInt, "dep").num);
      st.dep_distance = static_cast<int>(get_int(*dep, "distance", 1));
      st.dep_latency = static_cast<int>(get_int(*dep, "latency", 1));
      st.dep_associative = get_bool(*dep, "associative", true);
    }
    const int id = static_cast<int>(k.stmts.size());
    if (st.parent_loop < 0 ||
        static_cast<std::size_t>(st.parent_loop) >= k.loops.size())
      fail_at(s, "stmt \"" + st.name + "\" has an out-of-range loop index");
    k.loops[static_cast<std::size_t>(st.parent_loop)].stmts.push_back(id);
    k.stmts.push_back(std::move(st));
  }
  return k;
}

// ---------------------------------------------------------------------------
// Serializer. Byte-deterministic: fixed key order, defaults omitted, 2-space
// indent. Omitting defaults is round-trip safe because the parser fills the
// same defaults back in.
// ---------------------------------------------------------------------------

void append_int_list(std::ostringstream& os, const char* key,
                     const std::vector<std::int64_t>& v) {
  os << ", \"" << key << "\": [";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? "," : "") << v[i];
  os << "]";
}

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string serialize_kernel(const kir::Kernel& k) {
  std::ostringstream os;
  os << "{\n  \"name\": ";
  append_escaped(os, k.name);
  os << ",\n  \"num_functions\": " << k.num_functions;
  os << ",\n  \"arrays\": [";
  for (std::size_t i = 0; i < k.arrays.size(); ++i) {
    const kir::Array& a = k.arrays[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": ";
    append_escaped(os, a.name);
    os << ", \"num_elems\": " << a.num_elems
       << ", \"elem_bits\": " << a.elem_bits
       << ", \"off_chip\": " << (a.off_chip ? "true" : "false") << "}";
  }
  os << "\n  ],\n  \"loops\": [";
  for (std::size_t i = 0; i < k.loops.size(); ++i) {
    const kir::Loop& l = k.loops[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": ";
    append_escaped(os, l.name);
    os << ", \"trip_count\": " << l.trip_count << ", \"parent\": " << l.parent;
    if (!k.loop_function.empty())
      os << ", \"function\": " << k.loop_function[i];
    if (l.can_pipeline) os << ", \"pipeline\": true";
    if (l.can_parallel) append_int_list(os, "parallel", l.parallel_options);
    if (l.can_tile) append_int_list(os, "tile", l.tile_options);
    os << "}";
  }
  os << "\n  ],\n  \"stmts\": [";
  for (std::size_t i = 0; i < k.stmts.size(); ++i) {
    const kir::Stmt& s = k.stmts[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": ";
    append_escaped(os, s.name);
    os << ", \"loop\": " << s.parent_loop;
    if (s.ops.total() > 0) {
      os << ", \"ops\": {";
      bool first = true;
      auto field = [&](const char* key, int v) {
        if (v == 0) return;
        os << (first ? "" : ", ") << "\"" << key << "\": " << v;
        first = false;
      };
      field("adds", s.ops.adds);
      field("muls", s.ops.muls);
      field("divs", s.ops.divs);
      field("cmps", s.ops.cmps);
      field("logic", s.ops.logic);
      field("specials", s.ops.specials);
      os << "}";
    }
    if (!s.accesses.empty()) {
      os << ", \"accesses\": [";
      for (std::size_t j = 0; j < s.accesses.size(); ++j) {
        const kir::ArrayAccess& a = s.accesses[j];
        os << (j ? ", " : "") << "{\"array\": " << a.array;
        if (a.is_write) os << ", \"write\": true";
        os << ", \"kind\": \"" << kind_name(a.kind) << "\""
           << ", \"driving_loop\": " << a.driving_loop << "}";
      }
      os << "]";
    }
    if (s.dep_loop != -1) {
      os << ", \"dep\": {\"loop\": " << s.dep_loop
         << ", \"distance\": " << s.dep_distance
         << ", \"latency\": " << s.dep_latency << ", \"associative\": "
         << (s.dep_associative ? "true" : "false") << "}";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

kir::Kernel parse_kernel(const std::string& json_text) {
  return kernel_from_json_value(
      json::parse_value(json_text, "kernel json", /*allow_float=*/false));
}

kir::Kernel kernel_from_json_value(const json::Value& root) {
  kir::Kernel k = kernel_from_json(root);
  kir::validate(k);
  return k;
}

kir::Kernel load_kernel_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("cannot read kernel file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_kernel(buf.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void save_kernel_file(const kir::Kernel& k, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write kernel file: " + path);
  out << serialize_kernel(k);
  if (!out) throw std::runtime_error("short write to kernel file: " + path);
}

bool looks_like_kernel_file(const std::string& s) {
  if (s.find('/') != std::string::npos) return true;
  return s.size() > 5 && s.compare(s.size() - 5, 5, ".json") == 0;
}

}  // namespace gnndse::frontend
