// Text frontend for the kernel IR: a JSON loop-nest description format that
// round-trips kir::Kernel exactly.
//
// The format mirrors the IR one-to-one (arrays / loops / stmts plus pragma
// sites); forest structure is given by per-loop `parent` and per-stmt `loop`
// indices, and the derived lists (`Loop::children`, `Loop::stmts`,
// `Kernel::top_loops`) are reconstructed in index order — the same order the
// KernelBuilder produces — so a serialize → parse round-trip preserves
// oracle::kernel_digest bit-for-bit and the persistent oracle cache keeps
// matching entries written against the hand-coded kernel.
//
//   {
//     "name": "gemm-ncubed",
//     "num_functions": 1,
//     "arrays": [ {"name":"A","num_elems":4096,"elem_bits":32,
//                  "off_chip":true} ],
//     "loops":  [ {"name":"i","trip_count":64,"parent":-1,"function":0,
//                  "pipeline":true,"parallel":[1,2,4],"tile":[1,8]} ],
//     "stmts":  [ {"name":"mac","loop":2,
//                  "ops":{"adds":1,"muls":1},
//                  "accesses":[{"array":0,"write":false,
//                               "kind":"sequential","driving_loop":2}],
//                  "dep":{"loop":2,"distance":1,"latency":4,
//                         "associative":true}} ]
//   }
//
// Omitted fields take the struct defaults ("pipeline" false, "ops" counts 0,
// "dep" absent = no recurrence). `kind` is one of sequential | strided |
// indirect | broadcast. Every parsed kernel is passed through
// kir::validate() before it is returned, so a malformed file fails loudly
// instead of producing garbage cycles downstream. See docs/kernels.md.
#pragma once

#include <string>

#include "frontend/json_value.hpp"
#include "kir/kernel.hpp"

namespace gnndse::frontend {

/// Serializes a kernel to the canonical JSON text form (deterministic byte
/// output: fixed key order, 2-space indent, '\n' line ends) so fixed-seed
/// generator runs produce byte-identical files.
std::string serialize_kernel(const kir::Kernel& k);

/// Parses a kernel from JSON text; validates before returning. Throws
/// std::invalid_argument with a line-annotated message on syntax errors,
/// unknown keys/kinds, or IR-validation failures.
kir::Kernel parse_kernel(const std::string& json_text);

/// Same, from an already-parsed JSON value (the serve protocol embeds
/// kernel objects inside request lines); validates before returning.
kir::Kernel kernel_from_json_value(const json::Value& root);

/// Reads and parses `path`; the error message names the file. Throws
/// std::invalid_argument on unreadable files and parse/validation errors.
kir::Kernel load_kernel_file(const std::string& path);

/// Writes serialize_kernel(k) to `path`; throws std::runtime_error when the
/// file cannot be written.
void save_kernel_file(const kir::Kernel& k, const std::string& path);

/// True when `s` names a kernel file rather than a registry entry: ends in
/// ".json" or contains a path separator.
bool looks_like_kernel_file(const std::string& s);

}  // namespace gnndse::frontend
