#include "frontend/json_value.hpp"

#include <stdexcept>

namespace gnndse::frontend::json {
namespace {

class Reader {
 public:
  Reader(const std::string& text, const std::string& context, bool allow_float)
      : text_(text), context_(context), allow_float_(allow_float) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument(context_ + ", line " + std::to_string(line_) +
                                ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    ++pos_;
  }

  Value value() {
    const char c = peek();
    Value v;
    v.line = line_;
    if (c == '{') {
      v.type = Value::Type::kObject;
      ++pos_;
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        Value key = string_value();
        expect(':');
        for (const auto& kv : v.object)
          if (kv.first == key.str) fail("duplicate key \"" + key.str + "\"");
        v.object.emplace_back(key.str, value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = Value::Type::kArray;
      ++pos_;
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') {
      v.type = Value::Type::kBool;
      const char* word = c == 't' ? "true" : "false";
      for (const char* p = word; *p; ++p, ++pos_)
        if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      v.boolean = c == 't';
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      v.type = Value::Type::kInt;
      const std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      bool is_float = false;
      if (pos_ < text_.size() &&
          (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
        if (!allow_float_) fail("kernel fields are integers; got a float");
        is_float = true;
        if (text_[pos_] == '.') {
          ++pos_;
          while (pos_ < text_.size() && text_[pos_] >= '0' &&
                 text_[pos_] <= '9')
            ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
          ++pos_;
          if (pos_ < text_.size() &&
              (text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
          while (pos_ < text_.size() && text_[pos_] >= '0' &&
                 text_[pos_] <= '9')
            ++pos_;
        }
      }
      if (pos_ == start + (c == '-' ? 1u : 0u)) fail("bad number");
      const std::string tok = text_.substr(start, pos_ - start);
      try {
        if (is_float) {
          v.type = Value::Type::kDouble;
          v.dnum = std::stod(tok);
        } else {
          v.num = std::stoll(tok);
          v.dnum = static_cast<double>(v.num);
        }
      } catch (const std::exception&) {
        fail("bad number '" + tok + "'");
      }
      return v;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  Value string_value() {
    Value v;
    v.type = Value::Type::kString;
    v.line = line_;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\n') fail("newline inside string");
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        if (e == '"' || e == '\\' || e == '/')
          v.str += e;
        else if (e == 'n')
          v.str += '\n';
        else
          fail("unsupported escape sequence");
        continue;
      }
      v.str += c;
    }
  }

  const std::string& text_;
  const std::string& context_;
  bool allow_float_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  for (const auto& kv : object)
    if (kv.first == key) return &kv.second;
  return nullptr;
}

double Value::as_double() const {
  if (type == Type::kInt) return static_cast<double>(num);
  if (type == Type::kDouble) return dnum;
  throw std::logic_error("json::Value::as_double on a non-numeric value");
}

Value parse_value(const std::string& text, const std::string& context,
                  bool allow_float) {
  return Reader(text, context, allow_float).parse();
}

}  // namespace gnndse::frontend::json
