// Minimal strict JSON reader shared by the text frontends: the kernel file
// format (kernel_json.cpp) and the serve request protocol (src/serve/).
//
// Deliberately small: objects, arrays, strings, integers, doubles and
// booleans. Everything else (null, duplicate keys, trailing content) is
// rejected with a line-numbered error so authors and clients get actionable
// messages instead of silently-defaulted fields. Object pairs keep file
// order so error messages can point at the offending key.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gnndse::frontend::json {

struct Value {
  enum class Type { kObject, kArray, kString, kInt, kDouble, kBool };
  Type type = Type::kObject;
  std::vector<std::pair<std::string, Value>> object;
  std::vector<Value> array;
  std::string str;
  std::int64_t num = 0;   // kInt
  double dnum = 0.0;      // kDouble (kInt values mirror into dnum too)
  bool boolean = false;
  int line = 0;  // 1-based line the value started on

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;

  /// Numeric value of a kInt or kDouble (throws std::logic_error otherwise).
  double as_double() const;
};

/// Parses one JSON document; trailing non-whitespace content fails.
/// `context` prefixes error messages ("kernel json", "serve request").
/// With allow_float=false a fractional/exponent number fails with the
/// kernel format's historical "fields are integers" message; otherwise it
/// parses as kDouble.
/// Throws std::invalid_argument on any syntax error.
Value parse_value(const std::string& text, const std::string& context,
                  bool allow_float = true);

}  // namespace gnndse::frontend::json
