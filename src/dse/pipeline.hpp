// The full GNN-DSE pipeline (Fig 1a): train the three predictive models on
// the shared database, run model-driven DSE per kernel, evaluate the top
// designs with the HLS substrate, and (optionally) feed them back into the
// database for the next round (§4.4, Fig 7).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dse/dse.hpp"

namespace gnndse::dse {

struct PipelineOptions {
  int main_epochs = 30;
  int bram_epochs = 15;
  int classifier_epochs = 15;
  int batch_size = 32;
  float lr = 1e-3f;
  /// The validity classifier needs a hotter optimizer to escape the
  /// majority-class basin on imbalanced databases.
  float cls_lr = 3e-3f;
  std::int64_t hidden = 64;
  int gnn_layers = 6;
  model::ModelKind kind = model::ModelKind::kM7Full;
  std::uint64_t seed = 1;
  bool verbose = false;
};

/// Owns the three trained models plus their trainers and normalizer.
/// When `cache_prefix` is non-empty and <prefix>.{main,bram,cls}.bin exist,
/// weights are loaded instead of retrained (and saved there after a fresh
/// training run) — bench binaries share one trained bundle this way.
class TrainedModels {
 public:
  TrainedModels(const db::Database& database,
                const std::vector<kir::Kernel>& kernels,
                model::SampleFactory& factory, const PipelineOptions& opts,
                const std::string& cache_prefix = "");

  ModelBundle bundle();
  const model::Normalizer& normalizer() const { return norm_; }
  model::PredictiveModel& main_model() { return *main_model_; }
  model::PredictiveModel& bram_model() { return *bram_model_; }
  model::PredictiveModel& cls_model() { return *cls_model_; }
  model::Trainer& main_trainer() { return *main_trainer_; }

 private:
  model::Normalizer norm_;
  std::unique_ptr<model::PredictiveModel> main_model_, bram_model_, cls_model_;
  std::unique_ptr<model::Trainer> main_trainer_, bram_trainer_, cls_trainer_;
};

/// One Fig 7 data series: per-kernel speedup over the best design in the
/// initial database, for each DSE round.
struct RoundsOutcome {
  /// speedups[round][kernel] = best_initial_cycles / best_after_round.
  std::vector<std::map<std::string, double>> speedups;
  std::vector<double> average;  // per round, geometric-mean-free average
  db::Database final_db;
};

/// Runs `rounds` rounds of train -> DSE -> HLS-evaluate-top-M -> augment DB
/// (§4.4) over the given kernels, starting from `initial_db`. Rounds share
/// one oracle, so overlapping top-M designs across rounds are served from
/// its cache instead of re-synthesized.
RoundsOutcome run_dse_rounds(const db::Database& initial_db,
                             const std::vector<kir::Kernel>& kernels,
                             oracle::Evaluator& oracle, int rounds,
                             const PipelineOptions& popts,
                             const DseOptions& dopts, util::Rng& rng);

}  // namespace gnndse::dse
