// Design-space exploration on top of the predictive models (paper §4.4,
// §5.3, §5.4).
//
// Small spaces are swept exhaustively (the models run in milliseconds);
// large spaces use the innermost-first pragma-ordering heuristic: a beam
// sweep over the priority-ordered sites, followed by random exploration
// until the time limit. Both paths stream their candidates through the
// pipelined SweepEngine (dse/sweep_engine.hpp), which overlaps chunk
// featurization, multi-head prediction, and frontier ranking. The top-M
// candidates by predicted quality are then evaluated with the real HLS
// substrate, exactly as GNN-DSE sends its top-10 designs to the Merlin
// Compiler.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "db/database.hpp"
#include "db/explorer.hpp"
#include "dse/sweep_engine.hpp"
#include "model/trainer.hpp"

namespace gnndse::dse {

struct DseOptions {
  /// Wall-clock budget for the model-driven search.
  double time_limit_seconds = 60.0;
  /// Candidates sent to the HLS tool at the end (paper: top 10).
  int top_m = 10;
  double util_threshold = 0.8;
  /// Spaces up to this many (pruned) configurations are swept exhaustively
  /// (the paper sweeps every training kernel except mvt, whose 3M-point
  /// space gets the §4.4 heuristic under a one-hour limit). Full prediction
  /// costs ~5 ms/config on one core, so the default keeps sweeps under a
  /// minute; larger spaces fall back to the heuristic + time limit.
  std::uint64_t max_exhaustive = 8'000;
  /// Beam width of the heuristic sweep for larger spaces.
  int beam_width = 32;
  /// Featurization/inference chunk. Each chunk is featurized per-config
  /// across the global thread pool (GNNDSE_THREADS), then predicted with
  /// one batched model call per trainer.
  int chunk = 256;
  /// Ablation toggle: false disables the §4.4 innermost-first ordering and
  /// sweeps sites in declaration order instead.
  bool use_priority_order = true;
  /// Inference fast path: score chunks through one shared, skeleton-cached
  /// GraphBatch and the tape-free forward (bit-identical predictions).
  /// false restores the legacy per-head tape path — kept for the
  /// tape-vs-fast benchmark (bench_fastpath) and as an escape hatch.
  bool use_fast_path = true;
  /// Pipelined sweep engine (dse/sweep_engine.hpp): overlap chunk
  /// featurization with multi-head prediction and frontier keep.
  /// Bit-identical to the serial engine at every thread count (enforced by
  /// tests/test_sweep.cpp); false runs the stages back-to-back on the
  /// calling thread, as every release before the engine did. The
  /// GNNDSE_SWEEP_PIPELINE env var (0/1) overrides a true value — an
  /// escape hatch for debugging, never an enable.
  bool pipeline = true;
  /// Hard cap on configurations handed to the models (0 = unlimited).
  /// Unlike the wall-clock limit this budget is deterministic, so two runs
  /// with the same cap score the same configs — the engine identity tests
  /// use it to pin the heuristic path, and bounded production sweeps get a
  /// predictable cost.
  std::uint64_t max_configs = 0;
  /// Cooperative cancellation: another thread (the serve daemon's cancel
  /// request) sets the flag; the search checks it between chunks, stops
  /// scoring *and enumerating*, and returns with DseResult::cancelled set.
  /// nullptr = never cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

struct DseResult {
  std::vector<RankedDesign> top;  // best predicted first
  /// Next-ranked candidates after `top`; evaluate_top falls back to these
  /// (in further parallel batches) when every top design fails in HLS —
  /// mispredicted regions exist before the database-augmentation rounds
  /// of §4.4 correct them.
  std::vector<RankedDesign> reserve;
  std::uint64_t num_explored = 0;
  double search_seconds = 0.0;  // model-driven search wall-clock
  /// Per-stage timing of the sweep (SweepEngine::stats()): featurize /
  /// predict / rank milliseconds, wall time, and the overlap ratio.
  SweepStageStats stages;
  /// True when DseOptions::cancel fired: `top` holds the best designs
  /// ranked before the cancellation point.
  bool cancelled = false;
};

class ModelDse {
 public:
  ModelDse(ModelBundle models, const model::Normalizer& norm,
           model::SampleFactory& factory);

  DseResult run(const kir::Kernel& kernel, const DseOptions& opts,
                util::Rng& rng);

  /// Evaluates the top designs through the oracle (the paper runs them
  /// through Merlin in parallel: wall-clock = slowest member; the batch
  /// fan-out lives in oracle::Evaluator::evaluate_batch). Results are
  /// appended to `out_db` when provided. Returns the best fitting design
  /// and the simulated HLS seconds consumed.
  struct TopEvaluation {
    std::optional<db::DataPoint> best;
    double hls_seconds = 0.0;
    std::vector<db::DataPoint> evaluated;
  };
  TopEvaluation evaluate_top(const kir::Kernel& kernel, const DseResult& r,
                             oracle::Evaluator& oracle,
                             double util_threshold = 0.8,
                             db::Database* out_db = nullptr) const;

 private:
  ModelBundle models_;
  const model::Normalizer& norm_;
  model::SampleFactory& factory_;
};

/// AutoDSE baseline (Table 3): the bottleneck explorer against the HLS
/// oracle, with simulated synthesis wall-clock accounting.
struct AutoDseOutcome {
  hlssim::DesignConfig best;
  double best_cycles = 0.0;
  double simulated_seconds = 0.0;
  int evals = 0;
};
AutoDseOutcome run_autodse_baseline(const kir::Kernel& kernel,
                                    oracle::Evaluator& oracle,
                                    double time_budget_seconds,
                                    double util_threshold = 0.8);

}  // namespace gnndse::dse
