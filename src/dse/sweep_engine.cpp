#include "dse/sweep_engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace gnndse::dse {

using hlssim::DesignConfig;

double ranking_score(const RankedDesign& d, double util_threshold) {
  double score = d.predicted[model::kLatency];
  if (d.p_valid < 0.5f) score -= 100.0;
  const double worst_util =
      std::max({d.predicted[model::kDsp], d.predicted[model::kLut],
                d.predicted[model::kFf], d.predicted[model::kBram]});
  if (worst_util >= util_threshold)
    score -= 10.0 * (worst_util - util_threshold + 0.1);
  return score;
}

namespace {

float sigmoidf(float x) {
  return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                : std::exp(x) / (1.0f + std::exp(x));
}

std::int64_t micros(double ms) {
  return static_cast<std::int64_t>(ms * 1000.0);
}

}  // namespace

SweepEngine::SweepEngine(const ModelBundle& models,
                         model::SampleFactory& factory,
                         const kir::Kernel& kernel,
                         const SweepEngineOptions& opts)
    : models_(models), factory_(factory), kernel_(kernel), opts_(opts) {
  if (opts_.chunk < 1)
    throw std::invalid_argument("SweepEngine: chunk must be >= 1");
  if (opts_.keep == 0)
    throw std::invalid_argument("SweepEngine: keep must be >= 1");
  pending_.reserve(static_cast<std::size_t>(opts_.chunk));
}

SweepEngine::~SweepEngine() {
  stop_worker();
  // Park the leased batch skeletons for the next sweep of this kernel.
  for (Slot& s : slots_)
    if (s.batch) factory_.release_slot(std::move(s.batch));
}

void SweepEngine::rethrow_pending_error() {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

void SweepEngine::push(DesignConfig&& cfg) {
  pending_.push_back(std::move(cfg));
  if (pending_.size() >= static_cast<std::size_t>(opts_.chunk)) dispatch();
}

void SweepEngine::dispatch() {
  if (pending_.empty()) return;
  if (cancelled()) {
    // Drop work that never reached a batch; in-flight chunks still finish,
    // mirroring the serial path's "one chunk completes, then wind down".
    pending_.clear();
    return;
  }
  rethrow_pending_error();
  Slot& s = slots_[static_cast<std::size_t>(fill_idx_)];
  if (opts_.pipelined) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_to_producer_.wait(lock, [&] { return !s.ready; });
  }
  s.configs = std::move(pending_);
  pending_ = {};
  pending_.reserve(static_cast<std::size_t>(opts_.chunk));
  s.first_seq = next_seq_;
  next_seq_ += s.configs.size();
  featurize_slot(s);
  if (opts_.pipelined) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      s.ready = true;
      ++dispatched_chunks_;
    }
    cv_to_consumer_.notify_one();
    if (!worker_started_) {
      worker_ = std::thread([this] { worker_loop(); });
      worker_started_ = true;
    }
    fill_idx_ ^= 1;
  } else {
    ++dispatched_chunks_;
    score_slot(s);
    s.configs.clear();
    s.graphs.clear();
    ++scored_chunks_;
  }
}

void SweepEngine::featurize_slot(Slot& s) {
  static obs::Histogram& h_feat = obs::histogram("dse.featurize_chunk_ms");
  static obs::Histogram& h_stage = obs::histogram("dse.pipeline.stage_ms");
  util::Timer t;
  if (opts_.use_fast_path) {
    // Lease (or reuse) a batch skeleton sized for this chunk and rewrite
    // its pragma slots. The lease is private to this engine, so the
    // consumer can predict from the other slot concurrently.
    if (!s.batch || s.batch->size != s.configs.size()) {
      if (s.batch) factory_.release_slot(std::move(s.batch));
      s.batch = factory_.acquire_slot(kernel_, s.configs.size());
    }
    factory_.write_slot(kernel_, s.configs, *s.batch);
  } else {
    // Legacy tape path (bench_fastpath's baseline): full per-config
    // featurization, exactly what every release before the fast path did.
    s.graphs.resize(s.configs.size());
    util::parallel_for(
        static_cast<std::int64_t>(s.configs.size()), 8,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i)
            s.graphs[static_cast<std::size_t>(i)] = factory_.featurize_full(
                kernel_, s.configs[static_cast<std::size_t>(i)]);
        });
  }
  const double ms = t.millis();
  obs::observe(h_feat, ms);
  obs::observe(h_stage, ms);
  feat_us_.fetch_add(micros(ms), std::memory_order_relaxed);
}

void SweepEngine::score_slot(Slot& s) {
  static obs::Histogram& h_pred = obs::histogram("dse.predict_chunk_ms");
  static obs::Histogram& h_rank = obs::histogram("dse.frontier_keep_ms");
  static obs::Histogram& h_stage = obs::histogram("dse.pipeline.stage_ms");
  static obs::Counter& c_pruned = obs::counter("dse.pruned_by_classifier");
  static obs::Counter& c_explored = obs::counter("dse.configs_explored");
  static obs::Gauge& g_elapsed = obs::gauge("dse.search_elapsed_seconds");
  static obs::Gauge& g_frontier = obs::gauge("dse.frontier_size");
  static obs::Gauge& g_overlap = obs::gauge("dse.pipeline.overlap_ratio");

  const tensor::Tensor* main_pred = nullptr;
  const tensor::Tensor* bram_pred = nullptr;
  const tensor::Tensor* valid_pred = nullptr;
  // Tape-path temporaries (owning); the fast path borrows the per-trainer
  // inference workspaces instead (three distinct sessions, so all three
  // references stay valid through the fill loop).
  tensor::Tensor main_t, bram_t, valid_t;

  util::Timer pred_timer;
  if (opts_.use_fast_path) {
    const gnn::GraphBatch& batch = s.batch->batch;
    if (opts_.pipelined) {
      // The three heads fan out as pool tasks; with one lane they run
      // inline in the same order as the serial branch below.
      const std::array<model::Trainer*, 3> heads{
          models_.regression_main, models_.regression_bram,
          models_.classifier};
      std::array<const tensor::Tensor*, 3> outs{};
      model::predict_batch_concurrent(heads, batch, outs);
      main_pred = outs[0];
      bram_pred = outs[1];
      valid_pred = outs[2];
    } else {
      main_pred = &models_.regression_main->predict_batch(batch);
      bram_pred = &models_.regression_bram->predict_batch(batch);
      valid_pred = &models_.classifier->predict_batch(batch);
    }
  } else {
    std::vector<const gnn::GraphData*> ptrs;
    ptrs.reserve(s.graphs.size());
    for (const auto& g : s.graphs) ptrs.push_back(&g);
    main_t = models_.regression_main->predict_graphs_tape(ptrs);
    bram_t = models_.regression_bram->predict_graphs_tape(ptrs);
    valid_t = models_.classifier->predict_graphs_tape(ptrs);
    main_pred = &main_t;
    bram_pred = &bram_t;
    valid_pred = &valid_t;
  }
  {
    const double ms = pred_timer.millis();
    obs::observe(h_pred, ms);
    obs::observe(h_stage, ms);
    pred_us_.fetch_add(micros(ms), std::memory_order_relaxed);
  }

  util::Timer rank_timer;
  std::int64_t pruned = 0;
  frontier_.reserve(frontier_.size() + s.configs.size());
  for (std::size_t i = 0; i < s.configs.size(); ++i) {
    Scored sc;
    sc.d.config = std::move(s.configs[i]);
    const auto row = static_cast<std::int64_t>(i);
    sc.d.predicted[model::kLatency] = main_pred->at(row, 0);
    sc.d.predicted[model::kDsp] = main_pred->at(row, 1);
    sc.d.predicted[model::kLut] = main_pred->at(row, 2);
    sc.d.predicted[model::kFf] = main_pred->at(row, 3);
    sc.d.predicted[model::kBram] = bram_pred->at(row, 0);
    sc.d.p_valid = sigmoidf(valid_pred->at(row, 0));
    if (sc.d.p_valid < 0.5f) ++pruned;
    sc.score = ranking_score(sc.d, opts_.util_threshold);
    sc.seq = s.first_seq + i;
    frontier_.push_back(std::move(sc));
  }
  keep_top();
  const std::uint64_t scored =
      num_scored_.fetch_add(s.configs.size(), std::memory_order_relaxed) +
      s.configs.size();
  {
    const double ms = rank_timer.millis();
    obs::observe(h_rank, ms);
    obs::observe(h_stage, ms);
    rank_us_.fetch_add(micros(ms), std::memory_order_relaxed);
  }

  obs::add(c_pruned, pruned);
  obs::add(c_explored, static_cast<std::int64_t>(s.configs.size()));
  const double wall_s = timer_.seconds();
  obs::set(g_elapsed, wall_s);
  obs::set(g_frontier, static_cast<double>(frontier_.size()));
  if (wall_s > 0) {
    const double stage_us = static_cast<double>(
        feat_us_.load(std::memory_order_relaxed) +
        pred_us_.load(std::memory_order_relaxed) +
        rank_us_.load(std::memory_order_relaxed));
    obs::set(g_overlap, stage_us / (wall_s * 1e6));
    obs::set(obs::gauge("dse.sweep_configs_per_sec"),
             static_cast<double>(scored) / wall_s);
  }
}

void SweepEngine::keep_top() {
  if (frontier_.size() <= opts_.keep) return;
  // Bounded frontier: a design outside the best `keep` so far can never
  // re-enter the final top `keep`, so truncating per chunk is exact (the
  // serial path's per-flush sort+resize kept the same invariant). Average
  // O(n) nth_element instead of the old full sort per flush.
  const auto kth =
      frontier_.begin() + static_cast<std::ptrdiff_t>(opts_.keep);
  std::nth_element(frontier_.begin(), kth, frontier_.end(),
                   [&](const Scored& a, const Scored& b) {
                     return better(a, b);
                   });
  frontier_.resize(opts_.keep);
}

void SweepEngine::worker_loop() {
  obs::set_thread_name("sweep-score");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Slot& s = slots_[static_cast<std::size_t>(score_idx_)];
    cv_to_consumer_.wait(
        lock, [&] { return stop_ || slots_[static_cast<std::size_t>(
                                              score_idx_)].ready; });
    if (!slots_[static_cast<std::size_t>(score_idx_)].ready) return;  // stop
    lock.unlock();
    std::exception_ptr err;
    try {
      score_slot(s);
    } catch (...) {
      err = std::current_exception();
    }
    s.configs.clear();
    s.graphs.clear();
    lock.lock();
    s.ready = false;
    if (err && !error_) error_ = err;
    ++scored_chunks_;
    score_idx_ ^= 1;
    cv_to_producer_.notify_all();
  }
}

void SweepEngine::barrier() {
  dispatch();
  if (opts_.pipelined && worker_started_) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_to_producer_.wait(
        lock, [&] { return scored_chunks_ == dispatched_chunks_; });
  }
  rethrow_pending_error();
}

std::vector<DesignConfig> SweepEngine::top_configs(std::size_t n) {
  barrier();
  // Post-barrier the consumer is idle, so reading the frontier is ordered
  // by the scored_chunks_ handshake.
  std::vector<std::size_t> idx(frontier_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const std::size_t k = std::min(n, idx.size());
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return better(frontier_[a], frontier_[b]);
                    });
  std::vector<DesignConfig> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    out.push_back(frontier_[idx[i]].d.config);
  return out;
}

std::vector<RankedDesign> SweepEngine::finish() {
  barrier();
  stop_worker();
  std::sort(frontier_.begin(), frontier_.end(),
            [&](const Scored& a, const Scored& b) { return better(a, b); });
  const double wall_ms = timer_.millis();
  stats_.featurize_ms =
      static_cast<double>(feat_us_.load(std::memory_order_relaxed)) / 1e3;
  stats_.predict_ms =
      static_cast<double>(pred_us_.load(std::memory_order_relaxed)) / 1e3;
  stats_.rank_ms =
      static_cast<double>(rank_us_.load(std::memory_order_relaxed)) / 1e3;
  stats_.wall_ms = wall_ms;
  stats_.chunks = dispatched_chunks_;
  stats_.overlap_ratio =
      wall_ms > 0
          ? (stats_.featurize_ms + stats_.predict_ms + stats_.rank_ms) /
                wall_ms
          : 0.0;
  obs::set(obs::gauge("dse.pipeline.overlap_ratio"), stats_.overlap_ratio);
  if (wall_ms > 0)
    obs::set(obs::gauge("dse.sweep_configs_per_sec"),
             static_cast<double>(num_scored()) / (wall_ms / 1e3));
  std::vector<RankedDesign> out;
  out.reserve(frontier_.size());
  for (Scored& sc : frontier_) out.push_back(std::move(sc.d));
  frontier_.clear();
  finished_ = true;
  return out;
}

void SweepEngine::stop_worker() {
  if (!worker_started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_to_consumer_.notify_all();
  if (worker_.joinable()) worker_.join();
  worker_started_ = false;
}

}  // namespace gnndse::dse
