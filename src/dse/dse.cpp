#include "dse/dse.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace gnndse::dse {

using hlssim::DesignConfig;
using hlssim::LoopConfig;
using hlssim::PipeMode;
using model::kNumObjectives;

ModelDse::ModelDse(ModelBundle models, const model::Normalizer& norm,
                   model::SampleFactory& factory)
    : models_(models), norm_(norm), factory_(factory) {}

namespace {

/// Applies one site option to a configuration.
void apply_site(const dspace::PragmaSite& site, std::int64_t opt,
                DesignConfig& cfg) {
  LoopConfig& lc = cfg.loops[static_cast<std::size_t>(site.loop)];
  switch (site.kind) {
    case dspace::SiteKind::kTile:
      lc.tile = opt;
      break;
    case dspace::SiteKind::kPipeline:
      lc.pipeline = static_cast<PipeMode>(opt);
      break;
    case dspace::SiteKind::kParallel:
      lc.parallel = opt;
      break;
  }
}

}  // namespace

DseResult ModelDse::run(const kir::Kernel& kernel, const DseOptions& opts,
                        util::Rng& rng) {
  static obs::Counter& c_beam = obs::counter("dse.beam_expansions");
  static obs::Counter& c_random = obs::counter("dse.random_samples");
  // Progress gauges feed the heartbeat stream's eta_seconds rate (the
  // engine keeps dse.search_elapsed_seconds / dse.frontier_size /
  // dse.configs_explored current per chunk).
  static obs::Gauge& g_limit = obs::gauge("dse.time_limit_seconds");
  static obs::Gauge& g_elapsed = obs::gauge("dse.search_elapsed_seconds");
  // The span's internal stopwatch doubles as the search time limit (the
  // old bare util::Timer), so timing works whether or not obs records.
  obs::ScopedSpan timer("dse.search");
  obs::set(g_limit, opts.time_limit_seconds);
  obs::set(g_elapsed, 0.0);
  const dspace::DesignSpace& space = factory_.space(kernel);
  DseResult result;

  // Checked between chunks: cancellation is cooperative, so one in-flight
  // chunk finishes scoring before the run winds down.
  auto cancelled = [&] {
    return opts.cancel && opts.cancel->load(std::memory_order_relaxed);
  };

  SweepEngineOptions eng_opts;
  eng_opts.chunk = opts.chunk;
  eng_opts.keep = static_cast<std::size_t>(
      std::max(opts.top_m, opts.beam_width)) * 4;
  eng_opts.util_threshold = opts.util_threshold;
  eng_opts.use_fast_path = opts.use_fast_path;
  eng_opts.pipelined =
      opts.pipeline && util::env_int("GNNDSE_SWEEP_PIPELINE", 1) != 0;
  eng_opts.cancel = opts.cancel;
  SweepEngine engine(models_, factory_, kernel, eng_opts);

  std::uint64_t pushed = 0;
  auto budget_left = [&] {
    return opts.max_configs == 0 || pushed < opts.max_configs;
  };

  if (space.pruned_size() <= opts.max_exhaustive) {
    // Exhaustive sweep: enumeration streams straight into the engine and
    // stops the moment the run is cancelled or the budget is spent — no
    // decode work for configs that would only be dropped.
    space.for_each([&](DesignConfig&& cfg) {
      if (cancelled() || !budget_left()) return false;
      ++pushed;
      engine.push(std::move(cfg));
      return true;
    });
  } else {
    // Heuristic search (§4.4): beam sweep over the priority-ordered sites.
    std::vector<int> order;
    if (opts.use_priority_order) {
      order = dspace::priority_ordered_sites(space);
    } else {
      order.resize(space.sites().size());
      for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    }
    std::vector<DesignConfig> beam{DesignConfig::neutral(kernel)};
    db::Database seen;  // dedupe explored configs
    bool stopped = false;
    for (int site_idx : order) {
      if (timer.seconds() > opts.time_limit_seconds || cancelled() ||
          !budget_left()) {
        stopped = true;
        break;
      }
      const auto& site = space.sites()[static_cast<std::size_t>(site_idx)];
      obs::add(c_beam);
      for (const DesignConfig& base : beam) {
        for (std::int64_t opt : site.options) {
          if (!budget_left()) break;
          DesignConfig cfg = base;
          apply_site(site, opt, cfg);
          if (space.is_pruned(cfg)) continue;
          if (seen.contains(kernel.name, cfg)) continue;
          seen.add(db::DataPoint{kernel.name, cfg, {}});
          ++pushed;
          engine.push(std::move(cfg));
        }
        if (!budget_left()) break;
      }
      // Refresh the beam from the current leaders (drains the pipeline —
      // the next site's expansions depend on these ranks).
      beam = engine.top_configs(static_cast<std::size_t>(opts.beam_width));
      if (beam.empty()) beam.push_back(DesignConfig::neutral(kernel));
    }
    // Spend any remaining budget on random exploration.
    while (!stopped && timer.seconds() < opts.time_limit_seconds &&
           !cancelled() && budget_left()) {
      std::int64_t fresh = 0;
      for (int i = 0; i < opts.chunk && budget_left(); ++i) {
        DesignConfig cfg = space.sample(rng);
        if (seen.contains(kernel.name, cfg)) continue;
        seen.add(db::DataPoint{kernel.name, cfg, {}});
        ++pushed;
        ++fresh;
        engine.push(std::move(cfg));
      }
      if (fresh == 0) break;
      obs::add(c_random, fresh);
    }
  }

  std::vector<RankedDesign> ranked = engine.finish();
  result.num_explored = engine.num_scored();
  result.stages = engine.stats();
  const auto m = static_cast<std::size_t>(opts.top_m);
  if (ranked.size() > m) {
    result.reserve.assign(ranked.begin() + static_cast<std::ptrdiff_t>(m),
                          ranked.end());
    ranked.resize(m);
  }
  result.top = std::move(ranked);
  result.search_seconds = timer.seconds();
  result.cancelled = cancelled();
  timer.add("configs_explored", static_cast<double>(result.num_explored));
  return result;
}

ModelDse::TopEvaluation ModelDse::evaluate_top(const kir::Kernel& kernel,
                                               const DseResult& r,
                                               oracle::Evaluator& oracle,
                                               double util_threshold,
                                               db::Database* out_db) const {
  static obs::Counter& c_eval = obs::counter("dse.top_designs_evaluated");
  obs::ScopedSpan span("hls.evaluate_top");
  TopEvaluation ev;
  double best_fit = std::numeric_limits<double>::infinity();
  auto run_batch = [&](const std::vector<RankedDesign>& batch) {
    // The oracle fans the batch out the way GNN-DSE hands its top-10 to
    // parallel Merlin instances; simulated wall-clock is the slowest
    // member. Results come back in rank order and the fold below is
    // serial, so the chosen best is independent of thread count.
    std::vector<hlssim::DesignConfig> configs;
    configs.reserve(batch.size());
    for (const RankedDesign& d : batch) configs.push_back(d.config);
    std::vector<hlssim::HlsResult> results =
        oracle.evaluate_batch(kernel, configs);
    double batch_max = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      db::DataPoint p{kernel.name, configs[i], std::move(results[i])};
      batch_max = std::max(batch_max, p.result.synth_seconds);
      if (out_db) out_db->add(p);
      const double f = db::fitness(p.result, util_threshold);
      if (f < best_fit) {
        best_fit = f;
        ev.best = p;
      }
      ev.evaluated.push_back(std::move(p));
    }
    ev.hls_seconds += batch_max;
  };
  run_batch(r.top);
  // Fallback: the whole batch failed in HLS (the model mispredicted this
  // region) — walk further down the ranking, one batch at a time.
  std::size_t next = 0;
  while (!ev.best && next < r.reserve.size()) {
    const std::size_t end = std::min(r.reserve.size(), next + r.top.size());
    run_batch(std::vector<RankedDesign>(
        r.reserve.begin() + static_cast<std::ptrdiff_t>(next),
        r.reserve.begin() + static_cast<std::ptrdiff_t>(end)));
    next = end;
  }
  obs::add(c_eval, static_cast<std::int64_t>(ev.evaluated.size()));
  span.add("designs", static_cast<double>(ev.evaluated.size()));
  span.add("simulated_hls_seconds", ev.hls_seconds);
  return ev;
}

AutoDseOutcome run_autodse_baseline(const kir::Kernel& kernel,
                                    oracle::Evaluator& oracle,
                                    double time_budget_seconds,
                                    double util_threshold) {
  obs::ScopedSpan span("dse.autodse_baseline");
  dspace::DesignSpace space(kernel);
  db::Explorer explorer(kernel, space, oracle);
  AutoDseOutcome out;
  out.best = DesignConfig::neutral(kernel);
  double best_fit = std::numeric_limits<double>::infinity();

  db::ExplorerOptions opts;
  opts.util_threshold = util_threshold;
  opts.max_evals = 100000;  // bounded by time, not count
  double simulated = 0.0;
  auto sink = [&](const db::DataPoint& p) {
    ++out.evals;
    const double f = db::fitness(p.result, util_threshold);
    if (f < best_fit) {
      best_fit = f;
      out.best = p.config;
      out.best_cycles = p.result.cycles;
    }
  };
  // The explorer accounts batch-parallel synthesis time internally; stop
  // after the budget is consumed (AutoDSE's 21 h cap in §5.4).
  while (simulated < time_budget_seconds) {
    const double before = simulated;
    explorer.run_bottleneck(opts, sink, &simulated);
    if (simulated == before) break;  // converged, nothing new to try
    if (simulated >= time_budget_seconds) break;
    // AutoDSE keeps refining: perturb around the best design.
    break;
  }
  out.simulated_seconds = std::min(simulated, time_budget_seconds);
  return out;
}

}  // namespace gnndse::dse
