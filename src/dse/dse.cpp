#include "dse/dse.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace gnndse::dse {

using hlssim::DesignConfig;
using hlssim::LoopConfig;
using hlssim::PipeMode;
using model::kNumObjectives;

ModelDse::ModelDse(ModelBundle models, const model::Normalizer& norm,
                   model::SampleFactory& factory)
    : models_(models), norm_(norm), factory_(factory) {}

namespace {

/// Ranking key: predicted-valid designs that fit come first, ordered by
/// predicted latency target (higher = faster design).
double ranking_score(const RankedDesign& d, double util_threshold) {
  double score = d.predicted[model::kLatency];
  if (d.p_valid < 0.5f) score -= 100.0;
  const double worst_util =
      std::max({d.predicted[model::kDsp], d.predicted[model::kLut],
                d.predicted[model::kFf], d.predicted[model::kBram]});
  if (worst_util >= util_threshold)
    score -= 10.0 * (worst_util - util_threshold + 0.1);
  return score;
}

float sigmoidf(float x) {
  return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                : std::exp(x) / (1.0f + std::exp(x));
}

/// Applies one site option to a configuration.
void apply_site(const dspace::PragmaSite& site, std::int64_t opt,
                DesignConfig& cfg) {
  LoopConfig& lc = cfg.loops[static_cast<std::size_t>(site.loop)];
  switch (site.kind) {
    case dspace::SiteKind::kTile:
      lc.tile = opt;
      break;
    case dspace::SiteKind::kPipeline:
      lc.pipeline = static_cast<PipeMode>(opt);
      break;
    case dspace::SiteKind::kParallel:
      lc.parallel = opt;
      break;
  }
}

}  // namespace

void ModelDse::score_chunk(const kir::Kernel& kernel,
                           std::vector<DesignConfig>& configs,
                           std::vector<RankedDesign>& ranked,
                           bool use_fast_path) {
  if (configs.empty()) return;
  static obs::Histogram& h_feat = obs::histogram("dse.featurize_chunk_ms");
  static obs::Histogram& h_pred = obs::histogram("dse.predict_chunk_ms");

  const tensor::Tensor* main_pred = nullptr;
  const tensor::Tensor* bram_pred = nullptr;
  const tensor::Tensor* valid_pred = nullptr;
  // Tape-path temporaries (owning); the fast path borrows the per-trainer
  // inference workspaces instead (three distinct sessions, so all three
  // references stay valid through the fill loop).
  tensor::Tensor main_t, bram_t, valid_t;

  if (use_fast_path) {
    // One shared batch for the whole chunk: the skeleton (topology,
    // static features) comes from the factory cache; only the pragma
    // slots are rewritten per config (fans out across the pool).
    util::Timer feat_timer;
    const gnn::GraphBatch& batch = factory_.batch_for(kernel, configs);
    obs::observe(h_feat, feat_timer.millis());

    util::Timer pred_timer;
    main_pred = &models_.regression_main->predict_batch(batch);
    bram_pred = &models_.regression_bram->predict_batch(batch);
    valid_pred = &models_.classifier->predict_batch(batch);
    obs::observe(h_pred, pred_timer.millis());
  } else {
    // Legacy tape path (bench_fastpath's baseline): full per-config
    // featurization (featurize_full recomputes the node-feature matrix
    // from the program graph instead of copying the cached template —
    // that is what every release before the fast path did), then one
    // batched tape forward per head.
    util::Timer feat_timer;
    std::vector<gnn::GraphData> graphs(configs.size());
    util::parallel_for(
        static_cast<std::int64_t>(configs.size()), 8,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i)
            graphs[static_cast<std::size_t>(i)] = factory_.featurize_full(
                kernel, configs[static_cast<std::size_t>(i)]);
        });
    obs::observe(h_feat, feat_timer.millis());
    std::vector<const gnn::GraphData*> ptrs;
    ptrs.reserve(graphs.size());
    for (const auto& g : graphs) ptrs.push_back(&g);

    util::Timer pred_timer;
    main_t = models_.regression_main->predict_graphs_tape(ptrs);
    bram_t = models_.regression_bram->predict_graphs_tape(ptrs);
    valid_t = models_.classifier->predict_graphs_tape(ptrs);
    obs::observe(h_pred, pred_timer.millis());
    main_pred = &main_t;
    bram_pred = &bram_t;
    valid_pred = &valid_t;
  }

  static obs::Counter& c_pruned = obs::counter("dse.pruned_by_classifier");
  std::int64_t pruned = 0;
  ranked.reserve(ranked.size() + configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    RankedDesign d;
    d.config = std::move(configs[i]);
    const auto row = static_cast<std::int64_t>(i);
    d.predicted[model::kLatency] = main_pred->at(row, 0);
    d.predicted[model::kDsp] = main_pred->at(row, 1);
    d.predicted[model::kLut] = main_pred->at(row, 2);
    d.predicted[model::kFf] = main_pred->at(row, 3);
    d.predicted[model::kBram] = bram_pred->at(row, 0);
    d.p_valid = sigmoidf(valid_pred->at(row, 0));
    if (d.p_valid < 0.5f) ++pruned;
    ranked.push_back(std::move(d));
  }
  obs::add(c_pruned, pruned);
}

DseResult ModelDse::run(const kir::Kernel& kernel, const DseOptions& opts,
                        util::Rng& rng) {
  static obs::Counter& c_explored = obs::counter("dse.configs_explored");
  static obs::Counter& c_beam = obs::counter("dse.beam_expansions");
  static obs::Counter& c_random = obs::counter("dse.random_samples");
  // Progress gauges feed the heartbeat stream's eta_seconds rate.
  static obs::Gauge& g_limit = obs::gauge("dse.time_limit_seconds");
  static obs::Gauge& g_elapsed = obs::gauge("dse.search_elapsed_seconds");
  static obs::Gauge& g_frontier = obs::gauge("dse.frontier_size");
  // The span's internal stopwatch doubles as the search time limit (the
  // old bare util::Timer), so timing works whether or not obs records.
  obs::ScopedSpan timer("dse.search");
  obs::set(g_limit, opts.time_limit_seconds);
  obs::set(g_elapsed, 0.0);
  const dspace::DesignSpace& space = factory_.space(kernel);
  DseResult result;
  std::vector<RankedDesign> ranked;

  // Checked between chunks: cancellation is cooperative, so one in-flight
  // chunk finishes scoring before the run winds down.
  auto cancelled = [&] {
    return opts.cancel && opts.cancel->load(std::memory_order_relaxed);
  };

  auto flush_and_keep_top = [&](std::vector<DesignConfig>& pending) {
    if (cancelled()) {
      pending.clear();
      return;
    }
    score_chunk(kernel, pending, ranked, opts.use_fast_path);
    result.num_explored += pending.size();
    obs::add(c_explored, static_cast<std::int64_t>(pending.size()));
    pending.clear();
    std::sort(ranked.begin(), ranked.end(),
              [&](const RankedDesign& a, const RankedDesign& b) {
                return ranking_score(a, opts.util_threshold) >
                       ranking_score(b, opts.util_threshold);
              });
    const std::size_t keep = static_cast<std::size_t>(
        std::max(opts.top_m, opts.beam_width) * 4);
    if (ranked.size() > keep) ranked.resize(keep);
    obs::set(g_elapsed, timer.seconds());
    obs::set(g_frontier, static_cast<double>(ranked.size()));
  };

  if (space.pruned_size() <= opts.max_exhaustive) {
    // Exhaustive sweep in inference-sized chunks.
    std::vector<DesignConfig> pending;
    pending.reserve(static_cast<std::size_t>(opts.chunk));
    space.for_each([&](const DesignConfig& cfg) {
      if (cancelled()) return;  // enumeration keeps going, scoring stops
      pending.push_back(cfg);
      if (pending.size() >= static_cast<std::size_t>(opts.chunk))
        flush_and_keep_top(pending);
    });
    flush_and_keep_top(pending);
  } else {
    // Heuristic search (§4.4): beam sweep over the priority-ordered sites.
    std::vector<int> order;
    if (opts.use_priority_order) {
      order = dspace::priority_ordered_sites(space);
    } else {
      order.resize(space.sites().size());
      for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    }
    std::vector<DesignConfig> beam{DesignConfig::neutral(kernel)};
    db::Database seen;  // dedupe explored configs
    std::vector<DesignConfig> pending;
    bool out_of_time = false;
    for (int site_idx : order) {
      if (timer.seconds() > opts.time_limit_seconds || cancelled()) {
        out_of_time = true;
        break;
      }
      const auto& site = space.sites()[static_cast<std::size_t>(site_idx)];
      obs::add(c_beam);
      for (const DesignConfig& base : beam) {
        for (std::int64_t opt : site.options) {
          DesignConfig cfg = base;
          apply_site(site, opt, cfg);
          if (space.is_pruned(cfg)) continue;
          if (seen.contains(kernel.name, cfg)) continue;
          seen.add(db::DataPoint{kernel.name, cfg, {}});
          pending.push_back(std::move(cfg));
          if (pending.size() >= static_cast<std::size_t>(opts.chunk))
            flush_and_keep_top(pending);
        }
      }
      flush_and_keep_top(pending);
      // Refresh the beam from the current leaders.
      beam.clear();
      for (std::size_t i = 0;
           i < ranked.size() &&
           i < static_cast<std::size_t>(opts.beam_width);
           ++i)
        beam.push_back(ranked[i].config);
      if (beam.empty()) beam.push_back(DesignConfig::neutral(kernel));
    }
    // Spend any remaining budget on random exploration.
    while (!out_of_time && timer.seconds() < opts.time_limit_seconds &&
           !cancelled()) {
      pending.clear();
      for (int i = 0; i < opts.chunk; ++i) {
        DesignConfig cfg = space.sample(rng);
        if (seen.contains(kernel.name, cfg)) continue;
        seen.add(db::DataPoint{kernel.name, cfg, {}});
        pending.push_back(std::move(cfg));
      }
      if (pending.empty()) break;
      obs::add(c_random, static_cast<std::int64_t>(pending.size()));
      flush_and_keep_top(pending);
    }
  }

  std::sort(ranked.begin(), ranked.end(),
            [&](const RankedDesign& a, const RankedDesign& b) {
              return ranking_score(a, opts.util_threshold) >
                     ranking_score(b, opts.util_threshold);
            });
  const auto m = static_cast<std::size_t>(opts.top_m);
  if (ranked.size() > m) {
    result.reserve.assign(ranked.begin() + static_cast<std::ptrdiff_t>(m),
                          ranked.end());
    ranked.resize(m);
  }
  result.top = std::move(ranked);
  result.search_seconds = timer.seconds();
  result.cancelled = cancelled();
  timer.add("configs_explored", static_cast<double>(result.num_explored));
  return result;
}

ModelDse::TopEvaluation ModelDse::evaluate_top(const kir::Kernel& kernel,
                                               const DseResult& r,
                                               oracle::Evaluator& oracle,
                                               double util_threshold,
                                               db::Database* out_db) const {
  static obs::Counter& c_eval = obs::counter("dse.top_designs_evaluated");
  obs::ScopedSpan span("hls.evaluate_top");
  TopEvaluation ev;
  double best_fit = std::numeric_limits<double>::infinity();
  auto run_batch = [&](const std::vector<RankedDesign>& batch) {
    // The oracle fans the batch out the way GNN-DSE hands its top-10 to
    // parallel Merlin instances; simulated wall-clock is the slowest
    // member. Results come back in rank order and the fold below is
    // serial, so the chosen best is independent of thread count.
    std::vector<hlssim::DesignConfig> configs;
    configs.reserve(batch.size());
    for (const RankedDesign& d : batch) configs.push_back(d.config);
    std::vector<hlssim::HlsResult> results =
        oracle.evaluate_batch(kernel, configs);
    double batch_max = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      db::DataPoint p{kernel.name, configs[i], std::move(results[i])};
      batch_max = std::max(batch_max, p.result.synth_seconds);
      if (out_db) out_db->add(p);
      const double f = db::fitness(p.result, util_threshold);
      if (f < best_fit) {
        best_fit = f;
        ev.best = p;
      }
      ev.evaluated.push_back(std::move(p));
    }
    ev.hls_seconds += batch_max;
  };
  run_batch(r.top);
  // Fallback: the whole batch failed in HLS (the model mispredicted this
  // region) — walk further down the ranking, one batch at a time.
  std::size_t next = 0;
  while (!ev.best && next < r.reserve.size()) {
    const std::size_t end = std::min(r.reserve.size(), next + r.top.size());
    run_batch(std::vector<RankedDesign>(
        r.reserve.begin() + static_cast<std::ptrdiff_t>(next),
        r.reserve.begin() + static_cast<std::ptrdiff_t>(end)));
    next = end;
  }
  obs::add(c_eval, static_cast<std::int64_t>(ev.evaluated.size()));
  span.add("designs", static_cast<double>(ev.evaluated.size()));
  span.add("simulated_hls_seconds", ev.hls_seconds);
  return ev;
}

AutoDseOutcome run_autodse_baseline(const kir::Kernel& kernel,
                                    oracle::Evaluator& oracle,
                                    double time_budget_seconds,
                                    double util_threshold) {
  obs::ScopedSpan span("dse.autodse_baseline");
  dspace::DesignSpace space(kernel);
  db::Explorer explorer(kernel, space, oracle);
  AutoDseOutcome out;
  out.best = DesignConfig::neutral(kernel);
  double best_fit = std::numeric_limits<double>::infinity();

  db::ExplorerOptions opts;
  opts.util_threshold = util_threshold;
  opts.max_evals = 100000;  // bounded by time, not count
  double simulated = 0.0;
  auto sink = [&](const db::DataPoint& p) {
    ++out.evals;
    const double f = db::fitness(p.result, util_threshold);
    if (f < best_fit) {
      best_fit = f;
      out.best = p.config;
      out.best_cycles = p.result.cycles;
    }
  };
  // The explorer accounts batch-parallel synthesis time internally; stop
  // after the budget is consumed (AutoDSE's 21 h cap in §5.4).
  while (simulated < time_budget_seconds) {
    const double before = simulated;
    explorer.run_bottleneck(opts, sink, &simulated);
    if (simulated == before) break;  // converged, nothing new to try
    if (simulated >= time_budget_seconds) break;
    // AutoDSE keeps refining: perturb around the best design.
    break;
  }
  out.simulated_seconds = std::min(simulated, time_budget_seconds);
  return out;
}

}  // namespace gnndse::dse
