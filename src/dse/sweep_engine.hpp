// Pipelined sweep engine: the scoring core of model-driven DSE.
//
// ModelDse::run used to execute three serialized stages per chunk —
// featurize (pragma-slot rewrite of a pooled GraphBatch), predict (three
// model heads back-to-back), rank (full std::sort of the frontier) — on
// one thread. The engine overlaps them:
//
//   producer (search thread)            consumer (scoring thread)
//   ------------------------            -------------------------
//   enumerate / beam-expand
//   featurize chunk N+1  ───slots[2]──►  predict chunk N (3 heads as
//                                          parallel pool tasks)
//                                        rank chunk N (bounded top-K
//                                          frontier, nth_element keep)
//
// Two leased SampleFactory batch slots double-buffer the chunks, so the
// producer writes slot A while the consumer predicts from slot B. The
// ranked output is bit-identical to the serial path at every thread count
// (enforced by tests/test_sweep.cpp): per-row predictions are independent
// of batch composition, the frontier orders by a strict total order
// (score desc, then push sequence asc), and a bounded keep can never
// evict a design that would make the final top-K.
//
// Telemetry: per-stage histograms `dse.featurize_chunk_ms`,
// `dse.predict_chunk_ms`, `dse.frontier_keep_ms` (all three also observed
// into `dse.pipeline.stage_ms`), live gauges `dse.pipeline.overlap_ratio`
// (sum of stage time / wall time — > 1 means stages genuinely overlap)
// and `dse.sweep_configs_per_sec`, plus the `dse.search_elapsed_seconds` /
// `dse.frontier_size` / `dse.configs_explored` progress metrics the serve
// daemon's heartbeat and poll responses read while a sweep job runs.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "model/dataset.hpp"
#include "model/trainer.hpp"
#include "util/timer.hpp"

namespace gnndse::dse {

/// Bundles the three trained models GNN-DSE uses at inference time.
struct ModelBundle {
  model::Trainer* regression_main;  // latency/DSP/LUT/FF
  model::Trainer* regression_bram;  // BRAM
  model::Trainer* classifier;       // valid/invalid
};

struct RankedDesign {
  hlssim::DesignConfig config;
  /// Predicted normalized objectives (Objective order).
  std::array<float, model::kNumObjectives> predicted{};
  /// Classifier probability that the design is valid.
  float p_valid = 0.0f;
};

/// Ranking key: predicted-valid designs that fit come first, ordered by
/// predicted latency target (higher = faster design).
double ranking_score(const RankedDesign& d, double util_threshold);

/// Per-stage wall-clock breakdown of one sweep, reported on DseResult.
struct SweepStageStats {
  double featurize_ms = 0.0;
  double predict_ms = 0.0;
  double rank_ms = 0.0;
  double wall_ms = 0.0;
  /// (featurize + predict + rank) / wall. Serial runs sit at <= 1; values
  /// above 1 measure how much stage time the pipeline hid.
  double overlap_ratio = 0.0;
  std::uint64_t chunks = 0;
};

struct SweepEngineOptions {
  /// Configs per scored chunk (one GraphBatch / one tape batch).
  int chunk = 256;
  /// Frontier bound: the engine keeps the best `keep` designs seen so far
  /// (ModelDse uses max(top_m, beam_width) * 4).
  std::size_t keep = 128;
  double util_threshold = 0.8;
  /// Fast path (pooled batch + tape-free forward) vs legacy tape path.
  bool use_fast_path = true;
  /// false runs featurize/predict/rank back-to-back on the calling thread
  /// — the reference serial engine the pipelined mode is tested against.
  bool pipelined = true;
  /// Cooperative cancellation (see DseOptions::cancel): pending configs
  /// not yet handed to a batch are dropped; the in-flight chunk finishes.
  const std::atomic<bool>* cancel = nullptr;
};

/// Producer API: push() every candidate config (chunks auto-dispatch),
/// barrier()/top_configs() at beam refresh points, finish() for the final
/// sorted frontier. Single producer thread; the engine owns its single
/// consumer thread. Not reusable after finish().
class SweepEngine {
 public:
  /// `kernel` and the bundle's trainers must outlive the engine. The
  /// factory may be shared with concurrent featurize()/predict traffic
  /// (serve); leased batch slots are private to this engine.
  SweepEngine(const ModelBundle& models, model::SampleFactory& factory,
              const kir::Kernel& kernel, const SweepEngineOptions& opts);
  ~SweepEngine();
  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Queues one candidate; dispatches a chunk once `opts.chunk` are
  /// pending. Rethrows any error raised on the scoring thread.
  void push(hlssim::DesignConfig&& cfg);

  /// Dispatches the pending partial chunk and blocks until every
  /// dispatched chunk is scored.
  void barrier();

  /// Best `n` configs scored so far (barriers first) — the beam refresh.
  std::vector<hlssim::DesignConfig> top_configs(std::size_t n);

  /// Final drain: barrier, stop the scoring thread, and return the
  /// frontier sorted best-first. Also fixes stats().
  std::vector<RankedDesign> finish();

  /// Configs scored so far (stable after barrier()/finish()).
  std::uint64_t num_scored() const {
    return num_scored_.load(std::memory_order_relaxed);
  }

  /// Valid after finish().
  const SweepStageStats& stats() const { return stats_; }

 private:
  struct Slot {
    std::shared_ptr<model::SampleFactory::BatchSlot> batch;  // fast path
    std::vector<hlssim::DesignConfig> configs;
    std::vector<gnn::GraphData> graphs;  // tape path
    std::uint64_t first_seq = 0;
    bool ready = false;  // guarded by mu_: featurized, waiting for scoring
  };
  /// Frontier entry. `seq` is the push-order sequence number: identical
  /// across serial and pipelined runs, it makes (score desc, seq asc) a
  /// strict total order, so tie-breaks are deterministic.
  struct Scored {
    RankedDesign d;
    double score = 0.0;
    std::uint64_t seq = 0;
  };

  bool cancelled() const {
    return opts_.cancel && opts_.cancel->load(std::memory_order_relaxed);
  }
  bool better(const Scored& a, const Scored& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.seq < b.seq;
  }
  void rethrow_pending_error();
  /// Moves `pending_` into the current fill slot, featurizes it, and hands
  /// it to the scorer (inline in serial mode).
  void dispatch();
  void featurize_slot(Slot& s);
  /// Predict + rank one featurized slot; appends to the frontier and
  /// prunes it to `opts.keep` (runs on the consumer thread when pipelined).
  void score_slot(Slot& s);
  void keep_top();
  void worker_loop();
  void stop_worker();

  ModelBundle models_;
  model::SampleFactory& factory_;
  const kir::Kernel& kernel_;
  SweepEngineOptions opts_;
  util::Timer timer_;

  // Producer-side state.
  std::vector<hlssim::DesignConfig> pending_;
  std::uint64_t next_seq_ = 0;
  int fill_idx_ = 0;
  bool finished_ = false;

  // Shared pipeline state (guarded by mu_ unless noted).
  std::array<Slot, 2> slots_;
  int score_idx_ = 0;
  std::uint64_t dispatched_chunks_ = 0;
  std::uint64_t scored_chunks_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
  std::mutex mu_;
  std::condition_variable cv_to_consumer_;
  std::condition_variable cv_to_producer_;
  std::thread worker_;
  bool worker_started_ = false;

  // Consumer-side state; the producer reads it only after a barrier (the
  // scored_chunks_ handshake under mu_ orders those accesses).
  std::vector<Scored> frontier_;

  // Telemetry accumulators (atomic: stages run on two threads).
  std::atomic<std::uint64_t> num_scored_{0};
  std::atomic<std::int64_t> feat_us_{0};
  std::atomic<std::int64_t> pred_us_{0};
  std::atomic<std::int64_t> rank_us_{0};
  SweepStageStats stats_;
};

}  // namespace gnndse::dse
