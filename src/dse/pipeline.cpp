#include "dse/pipeline.hpp"

#include "model/weights.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace gnndse::dse {

using model::ModelOptions;
using model::PredictiveModel;
using model::Task;
using model::Trainer;
using model::TrainOptions;

TrainedModels::TrainedModels(const db::Database& database,
                             const std::vector<kir::Kernel>& kernels,
                             model::SampleFactory& factory,
                             const PipelineOptions& opts,
                             const std::string& cache_prefix)
    : norm_(model::Normalizer::fit(database.points())) {
  obs::ScopedSpan span("train");
  util::Rng rng(opts.seed);

  ModelOptions mo;
  mo.kind = opts.kind;
  mo.hidden = opts.hidden;
  mo.gnn_layers = opts.gnn_layers;

  mo.out_dim = 4;
  main_model_ = std::make_unique<PredictiveModel>(mo, rng);
  mo.out_dim = 1;
  bram_model_ = std::make_unique<PredictiveModel>(mo, rng);
  cls_model_ = std::make_unique<PredictiveModel>(mo, rng);

  TrainOptions to;
  to.task = Task::kRegression;
  to.objectives = {model::kLatency, model::kDsp, model::kLut, model::kFf};
  to.epochs = opts.main_epochs;
  to.batch_size = opts.batch_size;
  to.lr = opts.lr;
  to.seed = opts.seed;
  to.verbose = opts.verbose;
  main_trainer_ = std::make_unique<Trainer>(*main_model_, to);

  TrainOptions tb = to;
  tb.objectives = {model::kBram};
  tb.epochs = opts.bram_epochs;
  bram_trainer_ = std::make_unique<Trainer>(*bram_model_, tb);

  TrainOptions tc = to;
  tc.task = Task::kClassification;
  tc.epochs = opts.classifier_epochs;
  tc.lr = opts.cls_lr;
  cls_trainer_ = std::make_unique<Trainer>(*cls_model_, tc);

  const std::string main_path = cache_prefix + ".main.bin";
  const std::string bram_path = cache_prefix + ".bram.bin";
  const std::string cls_path = cache_prefix + ".cls.bin";
  if (!cache_prefix.empty() && model::weights_exist(main_path) &&
      model::weights_exist(bram_path) && model::weights_exist(cls_path)) {
    model::load_params(main_model_->params(), main_path);
    model::load_params(bram_model_->params(), bram_path);
    model::load_params(cls_model_->params(), cls_path);
    obs::add(obs::counter("train.bundle_cache_loads"));
    span.add("cache_loaded", 1.0);
    util::log_info("loaded cached model bundle from ", cache_prefix, ".*");
    return;
  }

  model::Dataset ds = model::build_dataset(database, kernels, norm_, factory);
  {
    obs::ScopedSpan fit_main("train.main");
    main_trainer_->fit(ds, ds.valid_indices());
  }
  {
    obs::ScopedSpan fit_bram("train.bram");
    bram_trainer_->fit(ds, ds.valid_indices());
  }
  {
    obs::ScopedSpan fit_cls("train.cls");
    cls_trainer_->fit(ds, ds.all_indices());
  }
  if (!cache_prefix.empty()) {
    model::save_params(main_model_->params(), main_path);
    model::save_params(bram_model_->params(), bram_path);
    model::save_params(cls_model_->params(), cls_path);
  }
}

ModelBundle TrainedModels::bundle() {
  return ModelBundle{main_trainer_.get(), bram_trainer_.get(),
                     cls_trainer_.get()};
}

RoundsOutcome run_dse_rounds(const db::Database& initial_db,
                             const std::vector<kir::Kernel>& kernels,
                             oracle::Evaluator& oracle, int rounds,
                             const PipelineOptions& popts,
                             const DseOptions& dopts, util::Rng& rng) {
  RoundsOutcome out;
  out.final_db = initial_db;

  // Reference: best design in the initial database per kernel.
  std::map<std::string, double> initial_best;
  for (const auto& k : kernels) {
    auto best = initial_db.best_valid(k.name, dopts.util_threshold);
    initial_best[k.name] =
        best ? best->result.cycles : std::numeric_limits<double>::infinity();
  }

  for (int round = 0; round < rounds; ++round) {
    obs::ScopedSpan round_span("dse.round");
    obs::add(obs::counter("dse.rounds"));
    model::SampleFactory factory;
    PipelineOptions po = popts;
    po.seed = popts.seed + static_cast<std::uint64_t>(round);
    TrainedModels models(out.final_db, kernels, factory, po);
    ModelDse dse(models.bundle(), models.normalizer(), factory);

    std::map<std::string, double> round_speedups;
    double sum = 0.0;
    for (const auto& k : kernels) {
      DseResult r = dse.run(k, dopts, rng);
      auto ev =
          dse.evaluate_top(k, r, oracle, dopts.util_threshold, &out.final_db);
      // Fig 7 plots the design *this round's DSE* produced against the best
      // design of the initial database — early rounds can fall below 1x
      // when the model mispredicts unexplored regions (§4.4).
      const double cycles = ev.best
                                ? ev.best->result.cycles
                                : std::numeric_limits<double>::infinity();
      const double speedup = initial_best[k.name] / cycles;
      round_speedups[k.name] = speedup;
      sum += speedup;
      util::log_info("round ", round + 1, " ", k.name, ": explored ",
                     r.num_explored, ", speedup ", speedup);
    }
    out.speedups.push_back(round_speedups);
    out.average.push_back(sum / static_cast<double>(kernels.size()));
  }
  return out;
}

}  // namespace gnndse::dse
