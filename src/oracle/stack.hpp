// OracleStack: the standard decorator composition call sites construct.
//
//   CachingEvaluator            (always — replaces the old MerlinHls memo
//    └─ RetryingEvaluator        cache and the explorers' private dedup DBs)
//        └─ FaultInjectingEvaluator   (only when the fault rate is > 0)
//            └─ SimEvaluator
//
// Environment knobs (see docs/oracle.md):
//   GNNDSE_ORACLE_CACHE=<path>  persistent cache CSV (load on start,
//                               save on exit); unset -> in-memory only
//   GNNDSE_FAULT_RATE=<p>       transient-crash probability per attempt
//                               (default 0 — off)
//   GNNDSE_ORACLE_RETRIES=<n>   retries per fault (default 3)
//
// With faults off (the default) the stack is bit-identical to calling
// hlssim::MerlinHls directly: caching returns the memoized result of a
// deterministic evaluator and the retry/fault layers are pass-through or
// absent.
#pragma once

#include <memory>
#include <string>

#include "oracle/caching.hpp"
#include "oracle/evaluator.hpp"
#include "oracle/fault.hpp"

namespace gnndse::oracle {

struct OracleOptions {
  hlssim::FpgaResources device{};
  /// Persistent cache CSV; empty = in-memory only.
  std::string cache_path;
  /// Probability of an injected transient crash per evaluation attempt.
  double fault_rate = 0.0;
  /// Bounded retries the stack spends on each transient fault.
  int retries = 3;
  std::uint64_t fault_seed = 0x5eedu;

  /// Reads GNNDSE_ORACLE_CACHE / GNNDSE_FAULT_RATE / GNNDSE_ORACLE_RETRIES
  /// on top of the defaults above.
  static OracleOptions from_env();
};

class OracleStack final : public Evaluator {
 public:
  /// Default-constructed stacks honor the environment knobs, so
  /// `oracle::OracleStack oracle;` is the drop-in replacement for the old
  /// `hlssim::MerlinHls hls;` at every call site.
  OracleStack() : OracleStack(OracleOptions::from_env()) {}
  explicit OracleStack(const OracleOptions& opts);

  hlssim::HlsResult evaluate(const kir::Kernel& k,
                             const hlssim::DesignConfig& cfg) override {
    return top().evaluate(k, cfg);
  }
  std::vector<hlssim::HlsResult> evaluate_batch(
      const kir::Kernel& k,
      const std::vector<hlssim::DesignConfig>& cfgs) override {
    return top().evaluate_batch(k, cfgs);
  }

  CachingEvaluator& cache() { return *cache_; }
  const hlssim::MerlinHls& hls() const { return sim_.hls(); }

 private:
  Evaluator& top() { return *cache_; }

  SimEvaluator sim_;
  std::unique_ptr<FaultInjectingEvaluator> fault_;  // nullptr when rate <= 0
  std::unique_ptr<RetryingEvaluator> retry_;        // nullptr when rate <= 0
  std::unique_ptr<CachingEvaluator> cache_;
};

}  // namespace gnndse::oracle
