#include "oracle/caching.hpp"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "db/database.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "oracle/fault.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gnndse::oracle {
namespace {

std::string cache_key(const kir::Kernel& k, const hlssim::DesignConfig& cfg) {
  std::string key = digest_key(k);
  key += '|';
  key += cfg.key();
  return key;
}

obs::Histogram& persist_histogram() {
  static obs::Histogram& h = obs::histogram("oracle.persist_ms");
  return h;
}

}  // namespace

CachingEvaluator::CachingEvaluator(Evaluator& inner, std::string persist_path)
    : inner_(inner), persist_path_(std::move(persist_path)) {
  if (!persist_path_.empty()) load();
}

CachingEvaluator::~CachingEvaluator() {
  try {
    flush();
  } catch (const std::exception& e) {
    util::log_warn("oracle cache: flush to ", persist_path_,
                   " failed: ", e.what());
  }
}

void CachingEvaluator::load() {
  // A missing file is a cold start, not an error.
  if (!std::ifstream(persist_path_).good()) return;
  util::Timer timer;
  db::Database stored = db::Database::load_csv(persist_path_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& p : stored.points()) {
      std::string key = p.kernel;
      key += '|';
      key += p.config.key();
      cache_.emplace(std::move(key), p.result);
    }
  }
  obs::observe(persist_histogram(), timer.millis());
  util::log_info("oracle cache: loaded ", cache_.size(), " entries from ",
                 persist_path_);
}

void CachingEvaluator::flush() {
  std::vector<std::pair<std::string, hlssim::HlsResult>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (persist_path_.empty() || !dirty_) return;
    entries.assign(cache_.begin(), cache_.end());
    dirty_ = false;
  }
  // Deterministic file contents regardless of hash-map iteration order.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  util::Timer timer;
  db::Database stored;
  for (auto& [key, result] : entries) {
    const std::size_t bar = key.find('|');
    db::DataPoint p;
    p.kernel = key.substr(0, bar);
    p.config = hlssim::parse_config_key(key.substr(bar + 1));
    p.result = result;
    stored.add(std::move(p));
  }
  stored.save_csv(persist_path_);
  obs::observe(persist_histogram(), timer.millis());
}

hlssim::HlsResult CachingEvaluator::evaluate(const kir::Kernel& k,
                                             const hlssim::DesignConfig& cfg) {
  static obs::Counter& c_hits = obs::counter("oracle.hits");
  static obs::Counter& c_misses = obs::counter("oracle.misses");

  std::string key = cache_key(k, cfg);
  {
    // Span covers only the probe — a hit returns from inside it, so trace
    // rows show lookup time separately from the inner evaluate on a miss.
    obs::ScopedSpan span("oracle.lookup");
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      span.add("hit", 1.0);
      obs::add(c_hits);
      return it->second;
    }
  }
  obs::add(c_misses);
  hlssim::HlsResult r = inner_.evaluate(k, cfg);
  // Evaluation is deterministic, so concurrent misses on the same key
  // insert the same value; transient faults stay uncached.
  if (!is_fault(r)) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.emplace(std::move(key), r);
    dirty_ = true;
  }
  return r;
}

bool CachingEvaluator::contains(const kir::Kernel& k,
                                const hlssim::DesignConfig& cfg) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.count(cache_key(k, cfg)) > 0;
}

std::size_t CachingEvaluator::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace gnndse::oracle
