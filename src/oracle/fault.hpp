// Transient-failure modeling for the HLS oracle.
//
// Real HLS tool chains do more than refuse or time out: the tool process
// itself occasionally dies (license hiccups, OOM, scratch-disk races).
// That is a *third* failure class — transient, retryable, and carrying no
// information about the design point — which the paper's refused/timeout
// taxonomy does not cover. FaultInjectingEvaluator simulates it
// deterministically so the rest of the system can be hardened and tested
// against it; RetryingEvaluator is that hardening.
//
// Fault decisions hash (kernel digest, config key, attempt index) against
// GNNDSE_FAULT_RATE: no RNG state, so a run is reproducible at any thread
// count and a retry of the same key sees a fresh, independent draw.
//
// Telemetry: oracle.faults_injected, oracle.retries.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "oracle/evaluator.hpp"

namespace gnndse::oracle {

/// True for the transient-crash failure class ("fault: ..." reasons).
inline bool is_fault(const hlssim::HlsResult& r) {
  return !r.valid && r.invalid_reason.rfind("fault:", 0) == 0;
}

class FaultInjectingEvaluator final : public Evaluator {
 public:
  /// Wall-clock a crashed tool invocation still burns before dying.
  static constexpr double kFaultSynthSeconds = 60.0;

  /// Injects a fault with probability `rate` per (key, attempt) pair,
  /// decided by a deterministic hash seeded with `seed`. rate <= 0
  /// disables injection entirely; rate >= 1 faults every call.
  FaultInjectingEvaluator(Evaluator& inner, double rate,
                          std::uint64_t seed = 0x5eedu);

  hlssim::HlsResult evaluate(const kir::Kernel& k,
                             const hlssim::DesignConfig& cfg) override;

  double rate() const { return rate_; }

 private:
  Evaluator& inner_;
  double rate_;
  std::uint64_t seed_;
  /// Per-key attempt counters so a retry re-rolls instead of hitting the
  /// same deterministic verdict forever.
  std::mutex mu_;
  std::unordered_map<std::string, std::uint64_t> attempts_;
};

class RetryingEvaluator final : public Evaluator {
 public:
  /// Synthetic backoff before retry n (0-based): 30s * 2^n, added to the
  /// returned result's synth_seconds together with the time the crashed
  /// attempts burned.
  static constexpr double kBackoffBaseSeconds = 30.0;

  /// Retries transient faults up to `max_retries` times (so at most
  /// 1 + max_retries attempts). Exhaustion returns the final fault result
  /// — an invalid HlsResult, never an exception. Non-fault results
  /// (valid, refused, timeout) pass through untouched on the first
  /// attempt, which keeps a fault-free stack bit-identical to the bare
  /// substrate.
  RetryingEvaluator(Evaluator& inner, int max_retries);

  hlssim::HlsResult evaluate(const kir::Kernel& k,
                             const hlssim::DesignConfig& cfg) override;

  int max_retries() const { return max_retries_; }

 private:
  Evaluator& inner_;
  int max_retries_;
};

}  // namespace gnndse::oracle
