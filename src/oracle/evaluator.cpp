#include "oracle/evaluator.hpp"

#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace gnndse::oracle {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv1a {
  std::uint64_t h = kFnvOffset;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  }
  void str(const std::string& s) {
    bytes(s.data(), s.size());
    u64(s.size());  // length-prefix so "ab"+"c" != "a"+"bc"
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { i64(v); }
};

}  // namespace

std::uint64_t kernel_digest(const kir::Kernel& k) {
  Fnv1a f;
  f.str(k.name);
  f.i32(k.num_functions);
  for (int fn : k.loop_function) f.i32(fn);
  for (const auto& a : k.arrays) {
    f.str(a.name);
    f.i64(a.num_elems);
    f.i32(a.elem_bits);
    f.i32(a.off_chip ? 1 : 0);
  }
  for (const auto& l : k.loops) {
    f.str(l.name);
    f.i64(l.trip_count);
    f.i32(l.parent);
    for (int c : l.children) f.i32(c);
    for (int s : l.stmts) f.i32(s);
    f.i32((l.can_pipeline ? 4 : 0) | (l.can_parallel ? 2 : 0) |
          (l.can_tile ? 1 : 0));
    for (std::int64_t o : l.parallel_options) f.i64(o);
    for (std::int64_t o : l.tile_options) f.i64(o);
  }
  for (const auto& s : k.stmts) {
    f.str(s.name);
    f.i32(s.parent_loop);
    f.i32(s.ops.adds);
    f.i32(s.ops.muls);
    f.i32(s.ops.divs);
    f.i32(s.ops.cmps);
    f.i32(s.ops.logic);
    f.i32(s.ops.specials);
    for (const auto& a : s.accesses) {
      f.i32(a.array);
      f.i32(a.is_write ? 1 : 0);
      f.i32(static_cast<int>(a.kind));
      f.i32(a.driving_loop);
    }
    f.i32(s.dep_loop);
    f.i32(s.dep_distance);
    f.i32(s.dep_latency);
    f.i32(s.dep_associative ? 1 : 0);
  }
  for (int t : k.top_loops) f.i32(t);
  return f.h;
}

std::string digest_key(const kir::Kernel& k) {
  static const char* hex = "0123456789abcdef";
  std::uint64_t d = kernel_digest(k);
  std::string out = k.name;
  out += '@';
  for (int shift = 60; shift >= 0; shift -= 4)
    out += hex[(d >> shift) & 0xF];
  return out;
}

std::vector<hlssim::HlsResult> Evaluator::evaluate_batch(
    const kir::Kernel& k, const std::vector<hlssim::DesignConfig>& cfgs) {
  obs::ScopedSpan span("oracle.evaluate_batch");
  span.add("configs", static_cast<double>(cfgs.size()));
  std::vector<hlssim::HlsResult> results(cfgs.size());
  // Each index fills its own slot, so the batch is bit-identical to the
  // serial loop at every pool size (see src/util/parallel.hpp).
  util::parallel_for(static_cast<std::int64_t>(cfgs.size()), 1,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i)
                         results[static_cast<std::size_t>(i)] = evaluate(
                             k, cfgs[static_cast<std::size_t>(i)]);
                     });
  return results;
}

hlssim::HlsResult SimEvaluator::evaluate(const kir::Kernel& k,
                                         const hlssim::DesignConfig& cfg) {
  obs::ScopedSpan span("oracle.sim");
  return hls_.evaluate(k, cfg);
}

}  // namespace gnndse::oracle
