#include "oracle/stack.hpp"

#include "util/env.hpp"

namespace gnndse::oracle {

OracleOptions OracleOptions::from_env() {
  OracleOptions o;
  o.cache_path = util::env_str("GNNDSE_ORACLE_CACHE");
  o.fault_rate = util::env_double("GNNDSE_FAULT_RATE", o.fault_rate);
  o.retries = util::env_int("GNNDSE_ORACLE_RETRIES", o.retries);
  return o;
}

OracleStack::OracleStack(const OracleOptions& opts) : sim_(opts.device) {
  Evaluator* below_cache = &sim_;
  if (opts.fault_rate > 0.0) {
    fault_ = std::make_unique<FaultInjectingEvaluator>(
        sim_, opts.fault_rate, opts.fault_seed);
    retry_ = std::make_unique<RetryingEvaluator>(*fault_, opts.retries);
    below_cache = retry_.get();
  }
  cache_ = std::make_unique<CachingEvaluator>(*below_cache, opts.cache_path);
}

}  // namespace gnndse::oracle
