// CachingEvaluator: thread-safe, optionally persistent memo cache in front
// of any oracle::Evaluator.
//
// Keyed by (kernel digest, canonical config string) — see
// oracle::digest_key — so editing a kernel invalidates its entries while
// every other kernel's warm results survive. Persistence reuses the
// db::Database CSV format (the digest key rides in the kernel column):
// pipeline rounds and repeated bench runs warm-start across processes via
// GNNDSE_ORACLE_CACHE, and the journal-extension loop (arXiv:2111.08848)
// that re-queries overlapping design points every round pays for each
// point once.
//
// Transient "fault: ..." results (see fault.hpp) are never stored: a crash
// is a property of one tool invocation, not of the design point.
//
// Telemetry: oracle.hits / oracle.misses counters, oracle.persist_ms
// histogram (load + save).
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "oracle/evaluator.hpp"

namespace gnndse::oracle {

class CachingEvaluator final : public Evaluator {
 public:
  /// Wraps `inner`. When `persist_path` is non-empty, an existing cache
  /// CSV at that path is loaded immediately and the cache is saved back
  /// there on destruction (and on flush()).
  explicit CachingEvaluator(Evaluator& inner, std::string persist_path = "");
  ~CachingEvaluator() override;

  CachingEvaluator(const CachingEvaluator&) = delete;
  CachingEvaluator& operator=(const CachingEvaluator&) = delete;

  hlssim::HlsResult evaluate(const kir::Kernel& k,
                             const hlssim::DesignConfig& cfg) override;

  /// True when (k, cfg) is already cached (no evaluation performed).
  bool contains(const kir::Kernel& k, const hlssim::DesignConfig& cfg) const;

  /// Writes the cache to persist_path (no-op for in-memory caches).
  void flush();

  std::size_t size() const;
  const std::string& persist_path() const { return persist_path_; }

 private:
  void load();

  Evaluator& inner_;
  std::string persist_path_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, hlssim::HlsResult> cache_;
  bool dirty_ = false;
};

}  // namespace gnndse::oracle
