// oracle::Evaluator — the single seam between the rest of the system and
// the HLS oracle.
//
// The paper treats the HLS tool as an external oracle: slow, occasionally
// crashing, sometimes timing out. Every consumer (explorers, the model-DSE
// top-M check, the pipeline's augmentation rounds, the AutoDSE baseline,
// the CLI and tools) used to talk to hlssim::MerlinHls directly and
// reinvent its own plumbing — memo caches, dedup databases, hand-rolled
// parallel batch loops. This layer owns all of that:
//
//   SimEvaluator            the substrate itself (wraps MerlinHls)
//   FaultInjectingEvaluator deterministic transient tool crashes (fault.hpp)
//   RetryingEvaluator       bounded retries + synthetic backoff (fault.hpp)
//   CachingEvaluator        thread-safe persistent memo cache (caching.hpp)
//   OracleStack             env-configured composition of the above
//                           (stack.hpp) — what call sites construct
//
// Batched evaluation runs on the global thread pool (GNNDSE_THREADS) with
// results folded in input order, so every consumer is deterministic at any
// thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlssim/hls_sim.hpp"
#include "kir/kernel.hpp"

namespace gnndse::oracle {

/// Structural digest of a kernel (FNV-1a over name, loop forest, statement
/// op mixes/accesses/recurrences, and arrays). Two kernels share a digest
/// iff the oracle would score every configuration identically, so the
/// digest — not just the name — keys the persistent cache: editing a
/// kernel invalidates its cached evaluations automatically.
std::uint64_t kernel_digest(const kir::Kernel& k);

/// Cache identity of a kernel: "<name>@<digest-hex>". Stored in the kernel
/// column of the persistent cache CSV.
std::string digest_key(const kir::Kernel& k);

/// Abstract HLS oracle. Implementations must be thread-safe: evaluate()
/// is called concurrently from evaluate_batch() chunks.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Scores one design point. Never throws for tool-side failures; those
  /// surface as HlsResult::valid == false with an invalid_reason of class
  /// "refused: ...", "timeout: ...", or "fault: ..." (injected transient
  /// crashes, see fault.hpp).
  virtual hlssim::HlsResult evaluate(const kir::Kernel& k,
                                     const hlssim::DesignConfig& cfg) = 0;

  /// Scores a batch the way GNN-DSE hands its top-10 to parallel Merlin
  /// instances. The default implementation fans evaluate() out across the
  /// global thread pool; results[i] always corresponds to cfgs[i], so any
  /// serial fold over the returned vector is independent of thread count.
  virtual std::vector<hlssim::HlsResult> evaluate_batch(
      const kir::Kernel& k, const std::vector<hlssim::DesignConfig>& cfgs);
};

/// The bottom of every stack: the Merlin-like analytic simulator. Each
/// call records an `oracle.sim` span, so traces separate real tool time
/// from cache lookups and retry backoff.
class SimEvaluator final : public Evaluator {
 public:
  explicit SimEvaluator(hlssim::FpgaResources device = {}) : hls_(device) {}

  hlssim::HlsResult evaluate(const kir::Kernel& k,
                             const hlssim::DesignConfig& cfg) override;

  const hlssim::MerlinHls& hls() const { return hls_; }

 private:
  hlssim::MerlinHls hls_;
};

}  // namespace gnndse::oracle
