#include "oracle/fault.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gnndse::oracle {
namespace {

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 finisher: turns the key/attempt hash into a well-mixed draw.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double unit_draw(const std::string& key, std::uint64_t attempt,
                 std::uint64_t seed) {
  const std::uint64_t h = mix(fnv1a(key, 1469598103934665603ull ^ seed) +
                              0x632be59bd9b4e019ull * (attempt + 1));
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjectingEvaluator::FaultInjectingEvaluator(Evaluator& inner, double rate,
                                                 std::uint64_t seed)
    : inner_(inner), rate_(rate), seed_(seed) {}

hlssim::HlsResult FaultInjectingEvaluator::evaluate(
    const kir::Kernel& k, const hlssim::DesignConfig& cfg) {
  if (rate_ <= 0.0) return inner_.evaluate(k, cfg);
  static obs::Counter& c_faults = obs::counter("oracle.faults_injected");

  std::string key = digest_key(k);
  key += '|';
  key += cfg.key();
  std::uint64_t attempt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempts_[key]++;
  }
  if (unit_draw(key, attempt, seed_) >= rate_) return inner_.evaluate(k, cfg);

  obs::add(c_faults);
  hlssim::HlsResult r;
  r.valid = false;
  r.invalid_reason =
      "fault: HLS tool crashed (injected, attempt " +
      std::to_string(attempt + 1) + ")";
  r.synth_seconds = kFaultSynthSeconds;
  return r;
}

RetryingEvaluator::RetryingEvaluator(Evaluator& inner, int max_retries)
    : inner_(inner), max_retries_(max_retries < 0 ? 0 : max_retries) {}

hlssim::HlsResult RetryingEvaluator::evaluate(const kir::Kernel& k,
                                              const hlssim::DesignConfig& cfg) {
  static obs::Counter& c_retries = obs::counter("oracle.retries");

  double wasted_seconds = 0.0;  // crashed attempts + backoff waits
  for (int attempt = 0;; ++attempt) {
    hlssim::HlsResult r = inner_.evaluate(k, cfg);
    if (!is_fault(r)) {
      r.synth_seconds += wasted_seconds;
      return r;
    }
    if (attempt >= max_retries_) {
      r.invalid_reason += " — retries exhausted after " +
                          std::to_string(attempt + 1) + " attempts";
      r.synth_seconds += wasted_seconds;
      return r;
    }
    obs::add(c_retries);
    const double backoff =
        kBackoffBaseSeconds * static_cast<double>(1 << attempt);
    // The backoff is synthetic (accounted, not slept); the span marks where
    // each retry decision landed in the timeline.
    obs::ScopedSpan span("oracle.retry_backoff");
    span.add("attempt", static_cast<double>(attempt + 1));
    span.add("backoff_seconds", backoff);
    wasted_seconds += r.synth_seconds + backoff;
  }
}

}  // namespace gnndse::oracle
