#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace gnndse::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  have_spare_normal_ = false;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() {
  Rng child(0);
  std::uint64_t seed = (*this)();
  child.reseed(seed);
  return child;
}

}  // namespace gnndse::util
