// Environment-variable driven experiment scaling.
//
// All bench binaries honor:
//   GNNDSE_FAST=1  -- quick smoke configuration (small datasets, few epochs)
//   GNNDSE_FULL=1  -- full configuration (closest to the paper's scale)
// The default sits between the two so the whole bench suite finishes in
// minutes on one CPU core.
#pragma once

#include <cstdint>
#include <string>

namespace gnndse::util {

enum class RunScale { kFast, kDefault, kFull };

/// Reads GNNDSE_FAST / GNNDSE_FULL (FAST wins if both are set).
RunScale run_scale();

/// Reads an integer env var, returning `fallback` when unset or malformed.
int env_int(const std::string& name, int fallback);

/// 64-bit variant for byte budgets (e.g. GNNDSE_TEMPLATE_BUDGET).
std::int64_t env_int64(const std::string& name, std::int64_t fallback);

/// Reads a floating-point env var, returning `fallback` when unset or
/// malformed.
double env_double(const std::string& name, double fallback);

/// Reads a string env var, returning `fallback` when unset or empty.
std::string env_str(const std::string& name, const std::string& fallback = "");

/// Picks one of three values by the current run scale.
template <typename T>
T by_scale(T fast, T dflt, T full) {
  switch (run_scale()) {
    case RunScale::kFast:
      return fast;
    case RunScale::kFull:
      return full;
    case RunScale::kDefault:
      break;
  }
  return dflt;
}

}  // namespace gnndse::util
