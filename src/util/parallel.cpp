#include "util/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace gnndse::util {
namespace {

/// Set while the thread is executing a parallel_for chunk; nested
/// parallel_for calls check it and run inline.
thread_local bool t_in_parallel = false;

class Pool {
 public:
  explicit Pool(int lanes) : lanes_(lanes) {
    workers_.reserve(static_cast<std::size_t>(lanes - 1));
    for (int i = 0; i < lanes - 1; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int lanes() const { return lanes_; }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and queue drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  const int lanes_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

int default_lanes() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  return std::clamp(env_int("GNNDSE_THREADS", hw), 1, 256);
}

std::mutex& pool_mu() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<Pool>& pool_slot() {
  static std::unique_ptr<Pool> slot;
  return slot;
}

/// The live pool, created on first use. Callers must hold pool_mu() only
/// for the lookup; the returned pool outlives any in-flight parallel_for
/// because set_parallel_threads must not race with active work.
Pool& pool() {
  std::lock_guard<std::mutex> lock(pool_mu());
  auto& slot = pool_slot();
  if (!slot) {
    slot = std::make_unique<Pool>(default_lanes());
    obs::set(obs::gauge("parallel.pool_size"),
             static_cast<double>(slot->lanes()));
  }
  return *slot;
}

}  // namespace

int parallel_threads() { return pool().lanes(); }

void set_parallel_threads(int n) {
  std::lock_guard<std::mutex> lock(pool_mu());
  auto& slot = pool_slot();
  slot.reset();  // join the old workers before re-sizing
  if (n >= 1) {
    slot = std::make_unique<Pool>(std::min(n, 256));
    obs::set(obs::gauge("parallel.pool_size"),
             static_cast<double>(slot->lanes()));
  }
  // n < 1: stay empty; the next parallel_for re-creates at the default.
}

bool in_parallel_region() { return t_in_parallel; }

void parallel_for(std::int64_t n, std::int64_t grain, const ChunkFn& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  static obs::Counter& c_inline = obs::counter("parallel.inline_runs");
  if (t_in_parallel) {  // nested: never fan out from inside a chunk
    obs::add(c_inline);
    body(0, n);
    return;
  }
  Pool& p = pool();
  // Static partition: floor(n/grain) keeps every chunk at least `grain`
  // iterations; the remainder spreads one extra iteration over the first
  // chunks so sizes differ by at most one.
  const int chunks = static_cast<int>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(p.lanes(), n / grain)));
  if (chunks <= 1) {
    obs::add(c_inline);
    body(0, n);
    return;
  }

  struct Job {
    std::mutex mu;
    std::condition_variable done_cv;
    int done = 0;
    std::exception_ptr error;
  } job;
  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  auto run_chunk = [&](int c) {
    const std::int64_t begin =
        c * base + std::min<std::int64_t>(c, rem);
    const std::int64_t end = begin + base + (c < rem ? 1 : 0);
    t_in_parallel = true;
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    t_in_parallel = false;
    {
      // Notify while holding the lock: the instant the caller observes
      // done == chunks it may destroy `job`, so a worker must never touch
      // it after releasing mu.
      std::lock_guard<std::mutex> lock(job.mu);
      ++job.done;
      job.done_cv.notify_one();
    }
  };
  for (int c = 1; c < chunks; ++c) p.submit([&run_chunk, c] { run_chunk(c); });
  run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(job.mu);
    job.done_cv.wait(lock, [&] { return job.done == chunks; });
  }

  static obs::Counter& c_runs = obs::counter("parallel.invocations");
  static obs::Histogram& h_tasks = obs::histogram("parallel.tasks");
  obs::add(c_runs);
  obs::observe(h_tasks, static_cast<double>(chunks));

  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace gnndse::util
