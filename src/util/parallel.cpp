#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gnndse::util {
namespace {

/// Set while the thread is executing a parallel_for chunk; nested
/// parallel_for calls check it and run inline.
thread_local bool t_in_parallel = false;

class Pool {
 public:
  explicit Pool(int lanes)
      : lanes_(lanes),
        // Resolve the pool's telemetry handles up front so the metrics exist
        // in every report (and in check_report.py's defaults) even on runs
        // where submit() is never reached — e.g. single-lane pools.
        g_queue_depth_(obs::gauge("parallel.queue_depth")),
        g_utilization_(obs::gauge("parallel.worker_utilization")),
        h_task_ms_(obs::histogram("parallel.task_ms")) {
    obs::set(g_queue_depth_, 0.0);
    obs::set(g_utilization_, 0.0);
    workers_.reserve(static_cast<std::size_t>(lanes - 1));
    for (int i = 0; i < lanes - 1; ++i)
      workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int lanes() const { return lanes_; }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      obs::set(g_queue_depth_, static_cast<double>(queue_.size()));
    }
    cv_.notify_one();
  }

 private:
  void worker_loop(int index) {
    // Worker rows in the Chrome trace are named after their pool index;
    // "pool-worker-1" is the first spawned thread (the caller is lane 0).
    obs::set_thread_name("pool-worker-" + std::to_string(index));
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and queue drained
        task = std::move(queue_.front());
        queue_.pop_front();
        obs::set(g_queue_depth_, static_cast<double>(queue_.size()));
      }
      // Busy-worker fraction over the size-1 pool threads (the caller's
      // inline chunk is not counted: it is always busy during a fan-out).
      const int busy = busy_.fetch_add(1, std::memory_order_relaxed) + 1;
      obs::set(g_utilization_,
               static_cast<double>(busy) /
                   static_cast<double>(std::max(1, lanes_ - 1)));
      Timer t;
      task();
      obs::observe(h_task_ms_, t.millis());
      const int left = busy_.fetch_sub(1, std::memory_order_relaxed) - 1;
      obs::set(g_utilization_,
               static_cast<double>(left) /
                   static_cast<double>(std::max(1, lanes_ - 1)));
    }
  }

  const int lanes_;
  obs::Gauge& g_queue_depth_;
  obs::Gauge& g_utilization_;
  obs::Histogram& h_task_ms_;
  std::atomic<int> busy_{0};
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

int default_lanes() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  const int requested = std::clamp(env_int("GNNDSE_THREADS", hw), 1, 256);
  // Oversubscribing a CPU-bound static-chunk pool only adds scheduler
  // churn (BENCH_parallel.json: 8 threads on 1 core run 0.97x of 1
  // thread), so a GNNDSE_THREADS above the hardware thread count clamps
  // down. GNNDSE_THREADS_OVERSUBSCRIBE=1 keeps the literal request —
  // needed by tests that pin a multi-lane pool on small CI machines to
  // exercise cross-thread paths. set_parallel_threads() is exempt: an
  // explicit programmatic resize is taken at face value.
  if (requested > hw && env_int("GNNDSE_THREADS_OVERSUBSCRIBE", 0) == 0) {
    log_warn("GNNDSE_THREADS=", requested, " oversubscribes ", hw,
             " hardware thread(s); clamping the pool to ", hw,
             " (set GNNDSE_THREADS_OVERSUBSCRIBE=1 to override)");
    return hw;
  }
  return requested;
}

std::mutex& pool_mu() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<Pool>& pool_slot() {
  static std::unique_ptr<Pool> slot;
  return slot;
}

/// The live pool, created on first use. Callers must hold pool_mu() only
/// for the lookup; the returned pool outlives any in-flight parallel_for
/// because set_parallel_threads must not race with active work.
Pool& pool() {
  std::lock_guard<std::mutex> lock(pool_mu());
  auto& slot = pool_slot();
  if (!slot) {
    slot = std::make_unique<Pool>(default_lanes());
    obs::set(obs::gauge("parallel.pool_size"),
             static_cast<double>(slot->lanes()));
  }
  return *slot;
}

}  // namespace

int parallel_threads() { return pool().lanes(); }

void set_parallel_threads(int n) {
  std::lock_guard<std::mutex> lock(pool_mu());
  auto& slot = pool_slot();
  slot.reset();  // join the old workers before re-sizing
  if (n >= 1) {
    slot = std::make_unique<Pool>(std::min(n, 256));
    obs::set(obs::gauge("parallel.pool_size"),
             static_cast<double>(slot->lanes()));
  }
  // n < 1: stay empty; the next parallel_for re-creates at the default.
}

bool in_parallel_region() { return t_in_parallel; }

void parallel_for(std::int64_t n, std::int64_t grain, const ChunkFn& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  static obs::Counter& c_inline = obs::counter("parallel.inline_runs");
  if (t_in_parallel) {  // nested: never fan out from inside a chunk
    obs::add(c_inline);
    body(0, n);
    return;
  }
  Pool& p = pool();
  // Static partition: floor(n/grain) keeps every chunk at least `grain`
  // iterations; the remainder spreads one extra iteration over the first
  // chunks so sizes differ by at most one.
  const int chunks = static_cast<int>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(p.lanes(), n / grain)));
  if (chunks <= 1) {
    obs::add(c_inline);
    body(0, n);
    return;
  }

  struct Job {
    std::mutex mu;
    std::condition_variable done_cv;
    int done = 0;
    std::exception_ptr error;
  } job;
  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  // Capture the submitting thread's innermost span so chunk-side spans nest
  // under the logical parent instead of becoming root-level orphans on the
  // worker rows.
  const std::int64_t parent_span = obs::current_span_id();
  auto run_chunk = [&](int c) {
    const std::int64_t begin =
        c * base + std::min<std::int64_t>(c, rem);
    const std::int64_t end = begin + base + (c < rem ? 1 : 0);
    t_in_parallel = true;
    try {
      obs::SpanContext ctx(parent_span);
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    t_in_parallel = false;
    {
      // Notify while holding the lock: the instant the caller observes
      // done == chunks it may destroy `job`, so a worker must never touch
      // it after releasing mu.
      std::lock_guard<std::mutex> lock(job.mu);
      ++job.done;
      job.done_cv.notify_one();
    }
  };
  for (int c = 1; c < chunks; ++c) p.submit([&run_chunk, c] { run_chunk(c); });
  run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(job.mu);
    job.done_cv.wait(lock, [&] { return job.done == chunks; });
  }

  static obs::Counter& c_runs = obs::counter("parallel.invocations");
  static obs::Histogram& h_tasks = obs::histogram("parallel.tasks");
  obs::add(c_runs);
  obs::observe(h_tasks, static_cast<double>(chunks));

  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace gnndse::util
