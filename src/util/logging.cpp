#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "util/env.hpp"
#include "util/timer.hpp"

namespace gnndse::util {
namespace {

/// GNNDSE_LOG_LEVEL: debug|info|warn|error (case-insensitive) or 0-3.
LogLevel level_from_env() {
  std::string v = env_str("GNNDSE_LOG_LEVEL");
  for (char& c : v)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::kWarn;
  if (v == "error" || v == "3") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{level_from_env()};

/// Serializes whole lines so interleaved log_line calls from concurrent
/// threads cannot tear each other's output.
std::mutex& log_mutex() {
  static std::mutex* m = new std::mutex();  // leaked: usable at exit
  return *m;
}

/// Elapsed-ms epoch: first touch of the logger. Leaked so log lines emitted
/// during static destruction (e.g. obs::ReportSession) stay well-defined.
const Timer& process_timer() {
  static Timer* t = new Timer();
  return *t;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

/// ISO-8601 UTC with millisecond resolution, e.g. 2026-08-06T12:34:56.789Z.
std::string iso8601_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto ms =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  const std::string stamp = iso8601_now();
  const double elapsed_ms = process_timer().millis();
  char prefix[96];
  std::snprintf(prefix, sizeof prefix, "[%s] [%9.1fms] [%s] ", stamp.c_str(),
                elapsed_ms, level_tag(level));
  std::lock_guard<std::mutex> lock(log_mutex());
  os << prefix << msg << '\n';
}
}  // namespace detail

}  // namespace gnndse::util
