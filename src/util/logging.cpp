#include "util/logging.hpp"

#include <atomic>

namespace gnndse::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << "[" << level_tag(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace gnndse::util
