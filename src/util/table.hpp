// ASCII table rendering used by the bench binaries to print the paper's
// tables (Table 1/2/3) and figure data series in a readable, diffable form.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace gnndse::util {

/// A simple column-aligned text table with an optional title.
///
///   Table t{"Table 1: ..."};
///   t.header({"Kernel", "#pragmas", "#configs"});
///   t.row({"aes", "3", "45"});
///   t.print(std::cout);
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Number formatting helpers for row construction.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_int(long long v);
  /// Thousands-separated integer, e.g. 3059001 -> "3,059,001".
  static std::string fmt_commas(long long v);

  std::size_t num_rows() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Write as CSV (header row first) for downstream plotting.
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gnndse::util
