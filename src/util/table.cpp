#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace gnndse::util {

void Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::fmt_commas(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::ostringstream oss;
    oss << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      oss << ' ' << c << std::string(widths[i] - c.size(), ' ') << " |";
    }
    oss << '\n';
    return oss.str();
  };
  auto rule = [&widths]() {
    std::ostringstream oss;
    oss << "|";
    for (std::size_t w : widths) oss << std::string(w + 2, '-') << "|";
    oss << '\n';
    return oss.str();
  };

  std::ostringstream oss;
  if (!title_.empty()) oss << title_ << '\n';
  if (!header_.empty()) {
    oss << render_row(header_);
    oss << rule();
  }
  for (const auto& r : rows_) oss << render_row(r);
  return oss.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  auto write_row = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      const std::string& c = cells[i];
      const bool quote = c.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : c) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << c;
      }
    }
    out << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& r : rows_) write_row(r);
}

}  // namespace gnndse::util
