#include "util/cpu.hpp"

#include <atomic>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace gnndse::util {
namespace {

SimdLevel probe() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

std::atomic<int> g_active{-1};  // -1 = not yet resolved
std::once_flag g_resolve_once;

/// Stores the level and keeps the `tensor.simd_level` gauge registered and
/// current. The gauge is set directly (not via the enabled() gate) so it
/// appears in every report, mirroring the pool gauges registered at pool
/// construction.
void publish(SimdLevel level) {
  g_active.store(static_cast<int>(level), std::memory_order_relaxed);
  obs::gauge("tensor.simd_level")
      .set(static_cast<double>(simd_level_width(level)));
}

}  // namespace

SimdLevel detect_simd_level() {
  static const SimdLevel cap = probe();
  return cap;
}

SimdLevel parse_simd_level(const std::string& value, SimdLevel fallback) {
  if (value == "scalar") return SimdLevel::kScalar;
  if (value == "avx2") return SimdLevel::kAvx2;
  if (value == "avx512") return SimdLevel::kAvx512;
  if (!value.empty() && value != "auto")
    log_warn("GNNDSE_SIMD=", value,
             " not recognized (scalar|avx2|avx512|auto); using auto");
  return fallback;
}

SimdLevel active_simd_level() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    std::call_once(g_resolve_once, [] {
      const SimdLevel cap = detect_simd_level();
      const SimdLevel req = parse_simd_level(env_str("GNNDSE_SIMD", "auto"), cap);
      if (req > cap)
        log_warn("GNNDSE_SIMD=", simd_level_name(req),
                 " exceeds host capability ", simd_level_name(cap),
                 "; clamping");
      publish(req < cap ? req : cap);
    });
    v = g_active.load(std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(v);
}

SimdLevel set_simd_level(SimdLevel level) {
  active_simd_level();  // make sure env resolution never overwrites us later
  const SimdLevel cap = detect_simd_level();
  const SimdLevel applied = level < cap ? level : cap;
  publish(applied);
  return applied;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

int simd_level_width(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return 0;
    case SimdLevel::kAvx2:
      return 256;
    case SimdLevel::kAvx512:
      return 512;
  }
  return 0;
}

}  // namespace gnndse::util
