#include "util/env.hpp"

#include <cstdlib>

namespace gnndse::util {
namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

RunScale run_scale() {
  if (env_truthy("GNNDSE_FAST")) return RunScale::kFast;
  if (env_truthy("GNNDSE_FULL")) return RunScale::kFull;
  return RunScale::kDefault;
}

std::string env_str(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

int env_int(const std::string& name, int fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

std::int64_t env_int64(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

}  // namespace gnndse::util
