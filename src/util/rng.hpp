// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of GNN-DSE (weight init, explorer sampling,
// dataset shuffles) draw from an explicitly seeded Rng so every table and
// figure in the paper reproduction is bit-stable across runs.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace gnndse::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded via
/// splitmix64 so that nearby integer seeds yield uncorrelated streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64-bit output (UniformRandomBitGenerator interface).
  std::uint64_t operator()();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A fresh Rng whose stream is decorrelated from this one.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace gnndse::util
