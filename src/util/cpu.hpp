// Runtime CPU feature detection and the process-wide SIMD dispatch level.
//
// The tensor and inference kernels ship multiple variants (scalar, AVX2,
// AVX-512) compiled via per-function target attributes into one portable
// binary; the active variant is picked here at startup and can be pinned
// with GNNDSE_SIMD=scalar|avx2|avx512|auto (requests above the host's
// capability clamp down with a warning, so a config written on an AVX-512
// box still runs everywhere).
//
// Every variant preserves the scalar kernels' float accumulation order
// bit-exactly (vectorization crosses independent rows/edges/columns only),
// so the level is a pure throughput knob: predictions are bit-identical at
// every level and thread count (tests/test_simd.cpp, simd_dispatch_check).
//
// Telemetry: the `tensor.simd_level` gauge reports the active level as its
// vector width in bits (0 = scalar, 256 = AVX2, 512 = AVX-512); per-kernel
// dispatch counters live in obs/simd_counters.hpp.
#pragma once

#include <string>

namespace gnndse::util {

/// Ordered capability tiers: each level implies the ones below it.
enum class SimdLevel : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Hardware capability of this host (CPUID probe, cached after first call).
/// AVX2 requires the avx2 feature bit; AVX-512 requires avx512f.
SimdLevel detect_simd_level();

/// The level kernels dispatch on: min(GNNDSE_SIMD request, capability),
/// resolved once on first use. Cheap (one relaxed atomic load) — callers
/// read it per kernel invocation.
SimdLevel active_simd_level();

/// Re-pins the active level (clamped to the host capability; returns the
/// level actually applied). Test/bench hook — not safe to call while a
/// kernel is in flight on another thread, but levels never change results,
/// only speed, so a race would at worst split one call across variants.
SimdLevel set_simd_level(SimdLevel level);

/// "scalar" / "avx2" / "avx512".
const char* simd_level_name(SimdLevel level);

/// Vector width in bits (0 / 256 / 512) — the `tensor.simd_level` gauge
/// encoding.
int simd_level_width(SimdLevel level);

/// Parses a GNNDSE_SIMD value; "auto" and unknown strings return `fallback`
/// (unknown additionally logs a warning).
SimdLevel parse_simd_level(const std::string& value, SimdLevel fallback);

}  // namespace gnndse::util
