// 64-byte-aligned vector storage for tensor data.
//
// std::vector's default allocator only guarantees alignof(std::max_align_t)
// (16 on this toolchain); the SIMD kernel layer wants tensor bases on cache
// -line boundaries so full-width vector loads never straddle lines. The
// kernels still use unaligned load instructions (row views land at
// arbitrary offsets), which cost nothing extra when the address happens to
// be aligned — the allocator just makes that the common case.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace gnndse::util {

template <typename T, std::size_t Align>
struct AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "Align must be a power of two");
  static_assert(Align >= alignof(T), "Align must satisfy T's alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// Cache-line-aligned float storage (the Tensor backing store).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace gnndse::util
