// Minimal leveled logging. Experiments print their tables via util/table.hpp;
// this is for progress lines (epoch losses, DSE round summaries).
//
// Each line is prefixed with an ISO-8601 UTC timestamp and the elapsed ms
// since process start, and whole lines are serialized under a mutex so
// concurrent threads cannot tear each other's output. The initial threshold
// comes from GNNDSE_LOG_LEVEL (debug|info|warn|error or 0-3; default info).
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace gnndse::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  detail::log_line(level, oss.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace gnndse::util
