// Wall-clock timing helpers for the DSE time limits and the runtime
// comparisons in Table 3 / the inference-throughput bench.
//
// Timer is the low-level monotonic clock; the telemetry layer composes it
// (obs::ScopedSpan owns a Timer and records it into the span tree), so new
// timing call sites should usually open a span instead of a bare Timer.
#pragma once

#include <chrono>

namespace gnndse::util {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gnndse::util
