// Shared parallel-execution layer: a lazily-initialized global thread pool
// and a static-chunk parallel_for on top of it.
//
// Sizing: GNNDSE_THREADS (default: hardware_concurrency, min 1). The pool
// owns size-1 worker threads and the calling thread fills the remaining
// lane, so GNNDSE_THREADS=1 never spawns a thread and runs fully serial.
//
// Determinism: parallel_for only splits the index range — each chunk covers
// a contiguous [begin, end) and runs the body exactly as the serial loop
// would. Callers that write per-index results into disjoint slots (every
// user in this repo does) get bit-identical output at every thread count.
//
// Re-entrancy: a parallel_for issued from inside a running chunk executes
// inline on the calling thread (no nested fan-out, no deadlock).
//
// Telemetry (docs/performance.md): `parallel.pool_size` /
// `parallel.queue_depth` / `parallel.worker_utilization` gauges, the
// `parallel.tasks` (chunks per fan-out) and `parallel.task_ms` (per-task
// worker latency) histograms, and the `parallel.invocations` /
// `parallel.inline_runs` counters. Worker threads register as
// "pool-worker-N" in the trace layer, and each chunk adopts the submitting
// thread's open span (obs::SpanContext) so pool-side spans nest under
// their logical parent in reports and Chrome traces.
#pragma once

#include <cstdint>
#include <functional>

namespace gnndse::util {

/// Lanes the global pool schedules across (worker threads + the calling
/// thread). Initializes the pool on first use.
int parallel_threads();

/// Re-sizes the global pool (benches and tests sweep thread counts this
/// way; normal runs size once from GNNDSE_THREADS). n < 1 resets to the
/// GNNDSE_THREADS / hardware default. Must not be called while a
/// parallel_for is in flight on another thread.
void set_parallel_threads(int n);

/// True while the calling thread is executing a parallel_for chunk.
bool in_parallel_region();

using ChunkFn = std::function<void(std::int64_t, std::int64_t)>;

/// Runs body(begin, end) over a static partition of [0, n): at most
/// parallel_threads() contiguous chunks, each of at least `grain`
/// iterations (grain < 1 behaves as 1). The caller executes the first
/// chunk itself and blocks until every chunk has finished; the first
/// exception thrown by any chunk is rethrown on the caller afterwards.
/// Nested calls, n < 2*grain, and single-lane pools run inline.
void parallel_for(std::int64_t n, std::int64_t grain, const ChunkFn& body);

}  // namespace gnndse::util
