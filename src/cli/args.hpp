// Minimal argument parsing for the gnndse CLI: positional arguments plus
// --key value / --flag options.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace gnndse::cli {

class Args {
 public:
  Args(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const { return options_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const;
  /// Strictly parsed: a present-but-malformed value throws
  /// std::invalid_argument (the CLI maps that to usage + exit code 2).
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

}  // namespace gnndse::cli
