#include "cli/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gnndse::cli {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[key] = argv[++i];
      } else {
        options_[key] = "1";  // boolean flag
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

int Args::get_int(const std::string& key, int fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  // Strict parse: "--epochs ten" or "--gen 5x" must fail loudly, not run
  // with atoi's silent 0/5. Malformed values are usage errors (rc 2).
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("--" + key + ": expected an integer, got '" +
                                it->second + "'");
  return static_cast<int>(v);
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("--" + key + ": expected a number, got '" +
                                it->second + "'");
  return v;
}

}  // namespace gnndse::cli
