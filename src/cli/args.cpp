#include "cli/args.hpp"

#include <cstdlib>

namespace gnndse::cli {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[key] = argv[++i];
      } else {
        options_[key] = "1";  // boolean flag
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

int Args::get_int(const std::string& key, int fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : std::atoi(it->second.c_str());
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : std::atof(it->second.c_str());
}

}  // namespace gnndse::cli
