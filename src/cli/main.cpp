// gnndse — command-line front end to the GNN-DSE reproduction.
//
//   gnndse list-kernels [--kernels DIR]       kernels + provenance + stats
//                                             (`list` is an alias)
//   gnndse eval <kernel> [--config KEY]       evaluate one design with HLS
//   gnndse graph <kernel> [--config KEY] [--out g.dot]
//   gnndse gen-kernels --count N [--seed S] [--out DIR] [--prefix P]
//                      [--max-loops N] [--max-depth D] [--max-trip T]
//   gnndse gen-db [--out db.csv] [--budget N] [--extension]
//                 [--kernels DIR] [--gen N --gen-seed S]
//   gnndse train [--db db.csv] [--epochs N] [--out PREFIX]
//                [--kernels DIR] [--gen N --gen-seed S]
//   gnndse dse <kernel> [--db db.csv] [--weights PREFIX] [--time SECONDS]
//   gnndse autodse <kernel> [--budget-hours H]
//   gnndse serve [--port P] [--db db.csv] [--weights PREFIX]
//                [--cache-dir DIR] [--budget N] [--epochs N] [--hidden H]
//                [--layers L] [--time S] [--top M]   (docs/serving.md)
//   gnndse predict <kernel> --weights PREFIX [--config KEY] [--hidden H]
//                [--layers L]                direct-inference reference for
//                                            serve responses
//   gnndse client [--port P] [--host H] [--request JSON]  one request (or
//                                            stdin lines) to a daemon
//
// Every <kernel> argument accepts either a registry name (see
// `list-kernels`) or a path to a .json kernel description (docs/kernels.md)
// — file kernels run the full pipeline with no recompile.
//
// Every command honors --report <path> (or the GNNDSE_REPORT env var): a
// machine-readable JSON run report — metrics registry plus the span tree —
// is written there on exit. --trace <path> (GNNDSE_TRACE) additionally
// writes a Chrome-trace JSON timeline loadable in Perfetto, and
// --heartbeat <path> (GNNDSE_HEARTBEAT, interval GNNDSE_HEARTBEAT_MS)
// streams live NDJSON progress samples while the command runs (see
// docs/observability.md).
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "analysis/pareto.hpp"
#include "cli/args.hpp"
#include "db/explorer.hpp"
#include "dse/dse.hpp"
#include "dse/pipeline.hpp"
#include "frontend/kernel_json.hpp"
#include "graphgen/dot_export.hpp"
#include "kernels/generator.hpp"
#include "kernels/kernels.hpp"
#include "kernels/kernels_extension.hpp"
#include "kernels/registry.hpp"
#include "obs/report.hpp"
#include "oracle/stack.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"

using namespace gnndse;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: gnndse <list-kernels|eval|graph|gen-kernels|gen-db|"
               "train|dse|autodse|serve|predict|client> [args]\n"
               "  see the header of src/cli/main.cpp\n");
  return 2;
}

/// Registers any --kernels DIR file kernels into the global registry (so
/// list-kernels sees them and later lookups by name hit) and returns how
/// many were added. Shared by list-kernels/gen-db/train/dse.
std::size_t register_kernel_dir(const cli::Args& args) {
  if (!args.has("kernels")) return 0;
  return kernels::Registry::global().add_directory(args.get("kernels", ""))
      .size();
}

/// A kernel name or .json path -> kir::Kernel via the global registry.
kir::Kernel resolve_kernel(const std::string& name_or_path) {
  return kernels::Registry::global().resolve(name_or_path);
}

/// The kernels the surrogate trains on: the 9 builtin training kernels,
/// plus the extension set (--extension), plus every --kernels DIR file
/// kernel, plus --gen N seeded-generator kernels (--gen-seed S, default 1).
std::vector<kir::Kernel> training_set(const cli::Args& args) {
  auto ks = kernels::make_training_kernels();
  if (args.has("extension"))
    for (auto& k : kernels::make_extension_kernels()) ks.push_back(k);
  auto& reg = kernels::Registry::global();
  if (args.has("kernels"))
    for (const auto& name : reg.add_directory(args.get("kernels", "")))
      ks.push_back(reg.get(name));
  const int gen = args.get_int("gen", 0);
  if (gen > 0) {
    kernels::GeneratorConfig cfg;
    const auto base = static_cast<std::uint64_t>(args.get_int("gen-seed", 1));
    for (auto& k : kernels::generate_batch(cfg, base, gen)) {
      reg.add(k, kernels::Provenance::kGenerated, "seed");
      ks.push_back(std::move(k));
    }
  }
  return ks;
}

int cmd_list_kernels(const cli::Args& args) {
  register_kernel_dir(args);
  auto& reg = kernels::Registry::global();
  util::Table t{"Kernels"};
  t.header({"Kernel", "Source", "Set", "#pragmas", "#configs (pruned)",
            "Loops", "Stmts"});
  auto set_of = [](const std::string& name) -> const char* {
    for (const auto& n : kernels::training_kernel_names())
      if (n == name) return "training";
    for (const auto& n : kernels::unseen_kernel_names())
      if (n == name) return "unseen";
    for (const auto& n : kernels::extension_kernel_names())
      if (n == name) return "extension";
    return "-";
  };
  for (const auto& name : reg.names()) {
    const auto& e = reg.entry(name);
    dspace::DesignSpace space(e.kernel);
    t.row({name, kernels::provenance_name(e.provenance), set_of(name),
           util::Table::fmt_int(e.kernel.num_pragma_sites()),
           util::Table::fmt_commas(static_cast<long long>(space.pruned_size())),
           util::Table::fmt_int(static_cast<long long>(e.kernel.loops.size())),
           util::Table::fmt_int(
               static_cast<long long>(e.kernel.stmts.size()))});
  }
  t.print(std::cout);
  std::printf("%zu kernels; pass a .json path to any command to run a file "
              "kernel (docs/kernels.md)\n",
              reg.size());
  return 0;
}

int cmd_gen_kernels(const cli::Args& args) {
  const int count = args.get_int("count", 0);
  if (count < 1) {
    std::fprintf(stderr, "gen-kernels: --count N (>= 1) is required\n");
    return 2;
  }
  kernels::GeneratorConfig cfg;
  cfg.name_prefix = args.get("prefix", cfg.name_prefix);
  cfg.max_loops = args.get_int("max-loops", cfg.max_loops);
  cfg.min_loops = std::min(cfg.min_loops, cfg.max_loops);
  cfg.max_depth = args.get_int("max-depth", cfg.max_depth);
  cfg.max_trip = args.get_int("max-trip", static_cast<int>(cfg.max_trip));
  cfg.min_trip = std::min(cfg.min_trip, cfg.max_trip);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string out = args.get("out", "gen_kernels");
  std::filesystem::create_directories(out);
  for (int i = 0; i < count; ++i) {
    kir::Kernel k = kernels::generate(cfg, seed + static_cast<std::uint64_t>(i));
    frontend::save_kernel_file(k, out + "/" + k.name + ".json");
  }
  std::printf("wrote %d kernels (seeds %llu..%llu) -> %s/\n", count,
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(
                  seed + static_cast<std::uint64_t>(count) - 1),
              out.c_str());
  return 0;
}

int cmd_eval(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel k = resolve_kernel(args.positional()[1]);
  hlssim::DesignConfig cfg =
      args.has("config") ? hlssim::parse_config_key(args.get("config", ""))
                         : hlssim::DesignConfig::neutral(k);
  if (cfg.loops.size() != k.loops.size()) {
    std::fprintf(stderr, "config has %zu loops, kernel has %zu\n",
                 cfg.loops.size(), k.loops.size());
    return 1;
  }
  oracle::OracleStack oracle;
  auto r = oracle.evaluate(k, cfg);
  std::printf("kernel:  %s\nconfig:  %s\n", k.name.c_str(), cfg.key().c_str());
  if (!r.valid) {
    std::printf("INVALID: %s (synthesis clock: %.0fs)\n",
                r.invalid_reason.c_str(), r.synth_seconds);
    return 0;
  }
  std::printf(
      "cycles:  %.0f\nDSP:     %ld (%.1f%%)\nBRAM:    %ld (%.1f%%)\n"
      "LUT:     %ld (%.1f%%)\nFF:      %ld (%.1f%%)\nsynth:   %.0fs "
      "(simulated)\n",
      r.cycles, r.dsp, 100 * r.util_dsp, r.bram, 100 * r.util_bram, r.lut,
      100 * r.util_lut, r.ff, 100 * r.util_ff, r.synth_seconds);
  return 0;
}

int cmd_graph(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel k = resolve_kernel(args.positional()[1]);
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  hlssim::DesignConfig cfg =
      args.has("config") ? hlssim::parse_config_key(args.get("config", ""))
                         : hlssim::DesignConfig::neutral(k);
  graphgen::DotOptions dopts;
  dopts.space = &space;
  dopts.config = &cfg;
  const std::string out = args.get("out", k.name + ".dot");
  graphgen::write_dot(g, out, dopts);
  std::printf("%s: %lld nodes, %lld edges -> %s\n", k.name.c_str(),
              static_cast<long long>(g.num_nodes()),
              static_cast<long long>(g.num_edges()), out.c_str());
  return 0;
}

int cmd_gen_db(const cli::Args& args) {
  oracle::OracleStack oracle;
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  auto kernels = training_set(args);
  const int budget = args.get_int("budget", 0);
  db::Database db =
      budget > 0 ? db::generate_initial_database(
                       kernels, oracle, rng,
                       [budget](const std::string&) { return budget; })
                 : db::generate_initial_database(kernels, oracle, rng);
  const std::string out = args.get("out", "gnndse_db.csv");
  db.save_csv(out);
  auto c = db.counts_total();
  std::printf("database: %zu points (%zu valid) -> %s\n", c.total, c.valid,
              out.c_str());
  return 0;
}

int cmd_train(const cli::Args& args) {
  // Parse every option before the expensive DB/training work so a
  // malformed value exits 2 immediately instead of minutes in.
  dse::PipelineOptions po;
  po.main_epochs = args.get_int("epochs", 30);
  po.bram_epochs = std::max(2, po.main_epochs / 2);
  po.classifier_epochs = std::max(2, po.main_epochs / 2);
  po.hidden = args.get_int("hidden", 64);
  po.verbose = args.has("verbose");
  const std::string prefix = args.get("out", "gnndse_bundle");
  oracle::OracleStack oracle;
  auto kernels = training_set(args);
  db::Database db;
  if (args.has("db")) {
    db = db::Database::load_csv(args.get("db", ""));
  } else {
    util::Rng rng(42);
    db = db::generate_initial_database(kernels, oracle, rng);
  }
  model::SampleFactory factory;
  dse::TrainedModels models(db, kernels, factory, po, prefix);
  std::printf("trained bundle saved as %s.{main,bram,cls}.bin "
              "(norm factor %.0f)\n",
              prefix.c_str(), models.normalizer().norm_factor());
  return 0;
}

int cmd_dse(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel target = resolve_kernel(args.positional()[1]);
  // Parse every option before the expensive DB/training work so a
  // malformed value exits 2 immediately instead of minutes in.
  dse::PipelineOptions po;
  po.main_epochs = args.get_int("epochs", 30);
  po.bram_epochs = std::max(2, po.main_epochs / 2);
  po.classifier_epochs = std::max(2, po.main_epochs / 2);
  dse::DseOptions dopts;
  dopts.time_limit_seconds = args.get_double("time", 60.0);
  dopts.top_m = args.get_int("top", 10);
  // The stack's cache turns top-M re-evaluations into oracle.hits.
  oracle::OracleStack oracle;
  auto kernels = training_set(args);
  db::Database db;
  if (args.has("db")) {
    db = db::Database::load_csv(args.get("db", ""));
  } else {
    util::Rng rng(42);
    db = db::generate_initial_database(kernels, oracle, rng);
  }
  model::SampleFactory factory;
  dse::TrainedModels models(db, kernels, factory, po,
                            args.get("weights", ""));
  dse::ModelDse model_dse(models.bundle(), models.normalizer(), factory);
  util::Rng rng(13);
  dse::DseResult r = model_dse.run(target, dopts, rng);
  auto ev = model_dse.evaluate_top(target, r, oracle);
  std::printf("explored %llu configs in %.1fs; HLS check %.0fs (simulated)\n",
              static_cast<unsigned long long>(r.num_explored),
              r.search_seconds, ev.hls_seconds);
  if (!ev.best) {
    std::printf("no valid design found in the top candidates\n");
    return 1;
  }
  std::printf("best design: %s\n  %.0f cycles, util dsp/bram/lut/ff = "
              "%.2f/%.2f/%.2f/%.2f\n",
              ev.best->config.key().c_str(), ev.best->result.cycles,
              ev.best->result.util_dsp, ev.best->result.util_bram,
              ev.best->result.util_lut, ev.best->result.util_ff);
  return 0;
}

int cmd_autodse(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel k = resolve_kernel(args.positional()[1]);
  oracle::OracleStack oracle;
  const double budget = args.get_double("budget-hours", 21.0) * 3600.0;
  auto out = dse::run_autodse_baseline(k, oracle, budget);
  std::printf("AutoDSE baseline on %s: %d evals, %.1f simulated hours\n"
              "best design: %s\n  %.0f cycles\n",
              k.name.c_str(), out.evals, out.simulated_seconds / 3600.0,
              out.best.key().c_str(), out.best_cycles);
  return 0;
}

int cmd_serve(const cli::Args& args) {
  // Parse every option before the expensive DB/training work so a
  // malformed value exits 2 immediately instead of minutes in.
  const int budget = args.get_int("budget", 0);
  dse::PipelineOptions po;
  po.main_epochs = args.get_int("epochs", 30);
  po.bram_epochs = std::max(2, po.main_epochs / 2);
  po.classifier_epochs = std::max(2, po.main_epochs / 2);
  po.hidden = args.get_int("hidden", 64);
  po.gnn_layers = args.get_int("layers", 6);
  serve::ServerOptions so;
  so.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  so.weights_prefix = args.get("weights", "");
  so.cache_dir = args.get("cache-dir", "");
  so.sweep_time_limit = args.get_double("time", 5.0);
  so.top_m = args.get_int("top", 10);
  so.batcher = serve::BatcherOptions::from_env();

  oracle::OracleStack oracle;
  auto kernels = training_set(args);
  db::Database db;
  if (args.has("db")) {
    db = db::Database::load_csv(args.get("db", ""));
  } else {
    util::Rng rng(42);
    db = budget > 0 ? db::generate_initial_database(
                          kernels, oracle, rng,
                          [budget](const std::string&) { return budget; })
                    : db::generate_initial_database(kernels, oracle, rng);
  }
  model::SampleFactory factory;
  dse::TrainedModels models(db, kernels, factory, po,
                            args.get("weights", ""));

  serve::ModelSlot slot;
  slot.install(serve::snapshot_from_trained(
      models, models.normalizer().norm_factor()));
  serve::Server server(slot, factory, so);
  // Readiness line clients parse for the bound (possibly ephemeral) port.
  std::printf("gnndse serve: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  server.run();
  return 0;
}

int cmd_predict(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel k = resolve_kernel(args.positional()[1]);
  const std::string prefix = args.get("weights", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "predict: --weights PREFIX is required\n");
    return 2;
  }
  hlssim::DesignConfig cfg =
      args.has("config") ? hlssim::parse_config_key(args.get("config", ""))
                         : hlssim::DesignConfig::neutral(k);
  if (cfg.loops.size() != k.loops.size()) {
    std::fprintf(stderr, "config has %zu loops, kernel has %zu\n",
                 cfg.loops.size(), k.loops.size());
    return 1;
  }
  model::ModelOptions base;
  base.hidden = args.get_int("hidden", 64);
  base.gnn_layers = args.get_int("layers", 6);
  serve::ModelSlot slot;
  slot.install(serve::snapshot_from_files(prefix, base, /*norm_factor=*/1.0));
  serve::ModelInstance instance;
  instance.ensure(slot.current());
  model::SampleFactory factory;
  serve::PredictResult r = serve::predict_single(instance, factory, k, cfg);
  if (!r.ok) {
    std::fprintf(stderr, "predict: %s\n", r.error.c_str());
    return 1;
  }
  // Same formatting as the daemon's predict responses, so outputs compare
  // as strings (scripts/check_serve.py relies on this).
  std::printf("{%s}\n", serve::predicted_fields(r.predicted, r.p_valid).c_str());
  return 0;
}

int cmd_client(const cli::Args& args) {
  const int port = args.get_int("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "client: --port P (1..65535) is required\n");
    return 2;
  }
  serve::Socket sock = serve::connect_to(args.get("host", "127.0.0.1"),
                                         static_cast<std::uint16_t>(port));
  serve::LineReader lines(sock);
  auto roundtrip = [&](const std::string& line) {
    if (!sock.send_line(line)) {
      std::fprintf(stderr, "client: send failed\n");
      return 1;
    }
    std::string resp;
    if (!lines.read_line(&resp)) {
      std::fprintf(stderr, "client: connection closed\n");
      return 1;
    }
    std::printf("%s\n", resp.c_str());
    return 0;
  };
  if (args.has("request")) return roundtrip(args.get("request", ""));
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (int rc = roundtrip(line)) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& cmd = args.positional()[0];
  // Active when any of --report/--trace/--heartbeat is given (or the
  // GNNDSE_REPORT / GNNDSE_TRACE / GNNDSE_HEARTBEAT env vars are set):
  // enables telemetry, opens the root `pipeline` span, streams heartbeat
  // samples while running, and writes the report + Chrome trace on exit.
  obs::ReportSession report("gnndse." + cmd, args.get("report", ""),
                            args.get("trace", ""), args.get("heartbeat", ""));
  try {
    if (cmd == "list" || cmd == "list-kernels") return cmd_list_kernels(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "graph") return cmd_graph(args);
    if (cmd == "gen-kernels") return cmd_gen_kernels(args);
    if (cmd == "gen-db") return cmd_gen_db(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "dse") return cmd_dse(args);
    if (cmd == "autodse") return cmd_autodse(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "client") return cmd_client(args);
  } catch (const std::invalid_argument& e) {
    // Malformed option values (--gen x, --epochs ten) and bad --kernels
    // directories are usage errors: message + usage + exit code 2,
    // uniformly across verbs.
    std::fprintf(stderr, "gnndse %s: %s\n", cmd.c_str(), e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gnndse %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
