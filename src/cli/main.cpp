// gnndse — command-line front end to the GNN-DSE reproduction.
//
//   gnndse list                               kernels + design-space stats
//   gnndse eval <kernel> [--config KEY]       evaluate one design with HLS
//   gnndse graph <kernel> [--config KEY] [--out g.dot]
//   gnndse gen-db [--out db.csv] [--budget N] [--extension]
//   gnndse train [--db db.csv] [--epochs N] [--out PREFIX]
//   gnndse dse <kernel> [--db db.csv] [--weights PREFIX] [--time SECONDS]
//   gnndse autodse <kernel> [--budget-hours H]
//
// Every command honors --report <path> (or the GNNDSE_REPORT env var): a
// machine-readable JSON run report — metrics registry plus the span tree —
// is written there on exit. --trace <path> (GNNDSE_TRACE) additionally
// writes a Chrome-trace JSON timeline loadable in Perfetto, and
// --heartbeat <path> (GNNDSE_HEARTBEAT, interval GNNDSE_HEARTBEAT_MS)
// streams live NDJSON progress samples while the command runs (see
// docs/observability.md).
#include <cstdio>
#include <iostream>

#include "analysis/pareto.hpp"
#include "cli/args.hpp"
#include "db/explorer.hpp"
#include "dse/dse.hpp"
#include "dse/pipeline.hpp"
#include "graphgen/dot_export.hpp"
#include "kernels/kernels.hpp"
#include "kernels/kernels_extension.hpp"
#include "obs/report.hpp"
#include "oracle/stack.hpp"
#include "util/table.hpp"

using namespace gnndse;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: gnndse <list|eval|graph|gen-db|train|dse|autodse> "
               "[args]\n  see the header of src/cli/main.cpp\n");
  return 2;
}

std::vector<kir::Kernel> training_set(bool with_extension) {
  auto ks = kernels::make_training_kernels();
  if (with_extension)
    for (auto& k : kernels::make_extension_kernels()) ks.push_back(k);
  return ks;
}

int cmd_list() {
  util::Table t{"Kernels"};
  t.header({"Kernel", "Set", "#pragmas", "#configs (pruned)", "Loops",
            "Stmts"});
  auto add = [&t](const std::string& name, const char* set) {
    kir::Kernel k = kernels::make_kernel(name);
    dspace::DesignSpace space(k);
    t.row({name, set, util::Table::fmt_int(k.num_pragma_sites()),
           util::Table::fmt_commas(static_cast<long long>(space.pruned_size())),
           util::Table::fmt_int(static_cast<long long>(k.loops.size())),
           util::Table::fmt_int(static_cast<long long>(k.stmts.size()))});
  };
  for (const auto& n : kernels::training_kernel_names()) add(n, "training");
  for (const auto& n : kernels::unseen_kernel_names()) add(n, "unseen");
  for (const auto& n : kernels::extension_kernel_names()) add(n, "extension");
  t.print(std::cout);
  return 0;
}

int cmd_eval(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel k = kernels::make_kernel(args.positional()[1]);
  hlssim::DesignConfig cfg =
      args.has("config") ? hlssim::parse_config_key(args.get("config", ""))
                         : hlssim::DesignConfig::neutral(k);
  if (cfg.loops.size() != k.loops.size()) {
    std::fprintf(stderr, "config has %zu loops, kernel has %zu\n",
                 cfg.loops.size(), k.loops.size());
    return 1;
  }
  oracle::OracleStack oracle;
  auto r = oracle.evaluate(k, cfg);
  std::printf("kernel:  %s\nconfig:  %s\n", k.name.c_str(), cfg.key().c_str());
  if (!r.valid) {
    std::printf("INVALID: %s (synthesis clock: %.0fs)\n",
                r.invalid_reason.c_str(), r.synth_seconds);
    return 0;
  }
  std::printf(
      "cycles:  %.0f\nDSP:     %ld (%.1f%%)\nBRAM:    %ld (%.1f%%)\n"
      "LUT:     %ld (%.1f%%)\nFF:      %ld (%.1f%%)\nsynth:   %.0fs "
      "(simulated)\n",
      r.cycles, r.dsp, 100 * r.util_dsp, r.bram, 100 * r.util_bram, r.lut,
      100 * r.util_lut, r.ff, 100 * r.util_ff, r.synth_seconds);
  return 0;
}

int cmd_graph(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel k = kernels::make_kernel(args.positional()[1]);
  dspace::DesignSpace space(k);
  graphgen::ProgramGraph g = graphgen::build_graph(k, space);
  hlssim::DesignConfig cfg =
      args.has("config") ? hlssim::parse_config_key(args.get("config", ""))
                         : hlssim::DesignConfig::neutral(k);
  graphgen::DotOptions dopts;
  dopts.space = &space;
  dopts.config = &cfg;
  const std::string out = args.get("out", k.name + ".dot");
  graphgen::write_dot(g, out, dopts);
  std::printf("%s: %lld nodes, %lld edges -> %s\n", k.name.c_str(),
              static_cast<long long>(g.num_nodes()),
              static_cast<long long>(g.num_edges()), out.c_str());
  return 0;
}

int cmd_gen_db(const cli::Args& args) {
  oracle::OracleStack oracle;
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
  auto kernels = training_set(args.has("extension"));
  const int budget = args.get_int("budget", 0);
  db::Database db =
      budget > 0 ? db::generate_initial_database(
                       kernels, oracle, rng,
                       [budget](const std::string&) { return budget; })
                 : db::generate_initial_database(kernels, oracle, rng);
  const std::string out = args.get("out", "gnndse_db.csv");
  db.save_csv(out);
  auto c = db.counts_total();
  std::printf("database: %zu points (%zu valid) -> %s\n", c.total, c.valid,
              out.c_str());
  return 0;
}

int cmd_train(const cli::Args& args) {
  oracle::OracleStack oracle;
  auto kernels = training_set(args.has("extension"));
  db::Database db;
  if (args.has("db")) {
    db = db::Database::load_csv(args.get("db", ""));
  } else {
    util::Rng rng(42);
    db = db::generate_initial_database(kernels, oracle, rng);
  }
  model::SampleFactory factory;
  dse::PipelineOptions po;
  po.main_epochs = args.get_int("epochs", 30);
  po.bram_epochs = std::max(2, po.main_epochs / 2);
  po.classifier_epochs = std::max(2, po.main_epochs / 2);
  po.hidden = args.get_int("hidden", 64);
  po.verbose = args.has("verbose");
  const std::string prefix = args.get("out", "gnndse_bundle");
  dse::TrainedModels models(db, kernels, factory, po, prefix);
  std::printf("trained bundle saved as %s.{main,bram,cls}.bin "
              "(norm factor %.0f)\n",
              prefix.c_str(), models.normalizer().norm_factor());
  return 0;
}

int cmd_dse(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel target = kernels::make_kernel(args.positional()[1]);
  // The stack's cache turns top-M re-evaluations into oracle.hits.
  oracle::OracleStack oracle;
  auto kernels = training_set(args.has("extension"));
  db::Database db;
  if (args.has("db")) {
    db = db::Database::load_csv(args.get("db", ""));
  } else {
    util::Rng rng(42);
    db = db::generate_initial_database(kernels, oracle, rng);
  }
  model::SampleFactory factory;
  dse::PipelineOptions po;
  po.main_epochs = args.get_int("epochs", 30);
  po.bram_epochs = std::max(2, po.main_epochs / 2);
  po.classifier_epochs = std::max(2, po.main_epochs / 2);
  dse::TrainedModels models(db, kernels, factory, po,
                            args.get("weights", ""));
  dse::ModelDse model_dse(models.bundle(), models.normalizer(), factory);
  dse::DseOptions dopts;
  dopts.time_limit_seconds = args.get_double("time", 60.0);
  dopts.top_m = args.get_int("top", 10);
  util::Rng rng(13);
  dse::DseResult r = model_dse.run(target, dopts, rng);
  auto ev = model_dse.evaluate_top(target, r, oracle);
  std::printf("explored %llu configs in %.1fs; HLS check %.0fs (simulated)\n",
              static_cast<unsigned long long>(r.num_explored),
              r.search_seconds, ev.hls_seconds);
  if (!ev.best) {
    std::printf("no valid design found in the top candidates\n");
    return 1;
  }
  std::printf("best design: %s\n  %.0f cycles, util dsp/bram/lut/ff = "
              "%.2f/%.2f/%.2f/%.2f\n",
              ev.best->config.key().c_str(), ev.best->result.cycles,
              ev.best->result.util_dsp, ev.best->result.util_bram,
              ev.best->result.util_lut, ev.best->result.util_ff);
  return 0;
}

int cmd_autodse(const cli::Args& args) {
  if (args.positional().size() < 2) return usage();
  kir::Kernel k = kernels::make_kernel(args.positional()[1]);
  oracle::OracleStack oracle;
  const double budget = args.get_double("budget-hours", 21.0) * 3600.0;
  auto out = dse::run_autodse_baseline(k, oracle, budget);
  std::printf("AutoDSE baseline on %s: %d evals, %.1f simulated hours\n"
              "best design: %s\n  %.0f cycles\n",
              k.name.c_str(), out.evals, out.simulated_seconds / 3600.0,
              out.best.key().c_str(), out.best_cycles);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& cmd = args.positional()[0];
  // Active when any of --report/--trace/--heartbeat is given (or the
  // GNNDSE_REPORT / GNNDSE_TRACE / GNNDSE_HEARTBEAT env vars are set):
  // enables telemetry, opens the root `pipeline` span, streams heartbeat
  // samples while running, and writes the report + Chrome trace on exit.
  obs::ReportSession report("gnndse." + cmd, args.get("report", ""),
                            args.get("trace", ""), args.get("heartbeat", ""));
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "graph") return cmd_graph(args);
    if (cmd == "gen-db") return cmd_gen_db(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "dse") return cmd_dse(args);
    if (cmd == "autodse") return cmd_autodse(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gnndse %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
