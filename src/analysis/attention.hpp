// Node-attention inspection (Fig 5): run the full model on one design and
// report which nodes the graph-level pooling attends to. The paper's
// qualitative finding: pragma nodes rank among the most important, with
// loop trip counts (icmp + the i32 bound feeding it) modulating them.
#pragma once

#include <string>
#include <vector>

#include "hlssim/config.hpp"
#include "kir/kernel.hpp"
#include "model/dataset.hpp"
#include "model/predictive_model.hpp"

namespace gnndse::analysis {

struct NodeAttention {
  int node = -1;
  std::string description;  // "PARALLEL (block 3)", "icmp (block 2)", ...
  graphgen::NodeType type = graphgen::NodeType::kInstruction;
  float score = 0.0f;
};

/// Runs one forward pass of an M7 model on (kernel, config) and returns
/// all nodes sorted by attention score, highest first.
std::vector<NodeAttention> attention_scores(model::PredictiveModel& m7,
                                            model::SampleFactory& factory,
                                            const kir::Kernel& kernel,
                                            const hlssim::DesignConfig& cfg);

/// Fraction of total attention mass landing on pragma nodes.
double pragma_attention_share(const std::vector<NodeAttention>& scores);

}  // namespace gnndse::analysis
