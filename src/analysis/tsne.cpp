#include "analysis/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace gnndse::analysis {

using tensor::Tensor;

namespace {

/// Row-wise conditional probabilities with per-point bandwidth found by
/// binary search so the row entropy matches log(perplexity).
std::vector<double> conditional_p(const std::vector<double>& d2_row,
                                  std::size_t self, double perplexity) {
  const std::size_t n = d2_row.size();
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
  const double target_entropy = std::log(perplexity);
  std::vector<double> p(n, 0.0);
  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      p[j] = (j == self) ? 0.0 : std::exp(-beta * d2_row[j]);
      sum += p[j];
    }
    if (sum <= 0) sum = 1e-12;
    double entropy = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (p[j] <= 0) continue;
      const double pj = p[j] / sum;
      entropy -= pj * std::log(pj);
    }
    for (std::size_t j = 0; j < n; ++j) p[j] /= sum;
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0) {  // entropy too high -> increase beta
      beta_lo = beta;
      beta = (beta_hi > 1e11) ? beta * 2 : (beta + beta_hi) / 2;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2;
    }
  }
  return p;
}

}  // namespace

Tensor tsne(const Tensor& x, const TsneOptions& opts) {
  const std::int64_t n = x.rows();
  const std::int64_t d = x.cols();
  if (n < 3) {
    Tensor y({n, 2});
    return y;
  }

  // Pairwise squared Euclidean distances.
  std::vector<std::vector<double>> d2(static_cast<std::size_t>(n),
                                      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t c = 0; c < d; ++c) {
        const double diff = x.at(i, c) - x.at(j, c);
        acc += diff * diff;
      }
      d2[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = acc;
      d2[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = acc;
    }

  // Symmetric joint probabilities.
  const double perplexity =
      std::min(opts.perplexity, static_cast<double>(n - 1) / 3.0);
  std::vector<std::vector<double>> p(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    p[static_cast<std::size_t>(i)] = conditional_p(
        d2[static_cast<std::size_t>(i)], static_cast<std::size_t>(i),
        perplexity);
  std::vector<std::vector<double>> pij(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  double psum = 0.0;
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      const double v = (p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +
                        p[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]) /
                       (2.0 * static_cast<double>(n));
      pij[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
      psum += v;
    }
  for (auto& row : pij)
    for (auto& v : row) v = std::max(v / psum, 1e-12);

  // Gradient descent on the 2-D embedding.
  util::Rng rng(opts.seed);
  Tensor y({n, 2});
  for (std::int64_t i = 0; i < y.numel(); ++i)
    y.at(i) = static_cast<float>(rng.normal(0.0, 1e-2));
  Tensor velocity({n, 2});

  std::vector<std::vector<double>> q(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int iter = 0; iter < opts.iterations; ++iter) {
    const double exaggeration =
        iter < opts.exaggeration_iters ? opts.early_exaggeration : 1.0;
    // Student-t affinities.
    double qsum = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = i + 1; j < n; ++j) {
        const double dy0 = y.at(i, 0) - y.at(j, 0);
        const double dy1 = y.at(i, 1) - y.at(j, 1);
        const double v = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        q[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
        q[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = v;
        qsum += 2.0 * v;
      }
    if (qsum <= 0) qsum = 1e-12;

    for (std::int64_t i = 0; i < n; ++i) {
      double g0 = 0.0, g1 = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double qv =
            q[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        const double mult =
            (exaggeration *
                 pij[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -
             qv / qsum) *
            qv;
        g0 += mult * (y.at(i, 0) - y.at(j, 0));
        g1 += mult * (y.at(i, 1) - y.at(j, 1));
      }
      velocity.at(i, 0) = static_cast<float>(
          opts.momentum * velocity.at(i, 0) - opts.learning_rate * 4.0 * g0);
      velocity.at(i, 1) = static_cast<float>(
          opts.momentum * velocity.at(i, 1) - opts.learning_rate * 4.0 * g1);
    }
    for (std::int64_t i = 0; i < n; ++i) {
      y.at(i, 0) += velocity.at(i, 0);
      y.at(i, 1) += velocity.at(i, 1);
    }
  }
  return y;
}

double neighborhood_label_spread(const Tensor& y2d,
                                 const std::vector<float>& labels, int k) {
  const std::int64_t n = y2d.rows();
  if (static_cast<std::size_t>(n) != labels.size() || n < k + 1) return 0.0;
  float lab_min = labels[0], lab_max = labels[0];
  for (float l : labels) {
    lab_min = std::min(lab_min, l);
    lab_max = std::max(lab_max, l);
  }
  const double spread = std::max(1e-9f, lab_max - lab_min);

  double total = 0.0;
  std::vector<std::pair<double, std::int64_t>> dist(
      static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const double d0 = y2d.at(i, 0) - y2d.at(j, 0);
      const double d1 = y2d.at(i, 1) - y2d.at(j, 1);
      dist[static_cast<std::size_t>(j)] = {d0 * d0 + d1 * d1, j};
    }
    std::partial_sort(dist.begin(), dist.begin() + k + 1, dist.end());
    double acc = 0.0;
    int counted = 0;
    for (int t = 0; t <= k && counted < k; ++t) {
      const std::int64_t j = dist[static_cast<std::size_t>(t)].second;
      if (j == i) continue;
      acc += std::abs(labels[static_cast<std::size_t>(j)] -
                      labels[static_cast<std::size_t>(i)]);
      ++counted;
    }
    total += acc / std::max(1, counted);
  }
  return total / static_cast<double>(n) / spread;
}

}  // namespace gnndse::analysis
