#include "analysis/pareto.hpp"

namespace gnndse::analysis {

std::vector<double> objective_vector(const hlssim::HlsResult& r) {
  return {r.cycles, r.util_dsp, r.util_bram, r.util_lut, r.util_ff};
}

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> pareto_front(
    const std::vector<db::DataPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].result.valid) continue;
    const auto oi = objective_vector(points[i].result);
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j || !points[j].result.valid) continue;
      if (dominates(objective_vector(points[j].result), oi)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace gnndse::analysis
