#include "analysis/attention.hpp"

#include <algorithm>
#include <sstream>

#include "gnn/batch.hpp"
#include "tensor/tape.hpp"

namespace gnndse::analysis {

std::vector<NodeAttention> attention_scores(model::PredictiveModel& m7,
                                            model::SampleFactory& factory,
                                            const kir::Kernel& kernel,
                                            const hlssim::DesignConfig& cfg) {
  gnn::GraphData g = factory.featurize(kernel, cfg);
  gnn::GraphBatch batch = gnn::make_batch({&g});
  tensor::Tape tape;
  m7.forward(tape, batch);
  const tensor::Tensor& alpha = tape.value(m7.last_attention());

  const graphgen::ProgramGraph& pg = factory.graph(kernel);
  std::vector<NodeAttention> out;
  out.reserve(static_cast<std::size_t>(alpha.rows()));
  for (std::int64_t i = 0; i < alpha.rows(); ++i) {
    NodeAttention na;
    na.node = static_cast<int>(i);
    const auto& node = pg.nodes[static_cast<std::size_t>(i)];
    std::ostringstream oss;
    oss << graphgen::to_string(node.key);
    if (node.block > 0) {
      oss << " (loop "
          << kernel.loops[static_cast<std::size_t>(node.block - 1)].name
          << ")";
    }
    na.description = oss.str();
    na.type = node.type;
    na.score = alpha.at(i, 0);
    out.push_back(std::move(na));
  }
  std::sort(out.begin(), out.end(),
            [](const NodeAttention& a, const NodeAttention& b) {
              return a.score > b.score;
            });
  return out;
}

double pragma_attention_share(const std::vector<NodeAttention>& scores) {
  double pragma = 0.0, total = 0.0;
  for (const auto& s : scores) {
    total += s.score;
    if (s.type == graphgen::NodeType::kPragma) pragma += s.score;
  }
  return total > 0 ? pragma / total : 0.0;
}

}  // namespace gnndse::analysis
