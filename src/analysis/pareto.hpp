// Pareto-front utilities: GNN-DSE's Problem 2 asks for Pareto-optimal
// designs over latency and resource use (§1, §4.4).
#pragma once

#include <vector>

#include "db/database.hpp"

namespace gnndse::analysis {

/// Objective vector extracted from a design point: cycles plus the four
/// utilizations, all to be minimized.
std::vector<double> objective_vector(const hlssim::HlsResult& r);

/// True when a dominates b (<= everywhere, < somewhere).
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Indices of the non-dominated valid points among `points`.
std::vector<std::size_t> pareto_front(const std::vector<db::DataPoint>& points);

}  // namespace gnndse::analysis
