// Exact t-SNE (van der Maaten & Hinton, 2008) for the embedding
// visualization of Fig 6: 2-D projection of graph-level embeddings, with
// nearby points modeling similar designs.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace gnndse::analysis {

struct TsneOptions {
  double perplexity = 30.0;
  int iterations = 400;
  double learning_rate = 100.0;
  double momentum = 0.8;
  double early_exaggeration = 12.0;
  int exaggeration_iters = 100;
  std::uint64_t seed = 1;
};

/// x: [N, D] high-dimensional points; returns [N, 2].
tensor::Tensor tsne(const tensor::Tensor& x, const TsneOptions& opts = {});

/// Quality proxy for tests/benches: mean over points of the fraction of
/// k-nearest neighbors (in the given scalar labels, e.g. latency) that are
/// also k-nearest in the 2-D embedding... simplified: average absolute
/// label difference of each point's k nearest 2-D neighbors, normalized by
/// the global label spread. Lower = better clustering by label.
double neighborhood_label_spread(const tensor::Tensor& y2d,
                                 const std::vector<float>& labels, int k = 10);

}  // namespace gnndse::analysis
