// Training database (paper §4.1, Fig 2): evaluated design points collected
// from several explorers across applications, stored in a shared space.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hlssim/config.hpp"
#include "hlssim/hls_sim.hpp"

namespace gnndse::db {

struct DataPoint {
  std::string kernel;
  hlssim::DesignConfig config;
  hlssim::HlsResult result;
};

/// Per-kernel tallies for Table 1.
struct KernelCounts {
  std::size_t total = 0;
  std::size_t valid = 0;
};

class Database {
 public:
  /// Adds a point unless the (kernel, config) pair is already present.
  /// Returns true when inserted.
  bool add(DataPoint point);

  bool contains(const std::string& kernel,
                const hlssim::DesignConfig& cfg) const;

  const std::vector<DataPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  KernelCounts counts(const std::string& kernel) const;
  KernelCounts counts_total() const;

  /// Points of one kernel (indices into points()).
  std::vector<std::size_t> kernel_points(const std::string& kernel) const;

  /// Best (lowest-cycle) valid design of a kernel that fits under the
  /// utilization threshold; nullopt when none qualifies.
  std::optional<DataPoint> best_valid(const std::string& kernel,
                                      double util_threshold = 0.8) const;

  /// CSV round trip (kernel, config key, validity, objectives).
  void save_csv(const std::string& path) const;
  static Database load_csv(const std::string& path);

 private:
  static std::string make_key(const std::string& kernel,
                              const hlssim::DesignConfig& cfg);

  std::vector<DataPoint> points_;
  std::unordered_set<std::string> keys_;
};

/// True when a result is valid and all utilizations are under `threshold`
/// (the DSE feasibility test of eq. 7).
bool fits(const hlssim::HlsResult& r, double threshold = 0.8);

}  // namespace gnndse::db
