// Database-generation explorers (paper §4.1):
//   * bottleneck-based optimizer — AutoDSE's greedy search; also serves as
//     the AutoDSE baseline for Table 3's runtime comparison,
//   * hybrid explorer — bottleneck + local search around improved designs,
//   * random explorer — uniform coverage of configurations the other two
//     skip.
// Every evaluation goes through the shared oracle::Evaluator seam (which
// owns caching and failure semantics) and is streamed to a sink so the
// caller can commit it to the shared Database (Fig 2) and account
// simulated synthesis time.
#pragma once

#include <functional>
#include <unordered_set>

#include "db/database.hpp"
#include "dspace/design_space.hpp"
#include "oracle/evaluator.hpp"
#include "util/rng.hpp"

namespace gnndse::db {

/// Scalar objective used by the explorers: cycles when the design is valid
/// and fits; a soft penalty when valid but over-utilized; +inf when
/// invalid.
double fitness(const hlssim::HlsResult& r, double util_threshold = 0.8);

/// Called for each HLS evaluation an explorer performs.
using EvalSink = std::function<void(const DataPoint&)>;

struct ExplorerOptions {
  int max_evals = 200;
  double util_threshold = 0.8;
  /// Hybrid explorer: local-search trigger (fractional improvement) and
  /// neighbor budget per trigger.
  double local_search_trigger = 0.10;
  int local_search_neighbors = 8;
};

class Explorer {
 public:
  Explorer(const kir::Kernel& kernel, const dspace::DesignSpace& space,
           oracle::Evaluator& oracle);

  /// AutoDSE-style greedy sweeps over the priority-ordered pragma sites.
  /// Returns the best configuration found. `simulated_seconds`, when
  /// non-null, accumulates the synthesis wall-clock the HLS tool would
  /// have consumed (evaluations run in batches of `batch_parallelism`).
  hlssim::DesignConfig run_bottleneck(const ExplorerOptions& opts,
                                      const EvalSink& sink,
                                      double* simulated_seconds = nullptr);

  /// Bottleneck plus local search around each significantly-improved best.
  hlssim::DesignConfig run_hybrid(const ExplorerOptions& opts,
                                  const EvalSink& sink, util::Rng& rng);

  /// Uniform random sampling of non-pruned configurations.
  void run_random(int num_samples, const EvalSink& sink, util::Rng& rng);

  /// Evaluates one configuration through the oracle and reports it to the
  /// sink. Result memoization is the oracle's job; the explorer only
  /// tracks which configs *this run* already visited, so budgets and sink
  /// dedup behave identically whether the oracle's cache is cold or warm.
  hlssim::HlsResult evaluate(const hlssim::DesignConfig& cfg,
                             const EvalSink& sink);

  int evals_used() const { return evals_; }

 private:
  bool visited(const hlssim::DesignConfig& cfg) const {
    return visited_.count(cfg.key()) > 0;
  }

  const kir::Kernel& kernel_;
  const dspace::DesignSpace& space_;
  oracle::Evaluator& oracle_;
  std::unordered_set<std::string> visited_;  // config keys seen this run
  int evals_ = 0;
};

/// The paper's per-kernel initial-database sizes (Table 1) used as default
/// exploration budgets.
int default_budget(const std::string& kernel_name);

/// Builds the initial database for a set of kernels: bottleneck + hybrid +
/// random explorers share a per-kernel budget (§4.1). All evaluations flow
/// through `oracle`; with a warm persistent cache a repeat run rebuilds
/// the same database without a single fresh hlssim evaluation.
Database generate_initial_database(
    const std::vector<kir::Kernel>& kernels, oracle::Evaluator& oracle,
    util::Rng& rng,
    const std::function<int(const std::string&)>& budget = default_budget);

}  // namespace gnndse::db
