#include "db/explorer.hpp"

#include <algorithm>
#include <limits>

namespace gnndse::db {

using dspace::SiteKind;
using hlssim::DesignConfig;
using hlssim::HlsResult;
using hlssim::LoopConfig;
using hlssim::PipeMode;

double fitness(const HlsResult& r, double util_threshold) {
  if (!r.valid) return std::numeric_limits<double>::infinity();
  const double worst_util = std::max(
      {r.util_dsp, r.util_bram, r.util_lut, r.util_ff});
  if (worst_util < util_threshold) return r.cycles;
  // Valid but over budget: usable as training data, a poor DSE outcome.
  return r.cycles * (1.0 + 10.0 * (worst_util - util_threshold));
}

Explorer::Explorer(const kir::Kernel& kernel, const dspace::DesignSpace& space,
                   oracle::Evaluator& oracle)
    : kernel_(kernel), space_(space), oracle_(oracle) {}

HlsResult Explorer::evaluate(const DesignConfig& cfg, const EvalSink& sink) {
  HlsResult r = oracle_.evaluate(kernel_, cfg);
  if (visited_.insert(cfg.key()).second) {
    ++evals_;
    if (sink) sink(DataPoint{kernel_.name, cfg, r});
  }
  return r;
}

namespace {

/// All options of one site applied to a base configuration.
std::vector<DesignConfig> site_variants(const dspace::DesignSpace& space,
                                        int site_idx,
                                        const DesignConfig& base) {
  const auto& site = space.sites()[static_cast<std::size_t>(site_idx)];
  std::vector<DesignConfig> out;
  for (std::int64_t opt : site.options) {
    DesignConfig c = base;
    LoopConfig& lc = c.loops[static_cast<std::size_t>(site.loop)];
    switch (site.kind) {
      case SiteKind::kTile:
        lc.tile = opt;
        break;
      case SiteKind::kPipeline:
        lc.pipeline = static_cast<PipeMode>(opt);
        break;
      case SiteKind::kParallel:
        lc.parallel = opt;
        break;
    }
    if (!space.is_pruned(c)) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

DesignConfig Explorer::run_bottleneck(const ExplorerOptions& opts,
                                      const EvalSink& sink,
                                      double* simulated_seconds) {
  const std::vector<int> order = dspace::priority_ordered_sites(space_);
  DesignConfig best = DesignConfig::neutral(kernel_);
  HlsResult best_r = evaluate(best, sink);
  if (simulated_seconds) *simulated_seconds += best_r.synth_seconds;
  double best_fit = fitness(best_r, opts.util_threshold);

  const int start_evals = evals_;
  bool improved = true;
  while (improved && evals_ - start_evals < opts.max_evals) {
    improved = false;
    for (int site : order) {
      if (evals_ - start_evals >= opts.max_evals) break;
      // AutoDSE evaluates the candidate batch for the current bottleneck
      // pragma in parallel: simulated time advances by the slowest member.
      double batch_max_seconds = 0.0;
      DesignConfig round_best = best;
      double round_fit = best_fit;
      for (const DesignConfig& cand : site_variants(space_, site, best)) {
        if (visited(cand)) continue;
        if (evals_ - start_evals >= opts.max_evals) break;
        HlsResult r = evaluate(cand, sink);
        batch_max_seconds = std::max(batch_max_seconds, r.synth_seconds);
        const double f = fitness(r, opts.util_threshold);
        if (f < round_fit) {
          round_fit = f;
          round_best = cand;
        }
      }
      if (simulated_seconds) *simulated_seconds += batch_max_seconds;
      if (round_fit < best_fit) {
        best_fit = round_fit;
        best = round_best;
        improved = true;
      }
    }
  }
  return best;
}

DesignConfig Explorer::run_hybrid(const ExplorerOptions& opts,
                                  const EvalSink& sink, util::Rng& rng) {
  const std::vector<int> order = dspace::priority_ordered_sites(space_);
  DesignConfig best = DesignConfig::neutral(kernel_);
  double best_fit =
      fitness(evaluate(best, sink), opts.util_threshold);

  const int start_evals = evals_;
  bool improved = true;
  while (improved && evals_ - start_evals < opts.max_evals) {
    improved = false;
    for (int site : order) {
      if (evals_ - start_evals >= opts.max_evals) break;
      DesignConfig round_best = best;
      double round_fit = best_fit;
      for (const DesignConfig& cand : site_variants(space_, site, best)) {
        if (visited(cand)) continue;
        if (evals_ - start_evals >= opts.max_evals) break;
        const double f = fitness(evaluate(cand, sink), opts.util_threshold);
        if (f < round_fit) {
          round_fit = f;
          round_best = cand;
        }
      }
      const bool significant =
          round_fit < best_fit * (1.0 - opts.local_search_trigger);
      if (round_fit < best_fit) {
        best_fit = round_fit;
        best = round_best;
        improved = true;
      }
      if (significant) {
        // Local search: single-pragma neighbors of the improved design so
        // the model sees the effect of changing one pragma (§4.1).
        auto neighbors = space_.neighbors(best);
        rng.shuffle(neighbors);
        int budget = opts.local_search_neighbors;
        for (const auto& nb : neighbors) {
          if (budget-- <= 0 || evals_ - start_evals >= opts.max_evals) break;
          if (visited(nb)) continue;
          const double f = fitness(evaluate(nb, sink), opts.util_threshold);
          if (f < best_fit) {
            best_fit = f;
            best = nb;
            improved = true;
          }
        }
      }
    }
  }
  return best;
}

void Explorer::run_random(int num_samples, const EvalSink& sink,
                          util::Rng& rng) {
  for (int i = 0; i < num_samples; ++i) {
    DesignConfig cfg = space_.sample(rng);
    if (visited(cfg)) continue;
    evaluate(cfg, sink);
  }
}

int default_budget(const std::string& kernel_name) {
  // Table 1 initial-database sizes.
  if (kernel_name == "aes") return 15;
  if (kernel_name == "atax") return 605;
  if (kernel_name == "gemm-blocked") return 616;
  if (kernel_name == "gemm-ncubed") return 432;
  if (kernel_name == "mvt") return 571;
  if (kernel_name == "spmv-crs") return 98;
  if (kernel_name == "spmv-ellpack") return 114;
  if (kernel_name == "stencil") return 1066;
  if (kernel_name == "nw") return 911;
  return 400;
}

Database generate_initial_database(
    const std::vector<kir::Kernel>& kernels, oracle::Evaluator& oracle,
    util::Rng& rng, const std::function<int(const std::string&)>& budget) {
  Database db;
  for (const auto& kernel : kernels) {
    dspace::DesignSpace space(kernel);
    Explorer ex(kernel, space, oracle);
    auto sink = [&db](const DataPoint& p) { db.add(p); };

    const int total = budget(kernel.name);
    // Budget split: 35% bottleneck, 25% hybrid, the rest random.
    ExplorerOptions bopts;
    bopts.max_evals = std::max(1, total * 35 / 100);
    ex.run_bottleneck(bopts, sink);
    ExplorerOptions hopts;
    hopts.max_evals = std::max(1, total * 25 / 100);
    ex.run_hybrid(hopts, sink, rng);
    int remaining = total - ex.evals_used();
    // Random sampling may hit duplicates; cap the attempts.
    int attempts = 0;
    while (ex.evals_used() < total &&
           attempts < 20 * std::max(1, remaining)) {
      ex.run_random(1, sink, rng);
      ++attempts;
    }
  }
  return db;
}

}  // namespace gnndse::db
