#include "db/database.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace gnndse::db {

bool fits(const hlssim::HlsResult& r, double threshold) {
  return r.valid && r.util_dsp < threshold && r.util_bram < threshold &&
         r.util_lut < threshold && r.util_ff < threshold;
}

std::string Database::make_key(const std::string& kernel,
                               const hlssim::DesignConfig& cfg) {
  return kernel + "|" + cfg.key();
}

bool Database::add(DataPoint point) {
  std::string key = make_key(point.kernel, point.config);
  if (!keys_.insert(std::move(key)).second) return false;
  points_.push_back(std::move(point));
  return true;
}

bool Database::contains(const std::string& kernel,
                        const hlssim::DesignConfig& cfg) const {
  return keys_.count(make_key(kernel, cfg)) > 0;
}

KernelCounts Database::counts(const std::string& kernel) const {
  KernelCounts c;
  for (const auto& p : points_) {
    if (p.kernel != kernel) continue;
    ++c.total;
    if (p.result.valid) ++c.valid;
  }
  return c;
}

KernelCounts Database::counts_total() const {
  KernelCounts c;
  for (const auto& p : points_) {
    ++c.total;
    if (p.result.valid) ++c.valid;
  }
  return c;
}

std::vector<std::size_t> Database::kernel_points(
    const std::string& kernel) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points_.size(); ++i)
    if (points_[i].kernel == kernel) out.push_back(i);
  return out;
}

std::optional<DataPoint> Database::best_valid(const std::string& kernel,
                                              double util_threshold) const {
  std::optional<DataPoint> best;
  for (const auto& p : points_) {
    if (p.kernel != kernel || !fits(p.result, util_threshold)) continue;
    if (!best || p.result.cycles < best->result.cycles) best = p;
  }
  return best;
}

void Database::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Database::save_csv: cannot open " + path);
  // max_digits10 so cycles/synth_seconds survive the round trip exactly —
  // the oracle's persistent cache replays loaded results as if fresh.
  out << std::setprecision(17);
  out << "kernel,config,valid,reason,cycles,dsp,bram,lut,ff,synth_seconds\n";
  for (const auto& p : points_) {
    out << p.kernel << ',' << p.config.key() << ',' << (p.result.valid ? 1 : 0)
        << ',' << '"' << p.result.invalid_reason << '"' << ','
        << p.result.cycles << ',' << p.result.dsp << ',' << p.result.bram
        << ',' << p.result.lut << ',' << p.result.ff << ','
        << p.result.synth_seconds << '\n';
  }
}

Database Database::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Database::load_csv: cannot open " + path);
  Database db;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream iss(line);
    DataPoint p;
    std::string field;
    std::getline(iss, p.kernel, ',');
    std::getline(iss, field, ',');
    p.config = hlssim::parse_config_key(field);
    std::getline(iss, field, ',');
    p.result.valid = field == "1";
    std::getline(iss, field, ',');
    if (field.size() >= 2 && field.front() == '"')
      p.result.invalid_reason = field.substr(1, field.size() - 2);
    auto next_double = [&iss, &field]() {
      std::getline(iss, field, ',');
      return std::stod(field);
    };
    p.result.cycles = next_double();
    p.result.dsp = static_cast<long>(next_double());
    p.result.bram = static_cast<long>(next_double());
    p.result.lut = static_cast<long>(next_double());
    p.result.ff = static_cast<long>(next_double());
    p.result.synth_seconds = next_double();
    // Utilizations are derived; recompute with the default device.
    hlssim::FpgaResources dev;
    p.result.util_dsp = static_cast<double>(p.result.dsp) / dev.dsp;
    p.result.util_bram = static_cast<double>(p.result.bram) / dev.bram18;
    p.result.util_lut = static_cast<double>(p.result.lut) / dev.lut;
    p.result.util_ff = static_cast<double>(p.result.ff) / dev.ff;
    db.add(std::move(p));
  }
  return db;
}

}  // namespace gnndse::db
