#include "gnn/pool.hpp"

namespace gnndse::gnn {

using tensor::Tape;
using tensor::VarId;

VarId sum_pool(Tape& t, VarId x, const GraphBatch& b) {
  return t.scatter_add_rows(x, b.node_graph, b.num_graphs);
}

const tensor::Tensor& sum_pool_infer(InferenceSession& s,
                                     const tensor::Tensor& x,
                                     const GraphBatch& b) {
  return s.scatter_add_rows(x, b.node_graph, b.num_graphs);
}

VarId jumping_knowledge_max(Tape& t, const std::vector<VarId>& layers) {
  return t.max_list(layers);
}

const tensor::Tensor& jumping_knowledge_max_infer(
    InferenceSession& s, const std::vector<const tensor::Tensor*>& layers) {
  return s.max_list(layers);
}

AttentionPool::AttentionPool(std::int64_t dim, util::Rng& rng)
    : gate_({dim, dim / 2, 1}, rng),
      transform_({dim, dim}, rng) {}

VarId AttentionPool::forward(Tape& t, VarId x, const GraphBatch& b) {
  VarId scores = gate_.forward(t, x);  // [N, 1]
  VarId alpha = t.segment_softmax(scores, b.node_graph, b.num_graphs);
  last_scores_ = alpha;
  VarId weighted = t.mul_colbcast(alpha, transform_.forward(t, x));
  return t.scatter_add_rows(weighted, b.node_graph, b.num_graphs);
}

const tensor::Tensor& AttentionPool::forward_infer(InferenceSession& s,
                                                   const tensor::Tensor& x,
                                                   const GraphBatch& b) {
  const tensor::Tensor& scores = gate_.forward_infer(s, x);  // [N, 1]
  const tensor::Tensor& alpha =
      s.segment_softmax(scores, b.node_graph, b.num_graphs);
  const tensor::Tensor& weighted =
      s.mul_colbcast(alpha, transform_.forward_infer(s, x));
  return s.scatter_add_rows(weighted, b.node_graph, b.num_graphs);
}

std::vector<tensor::Parameter*> AttentionPool::params() {
  auto out = gate_.params();
  for (auto* p : transform_.params()) out.push_back(p);
  return out;
}

}  // namespace gnndse::gnn
