#include "gnn/layers.hpp"

#include <stdexcept>

#include "tensor/init.hpp"

namespace gnndse::gnn {

using tensor::Tape;
using tensor::VarId;

Linear::Linear(std::int64_t in, std::int64_t out, util::Rng& rng, bool bias)
    : w_(tensor::xavier_uniform(in, out, rng)),
      b_(tensor::Tensor({out})),
      has_bias_(bias) {}

VarId Linear::forward(Tape& t, VarId x) {
  VarId y = t.matmul(x, t.param(w_));
  if (has_bias_) y = t.add_rowvec(y, t.param(b_));
  return y;
}

const tensor::Tensor& Linear::forward_infer(InferenceSession& s,
                                            const tensor::Tensor& x) {
  return s.linear(x, w_.value, has_bias_ ? &b_.value : nullptr);
}

std::vector<tensor::Parameter*> Linear::params() {
  if (has_bias_) return {&w_, &b_};
  return {&w_};
}

VarId activate(Tape& t, VarId x, Activation a) {
  switch (a) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return t.relu(x);
    case Activation::kElu:
      return t.elu(x);
    case Activation::kLeakyRelu:
      return t.leaky_relu(x);
    case Activation::kSigmoid:
      return t.sigmoid(x);
    case Activation::kTanh:
      return t.tanh(x);
  }
  throw std::logic_error("unknown activation");
}

const tensor::Tensor& activate_infer(InferenceSession& s,
                                     const tensor::Tensor& x, Activation a) {
  switch (a) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return s.relu(x);
    case Activation::kElu:
      return s.elu(x);
    case Activation::kLeakyRelu:
      return s.leaky_relu(x);
    case Activation::kSigmoid:
      return s.sigmoid(x);
    case Activation::kTanh:
      return s.tanh(x);
  }
  throw std::logic_error("unknown activation");
}

Mlp::Mlp(const std::vector<std::int64_t>& dims, util::Rng& rng,
         Activation hidden, Activation output)
    : hidden_(hidden), output_(output) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need >= 2 dims");
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i], dims[i + 1], rng);
}

VarId Mlp::forward(Tape& t, VarId x) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i].forward(t, x);
    const bool last = (i + 1 == layers_.size());
    x = activate(t, x, last ? output_ : hidden_);
  }
  return x;
}

const tensor::Tensor& Mlp::forward_infer(InferenceSession& s,
                                         const tensor::Tensor& x) {
  const tensor::Tensor* h = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = &layers_[i].forward_infer(s, *h);
    const bool last = (i + 1 == layers_.size());
    h = &activate_infer(s, *h, last ? output_ : hidden_);
  }
  return *h;
}

std::vector<tensor::Parameter*> Mlp::params() {
  std::vector<tensor::Parameter*> out;
  for (auto& l : layers_)
    for (auto* p : l.params()) out.push_back(p);
  return out;
}

}  // namespace gnndse::gnn
