// Tape-free inference engine: forward-only evaluation of the GNN ops with
// preallocated workspace buffers.
//
// The autodiff Tape allocates a node (value tensor + backward closure) per
// op, which the DSE hot loop never uses — prediction only needs the forward
// values. InferenceSession mirrors every Tape forward computation
// bit-for-bit (same kernels, same float-accumulation order, same
// std::exp/std::tanh calls) but writes results into a pool of workspace
// tensors that is reused across forward passes: after a warmup pass per
// batch shape, steady-state forwards perform zero heap allocation.
//
// Threading: elementwise and per-row ops (disjoint output writes) fan out
// over util::parallel_for; order-sensitive reductions (scatter_add_rows,
// segment_softmax) stay serial because their float accumulation order
// defines the result bits. matmul delegates to tensor::matmul_acc, which is
// already parallel and bit-stable. A session is single-consumer: one
// forward pass at a time per session object (the ops inside parallelize).
//
// Slot references returned by ops stay valid until the next begin() —
// slots_ is a deque, so growing it never moves existing tensors.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "tensor/tensor.hpp"

namespace gnndse::gnn {

class InferenceSession {
 public:
  InferenceSession() = default;
  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Starts a new forward pass: rewinds the slot cursor so workspace
  /// tensors are reused in the same order. Invalidates references returned
  /// by ops of the previous pass.
  void begin() { cursor_ = 0; }

  // Dense ops (forward halves of the Tape ops, bit-identical).
  const tensor::Tensor& matmul(const tensor::Tensor& a,
                               const tensor::Tensor& b);
  /// matmul + add_rowvec fused into one sweep (tensor::matmul_bias); pass
  /// bias = nullptr for a plain product. Bit-identical to the two-op
  /// sequence the tape records.
  const tensor::Tensor& linear(const tensor::Tensor& a,
                               const tensor::Tensor& w,
                               const tensor::Tensor* bias);
  const tensor::Tensor& add(const tensor::Tensor& a, const tensor::Tensor& b);
  const tensor::Tensor& sub(const tensor::Tensor& a, const tensor::Tensor& b);
  const tensor::Tensor& mul(const tensor::Tensor& a, const tensor::Tensor& b);
  const tensor::Tensor& scale(const tensor::Tensor& a, float s);
  const tensor::Tensor& add_rowvec(const tensor::Tensor& a,
                                   const tensor::Tensor& bias);
  const tensor::Tensor& concat_cols(
      const std::vector<const tensor::Tensor*>& parts);
  const tensor::Tensor& row_sum(const tensor::Tensor& a);
  const tensor::Tensor& mul_colbcast(const tensor::Tensor& col,
                                     const tensor::Tensor& x);
  /// Overload for coefficient lists kept as raw floats (gcn_coeff): saves
  /// the Tape path's per-call Tensor materialization of the column.
  const tensor::Tensor& mul_colbcast(const std::vector<float>& col,
                                     const tensor::Tensor& x);

  // Nonlinearities.
  const tensor::Tensor& relu(const tensor::Tensor& a);
  const tensor::Tensor& leaky_relu(const tensor::Tensor& a,
                                   float negative_slope = 0.2f);
  const tensor::Tensor& elu(const tensor::Tensor& a, float alpha = 1.0f);
  const tensor::Tensor& sigmoid(const tensor::Tensor& a);
  const tensor::Tensor& tanh(const tensor::Tensor& a);

  // Graph primitives.
  const tensor::Tensor& gather_rows(const tensor::Tensor& a,
                                    const std::vector<std::int32_t>& idx);
  const tensor::Tensor& scatter_add_rows(const tensor::Tensor& a,
                                         const std::vector<std::int32_t>& idx,
                                         std::int64_t num_rows);
  const tensor::Tensor& segment_softmax(const tensor::Tensor& scores,
                                        const std::vector<std::int32_t>& seg,
                                        std::int64_t num_segments);
  const tensor::Tensor& max_list(
      const std::vector<const tensor::Tensor*>& parts);

  // Fused edge-domain kernels. Message passing through the generic ops
  // materializes several [E, D] intermediates per conv layer (gather ->
  // add -> mul -> reduce -> scatter); these fold each chain into one pass
  // while computing the exact same per-element expressions in the exact
  // same order, so results stay bit-identical to the op-by-op tape. They
  // exist only on the inference side — the tape keeps discrete ops because
  // each needs its own backward.

  /// TransformerConv attention logits, fusing the tape chain
  ///   scale(row_sum(mul(gather(q,dst), add(gather(k,src), ek))), c):
  ///   out[e] = (sum_d q[dst[e]][d] * (k[src[e]][d] + ek[e][d])) * c
  /// with the sum accumulated in ascending d like row_sum.
  const tensor::Tensor& edge_attention_scores(
      const tensor::Tensor& q, const tensor::Tensor& k,
      const tensor::Tensor& ek, const std::vector<std::int32_t>& src,
      const std::vector<std::int32_t>& dst, float c);

  /// GAT pairwise logits, fusing
  ///   leaky_relu(add(gather(a,src), gather(b,dst))):
  ///   out[e] = lrelu(a[src[e]][0] + b[dst[e]][0])   (a, b are [N,1])
  const tensor::Tensor& edge_pair_scores(const tensor::Tensor& a,
                                         const tensor::Tensor& b,
                                         const std::vector<std::int32_t>& src,
                                         const std::vector<std::int32_t>& dst,
                                         float negative_slope);

  /// Weighted message aggregation, fusing
  ///   scatter_add_rows(mul_colbcast(alpha, add(gather(v,src), ev)), dst):
  ///   out[dst[e]][:] += alpha[e] * (v[src[e]][:] + ev[e][:])
  /// in ascending e (the scatter's accumulation-order contract). `alpha`
  /// points at E coefficients (a [E,1] tensor's data or gcn_coeff); pass
  /// ev = nullptr to drop the edge term (GCN/GAT messages).
  const tensor::Tensor& weighted_scatter_add(
      const float* alpha, const tensor::Tensor& v, const tensor::Tensor* ev,
      const std::vector<std::int32_t>& src,
      const std::vector<std::int32_t>& dst, std::int64_t num_rows);

  /// Gate-input assembly for the gated residual, fusing
  ///   concat_cols({r, m, sub(r, m)}):
  ///   out[i][:] = [ r[i][:] | m[i][:] | r[i][:] - m[i][:] ]
  /// One pass over r and m instead of a sub pass plus a concat pass; the
  /// difference block holds the same bits as the tape's materialized
  /// sub(r, m), and gated_mix reads it back in place.
  const tensor::Tensor& residual_concat(const tensor::Tensor& r,
                                        const tensor::Tensor& m);

  /// Gated residual mix, fusing add(m, mul_colbcast(beta, d)) where d is
  /// the difference block of a residual_concat result (its last c columns):
  ///   out[i][:] = m[i][:] + beta[i] * cat[i][2c:3c]
  /// (beta is [N,1], cat is [N,3c]). The product rounds before the add —
  /// this file is compiled without fp contraction — matching the tape's
  /// materialized mul_colbcast.
  const tensor::Tensor& gated_mix(const tensor::Tensor& m,
                                  const tensor::Tensor& beta,
                                  const tensor::Tensor& cat);

  /// High-water workspace footprint: sum over slots of the largest tensor
  /// each slot ever held. Constant across steady-state forwards of the
  /// same batch shape (exported as the `gnn.workspace_bytes` gauge).
  std::size_t workspace_bytes() const;
  /// Number of workspace tensors ever allocated (growth == cold pass).
  std::size_t num_slots() const { return slots_.size(); }

 private:
  /// Next workspace tensor, reshaped in place. `zero` clears it; otherwise
  /// the caller overwrites every element.
  tensor::Tensor& next(std::vector<std::int64_t> shape, bool zero);

  std::deque<tensor::Tensor> slots_;
  std::vector<std::size_t> high_water_;  // max numel per slot
  std::size_t cursor_ = 0;
};

}  // namespace gnndse::gnn
