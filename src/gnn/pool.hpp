// Graph-level readouts: plain sum pooling (M3-M6) and the node-attention
// pooling of eq. 10 (M7), plus the Jumping Knowledge max-combine (eq. 9).
#pragma once

#include "gnn/batch.hpp"
#include "gnn/layers.hpp"

namespace gnndse::gnn {

/// Sum of node embeddings per graph: [N, D] -> [B, D].
tensor::VarId sum_pool(tensor::Tape& t, tensor::VarId x, const GraphBatch& b);
const tensor::Tensor& sum_pool_infer(InferenceSession& s,
                                     const tensor::Tensor& x,
                                     const GraphBatch& b);

/// Jumping Knowledge Network, max combine (eq. 9): elementwise max over the
/// per-layer node embeddings.
tensor::VarId jumping_knowledge_max(tensor::Tape& t,
                                    const std::vector<tensor::VarId>& layers);
const tensor::Tensor& jumping_knowledge_max_infer(
    InferenceSession& s, const std::vector<const tensor::Tensor*>& layers);

/// Node-attention pooling (eq. 10):
///   h_G = sum_i softmax_i(MLP1(h_i)) * MLP2(h_i)
/// with the softmax taken per graph over all of its nodes.
class AttentionPool : public Module {
 public:
  AttentionPool(std::int64_t dim, util::Rng& rng);

  tensor::VarId forward(tensor::Tape& t, tensor::VarId x, const GraphBatch& b);
  const tensor::Tensor& forward_infer(InferenceSession& s,
                                      const tensor::Tensor& x,
                                      const GraphBatch& b);

  /// Attention scores per node (the softmax output), for Fig 5-style
  /// analysis. Valid after calling forward on the same tape.
  tensor::VarId last_scores() const { return last_scores_; }

  std::vector<tensor::Parameter*> params() override;

 private:
  Mlp gate_;       // MLP1: D -> 1
  Mlp transform_;  // MLP2: D -> D
  tensor::VarId last_scores_ = tensor::kInvalidVar;
};

}  // namespace gnndse::gnn
