#include "gnn/conv.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "tensor/init.hpp"

namespace gnndse::gnn {

using tensor::Tape;
using tensor::Tensor;
using tensor::VarId;

namespace {

/// Telemetry for the message-passing hot loop: one conv application and
/// the number of edge messages it aggregates. Inlined no-op when disabled.
inline void detail_count_message_pass(const GraphBatch& b) {
  static obs::Counter& c_convs = obs::counter("gnn.conv_forwards");
  static obs::Counter& c_msgs = obs::counter("gnn.edge_messages");
  if (!obs::enabled()) return;
  c_convs.add();
  c_msgs.add(static_cast<std::int64_t>(b.src_sl.size()));
}

}  // namespace

// ---------------------------------------------------------------------------
// GCN.
// ---------------------------------------------------------------------------

GCNConv::GCNConv(std::int64_t in, std::int64_t out, util::Rng& rng)
    : lin_(in, out, rng) {}

VarId GCNConv::forward(Tape& t, VarId x, const GraphBatch& b) {
  detail_count_message_pass(b);
  // Aggregate with fixed symmetric-normalized coefficients over the
  // self-loop-augmented edge list, then transform.
  VarId msg = t.gather_rows(x, b.src_sl);
  Tensor coeff({static_cast<std::int64_t>(b.gcn_coeff.size()), 1},
               std::vector<float>(b.gcn_coeff.begin(), b.gcn_coeff.end()));
  VarId weighted = t.mul_colbcast(t.constant(std::move(coeff)), msg);
  VarId agg = t.scatter_add_rows(weighted, b.dst_sl, b.num_nodes);
  return lin_.forward(t, agg);
}

const Tensor& GCNConv::forward_infer(InferenceSession& s, const Tensor& x,
                                     const GraphBatch& b) {
  detail_count_message_pass(b);
  // Fused gather/mul_colbcast/scatter: same products, same ascending-edge
  // accumulation, no [E, D] intermediates.
  const Tensor& agg = s.weighted_scatter_add(b.gcn_coeff.data(), x, nullptr,
                                             b.src_sl, b.dst_sl, b.num_nodes);
  return lin_.forward_infer(s, agg);
}

std::vector<tensor::Parameter*> GCNConv::params() { return lin_.params(); }

// ---------------------------------------------------------------------------
// GAT.
// ---------------------------------------------------------------------------

GATConv::GATConv(std::int64_t in, std::int64_t out, util::Rng& rng)
    : lin_(in, out, rng, /*bias=*/false),
      att_src_(tensor::xavier_uniform(out, 1, rng)),
      att_dst_(tensor::xavier_uniform(out, 1, rng)),
      bias_(Tensor({out})) {}

VarId GATConv::forward(Tape& t, VarId x, const GraphBatch& b) {
  detail_count_message_pass(b);
  VarId h = lin_.forward(t, x);  // [N, out]
  VarId score_src = t.matmul(h, t.param(att_src_));  // [N, 1]
  VarId score_dst = t.matmul(h, t.param(att_dst_));  // [N, 1]
  VarId e_score =
      t.add(t.gather_rows(score_src, b.src_sl), t.gather_rows(score_dst, b.dst_sl));
  e_score = t.leaky_relu(e_score, 0.2f);
  VarId alpha = t.segment_softmax(e_score, b.dst_sl, b.num_nodes);
  VarId msg = t.mul_colbcast(alpha, t.gather_rows(h, b.src_sl));
  VarId agg = t.scatter_add_rows(msg, b.dst_sl, b.num_nodes);
  return t.add_rowvec(agg, t.param(bias_));
}

const Tensor& GATConv::forward_infer(InferenceSession& s, const Tensor& x,
                                     const GraphBatch& b) {
  detail_count_message_pass(b);
  const Tensor& h = lin_.forward_infer(s, x);
  const Tensor& score_src = s.matmul(h, att_src_.value);
  const Tensor& score_dst = s.matmul(h, att_dst_.value);
  const Tensor& e_act =
      s.edge_pair_scores(score_src, score_dst, b.src_sl, b.dst_sl, 0.2f);
  const Tensor& alpha = s.segment_softmax(e_act, b.dst_sl, b.num_nodes);
  const Tensor& agg = s.weighted_scatter_add(alpha.data(), h, nullptr,
                                             b.src_sl, b.dst_sl, b.num_nodes);
  return s.add_rowvec(agg, bias_.value);
}

std::vector<tensor::Parameter*> GATConv::params() {
  auto out = lin_.params();
  out.push_back(&att_src_);
  out.push_back(&att_dst_);
  out.push_back(&bias_);
  return out;
}

// ---------------------------------------------------------------------------
// TransformerConv.
// ---------------------------------------------------------------------------

TransformerConv::TransformerConv(std::int64_t in, std::int64_t out,
                                 std::int64_t edge_dim, util::Rng& rng,
                                 bool gated_residual)
    : wq_(in, out, rng),
      wk_(in, out, rng),
      wv_(in, out, rng),
      we_k_(edge_dim, out, rng, /*bias=*/false),
      we_v_(edge_dim, out, rng, /*bias=*/false),
      skip_(in, out, rng),
      gate_(3 * out, 1, rng),
      out_dim_(out),
      gated_residual_(gated_residual) {}

VarId TransformerConv::forward(Tape& t, VarId x, const GraphBatch& b) {
  detail_count_message_pass(b);
  VarId q = wq_.forward(t, x);
  VarId k = wk_.forward(t, x);
  VarId v = wv_.forward(t, x);
  VarId e = t.constant(b.e);
  VarId ek = we_k_.forward(t, e);
  VarId ev = we_v_.forward(t, e);

  VarId k_edge = t.add(t.gather_rows(k, b.src), ek);   // [E, D]
  VarId q_edge = t.gather_rows(q, b.dst);              // [E, D]
  VarId score = t.row_sum(t.mul(q_edge, k_edge));      // [E, 1]
  score = t.scale(score, 1.0f / std::sqrt(static_cast<float>(out_dim_)));
  VarId alpha = t.segment_softmax(score, b.dst, b.num_nodes);

  VarId v_edge = t.add(t.gather_rows(v, b.src), ev);
  VarId msg = t.mul_colbcast(alpha, v_edge);
  VarId m = t.scatter_add_rows(msg, b.dst, b.num_nodes);  // [N, D]

  VarId r = skip_.forward(t, x);
  if (!gated_residual_) return t.add(r, m);  // ablation: plain skip
  VarId beta = t.sigmoid(gate_.forward(t, t.concat_cols({r, m, t.sub(r, m)})));
  // h' = beta * r + (1 - beta) * m  ==  m + beta * (r - m)
  return t.add(m, t.mul_colbcast(beta, t.sub(r, m)));
}

const TransformerConv::EdgeProjection& TransformerConv::edge_projection(
    const GraphBatch& b) {
  static obs::Counter& c_rebuilds = obs::counter("gnn.edge_proj_rebuilds");
  const std::uint64_t pv = tensor::params_version();
  if (b.batch_id != 0) {
    for (std::size_t i = 0; i < eproj_.size(); ++i) {
      if (eproj_[i].batch_id == b.batch_id &&
          eproj_[i].params_version == pv) {
        if (i != 0)  // move-to-front so the LRU victim stays at the back
          std::rotate(eproj_.begin(), eproj_.begin() + static_cast<long>(i),
                      eproj_.begin() + static_cast<long>(i) + 1);
        return eproj_.front();
      }
    }
  }
  // Miss: recycle the least-recently-used slot into the front.
  std::rotate(eproj_.begin(), eproj_.end() - 1, eproj_.end());
  EdgeProjection& slot = eproj_.front();
  // Same computation as Linear::forward_infer on b.e (no bias): zeroed
  // output + matmul_acc, so the cached tensors are bit-identical to the
  // per-forward session results they replace.
  slot.ek = tensor::matmul(b.e, we_k_.weight().value);
  slot.ev = tensor::matmul(b.e, we_v_.weight().value);
  slot.batch_id = b.batch_id;
  slot.params_version = pv;
  obs::add(c_rebuilds);
  return slot;
}

const Tensor& TransformerConv::forward_infer(InferenceSession& s,
                                             const Tensor& x,
                                             const GraphBatch& b) {
  detail_count_message_pass(b);
  const Tensor& q = wq_.forward_infer(s, x);
  const Tensor& k = wk_.forward_infer(s, x);
  const Tensor& v = wv_.forward_infer(s, x);
  const EdgeProjection& ep = edge_projection(b);  // ek/ev, cached per batch

  // Fused attention: no materialized q_edge/k_edge/v_edge/msg buffers; the
  // per-element products and accumulation orders match the tape chain.
  const Tensor& score =
      s.edge_attention_scores(q, k, ep.ek, b.src, b.dst,
                              1.0f / std::sqrt(static_cast<float>(out_dim_)));
  const Tensor& alpha = s.segment_softmax(score, b.dst, b.num_nodes);
  const Tensor& m = s.weighted_scatter_add(alpha.data(), v, &ep.ev, b.src,
                                           b.dst, b.num_nodes);  // [N, D]

  const Tensor& r = skip_.forward_infer(s, x);
  if (!gated_residual_) return s.add(r, m);  // ablation: plain skip
  // (r - m) feeds both the gate input and the residual mix; residual_concat
  // materializes it once inside the gate input and gated_mix reads it back,
  // yielding the same bits as the tape's sub + concat + mul_colbcast + add.
  const Tensor& cat = s.residual_concat(r, m);
  const Tensor& beta = s.sigmoid(gate_.forward_infer(s, cat));
  // h' = beta * r + (1 - beta) * m  ==  m + beta * (r - m)
  return s.gated_mix(m, beta, cat);
}

std::vector<tensor::Parameter*> TransformerConv::params() {
  std::vector<tensor::Parameter*> out;
  for (Linear* l : {&wq_, &wk_, &wv_, &we_k_, &we_v_, &skip_, &gate_})
    for (auto* p : l->params()) out.push_back(p);
  return out;
}

}  // namespace gnndse::gnn
