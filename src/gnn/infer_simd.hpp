// Runtime-dispatched variants (scalar / AVX2 / AVX-512) of the fused
// inference kernels in infer.cpp.
//
// Every function computes the exact per-element expressions of the scalar
// loop it replaces, in the exact same order. Vectorization only ever
// crosses *independent* rows/edges/columns:
//   * per-row reductions (row_sum, edge_attention_scores) put 8/16
//     different rows or edges in the vector lanes via gathers — each
//     lane's additions stay in ascending-j order, so the bits match the
//     scalar loop no matter how rows are split across lanes, blocks, or
//     threads;
//   * order-sensitive cross-row accumulation (weighted_scatter_add's
//     colliding destinations) stays serial over edges and vectorizes only
//     the per-edge column sweep (disjoint writes);
//   * multiplies and adds round separately at every level — no FMA
//     contraction anywhere (this TU and infer.cpp are built with
//     -ffp-contract=off, and the vector bodies use separate mul/add).
// Remainder rows/edges/columns always run the scalar code. Pointers may be
// arbitrarily unaligned (row views); all vector loads are unaligned-safe.
//
// The `begin`/`end` pairs are row or edge ranges so infer.cpp can fan the
// helpers out across the thread pool; the dispatch level is resolved once
// per op call (obs/simd_counters.hpp) and passed into every chunk.
#pragma once

#include <cstdint>

#include "util/cpu.hpp"

namespace gnndse::gnn::simd {

using util::SimdLevel;

/// op[i] = sum_j ap[i*c + j]  for rows [begin, end), ascending j.
void row_sum_range(SimdLevel level, const float* ap, std::int64_t c, float* op,
                   std::int64_t begin, std::int64_t end);

/// orow = [ r | m | r - m ] for rows [begin, end); op row stride is 3c.
void residual_concat_range(SimdLevel level, const float* rp, const float* mp,
                           float* op, std::int64_t c, std::int64_t begin,
                           std::int64_t end);

/// op[i*c + j] = mp[i*c + j] + bp[i] * dp[i*3c + j] for rows [begin, end)
/// (dp points at the difference block of a residual_concat result).
void gated_mix_range(SimdLevel level, const float* mp, const float* bp,
                     const float* dp, float* op, std::int64_t c,
                     std::int64_t begin, std::int64_t end);

/// Which AVX2 body edge_attention_scores_range uses at the kAvx2 level.
/// kGather: one edge per lane, three gathers per column — wins on
/// gather-rich cores. kTranspose: 8 unaligned row loads and an in-register
/// 8x8 transpose per 8-edge x 8-column block, no gathers — wins on cores
/// where gathers are microcoded (the ~0.94x case in docs/performance.md).
/// Both accumulate each edge's products in ascending-j order, so they are
/// bit-identical to the scalar body and to each other.
enum class EdgeAttnVariant { kGather, kTranspose };

/// The active variant: GNNDSE_EDGE_ATTN=gather|transpose (default gather,
/// unknown values warn and fall back), resolved once on first use.
EdgeAttnVariant edge_attn_variant();

/// In-process override for tests/benchmarks; returns the applied variant.
EdgeAttnVariant set_edge_attn_variant(EdgeAttnVariant v);

const char* edge_attn_variant_name(EdgeAttnVariant v);

/// op[e] = (sum_j qp[dst[e]*d + j] * (kp[src[e]*d + j] + ep[e*d + j])) * scale
/// for edges [begin, end), ascending j.
void edge_attention_scores_range(SimdLevel level, const float* qp,
                                 const float* kp, const float* ep,
                                 const std::int32_t* src,
                                 const std::int32_t* dst, std::int64_t d,
                                 float scale, float* op, std::int64_t begin,
                                 std::int64_t end);

/// op[e] = lrelu(ap[src[e]] + bp[dst[e]]) for edges [begin, end).
void edge_pair_scores_range(SimdLevel level, const float* ap, const float* bp,
                            const std::int32_t* src, const std::int32_t* dst,
                            float negative_slope, float* op,
                            std::int64_t begin, std::int64_t end);

/// op[dst[e]*c + j] += alpha[e] * (vp[src[e]*c + j] (+ ep[e*c + j]))
/// serially in ascending e over ALL edges [0, num_edges) — colliding
/// destinations accumulate in edge order, which defines the result bits.
/// Pass ep = nullptr to drop the edge term.
void weighted_scatter_add_edges(SimdLevel level, const float* alpha,
                                const float* vp, const float* ep,
                                const std::int32_t* src,
                                const std::int32_t* dst, std::int64_t c,
                                float* op, std::int64_t num_edges);

/// op[i] = seg_sum[seg[i]] > 0 ? op[i] / seg_sum[seg[i]] : 0 for
/// [begin, end) — the in-place normalize pass of segment_softmax.
void segment_softmax_normalize(SimdLevel level, const float* seg_sum,
                               const std::int32_t* seg, float* op,
                               std::int64_t begin, std::int64_t end);

}  // namespace gnndse::gnn::simd
