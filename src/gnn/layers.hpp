// Dense building blocks: Linear and MLP modules over the autodiff tape.
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/infer.hpp"
#include "tensor/adam.hpp"
#include "tensor/tape.hpp"
#include "util/rng.hpp"

namespace gnndse::gnn {

/// Every trainable module exposes its parameters for the optimizer.
class Module {
 public:
  virtual ~Module() = default;
  virtual std::vector<tensor::Parameter*> params() = 0;
};

/// y = x W + b.
class Linear : public Module {
 public:
  Linear(std::int64_t in, std::int64_t out, util::Rng& rng, bool bias = true);

  tensor::VarId forward(tensor::Tape& t, tensor::VarId x);
  /// Tape-free forward (bit-identical to forward); the returned reference
  /// lives in the session's workspace until its next begin().
  const tensor::Tensor& forward_infer(InferenceSession& s,
                                      const tensor::Tensor& x);
  std::vector<tensor::Parameter*> params() override;

  std::int64_t in_features() const { return w_.value.dim(0); }
  std::int64_t out_features() const { return w_.value.dim(1); }

  /// Weight matrix [in, out] — read-only access for callers that cache
  /// weight-derived values (TransformerConv's edge projections).
  const tensor::Parameter& weight() const { return w_; }

 private:
  tensor::Parameter w_;
  tensor::Parameter b_;
  bool has_bias_;
};

enum class Activation { kNone, kRelu, kElu, kLeakyRelu, kSigmoid, kTanh };

/// Multi-layer perceptron: Linear layers with a fixed hidden activation and
/// an optional output activation (paper: 4 MLP prediction layers, §5.1).
class Mlp : public Module {
 public:
  /// dims = {in, h1, ..., out}.
  Mlp(const std::vector<std::int64_t>& dims, util::Rng& rng,
      Activation hidden = Activation::kElu,
      Activation output = Activation::kNone);

  tensor::VarId forward(tensor::Tape& t, tensor::VarId x);
  const tensor::Tensor& forward_infer(InferenceSession& s,
                                      const tensor::Tensor& x);
  std::vector<tensor::Parameter*> params() override;

 private:
  std::vector<Linear> layers_;
  Activation hidden_, output_;
};

/// Applies an activation on the tape.
tensor::VarId activate(tensor::Tape& t, tensor::VarId x, Activation a);

/// Tape-free activation; kNone returns `x` itself.
const tensor::Tensor& activate_infer(InferenceSession& s,
                                     const tensor::Tensor& x, Activation a);

}  // namespace gnndse::gnn
