#include "gnn/batch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gnndse::gnn {

GraphBatch make_batch(const std::vector<const GraphData*>& graphs) {
  if (graphs.empty()) throw std::invalid_argument("make_batch: empty batch");
  GraphBatch b;
  std::int64_t n_total = 0, e_total = 0;
  const std::int64_t fn = graphs[0]->x.cols();
  const std::int64_t fe = graphs[0]->e.cols();
  for (const GraphData* g : graphs) {
    if (g->x.cols() != fn || g->e.cols() != fe)
      throw std::invalid_argument("make_batch: feature width mismatch");
    n_total += g->x.rows();
    e_total += g->e.rows();
  }

  b.x = tensor::Tensor({n_total, fn});
  b.e = tensor::Tensor({e_total, fe});
  b.src.reserve(static_cast<std::size_t>(e_total));
  b.dst.reserve(static_cast<std::size_t>(e_total));
  b.node_graph.resize(static_cast<std::size_t>(n_total));
  b.num_nodes = n_total;
  b.num_graphs = static_cast<std::int64_t>(graphs.size());
  b.node_offset.assign(1, 0);

  std::int64_t n_off = 0, e_off = 0;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const GraphData& g = *graphs[gi];
    const std::int64_t n = g.x.rows(), e = g.e.rows();
    std::copy_n(g.x.data(), n * fn, b.x.data() + n_off * fn);
    std::copy_n(g.e.data(), e * fe, b.e.data() + e_off * fe);
    for (std::int64_t i = 0; i < n; ++i)
      b.node_graph[static_cast<std::size_t>(n_off + i)] =
          static_cast<std::int32_t>(gi);
    for (std::size_t k = 0; k < g.src.size(); ++k) {
      b.src.push_back(static_cast<std::int32_t>(g.src[k] + n_off));
      b.dst.push_back(static_cast<std::int32_t>(g.dst[k] + n_off));
    }
    n_off += n;
    e_off += e;
    b.node_offset.push_back(n_off);
  }

  // Per-graph aux rows (pragma-only features for the M1 baseline).
  if (graphs[0]->aux.numel() > 0) {
    const std::int64_t fa = graphs[0]->aux.numel();
    b.aux = tensor::Tensor({b.num_graphs, fa});
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      if (graphs[gi]->aux.numel() != fa)
        throw std::invalid_argument("make_batch: aux width mismatch");
      std::copy_n(graphs[gi]->aux.data(), fa,
                  b.aux.data() + static_cast<std::int64_t>(gi) * fa);
    }
  }

  // Self-loop augmented lists and symmetric-normalized GCN coefficients.
  b.src_sl = b.src;
  b.dst_sl = b.dst;
  for (std::int64_t i = 0; i < n_total; ++i) {
    b.src_sl.push_back(static_cast<std::int32_t>(i));
    b.dst_sl.push_back(static_cast<std::int32_t>(i));
  }
  std::vector<float> deg(static_cast<std::size_t>(n_total), 0.0f);
  for (std::int32_t d : b.dst_sl) ++deg[static_cast<std::size_t>(d)];
  b.gcn_coeff.resize(b.src_sl.size());
  for (std::size_t k = 0; k < b.src_sl.size(); ++k) {
    const float du = deg[static_cast<std::size_t>(b.src_sl[k])];
    const float dv = deg[static_cast<std::size_t>(b.dst_sl[k])];
    b.gcn_coeff[k] = 1.0f / std::sqrt(du * dv);
  }
  return b;
}

}  // namespace gnndse::gnn
