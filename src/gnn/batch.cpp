#include "gnn/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace gnndse::gnn {

namespace {

/// Shared batch assembly over any indexable graph range: both public
/// overloads funnel here so their outputs are identical by construction.
std::atomic<std::uint64_t> g_batch_id{0};

template <typename GetGraph>
GraphBatch make_batch_impl(std::size_t count, GetGraph&& graph_at) {
  GraphBatch b;
  b.batch_id = g_batch_id.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::int64_t fn = graph_at(0).x.cols();
  const std::int64_t fe = graph_at(0).e.cols();
  // Serial prefix pass fixes every graph's node/edge offset so the copy
  // loop below can fan out with each graph writing a disjoint slice.
  std::vector<std::int64_t> n_offs(count + 1, 0);
  std::vector<std::int64_t> e_offs(count + 1, 0);
  for (std::size_t gi = 0; gi < count; ++gi) {
    const GraphData& g = graph_at(gi);
    if (g.x.cols() != fn || g.e.cols() != fe)
      throw std::invalid_argument("make_batch: feature width mismatch");
    n_offs[gi + 1] = n_offs[gi] + g.x.rows();
    e_offs[gi + 1] = e_offs[gi] + g.e.rows();
  }
  const std::int64_t n_total = n_offs.back();
  const std::int64_t e_total = e_offs.back();

  b.x = tensor::Tensor({n_total, fn});
  b.e = tensor::Tensor({e_total, fe});
  b.src.resize(static_cast<std::size_t>(e_total));
  b.dst.resize(static_cast<std::size_t>(e_total));
  b.node_graph.resize(static_cast<std::size_t>(n_total));
  b.num_nodes = n_total;
  b.num_graphs = static_cast<std::int64_t>(count);
  b.node_offset.assign(n_offs.begin(), n_offs.end());

  // Per-graph aux rows (pragma-only features for the M1 baseline).
  const std::int64_t fa = graph_at(0).aux.numel();
  if (fa > 0) b.aux = tensor::Tensor({b.num_graphs, fa});

  util::parallel_for(
      static_cast<std::int64_t>(count), 1,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t gl = begin; gl < end; ++gl) {
          const auto gi = static_cast<std::size_t>(gl);
          const GraphData& g = graph_at(gi);
          const std::int64_t n_off = n_offs[gi], e_off = e_offs[gi];
          const std::int64_t n = g.x.rows(), e = g.e.rows();
          std::copy_n(g.x.data(), n * fn, b.x.data() + n_off * fn);
          std::copy_n(g.e.data(), e * fe, b.e.data() + e_off * fe);
          for (std::int64_t i = 0; i < n; ++i)
            b.node_graph[static_cast<std::size_t>(n_off + i)] =
                static_cast<std::int32_t>(gi);
          for (std::size_t k = 0; k < g.src.size(); ++k) {
            const auto ek = static_cast<std::size_t>(e_off) + k;
            b.src[ek] = static_cast<std::int32_t>(g.src[k] + n_off);
            b.dst[ek] = static_cast<std::int32_t>(g.dst[k] + n_off);
          }
          if (fa > 0) {
            if (g.aux.numel() != fa)
              throw std::invalid_argument("make_batch: aux width mismatch");
            std::copy_n(g.aux.data(), fa, b.aux.data() + gl * fa);
          }
        }
      });

  // Self-loop augmented lists and symmetric-normalized GCN coefficients.
  b.src_sl = b.src;
  b.dst_sl = b.dst;
  for (std::int64_t i = 0; i < n_total; ++i) {
    b.src_sl.push_back(static_cast<std::int32_t>(i));
    b.dst_sl.push_back(static_cast<std::int32_t>(i));
  }
  std::vector<float> deg(static_cast<std::size_t>(n_total), 0.0f);
  for (std::int32_t d : b.dst_sl) ++deg[static_cast<std::size_t>(d)];
  b.gcn_coeff.resize(b.src_sl.size());
  util::parallel_for(
      static_cast<std::int64_t>(b.src_sl.size()), 4096,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t k = begin; k < end; ++k) {
          const auto ks = static_cast<std::size_t>(k);
          const float du = deg[static_cast<std::size_t>(b.src_sl[ks])];
          const float dv = deg[static_cast<std::size_t>(b.dst_sl[ks])];
          b.gcn_coeff[ks] = 1.0f / std::sqrt(du * dv);
        }
      });
  return b;
}

}  // namespace

GraphBatch make_batch(const std::vector<const GraphData*>& graphs) {
  if (graphs.empty()) throw std::invalid_argument("make_batch: empty batch");
  return make_batch_impl(
      graphs.size(),
      [&](std::size_t i) -> const GraphData& { return *graphs[i]; });
}

GraphBatch make_batch(std::initializer_list<const GraphData*> graphs) {
  if (graphs.size() == 0)
    throw std::invalid_argument("make_batch: empty batch");
  return make_batch_impl(
      graphs.size(),
      [&](std::size_t i) -> const GraphData& { return *graphs.begin()[i]; });
}

GraphBatch make_batch(std::span<const GraphData> graphs) {
  if (graphs.empty()) throw std::invalid_argument("make_batch: empty batch");
  return make_batch_impl(
      graphs.size(),
      [&](std::size_t i) -> const GraphData& { return graphs[i]; });
}

}  // namespace gnndse::gnn
