// Graph convolution layers: GCN (eq. 1), GAT (eqs. 2-3) and
// TransformerConv with edge features and gated residual (eq. 8) — the
// paper's M3/M4/M5 building blocks.
#pragma once

#include <array>

#include "gnn/batch.hpp"
#include "gnn/layers.hpp"

namespace gnndse::gnn {

/// Common interface so the encoder can stack any conv kind.
class ConvLayer : public Module {
 public:
  /// x: [N, in]; returns [N, out]. The batch supplies edge indices,
  /// self-loop lists and edge features.
  virtual tensor::VarId forward(tensor::Tape& t, tensor::VarId x,
                                const GraphBatch& b) = 0;
  /// Tape-free forward, bit-identical to forward() (inference fast path).
  virtual const tensor::Tensor& forward_infer(InferenceSession& s,
                                              const tensor::Tensor& x,
                                              const GraphBatch& b) = 0;
};

/// Graph Convolutional Network layer (Kipf & Welling):
///   h'_i = W sum_{j in N(i) u {i}} h_j / sqrt(d_i d_j)
class GCNConv : public ConvLayer {
 public:
  GCNConv(std::int64_t in, std::int64_t out, util::Rng& rng);
  tensor::VarId forward(tensor::Tape& t, tensor::VarId x,
                        const GraphBatch& b) override;
  const tensor::Tensor& forward_infer(InferenceSession& s,
                                      const tensor::Tensor& x,
                                      const GraphBatch& b) override;
  std::vector<tensor::Parameter*> params() override;

 private:
  Linear lin_;
};

/// Graph Attention Network layer (Velickovic et al.), single head:
///   alpha_ij = softmax_j LeakyReLU(a^T [W h_i || W h_j])
///   h'_i = W sum alpha_ij h_j  (self loops included)
class GATConv : public ConvLayer {
 public:
  GATConv(std::int64_t in, std::int64_t out, util::Rng& rng);
  tensor::VarId forward(tensor::Tape& t, tensor::VarId x,
                        const GraphBatch& b) override;
  const tensor::Tensor& forward_infer(InferenceSession& s,
                                      const tensor::Tensor& x,
                                      const GraphBatch& b) override;
  std::vector<tensor::Parameter*> params() override;

 private:
  Linear lin_;                 // W
  tensor::Parameter att_src_;  // a_src: [out, 1]
  tensor::Parameter att_dst_;  // a_dst: [out, 1]
  tensor::Parameter bias_;     // [out]
};

/// TransformerConv (Shi et al. 2021), single head, with edge features and
/// a gated residual connection (the paper highlights both, §4.3.1):
///   alpha_ij = softmax((W1 h_i)^T (W2 h_j + W3 e_ij) / sqrt(D))
///   m_i      = sum alpha_ij (W4 h_j + W5 e_ij)
///   r_i      = W6 h_i
///   beta_i   = sigmoid(Wg [r_i || m_i || r_i - m_i])
///   h'_i     = beta_i r_i + (1 - beta_i) m_i
class TransformerConv : public ConvLayer {
 public:
  /// `gated_residual=false` ablates the beta gate to a plain skip
  /// connection (h' = r + m) — bench_ablation measures the difference.
  TransformerConv(std::int64_t in, std::int64_t out, std::int64_t edge_dim,
                  util::Rng& rng, bool gated_residual = true);
  tensor::VarId forward(tensor::Tape& t, tensor::VarId x,
                        const GraphBatch& b) override;
  const tensor::Tensor& forward_infer(InferenceSession& s,
                                      const tensor::Tensor& x,
                                      const GraphBatch& b) override;
  std::vector<tensor::Parameter*> params() override;

 private:
  /// Edge-feature projections W3 e and W5 e depend only on the batch's
  /// immutable edge features and the layer weights, so the fast path
  /// computes them once per (batch_id, params_version) instead of every
  /// forward — the DSE skeleton cache reuses one batch across a whole
  /// sweep, turning two [E, D] matmuls per chunk into once-per-sweep work.
  /// A small move-to-front LRU (kEdgeProjSlots) instead of a single entry:
  /// the pipelined sweep engine double-buffers two batches with distinct
  /// ids, and one slot would thrash on every alternation. Invalidation is
  /// automatic: make_batch mints fresh batch ids and Adam::step()/
  /// load_params() bump tensor::params_version().
  struct EdgeProjection {
    std::uint64_t batch_id = 0;
    std::uint64_t params_version = 0;
    tensor::Tensor ek, ev;  // [E, out]
  };
  static constexpr std::size_t kEdgeProjSlots = 4;
  const EdgeProjection& edge_projection(const GraphBatch& b);

  Linear wq_, wk_, wv_, we_k_, we_v_, skip_, gate_;
  std::int64_t out_dim_;
  bool gated_residual_;
  std::array<EdgeProjection, kEdgeProjSlots> eproj_;
};

}  // namespace gnndse::gnn
